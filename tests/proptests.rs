//! Property-based tests over the whole workspace: random graphs in, paper
//! invariants out.

use proptest::prelude::*;

use bestk::core::{
    analyze, baseline::baseline_core_set_primaries, baseline::baseline_single_core_primaries,
    core_decomposition, CommunityMetric, CoreForest, Metric, OrderedGraph,
};
use bestk::graph::{CsrGraph, GraphBuilder, VertexId};

/// Strategy: a random simple graph with up to `max_n` vertices and `max_m`
/// candidate edges (duplicates/self-loops are cleaned by the builder).
fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m).prop_map(move |edges| {
            let mut b = GraphBuilder::new();
            b.reserve_vertices(n as usize);
            b.extend_edges(edges);
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Coreness is exactly the largest k whose k-core set contains v, and
    /// k-core sets are nested (the containment property the sweeps rely on).
    #[test]
    fn coreness_definition_and_containment(g in arb_graph(40, 160)) {
        let d = core_decomposition(&g);
        // Every vertex in C_k has degree >= k within C_k.
        for k in 0..=d.kmax() {
            let verts = d.core_set_vertices(k);
            let inside: std::collections::HashSet<VertexId> = verts.iter().copied().collect();
            for &v in verts {
                let deg = g.neighbors(v).iter().filter(|u| inside.contains(u)).count();
                prop_assert!(deg >= k as usize, "v={v} deg={deg} k={k}");
            }
        }
        // Containment: C_{k+1} subset of C_k (suffix property makes this
        // automatic, but check via coreness directly).
        for v in g.vertices() {
            let c = d.coreness(v);
            prop_assert!(d.core_set_vertices(c).contains(&v));
            if c < d.kmax() {
                prop_assert!(!d.core_set_vertices(c + 1).contains(&v));
            }
        }
    }

    /// The ordering tags always agree with their definitions.
    #[test]
    fn ordering_tags_match_definition(g in arb_graph(40, 160)) {
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        for v in g.vertices() {
            let cv = d.coreness(v);
            prop_assert_eq!(o.count_lt(v), g.neighbors(v).iter().filter(|&&u| d.coreness(u) < cv).count());
            prop_assert_eq!(o.count_eq(v), g.neighbors(v).iter().filter(|&&u| d.coreness(u) == cv).count());
            prop_assert_eq!(o.count_gt(v), g.neighbors(v).iter().filter(|&&u| d.coreness(u) > cv).count());
            prop_assert_eq!(
                o.count_gt_rank(v),
                g.neighbors(v)
                    .iter()
                    .filter(|&&u| (d.coreness(u), u) > (cv, v))
                    .count()
            );
        }
    }

    /// Optimal set-sweep == baseline on every primary value, triangles
    /// included.
    #[test]
    fn optimal_equals_baseline_for_sets(g in arb_graph(36, 140)) {
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        let optimal = bestk::core::bestkset::core_set_primaries_with_triangles(&o);
        let baseline = baseline_core_set_primaries(&g, &d, true);
        prop_assert_eq!(optimal, baseline);
    }

    /// Optimal forest aggregation == baseline per-core rescoring, as
    /// multisets of (k, primaries).
    #[test]
    fn optimal_equals_baseline_for_single_cores(g in arb_graph(36, 140)) {
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        let f = CoreForest::build(&g, &d);
        let optimal = bestk::core::bestcore::single_core_primaries(&o, &f, true);
        let mut from_forest: Vec<_> = f
            .nodes()
            .iter()
            .zip(optimal)
            .map(|(n, pv)| (n.coreness, pv))
            .collect();
        let mut baseline = baseline_single_core_primaries(&g, &d, true);
        let key = |t: &(u32, bestk::core::PrimaryValues)| {
            (t.0, t.1.num_vertices, t.1.internal_edges, t.1.boundary_edges, t.1.triangles, t.1.triplets)
        };
        from_forest.sort_by_key(key);
        baseline.sort_by_key(key);
        prop_assert_eq!(from_forest, baseline);
    }

    /// Set primaries are monotone in k: vertices, edges, triangles, and
    /// triplets can only shrink as k grows.
    #[test]
    fn set_primaries_are_monotone(g in arb_graph(40, 160)) {
        let a = analyze(&g);
        let prims = &a.set_profile().primaries;
        for w in prims.windows(2) {
            prop_assert!(w[1].num_vertices <= w[0].num_vertices);
            prop_assert!(w[1].internal_edges <= w[0].internal_edges);
            prop_assert!(w[1].triangles <= w[0].triangles);
            prop_assert!(w[1].triplets <= w[0].triplets);
        }
        // k = 0 covers the whole graph with no boundary.
        prop_assert_eq!(prims[0].num_vertices as usize, g.num_vertices());
        prop_assert_eq!(prims[0].internal_edges as usize, g.num_edges());
        prop_assert_eq!(prims[0].boundary_edges, 0);
    }

    /// The forest partitions the vertex set, parents have strictly lower
    /// coreness, and reconstructed cores contain their shell.
    #[test]
    fn forest_structure_invariants(g in arb_graph(40, 160)) {
        let d = core_decomposition(&g);
        let f = CoreForest::build(&g, &d);
        let mut seen = vec![false; g.num_vertices()];
        for (i, node) in f.nodes().iter().enumerate() {
            prop_assert!(!node.vertices.is_empty(), "empty node survived compression");
            for &v in &node.vertices {
                prop_assert!(!seen[v as usize], "vertex {v} in two nodes");
                seen[v as usize] = true;
                prop_assert_eq!(d.coreness(v), node.coreness);
            }
            if let Some(p) = node.parent {
                prop_assert!(f.node(p).coreness < node.coreness);
                prop_assert!(f.node(p).children.contains(&(i as u32)));
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Every reported best k is within range and its score matches a direct
    /// recomputation from the profile.
    #[test]
    fn best_k_is_consistent(g in arb_graph(40, 160)) {
        let a = analyze(&g);
        for m in Metric::ALL {
            if let Some(best) = a.best_core_set(&m) {
                prop_assert!(best.k <= a.kmax());
                let series = a.core_set_scores(&m);
                prop_assert!(series.iter().filter(|s| s.is_finite()).all(|&s| s <= best.score + 1e-12),
                    "{}: something beats the best", m.name());
            }
        }
    }

    /// Densest-subgraph approximations respect their guarantees against the
    /// exact flow oracle.
    #[test]
    fn densest_subgraph_half_approx(g in arb_graph(24, 80)) {
        prop_assume!(g.num_edges() >= 1);
        let exact = bestk::apps::goldberg_exact(&g);
        let a = bestk::core::analyze_basic(&g);
        let d = bestk::apps::opt_d(&g, &a);
        prop_assert!(d.average_degree >= exact.average_degree / 2.0 - 1e-9);
        prop_assert!(d.average_degree <= exact.average_degree + 1e-9);
        let peel = bestk::apps::charikar_peeling(&g);
        prop_assert!(peel.average_degree >= exact.average_degree / 2.0 - 1e-9);
    }

    /// A maximum clique of size s always sits inside the (s-1)-core set.
    #[test]
    fn clique_inside_its_core(g in arb_graph(24, 100)) {
        let d = core_decomposition(&g);
        let clique = bestk::apps::maximum_clique(&g, &d);
        prop_assume!(clique.len() >= 2);
        let k = clique.len() as u32 - 1;
        for &v in &clique {
            prop_assert!(d.coreness(v) >= k);
        }
    }

    /// Truss profile == per-k baseline, and every edge of the k-truss lies
    /// in the (k-1)-core — the containment §VI-B builds on.
    #[test]
    fn truss_profile_and_core_containment(g in arb_graph(36, 140)) {
        use bestk::truss::{EdgeIndex, baseline::baseline_truss_set_primaries, truss_set_profile};
        let idx = EdgeIndex::build(&g);
        let t = bestk::truss::decomposition::truss_decomposition_with_index(&g, &idx);
        let fast = truss_set_profile(&g, &idx, &t).primaries;
        let slow = baseline_truss_set_primaries(&g, &idx, &t);
        prop_assert_eq!(fast, slow);
        let d = core_decomposition(&g);
        for e in 0..idx.num_edges() as u32 {
            let (u, v) = idx.endpoints(e);
            let te = t.truss(e);
            prop_assert!(d.coreness(u) + 1 >= te, "t({u},{v})={te} c={}", d.coreness(u));
            prop_assert!(d.coreness(v) + 1 >= te);
        }
    }

    /// A maximum clique of size s is an s-truss: truss numbers bound clique
    /// size from above.
    #[test]
    fn clique_size_bounded_by_tmax(g in arb_graph(24, 100)) {
        let d = core_decomposition(&g);
        let clique = bestk::apps::maximum_clique(&g, &d);
        prop_assume!(clique.len() >= 3);
        let t = bestk::truss::truss_decomposition(&g);
        prop_assert!(t.tmax() as usize >= clique.len());
    }

    /// Weighted decomposition invariants: unit weights reduce to coreness,
    /// and with arbitrary weights every s-core set retains weighted degree
    /// >= its level.
    #[test]
    fn weighted_core_invariants(
        g in arb_graph(30, 120),
        wseed in 0u64..1000,
    ) {
        use bestk::graph::weighted::WeightedGraphBuilder;
        use bestk::core::weighted::weighted_core_decomposition;
        let mut b = WeightedGraphBuilder::new();
        b.reserve_vertices(g.num_vertices());
        let mut rng = bestk::graph::rng::Xoshiro256::seed_from_u64(wseed);
        for (u, v) in g.edges() {
            b.add_edge(u, v, 1 + rng.next_below(7) as u32);
        }
        let wg = b.build();
        let wd = weighted_core_decomposition(&wg);
        for (i, &level) in wd.levels().iter().enumerate() {
            let members: std::collections::HashSet<VertexId> =
                wd.core_set_at(i).iter().copied().collect();
            for &v in wd.core_set_at(i) {
                let deg: u64 = wg
                    .neighbors_with_weights(v)
                    .filter(|(u, _)| members.contains(u))
                    .map(|(_, w)| w as u64)
                    .sum();
                prop_assert!(deg >= level, "v={v} deg={deg} level={level}");
            }
        }
        // Weighted profile internal weight at the lowest populated level
        // equals the total weight of non-isolated structure.
        let profile = bestk::core::weighted::weighted_core_set_profile(&wg, &wd);
        if let (Some(&first), Some(pv)) = (wd.levels().first(), profile.primaries.first()) {
            if first == 0 {
                prop_assert_eq!(pv.internal_edges, wg.total_weight());
                prop_assert_eq!(pv.boundary_edges, 0);
            }
        }
    }

    /// Opt-SC results contain the query vertex and respect the degree
    /// invariant for non-query survivors.
    #[test]
    fn opt_sc_invariants(g in arb_graph(40, 200), k in 1u32..5, h in 4usize..20) {
        let a = bestk::core::analyze_basic(&g);
        let d = a.decomposition();
        for q in g.vertices().take(10) {
            if let Some(res) = bestk::apps::opt_sc(&g, &a, k, h, q) {
                prop_assert!(res.vertices.contains(&q));
                prop_assert!(res.source_core_k >= k);
                prop_assert!(d.coreness(q) >= k);
                let inside: std::collections::HashSet<VertexId> =
                    res.vertices.iter().copied().collect();
                for &v in &res.vertices {
                    if v != q {
                        let deg = g.neighbors(v).iter().filter(|u| inside.contains(u)).count();
                        prop_assert!(deg >= k as usize, "v={v} deg={deg} k={k}");
                    }
                }
            }
        }
    }
}
