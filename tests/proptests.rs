//! Property-based tests over the whole workspace: random graphs in, paper
//! invariants out.
//!
//! Driven by the in-repo [`bestk::graph::testkit`] harness (the build
//! environment is offline, so no external property-testing crate). Each
//! property also leans on the `verify` modules — the executable
//! specification — so a structural regression in any pipeline stage is
//! reported with the invariant it broke, not just a mismatched value.

use bestk::core::{
    analyze, baseline::baseline_core_set_primaries, baseline::baseline_single_core_primaries,
    core_decomposition, CommunityMetric, CoreForest, Metric, OrderedGraph,
};
use bestk::graph::testkit::check;
use bestk::graph::VertexId;

/// Coreness is exactly the largest k whose k-core set contains v, and
/// k-core sets are nested (the containment property the sweeps rely on).
#[test]
fn coreness_definition_and_containment() {
    check("coreness_definition_and_containment", 64, |gen| {
        let g = gen.graph(40, 160);
        let d = core_decomposition(&g);
        // Every vertex in C_k has degree >= k within C_k.
        for k in 0..=d.kmax() {
            let verts = d.core_set_vertices(k);
            let inside: std::collections::HashSet<VertexId> = verts.iter().copied().collect();
            for &v in verts {
                let deg = g.neighbors(v).iter().filter(|u| inside.contains(u)).count();
                assert!(deg >= k as usize, "v={v} deg={deg} k={k}");
            }
        }
        // Containment: C_{k+1} subset of C_k (suffix property makes this
        // automatic, but check via coreness directly).
        for v in g.vertices() {
            let c = d.coreness(v);
            assert!(d.core_set_vertices(c).contains(&v));
            if c < d.kmax() {
                assert!(!d.core_set_vertices(c + 1).contains(&v));
            }
        }
    });
}

/// The full decomposition verifier accepts every honestly computed
/// decomposition — including the h-index fixpoint cross-check.
#[test]
fn verify_accepts_honest_decompositions() {
    check("verify_accepts_honest_decompositions", 64, |gen| {
        let g = gen.graph(40, 160);
        let d = core_decomposition(&g);
        bestk::core::verify::verify_decomposition(&g, &d).expect("honest decomposition rejected");
    });
}

/// Batagelj–Zaveršnik peeling and h-index iteration are independent
/// algorithms for the same coreness function; they must agree everywhere.
#[test]
fn peeling_matches_hindex_iteration() {
    check("peeling_matches_hindex_iteration", 64, |gen| {
        let g = gen.graph(48, 200);
        let peel = core_decomposition(&g);
        let sync = bestk::core::hindex::hindex_core_decomposition(&g);
        let async_ = bestk::core::hindex::hindex_core_decomposition_async(&g);
        assert_eq!(
            peel.coreness_slice(),
            &sync.coreness[..],
            "sync h-index disagrees"
        );
        assert_eq!(
            peel.coreness_slice(),
            &async_.coreness[..],
            "async h-index disagrees"
        );
    });
}

/// The ordering tags always agree with their definitions.
#[test]
fn ordering_tags_match_definition() {
    check("ordering_tags_match_definition", 64, |gen| {
        let g = gen.graph(40, 160);
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        for v in g.vertices() {
            let cv = d.coreness(v);
            assert_eq!(
                o.count_lt(v),
                g.neighbors(v)
                    .iter()
                    .filter(|&&u| d.coreness(u) < cv)
                    .count()
            );
            assert_eq!(
                o.count_eq(v),
                g.neighbors(v)
                    .iter()
                    .filter(|&&u| d.coreness(u) == cv)
                    .count()
            );
            assert_eq!(
                o.count_gt(v),
                g.neighbors(v)
                    .iter()
                    .filter(|&&u| d.coreness(u) > cv)
                    .count()
            );
            assert_eq!(
                o.count_gt_rank(v),
                g.neighbors(v)
                    .iter()
                    .filter(|&&u| (d.coreness(u), u) > (cv, v))
                    .count()
            );
        }
    });
}

/// Optimal set-sweep == baseline on every primary value, triangles
/// included.
#[test]
fn optimal_equals_baseline_for_sets() {
    check("optimal_equals_baseline_for_sets", 48, |gen| {
        let g = gen.graph(36, 140);
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        let optimal = bestk::core::bestkset::core_set_primaries_with_triangles(&o);
        let baseline = baseline_core_set_primaries(&g, &d, true);
        assert_eq!(optimal, baseline);
    });
}

/// Optimal forest aggregation == baseline per-core rescoring, as
/// multisets of (k, primaries).
#[test]
fn optimal_equals_baseline_for_single_cores() {
    check("optimal_equals_baseline_for_single_cores", 48, |gen| {
        let g = gen.graph(36, 140);
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        let f = CoreForest::build(&g, &d);
        let optimal = bestk::core::bestcore::single_core_primaries(&o, &f, true);
        let mut from_forest: Vec<_> = f
            .nodes()
            .iter()
            .zip(optimal)
            .map(|(n, pv)| (n.coreness, pv))
            .collect();
        let mut baseline = baseline_single_core_primaries(&g, &d, true);
        let key = |t: &(u32, bestk::core::PrimaryValues)| {
            (
                t.0,
                t.1.num_vertices,
                t.1.internal_edges,
                t.1.boundary_edges,
                t.1.triangles,
                t.1.triplets,
            )
        };
        from_forest.sort_by_key(key);
        baseline.sort_by_key(key);
        assert_eq!(from_forest, baseline);
    });
}

/// Set primaries are monotone in k: vertices, edges, triangles, and
/// triplets can only shrink as k grows.
#[test]
fn set_primaries_are_monotone() {
    check("set_primaries_are_monotone", 64, |gen| {
        let g = gen.graph(40, 160);
        let a = analyze(&g);
        let prims = &a.set_profile().primaries;
        for w in prims.windows(2) {
            assert!(w[1].num_vertices <= w[0].num_vertices);
            assert!(w[1].internal_edges <= w[0].internal_edges);
            assert!(w[1].triangles <= w[0].triangles);
            assert!(w[1].triplets <= w[0].triplets);
        }
        // k = 0 covers the whole graph with no boundary.
        assert_eq!(prims[0].num_vertices as usize, g.num_vertices());
        assert_eq!(prims[0].internal_edges as usize, g.num_edges());
        assert_eq!(prims[0].boundary_edges, 0);
    });
}

/// The forest partitions the vertex set, parents have strictly lower
/// coreness, and reconstructed cores contain their shell.
#[test]
fn forest_structure_invariants() {
    check("forest_structure_invariants", 64, |gen| {
        let g = gen.graph(40, 160);
        let d = core_decomposition(&g);
        let f = CoreForest::build(&g, &d);
        let mut seen = vec![false; g.num_vertices()];
        for (i, node) in f.nodes().iter().enumerate() {
            assert!(!node.vertices.is_empty(), "empty node survived compression");
            for &v in &node.vertices {
                assert!(!seen[v as usize], "vertex {v} in two nodes");
                seen[v as usize] = true;
                assert_eq!(d.coreness(v), node.coreness);
            }
            if let Some(p) = node.parent {
                assert!(f.node(p).coreness < node.coreness);
                assert!(f.node(p).children.contains(&(i as u32)));
            }
        }
        assert!(seen.iter().all(|&s| s));
    });
}

/// Every reported best k is within range, its score matches a direct
/// recomputation from the profile, and the best-k verifier (which replays
/// the whole sweep against the naive baseline) accepts it.
#[test]
fn best_k_is_consistent() {
    check("best_k_is_consistent", 64, |gen| {
        let g = gen.graph(40, 160);
        let a = analyze(&g);
        for m in Metric::ALL {
            if let Some(best) = a.best_core_set(&m) {
                assert!(best.k <= a.kmax());
                let series = a.core_set_scores(&m);
                assert!(
                    series
                        .iter()
                        .filter(|s| s.is_finite())
                        .all(|&s| s <= best.score + 1e-12),
                    "{}: something beats the best",
                    m.name()
                );
                bestk::core::verify::verify_best_core_set(&g, &m, &best)
                    .expect("best-k verifier rejected an honest answer");
            }
        }
    });
}

/// Densest-subgraph approximations respect their guarantees against the
/// exact flow oracle.
#[test]
fn densest_subgraph_half_approx() {
    check("densest_subgraph_half_approx", 48, |gen| {
        let g = gen.graph(24, 80);
        if g.num_edges() < 1 {
            return;
        }
        let exact = bestk::apps::goldberg_exact(&g);
        let a = bestk::core::analyze_basic(&g);
        let d = bestk::apps::opt_d(&g, &a);
        assert!(d.average_degree >= exact.average_degree / 2.0 - 1e-9);
        assert!(d.average_degree <= exact.average_degree + 1e-9);
        let peel = bestk::apps::charikar_peeling(&g);
        assert!(peel.average_degree >= exact.average_degree / 2.0 - 1e-9);
    });
}

/// A maximum clique of size s always sits inside the (s-1)-core set.
#[test]
fn clique_inside_its_core() {
    check("clique_inside_its_core", 48, |gen| {
        let g = gen.graph(24, 100);
        let d = core_decomposition(&g);
        let clique = bestk::apps::maximum_clique(&g, &d);
        if clique.len() < 2 {
            return;
        }
        let k = clique.len() as u32 - 1;
        for &v in &clique {
            assert!(d.coreness(v) >= k);
        }
    });
}

/// Truss profile == per-k baseline, the truss verifier accepts the
/// decomposition, and every edge of the k-truss lies in the (k-1)-core —
/// the containment §VI-B builds on.
#[test]
fn truss_profile_and_core_containment() {
    check("truss_profile_and_core_containment", 48, |gen| {
        use bestk::truss::{baseline::baseline_truss_set_primaries, truss_set_profile, EdgeIndex};
        let g = gen.graph(36, 140);
        let idx = EdgeIndex::build(&g);
        let t = bestk::truss::decomposition::truss_decomposition_with_index(&g, &idx);
        bestk::truss::verify::verify_truss_decomposition(&g, &idx, &t)
            .expect("honest truss decomposition rejected");
        let fast = truss_set_profile(&g, &idx, &t).primaries;
        let slow = baseline_truss_set_primaries(&g, &idx, &t);
        assert_eq!(fast, slow);
        let d = core_decomposition(&g);
        for e in 0..idx.num_edges() as u32 {
            let (u, v) = idx.endpoints(e);
            let te = t.truss(e);
            assert!(
                d.coreness(u) + 1 >= te,
                "t({u},{v})={te} c={}",
                d.coreness(u)
            );
            assert!(d.coreness(v) + 1 >= te);
        }
    });
}

/// A maximum clique of size s is an s-truss: truss numbers bound clique
/// size from above.
#[test]
fn clique_size_bounded_by_tmax() {
    check("clique_size_bounded_by_tmax", 48, |gen| {
        let g = gen.graph(24, 100);
        let d = core_decomposition(&g);
        let clique = bestk::apps::maximum_clique(&g, &d);
        if clique.len() < 3 {
            return;
        }
        let t = bestk::truss::truss_decomposition(&g);
        assert!(t.tmax() as usize >= clique.len());
    });
}

/// Weighted decomposition invariants: unit weights reduce to coreness,
/// and with arbitrary weights every s-core set retains weighted degree
/// >= its level.
#[test]
fn weighted_core_invariants() {
    check("weighted_core_invariants", 48, |gen| {
        use bestk::core::weighted::weighted_core_decomposition;
        use bestk::graph::weighted::WeightedGraphBuilder;
        let g = gen.graph(30, 120);
        let mut b = WeightedGraphBuilder::new();
        b.reserve_vertices(g.num_vertices());
        for (u, v) in g.edges() {
            b.add_edge(u, v, 1 + gen.u32_in(0, 7));
        }
        let wg = b.build();
        let wd = weighted_core_decomposition(&wg);
        for (i, &level) in wd.levels().iter().enumerate() {
            let members: std::collections::HashSet<VertexId> =
                wd.core_set_at(i).iter().copied().collect();
            for &v in wd.core_set_at(i) {
                let deg: u64 = wg
                    .neighbors_with_weights(v)
                    .filter(|(u, _)| members.contains(u))
                    .map(|(_, w)| w as u64)
                    .sum();
                assert!(deg >= level, "v={v} deg={deg} level={level}");
            }
        }
        // Weighted profile internal weight at the lowest populated level
        // equals the total weight of non-isolated structure.
        let profile = bestk::core::weighted::weighted_core_set_profile(&wg, &wd);
        if let (Some(&first), Some(pv)) = (wd.levels().first(), profile.primaries.first()) {
            if first == 0 {
                assert_eq!(pv.internal_edges, wg.total_weight());
                assert_eq!(pv.boundary_edges, 0);
            }
        }
    });
}

/// Shared invariant body for [`opt_sc_invariants`] and its pinned
/// regression: every Opt-SC result contains the query vertex, sits inside
/// a source core of at least `k`, and non-query survivors keep internal
/// degree `>= k`.
fn assert_opt_sc_invariants(g: &bestk::graph::CsrGraph, k: u32, h: usize) {
    let a = bestk::core::analyze_basic(g);
    let d = a.decomposition();
    for q in g.vertices().take(10) {
        if let Some(res) = bestk::apps::opt_sc(g, &a, k, h, q) {
            assert!(res.vertices.contains(&q));
            assert!(res.source_core_k >= k);
            assert!(d.coreness(q) >= k);
            let inside: std::collections::HashSet<VertexId> =
                res.vertices.iter().copied().collect();
            for &v in &res.vertices {
                if v != q {
                    let deg = g.neighbors(v).iter().filter(|u| inside.contains(u)).count();
                    assert!(deg >= k as usize, "v={v} deg={deg} k={k}");
                }
            }
        }
    }
}

/// Named, always-run conversion of the one entry that used to live in
/// `tests/proptests.proptest-regressions` (a leftover from an earlier
/// external-crate harness whose `cc` seed hashes the in-repo testkit
/// cannot replay): `opt_sc_invariants` once shrank to a 35-vertex,
/// 41-edge graph with `k = 4, h = 4`. The exact shrunken graph is
/// unrecoverable from the hash, so this pins the same sparse
/// shape-at-parameters across a spread of deterministic seeds — the
/// regime (m barely above n, k above most corenesses) that triggered the
/// original failure.
#[test]
fn regression_opt_sc_sparse_n35_m41_k4_h4() {
    for seed in [0u64, 1, 2, 0x006f_5437, 0x6f54_373d] {
        let g = bestk::graph::generators::erdos_renyi_gnm(35, 41, seed);
        assert_opt_sc_invariants(&g, 4, 4);
    }
}

/// Opt-SC results contain the query vertex and respect the degree
/// invariant for non-query survivors.
#[test]
fn opt_sc_invariants() {
    check("opt_sc_invariants", 48, |gen| {
        let g = gen.graph(40, 200);
        let k = gen.u32_in(1, 5);
        let h = gen.usize_in(4, 20);
        assert_opt_sc_invariants(&g, k, h);
    });
}
