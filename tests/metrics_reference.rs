//! Hand-computed reference values for every metric on concrete graphs —
//! belt-and-braces numeric checks that the end-to-end pipeline reproduces
//! arithmetic done on paper.

use bestk::core::{analyze, CommunityMetric, GraphContext, Metric, PrimaryValues};
use bestk::graph::{generators, GraphBuilder};

/// Two K4s joined by a single edge: n = 8, m = 13.
/// All vertices have coreness 3 (each K4 provides degree 3).
fn two_k4_bridge() -> bestk::graph::CsrGraph {
    let mut b = GraphBuilder::new();
    for base in [0u32, 4] {
        for u in 0..4 {
            for v in (u + 1)..4 {
                b.add_edge(base + u, base + v);
            }
        }
    }
    b.add_edge(3, 4);
    b.build()
}

#[test]
fn whole_graph_scores_on_two_k4s() {
    let g = two_k4_bridge();
    let a = analyze(&g);
    assert_eq!(a.kmax(), 3);
    // C_0 = C_3 = whole graph (everything has coreness 3).
    let pv = &a.set_profile().primaries[3];
    assert_eq!(pv.num_vertices, 8);
    assert_eq!(pv.internal_edges, 13);
    assert_eq!(pv.boundary_edges, 0);
    assert_eq!(pv.triangles, 8); // 4 per K4, bridge closes none
                                 // Triplets: six degree-3 vertices (C(3,2)=3 each) + two degree-4
                                 // endpoints (C(4,2)=6 each) = 18 + 12.
    assert_eq!(pv.triplets, 30);

    let scores = a.core_set_scores(&Metric::AverageDegree);
    assert!((scores[3] - 26.0 / 8.0).abs() < 1e-12);
    let den = a.core_set_scores(&Metric::InternalDensity);
    assert!((den[3] - 13.0 / 28.0).abs() < 1e-12);
    let cc = a.core_set_scores(&Metric::ClusteringCoefficient);
    assert!((cc[3] - 24.0 / 30.0).abs() < 1e-12);
    // Whole graph: cut ratio 1 by convention, conductance 1, modularity 0.
    assert_eq!(a.core_set_scores(&Metric::CutRatio)[3], 1.0);
    assert_eq!(a.core_set_scores(&Metric::Conductance)[3], 1.0);
    assert!(a.core_set_scores(&Metric::Modularity)[3].abs() < 1e-12);
}

#[test]
fn single_core_scores_on_two_k4s() {
    // The two K4s are one 3-core? No: the bridge endpoints both have
    // coreness 3 and the graph is connected, so the whole graph is a single
    // connected 3-core.
    let g = two_k4_bridge();
    let a = analyze(&g);
    assert_eq!(a.forest().node_count(), 1);
    let best = a.best_single_core(&Metric::AverageDegree).unwrap();
    assert!((best.score - 26.0 / 8.0).abs() < 1e-12);
}

#[test]
fn per_metric_formulas_from_primaries() {
    // One synthetic primary set, every formula by hand.
    // S: 6 vertices, 9 internal edges, 4 boundary edges, 2 triangles,
    // 12 triplets; G: 20 vertices, 40 edges.
    let pv = PrimaryValues {
        num_vertices: 6,
        internal_edges: 9,
        boundary_edges: 4,
        triangles: 2,
        triplets: 12,
    };
    let ctx = GraphContext {
        total_vertices: 20,
        total_edges: 40,
    };
    assert!((Metric::AverageDegree.score(&pv, &ctx) - 3.0).abs() < 1e-12);
    assert!((Metric::InternalDensity.score(&pv, &ctx) - 18.0 / 30.0).abs() < 1e-12);
    assert!((Metric::CutRatio.score(&pv, &ctx) - (1.0 - 4.0 / (6.0 * 14.0))).abs() < 1e-12);
    assert!((Metric::Conductance.score(&pv, &ctx) - (1.0 - 4.0 / 22.0)).abs() < 1e-12);
    // Modularity: m_S = 9, b = 4, m_rest = 40 - 9 - 4 = 27.
    let expected_mod =
        (9.0 / 40.0 - (22.0f64 / 80.0).powi(2)) + (27.0 / 40.0 - (58.0f64 / 80.0).powi(2));
    assert!((Metric::Modularity.score(&pv, &ctx) - expected_mod).abs() < 1e-12);
    assert!((Metric::ClusteringCoefficient.score(&pv, &ctx) - 0.5).abs() < 1e-12);
    assert!((Metric::Separability.score(&pv, &ctx) - 2.25).abs() < 1e-12);
    assert!((Metric::TriangleDensity.score(&pv, &ctx) - 2.0 / 20.0).abs() < 1e-12);
}

#[test]
fn figure2_all_metric_values_by_hand() {
    // The paper's Figure 2 graph; every k-core-set score at k = 3:
    // n = 8, m = 12, b = 3, Δ = 8, t = 24 (Examples 4–6).
    let g = generators::paper_figure2();
    let a = analyze(&g);
    let s3 = |m: Metric| a.core_set_scores(&m)[3];
    assert!((s3(Metric::AverageDegree) - 3.0).abs() < 1e-12);
    assert!((s3(Metric::InternalDensity) - 24.0 / 56.0).abs() < 1e-12);
    assert!((s3(Metric::CutRatio) - (1.0 - 3.0 / (8.0 * 4.0))).abs() < 1e-12);
    assert!((s3(Metric::Conductance) - (1.0 - 3.0 / 27.0)).abs() < 1e-12);
    assert!((s3(Metric::ClusteringCoefficient) - 1.0).abs() < 1e-12);
    // Modularity at k = 3: m_S = 12, b = 3, m = 19, m_rest = 4.
    let expected =
        (12.0 / 19.0 - (27.0f64 / 38.0).powi(2)) + (4.0 / 19.0 - (11.0f64 / 38.0).powi(2));
    assert!((s3(Metric::Modularity) - expected).abs() < 1e-12);
}

#[test]
fn moderate_scale_end_to_end_sanity() {
    // A 40k-edge graph end-to-end: scores finite where expected, best-k
    // values in range, forest consistent with the decomposition.
    let g = generators::chung_lu_power_law(10_000, 8.0, 2.4, 31);
    let a = analyze(&g);
    for m in Metric::ALL {
        let best = a.best_core_set(&m).expect("finite score");
        assert!(best.k <= a.kmax());
        let core = a.best_single_core(&m).expect("finite score");
        assert!(core.k <= a.kmax());
    }
    let total_forest_vertices: usize = a.forest().nodes().iter().map(|n| n.vertices.len()).sum();
    assert_eq!(total_forest_vertices, g.num_vertices());
}
