//! The delta subsystem's correctness contract, end to end: an incrementally
//! maintained [`bestk::delta::DeltaIndex`] must stay **bit-identical** to a
//! from-scratch rebuild of the same graph — coreness, Alg. 1 order and
//! position tags, shell boundaries, per-k primary values, and every best-k
//! answer — after arbitrary valid edge-op sequences, including delete-heavy
//! drains and churn focused on the max-`k` shell. And because the rebuild
//! pipeline is itself deterministic across thread counts, the incremental
//! state must match `OrderedGraph::build_with` at 1, 2, and 4 threads too.
//!
//! Driven by the seeded in-repo property harness (`BESTK_PROP_SEED` /
//! `BESTK_PROP_CASES`), like the other equivalence suites.

use std::collections::BTreeSet;

use bestk::core::{core_decomposition, core_set_profile, Metric, OrderedGraph};
use bestk::delta::{DeltaIndex, DeltaOverlay};
use bestk::exec::ExecPolicy;
use bestk::graph::generators::{
    self, edge_stream_delete_heavy, edge_stream_focused, edge_stream_mixed, EdgeOp,
};
use bestk::graph::testkit::{check, Gen};
use bestk::graph::{CsrGraph, GraphBuilder, GraphView};

/// Thread counts the rebuild side is exercised at.
const THREADS: [usize; 3] = [1, 2, 4];

/// Rebuilds a canonical [`CsrGraph`] from an explicit edge set.
fn csr_of(n: usize, edges: &BTreeSet<(u32, u32)>) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(edges.len());
    b.reserve_vertices(n);
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

/// The oracle: assert the incrementally maintained `index` equals a
/// from-scratch build over `current`, field for field, and that every
/// non-triangle metric's best-k answer matches the full pipeline at each
/// thread count.
fn assert_matches_rebuild(index: &DeltaIndex, current: &CsrGraph, context: &str) {
    let rebuilt = DeltaIndex::build(current);
    assert_eq!(index, &rebuilt, "{context}: incremental state diverged");
    assert_eq!(&index.to_csr(), current, "{context}: materialized graph");
    let d = core_decomposition(current);
    for threads in THREADS {
        let policy = ExecPolicy::with_threads(threads).unwrap();
        let ordered = OrderedGraph::build_with(current, &d, &policy);
        let profile = core_set_profile(&ordered, false);
        for metric in [
            Metric::AverageDegree,
            Metric::InternalDensity,
            Metric::CutRatio,
            Metric::Conductance,
        ] {
            assert_eq!(
                index.best(metric).unwrap(),
                profile.try_best(&metric).unwrap(),
                "{context}: best({metric:?}) at {threads} threads"
            );
        }
    }
}

/// Runs `ops` through the index, checking against the rebuild oracle every
/// `stride` ops and at the end.
fn drive(g: &CsrGraph, ops: &[EdgeOp], stride: usize, label: &str) {
    let mut index = DeltaIndex::build(g);
    let mut edges: BTreeSet<(u32, u32)> = g.edges().collect();
    for (i, op) in ops.iter().enumerate() {
        let (u, v) = op.endpoints();
        match op {
            EdgeOp::Insert(..) => edges.insert((u, v)),
            EdgeOp::Delete(..) => edges.remove(&(u, v)),
        };
        index.apply(op).unwrap();
        if (i + 1) % stride == 0 {
            let current = csr_of(g.num_vertices(), &edges);
            assert_matches_rebuild(&index, &current, &format!("{label}, op {i}"));
        }
    }
    let current = csr_of(g.num_vertices(), &edges);
    assert_matches_rebuild(&index, &current, &format!("{label}, final"));
}

#[test]
fn random_streams_match_rebuild_over_random_graphs() {
    check("delta random sweep", 24, |gen: &mut Gen| {
        let g = gen.graph(40, 120);
        let seed = gen.u64();
        let ops = edge_stream_mixed(&g, 60, seed);
        drive(&g, &ops, 15, "mixed");
    });
}

#[test]
fn delete_heavy_drains_match_rebuild() {
    check("delta delete-heavy sweep", 8, |gen: &mut Gen| {
        let g = gen.graph(30, 100);
        let ops = edge_stream_delete_heavy(&g, 80, gen.u64());
        drive(&g, &ops, 20, "delete-heavy");
    });
}

#[test]
fn churn_on_the_max_k_shell_matches_rebuild() {
    check("delta max-k churn sweep", 8, |gen: &mut Gen| {
        let g = gen.graph(30, 120);
        let d = core_decomposition(&g);
        let focus = d.shell(d.kmax()).to_vec();
        let ops = edge_stream_focused(&g, &focus, 60, gen.u64());
        if ops.is_empty() {
            return; // max-k shell too small to churn — nothing to assert
        }
        drive(&g, &ops, 15, "focused");
    });
}

#[test]
fn a_long_mixed_sequence_stays_exact() {
    // One deep deterministic run: 1000 ops over a structured graph with
    // sparse checkpoints (the per-checkpoint oracle is a full rebuild).
    let g = generators::overlapping_cliques(60, 6, (4, 8), 17);
    let ops = edge_stream_mixed(&g, 1000, 23);
    assert_eq!(ops.len(), 1000);
    drive(&g, &ops, 200, "long mixed");
}

#[test]
fn adversarial_workloads_match_rebuild() {
    // The worst-case shell structures from `generators::adversarial`:
    // maximum shell depth (k_chain), wide shells on a deep core
    // (shell_ladder), and cross-component coreness/metric ties
    // (tie_storm). Deterministic streams, rebuild oracle at 1/2/4
    // threads via assert_matches_rebuild.
    let chain = generators::k_chain(7);
    drive(&chain, &edge_stream_mixed(&chain, 80, 61), 20, "k-chain");

    let ladder = generators::shell_ladder(6, 5);
    drive(
        &ladder,
        &edge_stream_mixed(&ladder, 100, 67),
        25,
        "shell-ladder",
    );

    let storm = generators::tie_storm(6, 5, 71);
    drive(&storm, &edge_stream_mixed(&storm, 100, 73), 25, "tie-storm");

    // Focused churn on the deepest shell of the ladder: every op dirties
    // the full sweep range.
    let d = core_decomposition(&ladder);
    let focus = d.shell(d.kmax()).to_vec();
    let ops = edge_stream_focused(&ladder, &focus, 60, 79);
    assert!(!ops.is_empty(), "ladder core too small to churn");
    drive(&ladder, &ops, 15, "ladder focused");
}

#[test]
fn triangle_metrics_rebuild_lazily_after_focused_mutation() {
    // The maintained DeltaIndex never carries triangle counts (its
    // profile is built `with_triangles = false`), so after a commit the
    // first triangle-metric query must fall back to a lazy from-scratch
    // artifact rebuild — and that rebuild must produce primaries
    // bit-identical to building the mutated graph directly, at every
    // thread count.
    let g = generators::overlapping_cliques(40, 5, (4, 7), 31);
    let d = core_decomposition(&g);
    let focus = d.shell(d.kmax()).to_vec();
    let ops = edge_stream_focused(&g, &focus, 40, 83);
    assert!(!ops.is_empty(), "max-k shell too small to churn");

    // Oracle: the mutated graph, materialized independently of the engine.
    let mut edges: BTreeSet<(u32, u32)> = g.edges().collect();
    for op in &ops {
        let (u, v) = op.endpoints();
        match op {
            EdgeOp::Insert(..) => edges.insert((u, v)),
            EdgeOp::Delete(..) => edges.remove(&(u, v)),
        };
    }
    let mutated = csr_of(g.num_vertices(), &edges);

    // Engine path: warm the artifacts pre-mutation (so the commit really
    // invalidates a built dataset), then stage + commit the stream.
    let engine = bestk_engine::SharedEngine::with_budget(None);
    engine.insert_graph("g", g.clone());
    let warm = ExecPolicy::with_threads(1).unwrap();
    engine
        .query("g", &bestk_engine::Query::Stats, &warm)
        .unwrap();
    for op in &ops {
        engine.stage_edge("g", *op).unwrap();
    }
    engine.commit_edges("g", &warm).unwrap();

    let mutated_d = core_decomposition(&mutated);
    let warm_ordered = OrderedGraph::build_with(&mutated, &mutated_d, &warm);
    let baseline = core_set_profile(&warm_ordered, true);
    for threads in THREADS {
        let policy = ExecPolicy::with_threads(threads).unwrap();
        // Rebuilt primaries (Δ and t included) are bit-identical to the
        // single-threaded from-scratch build.
        let ordered = OrderedGraph::build_with(&mutated, &mutated_d, &policy);
        let profile = core_set_profile(&ordered, true);
        assert!(profile.has_triangles);
        assert_eq!(
            profile.primaries, baseline.primaries,
            "primaries diverged at {threads} threads"
        );
        // And the engine's lazy rebuild serves the same triangle answers.
        for metric in [Metric::ClusteringCoefficient, Metric::TriangleDensity] {
            let line = engine
                .query("g", &bestk_engine::Query::BestKSet { metric }, &policy)
                .unwrap()
                .to_line();
            let best = baseline.try_best(&metric).unwrap().expect("feasible");
            assert_eq!(
                line,
                format!(
                    "bestkset\t{}\tk={}\tscore={}",
                    metric.abbrev(),
                    best.k,
                    best.score
                ),
                "engine answer diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn triangle_rebuild_after_parallel_commit_matches_cold_sequential() {
    // The parallel-peel variant of the lazy-rebuild drill above: the whole
    // engine path — warm-up build, delta maintenance across the focused
    // commit, and the lazy triangle-artifact rebuild — runs under the
    // *parallel* bucket-frontier strategy, and every triangle-metric
    // answer must still match a cold sequential rebuild of the mutated
    // graph. This is the `mutate --stream focused` CLI path in miniature.
    let g = generators::overlapping_cliques(40, 5, (4, 7), 31);
    let d = core_decomposition(&g);
    let focus = d.shell(d.kmax()).to_vec();
    let ops = edge_stream_focused(&g, &focus, 40, 83);
    assert!(!ops.is_empty(), "max-k shell too small to churn");

    // Cold oracle: materialize the mutated graph outside the engine and
    // rebuild it sequentially, triangles included.
    let mut edges: BTreeSet<(u32, u32)> = g.edges().collect();
    for op in &ops {
        let (u, v) = op.endpoints();
        match op {
            EdgeOp::Insert(..) => edges.insert((u, v)),
            EdgeOp::Delete(..) => edges.remove(&(u, v)),
        };
    }
    let mutated = csr_of(g.num_vertices(), &edges);
    let cold_d = core_decomposition(&mutated);
    let cold = core_set_profile(&OrderedGraph::build(&mutated, &cold_d), true);

    for threads in THREADS {
        let policy = ExecPolicy::with_threads(threads).unwrap();
        let engine = bestk_engine::SharedEngine::with_budget(None);
        engine.insert_graph("g", g.clone());
        engine
            .query("g", &bestk_engine::Query::Stats, &policy)
            .unwrap();
        for op in &ops {
            engine.stage_edge("g", *op).unwrap();
        }
        engine.commit_edges("g", &policy).unwrap();
        for metric in [Metric::ClusteringCoefficient, Metric::TriangleDensity] {
            let line = engine
                .query("g", &bestk_engine::Query::BestKSet { metric }, &policy)
                .unwrap()
                .to_line();
            let best = cold.try_best(&metric).unwrap().expect("feasible");
            assert_eq!(
                line,
                format!(
                    "bestkset\t{}\tk={}\tscore={}",
                    metric.abbrev(),
                    best.k,
                    best.score
                ),
                "parallel commit diverged from cold rebuild at {threads} threads"
            );
        }
    }
}

#[test]
fn overlay_round_trips_arbitrary_valid_sequences() {
    check("delta overlay replay", 16, |gen: &mut Gen| {
        let g = gen.graph(30, 80);
        let ops = edge_stream_mixed(&g, 40, gen.u64());
        let mut overlay = DeltaOverlay::new(&g);
        let mut edges: BTreeSet<(u32, u32)> = g.edges().collect();
        for op in &ops {
            let (u, v) = op.endpoints();
            match op {
                EdgeOp::Insert(..) => edges.insert((u, v)),
                EdgeOp::Delete(..) => edges.remove(&(u, v)),
            };
            overlay.apply(*op).unwrap();
        }
        let want = csr_of(g.num_vertices(), &edges);
        assert_eq!(overlay.materialize(), want);
        // The overlay's view agrees with the materialized graph edge by
        // edge while the base is still the original graph underneath.
        assert_eq!(overlay.num_edges(), want.num_edges());
        for u in want.vertices() {
            let via_overlay: Vec<u32> = overlay.neighbors(u).collect();
            let direct: Vec<u32> = want.neighbors(u).to_vec();
            assert_eq!(via_overlay, direct, "vertex {u}");
        }
    });
}
