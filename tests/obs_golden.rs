//! Golden test for the observability layer: run a full best-k serving
//! session under the deterministic manual clock on a fresh metrics
//! registry, render the final snapshot, and compare it byte-for-byte
//! against `tests/golden/obs_metrics.golden`.
//!
//! Every metric in the exposition is deterministic under the manual clock
//! except the `exec.*` family, whose values depend on the execution policy
//! (the kernels dispatch through the runtime only when parallel), so those
//! lines are filtered out of the comparison and asserted separately. The
//! remaining lines must be **identical at every thread count** — counters
//! count events, not time, and span timings come from the injected clock
//! — which CI checks by running this test with `BESTK_GOLDEN_THREADS` set
//! to 1, 2, and 4.
//!
//! To regenerate the golden file after an intentional metrics change:
//!
//! ```text
//! BESTK_UPDATE_GOLDEN=1 cargo test --test obs_golden
//! ```
//!
//! then re-run without the variable (at more than one thread count) and
//! review the diff like any other code change.

use std::sync::Arc;

use bestk_engine::{serve_lines, SharedEngine};
use bestk_exec::ExecPolicy;
use bestk_graph::generators;
use bestk_obs::ManualClock;

/// The scripted session: every query family (stats, best-k set, best
/// single core, coreness), then the metrics verb itself, then quit.
const SCRIPT: &[u8] = b"query g stats\n\
    query g bestkset ad\n\
    query g bestcore den\n\
    query g coreof 5\n\
    metrics\n\
    quit\n";

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/obs_metrics.golden")
}

/// Drops the mode-dependent `exec.*` lines from a rendered exposition;
/// everything else must be thread-count invariant.
fn mode_invariant(rendered: &str) -> String {
    rendered
        .lines()
        .filter(|l| !l.starts_with("exec."))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn metrics_exposition_matches_golden_at_every_thread_count() {
    let threads: usize = match std::env::var("BESTK_GOLDEN_THREADS") {
        Ok(raw) => raw.parse().expect("BESTK_GOLDEN_THREADS must be a number"),
        Err(_) => 2,
    };
    let policy = ExecPolicy::with_threads(threads).expect("valid thread count");

    // Fixed-step manual clock: every `now_nanos` reading advances time by
    // exactly 1µs, so span timings and the latency histogram are exact
    // functions of the code path, not the machine.
    let clock = Arc::new(ManualClock::with_step(1_000));
    let ((), snap) = bestk_obs::with_fresh(clock, || {
        let engine = SharedEngine::with_budget(None);
        engine.insert_graph("g", generators::paper_figure2());
        let mut out = Vec::new();
        serve_lines(&engine, &policy, SCRIPT, &mut out).expect("serve");
        let text = String::from_utf8(out).expect("utf8 replies");

        // The inline `metrics` verb frames the same exposition over the
        // wire mid-session; spot-check the contract here while the full
        // snapshot is compared against the golden file below.
        assert!(text.contains("ok\tmetrics\t"), "{text}");
        assert!(text.contains("serve.requests"), "{text}");
        assert!(text.contains("serve.latency_nanos_bucket"), "{text}");
        assert!(text.contains("phase.peel.calls"), "{text}");
    });

    // The exec runtime was exercised (counted on the unfiltered snapshot:
    // at 1 thread the kernels run inline, but parallel-capable sections
    // still dispatch through the runtime at least once).
    assert!(
        snap.counter("exec.dispatches").unwrap_or(0) > 0,
        "expected at least one runtime dispatch"
    );

    let got = mode_invariant(&snap.render());
    let path = golden_path();
    if std::env::var("BESTK_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             BESTK_UPDATE_GOLDEN=1 cargo test --test obs_golden",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "rendered metrics diverged from {} (threads={threads}); if the \
         change is intentional, regenerate with BESTK_UPDATE_GOLDEN=1",
        path.display()
    );
}
