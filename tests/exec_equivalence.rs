//! The execution runtime's determinism contract, end to end: every kernel
//! routed through `bestk::exec::ExecPolicy` must produce output
//! *bit-identical* to its sequential twin at every thread count.
//!
//! Each refactored crate carries its own per-kernel equivalence test next
//! to the kernel; this suite checks the composed pipelines — the whole
//! `analyze` facade and the truss pipeline — across thread counts on
//! randomized graphs, driven by the seeded in-repo property harness
//! (`BESTK_PROP_SEED` / `BESTK_PROP_CASES`).

use bestk::core::{analyze, analyze_with, core_decomposition, CommunityMetric, Metric};
use bestk::exec::ExecPolicy;
use bestk::graph::testkit::check;
use bestk::graph::GraphBuilder;
use bestk::truss::decomposition::{truss_decomposition_exec, truss_decomposition_with_index};
use bestk::truss::EdgeIndex;

/// Thread counts exercised everywhere: sequential-as-parallel (1), even
/// (2, 4), and a prime that never divides the chunk count evenly (7).
const THREADS: [usize; 4] = [1, 2, 4, 7];

#[test]
fn analyze_pipeline_is_thread_count_invariant() {
    check("exec_analyze_pipeline_equivalence", 16, |gen| {
        let g = gen.graph(80, 360);
        let reference = analyze(&g);
        for threads in THREADS {
            let policy = ExecPolicy::with_threads(threads).unwrap();
            let a = analyze_with(&g, &policy);
            assert_eq!(
                a.decomposition().coreness_slice(),
                reference.decomposition().coreness_slice(),
                "{threads} threads"
            );
            for m in Metric::ALL {
                assert_eq!(
                    a.best_core_set(&m),
                    reference.best_core_set(&m),
                    "{} set, {threads} threads",
                    m.name()
                );
                assert_eq!(
                    a.best_single_core(&m),
                    reference.best_single_core(&m),
                    "{} single, {threads} threads",
                    m.name()
                );
                // Score series compare on raw bits: the contract is
                // determinism, not approximate agreement.
                let s = a.core_set_scores(&m);
                let r = reference.core_set_scores(&m);
                assert_eq!(
                    s.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    r.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "{} series, {threads} threads",
                    m.name()
                );
            }
        }
    });
}

#[test]
fn csr_build_is_thread_count_invariant() {
    check("exec_csr_build_equivalence", 16, |gen| {
        let g = gen.graph(70, 300);
        let edges: Vec<(u32, u32)> = g.edges().collect();
        for threads in THREADS {
            let policy = ExecPolicy::with_threads(threads).unwrap();
            let mut b = GraphBuilder::new();
            b.reserve_vertices(g.num_vertices());
            b.extend_edges(edges.iter().copied());
            let built = b.build_with(&policy);
            assert_eq!(built.offsets(), g.offsets(), "{threads} threads");
            assert_eq!(
                built.raw_neighbors(),
                g.raw_neighbors(),
                "{threads} threads"
            );
        }
    });
}

#[test]
fn truss_pipeline_is_thread_count_invariant() {
    check("exec_truss_pipeline_equivalence", 12, |gen| {
        let g = gen.graph(50, 240);
        let idx = EdgeIndex::build(&g);
        let reference = truss_decomposition_with_index(&g, &idx);
        for threads in THREADS {
            let policy = ExecPolicy::with_threads(threads).unwrap();
            let t = truss_decomposition_exec(&g, &idx, &policy);
            assert_eq!(
                t.truss_slice(),
                reference.truss_slice(),
                "{threads} threads"
            );
            assert_eq!(t.tmax(), reference.tmax(), "{threads} threads");
            for v in g.vertices() {
                assert_eq!(t.vertex_truss(v), reference.vertex_truss(v));
            }
        }
    });
}

#[test]
fn hindex_rounds_and_coreness_are_thread_count_invariant() {
    check("exec_hindex_equivalence", 16, |gen| {
        let g = gen.graph(60, 260);
        let d = core_decomposition(&g);
        let reference = bestk::core::hindex::hindex_core_decomposition(&g);
        assert_eq!(reference.coreness, d.coreness_slice());
        for threads in THREADS {
            let policy = ExecPolicy::with_threads(threads).unwrap();
            let h = bestk::core::hindex::hindex_core_decomposition_with(&g, &policy);
            assert_eq!(h.coreness, reference.coreness, "{threads} threads");
            assert_eq!(h.rounds, reference.rounds, "{threads} threads");
        }
    });
}
