//! Engine-level determinism contract for the parallel peel: every path
//! that *rebuilds* artifacts inside the serving stack — a clean rebuild
//! from a source edge list, quarantine recovery from a corrupt snapshot,
//! and the write-ahead-log compaction that rewrites the snapshot in place
//! — must produce **byte-identical** snapshots (v1 and v2) whether the
//! build ran under the sequential oracle or the parallel bucket-frontier
//! primary at any thread count.
//!
//! This is what makes `PeelStrategy::Parallel` safe as the default for
//! `ExecPolicy::Parallel` in the CLI and server: operators can mix
//! `--threads` values across restarts, replicas, and recovery events and
//! still get bit-reproducible `.bestk` files.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use bestk_engine::{serve_lines, snapshot, snapv2, Dataset, SharedEngine};
use bestk_exec::ExecPolicy;
use bestk_graph::generators::{self, edge_stream_mixed};
use bestk_graph::CsrGraph;

/// The parallel thread counts every scenario is replayed at; sequential is
/// always the reference side.
const THREADS: [usize; 3] = [2, 4, 7];

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bestk-rebuild-eq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// The deterministic base graph: deep shells over a dense core, the shape
/// where the two strategies' internal schedules diverge the most.
fn base_graph() -> CsrGraph {
    generators::shell_ladder(7, 9)
}

/// v1 and v2 snapshot bytes of a built dataset.
fn snapshot_bytes(ds: &Dataset, dir: &Path, tag: &str) -> (Vec<u8>, Vec<u8>) {
    let mut v1 = Vec::new();
    snapshot::save(ds, &mut v1).expect("save v1");
    let v2_path = dir.join(format!("{tag}.bestk2"));
    snapv2::save_path(ds, &v2_path).expect("save v2");
    let v2 = std::fs::read(&v2_path).expect("read v2");
    (v1, v2)
}

/// Takes the named dataset out of the engine, forcing the lazy artifact
/// build first (under `policy`) so the snapshot has something to persist.
fn built_dataset(eng: &SharedEngine, name: &str, policy: &ExecPolicy) -> Arc<Dataset> {
    eng.query(name, &bestk_engine::Query::Stats, policy)
        .expect("stats query forces the lazy build");
    let ds = eng.guard().checkout(name).expect("checkout");
    assert!(ds.is_built(), "query must have built the artifacts");
    ds
}

/// Writes a freshly built snapshot of `g` at `path` and flips one byte
/// past the magic, so the loader sees a checksum failure (corruption, not
/// a transient I/O error) and takes the quarantine-and-rebuild rung.
fn write_corrupt_snapshot(g: &CsrGraph, path: &Path, seed: usize) {
    let mut ds = Dataset::from_graph(g.clone());
    ds.ensure_built(&ExecPolicy::Sequential);
    snapshot::save_path(&ds, path).expect("write snapshot");
    let mut bytes = std::fs::read(path).expect("read snapshot");
    let at = 16 + (seed * 131) % (bytes.len() - 16);
    bytes[at] ^= 0xff;
    std::fs::write(path, &bytes).expect("corrupt snapshot");
}

#[test]
fn quarantine_rebuild_is_byte_identical_across_strategies() {
    let dir = scratch_dir("quarantine");
    let g = base_graph();
    let source = dir.join("g.txt");
    bestk_graph::io::write_edge_list_path(&g, &source).expect("write source");

    let mut reference: Option<(Vec<u8>, Vec<u8>)> = None;
    for (label, policy) in std::iter::once(("seq".to_string(), ExecPolicy::Sequential))
        .chain(THREADS.map(|t| (format!("par{t}"), ExecPolicy::with_threads(t).unwrap())))
    {
        let snap = dir.join(format!("{label}.bestk"));
        write_corrupt_snapshot(&g, &snap, 3);

        let eng = SharedEngine::with_budget(None);
        let outcome = eng
            .load_snapshot_with_fallback(
                "g",
                snap.to_str().unwrap(),
                Some(source.to_str().unwrap()),
                &snapshot::RetryPolicy::none(),
                &policy,
            )
            .expect("resilient load");
        assert_eq!(outcome, bestk_engine::LoadOutcome::Rebuilt, "{label}");
        assert!(
            snap.with_extension("bestk.quarantine").exists(),
            "{label}: corrupt file must be quarantined"
        );

        let ds = built_dataset(&eng, "g", &policy);
        let bytes = snapshot_bytes(&ds, &dir, &label);
        match &reference {
            None => reference = Some(bytes),
            Some(want) => {
                assert_eq!(bytes.0, want.0, "{label}: v1 bytes");
                assert_eq!(bytes.1, want.1, "{label}: v2 bytes");
            }
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn serve_stack_rebuild_from_source_is_byte_identical() {
    // Same recovery, one layer up: the line protocol's `load <name>
    // <snap> <source>` against a corrupt snapshot must answer
    // `ok\trebuilt\t…` and leave byte-identical state behind at every
    // thread count.
    let dir = scratch_dir("serve");
    let g = base_graph();
    let source = dir.join("g.txt");
    bestk_graph::io::write_edge_list_path(&g, &source).expect("write source");

    let mut reference: Option<(Vec<u8>, Vec<u8>)> = None;
    for (label, policy) in std::iter::once(("seq".to_string(), ExecPolicy::Sequential))
        .chain(THREADS.map(|t| (format!("par{t}"), ExecPolicy::with_threads(t).unwrap())))
    {
        let snap = dir.join(format!("{label}.bestk"));
        write_corrupt_snapshot(&g, &snap, 5);

        let eng = SharedEngine::with_budget(None);
        let script = format!(
            "load g {} {}\nquery g stats\nquit\n",
            snap.display(),
            source.display()
        );
        let mut out = Vec::new();
        serve_lines(&eng, &policy, script.as_bytes(), &mut out).expect("server survives");
        let text = String::from_utf8_lossy(&out);
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("ok\trebuilt\tg"), "{label}");
        assert!(
            lines.next().unwrap_or_default().starts_with("ok\tstats\t"),
            "{label}"
        );

        let ds = built_dataset(&eng, "g", &policy);
        let bytes = snapshot_bytes(&ds, &dir, &label);
        match &reference {
            None => reference = Some(bytes),
            Some(want) => {
                assert_eq!(bytes.0, want.0, "{label}: v1 bytes");
                assert_eq!(bytes.1, want.1, "{label}: v2 bytes");
            }
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn wal_compaction_is_byte_identical_across_strategies() {
    // Stage COMPACT_OPS valid mutations and commit once: the commit folds
    // the log and rewrites the snapshot path as a v2 file. That on-disk
    // compacted snapshot — produced entirely inside the engine, under
    // whatever policy the operator ran with — must be byte-identical
    // across strategies, and so must the dataset the engine keeps serving.
    let dir = scratch_dir("compact");
    let g = generators::erdos_renyi_gnm(120, 420, 9);
    let ops = edge_stream_mixed(&g, bestk_engine::COMPACT_OPS as usize, 41);
    assert_eq!(ops.len(), bestk_engine::COMPACT_OPS as usize);

    let mut reference: Option<(Vec<u8>, (Vec<u8>, Vec<u8>))> = None;
    for (label, policy) in std::iter::once(("seq".to_string(), ExecPolicy::Sequential))
        .chain(THREADS.map(|t| (format!("par{t}"), ExecPolicy::with_threads(t).unwrap())))
    {
        let snap = dir.join(format!("{label}.bestk"));
        let mut ds = Dataset::from_graph(g.clone());
        ds.ensure_built(&ExecPolicy::Sequential);
        snapshot::save_path(&ds, &snap).expect("write snapshot");

        let eng = SharedEngine::with_budget(None);
        eng.load_snapshot_with_fallback(
            "g",
            snap.to_str().unwrap(),
            None,
            &snapshot::RetryPolicy::none(),
            &policy,
        )
        .expect("load");
        for op in &ops {
            eng.stage_edge("g", *op).expect("stage");
        }
        let summary = eng.commit_edges("g", &policy).expect("commit");
        assert!(summary.compacted, "{label}: threshold commit must compact");

        let compacted = std::fs::read(&snap).expect("read compacted snapshot");
        let ds = built_dataset(&eng, "g", &policy);
        let bytes = snapshot_bytes(&ds, &dir, &label);
        match &reference {
            None => reference = Some((compacted, bytes)),
            Some((want_disk, want)) => {
                assert_eq!(&compacted, want_disk, "{label}: compacted file bytes");
                assert_eq!(bytes.0, want.0, "{label}: v1 bytes");
                assert_eq!(bytes.1, want.1, "{label}: v2 bytes");
            }
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}
