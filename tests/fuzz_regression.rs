//! Corpus regression sweep: every checked-in seed under `tests/corpus/`
//! must satisfy its surface's fuzzing contract — a valid result or a
//! typed error, never a panic, never a disproportionate allocation —
//! both plain and with a fault plan live. New failures found by
//! `bestk fuzz` get fixed, then pinned here as corpus files.
//!
//! The binary seeds (snapshot images, WAL frames) are materialized by
//! the ignored `regenerate_binary_corpus` test below, so they always
//! come from the current encoders; see `tests/corpus/README.md`.

use std::path::{Path, PathBuf};

use bestk_faults::{sites, Fault, FaultPlan, SiteSpec};
use bestk_fuzz::{base_inputs, check_bytes, Check, Surface, ALL_SURFACES, DEFAULT_BUDGET_BYTES};

fn corpus_dir(surface: Surface) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(surface.name())
}

/// All seed files for one surface, name-sorted for deterministic order.
fn corpus_files(surface: Surface) -> Vec<(PathBuf, Vec<u8>)> {
    let dir = corpus_dir(surface);
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|entry| entry.expect("corpus entry").path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let bytes = std::fs::read(&p).expect("read corpus file");
            (p, bytes)
        })
        .collect()
}

fn sweep(context: &str) {
    for surface in ALL_SURFACES {
        let files = corpus_files(surface);
        assert!(
            !files.is_empty(),
            "{context}: corpus for {} is empty — run \
             `cargo test --test fuzz_regression regenerate -- --ignored`",
            surface.name()
        );
        for (path, bytes) in files {
            let check = check_bytes(surface, &bytes, DEFAULT_BUDGET_BYTES);
            assert!(
                matches!(check, Check::Valid | Check::TypedError),
                "{context}: {} violated the {} contract: {check:?}",
                path.display(),
                surface.name()
            );
        }
    }
}

#[test]
fn corpus_sweeps_clean() {
    sweep("plain");
}

/// The same sweep with injected faults live at every site a corpus check
/// can reach: mangled serve reads, admission overload, WAL replay
/// corruption, exec worker panics. The contract does not weaken — a
/// fault may turn a valid seed into a typed error, never into a panic.
#[test]
fn corpus_sweeps_clean_under_faults() {
    for seed in [3u64, 11, 29] {
        let plan = FaultPlan::new(seed)
            .site(
                sites::SERVE_READ,
                SiteSpec::mixed(vec![Fault::Truncate, Fault::BitFlip], 0.4),
            )
            .site(
                sites::SERVE_OVERLOAD,
                SiteSpec::mixed(vec![Fault::Overload], 0.25),
            )
            .site(
                sites::DELTA_WAL_REPLAY,
                SiteSpec::mixed(vec![Fault::Truncate, Fault::IoError], 0.4),
            )
            .site(
                sites::ENGINE_PRESSURE,
                SiteSpec::mixed(vec![Fault::Pressure], 0.25),
            );
        bestk_faults::with_plan(&plan, || sweep(&format!("faults seed={seed}")));
    }
}

/// A short deterministic `run_surface` sweep per surface — the same
/// engine `bestk fuzz` uses, pinned here so plain `cargo test` exercises
/// the generator/mutator path too (CI runs the long sweeps).
#[test]
fn generated_sweeps_stay_clean() {
    for surface in ALL_SURFACES {
        let report = bestk_fuzz::run_surface(surface, 0, 32, DEFAULT_BUDGET_BYTES);
        assert!(
            report.clean(),
            "surface {}: {} panics, {} violations over {} inputs",
            surface.name(),
            report.panics,
            report.violations,
            report.inputs
        );
        assert!(report.valid > 0, "surface {} never parsed", surface.name());
    }
}

/// Materializes the machine-generated corpus seeds from the *current*
/// encoders: valid exemplars per surface plus one-byte-damage and
/// truncation variants. Ignored in normal runs; re-run after any on-disk
/// format change and commit the result:
///
/// ```text
/// cargo test --test fuzz_regression regenerate -- --ignored
/// ```
#[test]
#[ignore = "corpus generator, run explicitly after format changes"]
fn regenerate_binary_corpus() {
    for surface in [Surface::GraphIo, Surface::Snapshot, Surface::Wal] {
        let dir = corpus_dir(surface);
        std::fs::create_dir_all(&dir).expect("corpus dir");
        let names: &[&str] = match surface {
            Surface::GraphIo => &["figure2-edges.txt", "figure2-metis.graph", "figure2.bin"],
            Surface::Snapshot => &["figure2-v1.bestk", "figure2-v2.bestk"],
            Surface::Wal => &["valid.wal"],
            Surface::Serve => &[],
        };
        let bases = base_inputs(surface);
        assert_eq!(bases.len(), names.len(), "base exemplar count drifted");
        for (name, bytes) in names.iter().zip(&bases) {
            std::fs::write(dir.join(name), bytes).expect("write exemplar");
        }
    }
    // Damage variants: a flipped byte past the magic and a torn suffix —
    // the two corruption shapes every decoder must reject in O(1) state.
    let wal = base_inputs(Surface::Wal).remove(0);
    let mut flipped = wal.clone();
    flipped[12] ^= 0x40;
    std::fs::write(
        corpus_dir(Surface::Wal).join("flipped-payload.wal"),
        flipped,
    )
    .expect("write flipped wal");
    std::fs::write(
        corpus_dir(Surface::Wal).join("torn-mid-frame.wal"),
        &wal[..wal.len() - 5],
    )
    .expect("write torn wal");
    std::fs::write(corpus_dir(Surface::Wal).join("empty.wal"), b"").expect("write empty wal");

    let v2 = base_inputs(Surface::Snapshot).remove(1);
    let mut flipped = v2.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    std::fs::write(
        corpus_dir(Surface::Snapshot).join("flipped-v2.bestk"),
        flipped,
    )
    .expect("write flipped snapshot");
    std::fs::write(
        corpus_dir(Surface::Snapshot).join("torn-v2.bestk"),
        &v2[..v2.len() / 3],
    )
    .expect("write torn snapshot");
}
