//! Chaos suite: sweep deterministic fault plans (seed × site) through the
//! real serving stack and assert the hardened invariant everywhere:
//!
//! > every injected fault yields either a correct answer or a typed
//! > `err` reply — and the server itself never dies.
//!
//! The sweeps cover all named failpoints in `bestk_faults::sites`:
//! snapshot reads (transient errors retry, corruption quarantines and
//! rebuilds from source), snapshot writes (mid-write crashes), serving
//! reads (torn lines, socket errors), read-timeout installation, admission
//! overload, engine memory pressure, exec worker panics, and the delta
//! write-ahead log (mid-append crashes on the mutation path, torn files
//! truncated at every byte prefix on the replay path).
//!
//! Like the other integration tests, this file drives threads and sockets
//! directly — the `no-raw-thread` / `no-raw-net` lints police library
//! code, not test harnesses.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;

use bestk_engine::{
    serve_lines, snapshot, Control, Dataset, RetryPolicy, ServeLimits, SharedEngine,
};
use bestk_exec::ExecPolicy;
use bestk_faults::{sites, Fault, FaultPlan, SiteSpec};
use bestk_graph::generators::{self, EdgeOp};

/// Serializes the chaos tests within this binary: the fault plan is
/// process-global, so fixture setup in one test must not run while another
/// test's plan is live. (`with_plan` has its own gate, but it only covers
/// the closure, not the clean setup around it.)
fn gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

const STATS: &str = "ok\tstats\tn=12\tm=19\tkmax=3\tcores=3";
const COREOF: &str = "ok\tcoreof\t5\tcoreness=2";
const BESTKSET: &str = "ok\tbestkset\tad\tk=2\tscore=3.1666666666666665";

/// Fresh scratch dir with the Figure-2 source edge list and a built
/// `.bestk` snapshot (both created with no fault plan active).
fn fixture(tag: &str) -> (PathBuf, PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("bestk-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let source = dir.join("fig2.txt");
    let snap = dir.join("fig2.bestk");
    let g = generators::paper_figure2();
    bestk_graph::io::write_edge_list_path(&g, &source).expect("write source");
    let mut ds = Dataset::from_graph(g);
    ds.ensure_built(&ExecPolicy::Sequential);
    snapshot::save_path(&ds, &snap).expect("write snapshot");
    (dir, source, snap)
}

/// Per-site readings of the `faults.injected{site="…"}` metric counters
/// for every named failpoint (0 for sites never hit).
fn injected_metrics() -> Vec<(String, u64)> {
    let snap = bestk_obs::snapshot();
    sites::all()
        .iter()
        .map(|site| {
            let name = format!("faults.injected{{site=\"{site}\"}}");
            (site.to_string(), snap.counter(&name).unwrap_or(0))
        })
        .collect()
}

/// Asserts the injection observability contract. Must run inside the
/// `with_plan` closure (once the guard drops, the plan's accounting is
/// gone): for every site, the `faults.injected{site="…"}` metric delta
/// since `before` must equal the live plan's own `site_injection_counts`
/// budget accounting — every injection is counted exactly once, in both
/// ledgers.
fn assert_injection_accounting(before: &[(String, u64)], context: &str) {
    let plan_counts: std::collections::BTreeMap<String, u64> =
        bestk_faults::site_injection_counts().into_iter().collect();
    for ((site, b), (site_after, a)) in before.iter().zip(&injected_metrics()) {
        assert_eq!(site, site_after, "{context}: site order is stable");
        let delta = a.saturating_sub(*b);
        let planned = plan_counts.get(site).copied().unwrap_or(0);
        assert_eq!(
            delta, planned,
            "{context}: site {site}: metric delta {delta} != plan accounting {planned}"
        );
    }
}

/// The scripted session every sweep runs: load (with rebuild source),
/// query, re-query, introspect, quit.
fn script(snap: &std::path::Path, source: &std::path::Path) -> Vec<u8> {
    format!(
        "load g {snap} {source}\n\
         query g stats\n\
         query g coreof 5\n\
         query g bestkset ad\n\
         query g stats\n\
         counters\n\
         quit\n",
        snap = snap.display(),
        source = source.display(),
    )
    .into_bytes()
}

/// Asserts the chaos invariant over a reply transcript: every line is a
/// single `ok` or `err` reply. When `strict` (the request stream itself
/// was not mangled), `ok` replies must also be the *correct* answers.
fn assert_replies(text: &str, strict: bool, context: &str) {
    let expected_ok: &[&[&str]] = &[
        &["ok\tloaded\tg", "ok\trebuilt\tg"],
        &[STATS],
        &[COREOF],
        &[BESTKSET],
        &[STATS],
        &["ok\tcounters\t"],
        &["ok\tbye"],
    ];
    for (i, line) in text.lines().enumerate() {
        assert!(
            line.starts_with("ok\t") || line.starts_with("err\t"),
            "{context}: reply {i} is not a typed ok/err line: {line:?}"
        );
        if strict && line.starts_with("ok\t") {
            let candidates = expected_ok.get(i).copied().unwrap_or(&[]);
            assert!(
                candidates.iter().any(|c| line.starts_with(c)),
                "{context}: reply {i} claims ok but is not a correct answer: {line:?}"
            );
        }
    }
    if strict {
        assert_eq!(
            text.lines().count(),
            7,
            "{context}: expected one reply per request"
        );
    }
}

/// Runs the scripted session under `plan` (with two exec workers, so
/// `exec.worker` faults really fire on worker threads) and checks the
/// invariant. Caller must hold [`gate`].
fn run_session(plan: &FaultPlan, strict: bool, context: &str) {
    let (dir, source, snap) = fixture(context);
    bestk_faults::with_plan(plan, || {
        let before = injected_metrics();
        let engine = SharedEngine::with_budget(None);
        let policy = ExecPolicy::with_threads(2).expect("two workers");
        let mut out = Vec::new();
        // The `quit` request itself can be shed or mangled, in which case
        // the stream ends at EOF with `Continue` — both controls are fine;
        // the invariant is that serve_lines returns Ok at all.
        let control = serve_lines(&engine, &policy, &script(&snap, &source)[..], &mut out)
            .unwrap_or_else(|e| panic!("{context}: server died: {e}"));
        assert!(matches!(control, Control::Quit | Control::Continue));
        assert_replies(&String::from_utf8_lossy(&out), strict, context);
        assert_injection_accounting(&before, context);
    });
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn snapshot_read_faults_yield_correct_answers_or_typed_errors() {
    let _g = gate();
    for seed in 0..8 {
        let plan = FaultPlan::new(seed).site(
            sites::SNAPSHOT_READ,
            SiteSpec::mixed(
                vec![
                    Fault::Interrupted,
                    Fault::WouldBlock,
                    Fault::IoError,
                    Fault::BitFlip,
                    Fault::Truncate,
                ],
                0.6,
            ),
        );
        run_session(&plan, true, &format!("snapshot.read seed {seed}"));
    }
}

#[test]
fn serve_read_faults_never_kill_the_server() {
    let _g = gate();
    for seed in 0..8 {
        let plan = FaultPlan::new(seed).site(
            sites::SERVE_READ,
            SiteSpec::mixed(vec![Fault::BitFlip, Fault::Truncate, Fault::ShortRead], 0.5),
        );
        // Mangled request text means replies can be errors or answers to
        // the mangled question: only the ok/err shape is asserted.
        run_session(&plan, false, &format!("serve.read seed {seed}"));
    }
}

#[test]
fn overload_shedding_is_typed_and_recoverable() {
    let _g = gate();
    for seed in 0..8 {
        let plan = FaultPlan::new(seed).site(
            sites::SERVE_OVERLOAD,
            SiteSpec::mixed(vec![Fault::Overload], 0.5),
        );
        run_session(&plan, true, &format!("serve.overload seed {seed}"));
    }
}

#[test]
fn engine_pressure_evictions_keep_answers_correct() {
    let _g = gate();
    for seed in 0..8 {
        let plan = FaultPlan::new(seed).site(
            sites::ENGINE_PRESSURE,
            SiteSpec::mixed(vec![Fault::Pressure], 0.7),
        );
        run_session(&plan, true, &format!("engine.pressure seed {seed}"));
    }
}

#[test]
fn worker_panics_become_internal_errors_not_crashes() {
    let _g = gate();
    for seed in 0..8 {
        let plan =
            FaultPlan::new(seed).site(sites::EXEC_WORKER, SiteSpec::mixed(vec![Fault::Panic], 0.5));
        run_session(&plan, true, &format!("exec.worker seed {seed}"));
    }
}

#[test]
fn fault_storm_across_every_site_is_survivable() {
    let _g = gate();
    for seed in 0..8 {
        let mut plan = FaultPlan::new(seed);
        for site in sites::all() {
            plan = plan.site(
                site,
                SiteSpec::mixed(
                    vec![
                        Fault::Interrupted,
                        Fault::WouldBlock,
                        Fault::IoError,
                        Fault::BitFlip,
                        Fault::Truncate,
                        Fault::ShortRead,
                        Fault::Panic,
                        Fault::Pressure,
                        Fault::Overload,
                    ],
                    0.25,
                ),
            );
        }
        run_session(&plan, false, &format!("storm seed {seed}"));
    }
}

#[test]
fn snapshot_write_crashes_heal_or_fail_typed() {
    let _g = gate();
    let (dir, _source, _snap) = fixture("write");
    let mut ds = Dataset::from_graph(generators::paper_figure2());
    ds.ensure_built(&ExecPolicy::Sequential);
    let baseline = ds
        .answer(&bestk_engine::Query::Stats)
        .expect("baseline stats")
        .to_line();
    for seed in 0..8u64 {
        let plan = FaultPlan::new(seed).site(
            sites::SNAPSHOT_WRITE,
            SiteSpec::mixed(
                vec![Fault::Truncate, Fault::IoError, Fault::Interrupted],
                0.6,
            ),
        );
        let path = dir.join(format!("w{seed}.bestk"));
        bestk_faults::with_plan(&plan, || {
            let before = injected_metrics();
            let retry = RetryPolicy {
                attempts: 3,
                backoff: std::time::Duration::ZERO,
            };
            match snapshot::save_path_with_retry(&ds, &path, &retry) {
                Ok(()) => {
                    // A successful save must round-trip to the same answers
                    // (read with retries: the plan is still live).
                    let loaded = snapshot::load_path_with_retry(&path, &retry);
                    if let Ok(back) = loaded {
                        let stats = back
                            .answer(&bestk_engine::Query::Stats)
                            .expect("stats")
                            .to_line();
                        assert_eq!(stats, baseline, "seed {seed}");
                    }
                }
                Err(e) => {
                    // Typed failure; whatever partial file remains must be
                    // rejected by the loader, not mis-loaded.
                    let msg = e.to_string();
                    assert!(!msg.is_empty(), "seed {seed}");
                    if path.exists() {
                        assert!(
                            snapshot::load_path(&path).is_err(),
                            "seed {seed}: partial write must not load cleanly"
                        );
                    }
                }
            }
            assert_injection_accounting(&before, &format!("snapshot.write seed {seed}"));
        });
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn corrupt_snapshot_on_startup_quarantines_and_rebuilds() {
    let _g = gate();
    for seed in 0..8usize {
        let (dir, source, snap) = fixture(&format!("corrupt{seed}"));
        // Deterministic manual corruption: flip one byte, position varying
        // with the seed (past the magic so format sniffing still says
        // "snapshot").
        let mut bytes = std::fs::read(&snap).expect("read snapshot");
        let at = 16 + (seed * 131) % (bytes.len() - 16);
        bytes[at] ^= 0xff;
        std::fs::write(&snap, &bytes).expect("corrupt snapshot");

        let engine = SharedEngine::with_budget(None);
        let mut out = Vec::new();
        serve_lines(
            &engine,
            &ExecPolicy::Sequential,
            &script(&snap, &source)[..],
            &mut out,
        )
        .expect("server survives");
        let text = String::from_utf8_lossy(&out);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "ok\trebuilt\tg", "seed {seed}: {}", lines[0]);
        assert_eq!(lines[1], STATS, "seed {seed}");
        assert_eq!(lines[3], BESTKSET, "seed {seed}");
        assert!(
            snap.with_extension("bestk.quarantine").exists(),
            "seed {seed}: corrupt file must be quarantined"
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn timeout_install_failures_surface_on_the_connection() {
    use std::net::{TcpListener, TcpStream};
    let _g = gate();
    for seed in 0..8 {
        let plan = FaultPlan::new(seed).site(
            sites::SERVE_TIMEOUT,
            SiteSpec::always(Fault::IoError).with_budget(1),
        );
        bestk_faults::with_plan(&plan, || {
            let before = injected_metrics();
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let engine = SharedEngine::with_budget(None);
            engine.insert_graph("fig2", generators::paper_figure2());
            std::thread::scope(|scope| {
                let client = scope.spawn(move || {
                    // Connection 1 trips the injected set_read_timeout
                    // failure: the server must answer with a typed err
                    // line (not silently drop us) and keep accepting.
                    let first = TcpStream::connect(addr).expect("connect 1");
                    let mut line = String::new();
                    BufReader::new(&first).read_line(&mut line).expect("reply");
                    assert!(
                        line.starts_with("err\t"),
                        "seed {seed}: want typed err, got {line:?}"
                    );
                    drop(first);
                    // Connection 2 is served normally.
                    let stream = TcpStream::connect(addr).expect("connect 2");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut writer = stream;
                    writeln!(writer, "query fig2 stats").expect("send");
                    line.clear();
                    reader.read_line(&mut line).expect("reply");
                    assert_eq!(line.trim_end(), STATS, "seed {seed}");
                    writeln!(writer, "quit").expect("send quit");
                    line.clear();
                    reader.read_line(&mut line).expect("bye");
                    assert_eq!(line.trim_end(), "ok\tbye", "seed {seed}");
                });
                bestk_engine::serve_on_listener(
                    &engine,
                    &ExecPolicy::Sequential,
                    &listener,
                    Some(std::time::Duration::from_secs(5)),
                    &ServeLimits::default(),
                )
                .expect("server survives");
                client.join().expect("client");
            });
            let context = format!("serve.timeout seed {seed}");
            assert_injection_accounting(&before, &context);
            // The site budget is 1: connection 2's timeout install would
            // have tripped the always-on fault again were the budget not
            // already exhausted by connection 1.
            let timeout_injections = bestk_faults::site_injection_counts()
                .into_iter()
                .find_map(|(site, n)| (site == sites::SERVE_TIMEOUT).then_some(n))
                .unwrap_or(0);
            assert_eq!(timeout_injections, 1, "{context}: budget caps injections");
        });
    }
}

/// Engine-level stats line for Figure 2 plus `extra` edges — the reachable
/// post-mutation states the delta drills below assert against.
fn fig2_stats_with(extra: &[(u32, u32)]) -> String {
    let base = generators::paper_figure2();
    let mut b = bestk_graph::GraphBuilder::new();
    b.reserve_vertices(base.num_vertices());
    for (u, v) in base.edges() {
        b.add_edge(u, v);
    }
    for &(u, v) in extra {
        b.add_edge(u, v);
    }
    let mut ds = Dataset::from_graph(b.build());
    ds.ensure_built(&ExecPolicy::Sequential);
    ds.answer(&bestk_engine::Query::Stats)
        .expect("stats")
        .to_line()
}

/// Loads the fixture snapshot (adopting its sibling write-ahead log) into
/// a fresh engine and returns the stats line it serves.
fn load_and_stats(snap: &std::path::Path, context: &str) -> String {
    let engine = SharedEngine::with_budget(None);
    engine
        .load_snapshot_with_fallback(
            "g",
            snap.to_str().expect("utf8 path"),
            None,
            &RetryPolicy::none(),
            &ExecPolicy::Sequential,
        )
        .unwrap_or_else(|e| panic!("{context}: load died: {e}"));
    engine
        .query("g", &bestk_engine::Query::Stats, &ExecPolicy::Sequential)
        .unwrap_or_else(|e| panic!("{context}: stats died: {e}"))
        .to_line()
}

#[test]
fn torn_wal_prefixes_replay_a_committed_prefix_or_quarantine() {
    let _g = gate();
    let (dir, _source, snap) = fixture("torn-wal");
    let wal = format!("{}.wal", snap.display());
    // Build a real log through the engine: two single-op commits, so the
    // file holds [insert, marker, insert, marker] and every byte offset is
    // a distinct torn-write scenario.
    {
        let engine = SharedEngine::with_budget(None);
        engine
            .load_snapshot_with_fallback(
                "g",
                snap.to_str().expect("utf8 path"),
                None,
                &RetryPolicy::none(),
                &ExecPolicy::Sequential,
            )
            .expect("seed load");
        for op in [EdgeOp::Insert(0, 11), EdgeOp::Insert(1, 11)] {
            engine.stage_edge("g", op).expect("stage");
            engine
                .commit_edges("g", &ExecPolicy::Sequential)
                .expect("commit");
        }
    }
    let full = std::fs::read(&wal).expect("read wal");
    // Replay applies committed ops in order, so a torn file may only ever
    // reproduce a prefix of the committed history — never a reordering,
    // never a half-applied op.
    let reachable = [
        fig2_stats_with(&[]),
        fig2_stats_with(&[(0, 11)]),
        fig2_stats_with(&[(0, 11), (1, 11)]),
    ];
    for cut in 0..=full.len() {
        let quarantine = format!("{wal}.quarantine");
        let _ = std::fs::remove_file(&quarantine);
        std::fs::write(&wal, &full[..cut]).expect("write torn prefix");
        let line = load_and_stats(&snap, &format!("cut {cut}"));
        assert!(
            reachable.contains(&line),
            "cut {cut}: serving a state outside the committed history: {line:?}"
        );
        if cut < bestk_delta::WAL_MAGIC.len() {
            // A prefix shorter than the magic is not a delta log at all:
            // it must land in quarantine and the base snapshot is served.
            assert!(
                std::path::Path::new(&quarantine).exists(),
                "cut {cut}: non-log prefix must quarantine"
            );
            assert_eq!(
                line, reachable[0],
                "cut {cut}: quarantine serves the base snapshot"
            );
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn wal_append_faults_fail_typed_and_the_log_stays_adoptable() {
    let _g = gate();
    for seed in 0..8 {
        let (dir, _source, snap) = fixture(&format!("wal-append{seed}"));
        let plan = FaultPlan::new(seed).site(
            sites::DELTA_WAL_APPEND,
            SiteSpec::mixed(
                vec![Fault::Interrupted, Fault::IoError, Fault::Truncate],
                0.5,
            ),
        );
        // The committed graph can only ever be fig2 plus a subset of the
        // two staged inserts (an op whose append failed is neither pending
        // nor logged; a failed commit leaves its ops staged for the next).
        let reachable: Vec<String> = [
            &[][..],
            &[(0, 11)][..],
            &[(1, 11)][..],
            &[(0, 11), (1, 11)][..],
        ]
        .iter()
        .map(|extra| fig2_stats_with(extra))
        .collect();
        bestk_faults::with_plan(&plan, || {
            let before = injected_metrics();
            let engine = SharedEngine::with_budget(None);
            let script = format!(
                "load g {snap}\n\
                 add-edge g 0 11\n\
                 commit g\n\
                 add-edge g 1 11\n\
                 commit g\n\
                 query g stats\n\
                 quit\n",
                snap = snap.display(),
            )
            .into_bytes();
            let mut out = Vec::new();
            let control = serve_lines(&engine, &ExecPolicy::Sequential, &script[..], &mut out)
                .unwrap_or_else(|e| panic!("seed {seed}: server died: {e}"));
            assert!(matches!(control, Control::Quit | Control::Continue));
            let text = String::from_utf8_lossy(&out);
            for (i, line) in text.lines().enumerate() {
                assert!(
                    line.starts_with("ok\t") || line.starts_with("err\t"),
                    "seed {seed}: reply {i} is not a typed ok/err line: {line:?}"
                );
                // The stats reply (second-to-last) answers for whatever
                // subset of the mutations actually committed.
                if i == 5 && line.starts_with("ok\t") {
                    let answer = &line["ok\t".len()..];
                    assert!(
                        reachable.iter().any(|r| r == answer),
                        "seed {seed}: stats outside the reachable states: {line:?}"
                    );
                }
            }
            assert_injection_accounting(&before, &format!("delta.wal.append seed {seed}"));
        });
        // Crash-consistency: whatever the injected crashes did to the log,
        // a fresh engine adopts it (heal on the write side guarantees only
        // fully acknowledged records remain) and serves a reachable state.
        let line = load_and_stats(&snap, &format!("seed {seed} restart"));
        assert!(
            reachable.contains(&line),
            "seed {seed}: restart serves a state outside the committed history: {line:?}"
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn wal_replay_faults_surface_as_typed_load_errors() {
    let _g = gate();
    for seed in 0..8 {
        let (dir, _source, snap) = fixture(&format!("wal-replay{seed}"));
        let mutated = fig2_stats_with(&[(0, 11)]);
        // Park one committed mutation in the log so the replay path runs.
        {
            let engine = SharedEngine::with_budget(None);
            engine
                .load_snapshot_with_fallback(
                    "g",
                    snap.to_str().expect("utf8 path"),
                    None,
                    &RetryPolicy::none(),
                    &ExecPolicy::Sequential,
                )
                .expect("seed load");
            engine
                .stage_edge("g", EdgeOp::Insert(0, 11))
                .expect("stage");
            engine
                .commit_edges("g", &ExecPolicy::Sequential)
                .expect("commit");
        }
        let plan = FaultPlan::new(seed).site(
            sites::DELTA_WAL_REPLAY,
            SiteSpec::mixed(vec![Fault::IoError], 0.7),
        );
        bestk_faults::with_plan(&plan, || {
            let before = injected_metrics();
            let engine = SharedEngine::with_budget(None);
            match engine.load_snapshot_with_fallback(
                "g",
                snap.to_str().expect("utf8 path"),
                None,
                &RetryPolicy::none(),
                &ExecPolicy::Sequential,
            ) {
                // The injection missed: the replayed state is exact.
                Ok(_) => {
                    let line = engine
                        .query("g", &bestk_engine::Query::Stats, &ExecPolicy::Sequential)
                        .expect("stats")
                        .to_line();
                    assert_eq!(line, mutated, "seed {seed}");
                }
                // The injection hit: a typed I/O error, not a quarantine —
                // a flaky disk must not cost us the log.
                Err(e) => {
                    assert!(
                        matches!(e, bestk_engine::EngineError::Io(_)),
                        "seed {seed}: want typed i/o error, got {e}"
                    );
                }
            }
            assert_injection_accounting(&before, &format!("delta.wal.replay seed {seed}"));
        });
        // Once the disk behaves, the untouched log replays in full.
        let line = load_and_stats(&snap, &format!("seed {seed} clean reload"));
        assert_eq!(line, mutated, "seed {seed}: log must survive replay faults");
        let _ = std::fs::remove_dir_all(dir);
    }
}
