//! Property-based tests for the observability histograms, driven by the
//! in-repo [`bestk::graph::testkit`] harness (the build environment is
//! offline, so no external property-testing crate).
//!
//! The invariants under test are the ones the exposition format and the
//! chaos/golden suites lean on:
//!
//! 1. **Conservation** — bucket counts (including the implicit `+Inf`
//!    overflow bucket) sum to the observation count, and the sum field
//!    equals the wrapping sum of the observed values.
//! 2. **Cumulative monotonicity** — the rendered `_bucket{le="…"}` series
//!    is non-decreasing and ends at the total count.
//! 3. **Merge homomorphism** — merging the snapshots of two registries is
//!    exactly the snapshot of one registry fed the concatenated stream
//!    (wrapping sums keep this an equality, not an approximation).

use bestk::graph::testkit::check;
use bestk::obs::{MetricsRegistry, Snapshot};

/// Random ascending bucket bounds: 1–6 distinct bounds drawn from a range
/// wide enough to leave some buckets empty and push some values into the
/// `+Inf` overflow bucket.
fn gen_bounds(gen: &mut bestk::graph::testkit::Gen) -> Vec<u64> {
    let n = gen.usize_in(1, 6);
    let mut bounds: Vec<u64> = (0..n).map(|_| u64::from(gen.u32_in(0, 1_000))).collect();
    bounds.sort_unstable();
    bounds.dedup();
    bounds
}

/// Random observation stream, including boundary values (bucket bounds are
/// inclusive, so landing exactly on a bound is the interesting case).
fn gen_values(gen: &mut bestk::graph::testkit::Gen, bounds: &[u64]) -> Vec<u64> {
    let n = gen.usize_in(0, 200);
    (0..n)
        .map(|_| {
            if gen.bool_with(0.3) && !bounds.is_empty() {
                bounds[gen.usize_in(0, bounds.len())]
            } else {
                u64::from(gen.u32_in(0, 2_000))
            }
        })
        .collect()
}

/// Feeds `values` into a fresh registry's `h` histogram and snapshots it.
fn observe_all(bounds: &[u64], values: &[u64]) -> Snapshot {
    let r = MetricsRegistry::new();
    let h = r.histogram("h", bounds);
    for &v in values {
        h.observe(v);
    }
    r.snapshot()
}

#[test]
fn bucket_counts_are_conserved() {
    check("bucket_counts_are_conserved", 128, |gen| {
        let bounds = gen_bounds(gen);
        let values = gen_values(gen, &bounds);
        let snap = observe_all(&bounds, &values);
        let h = snap.histogram("h").expect("histogram registered");
        assert_eq!(h.buckets.len(), h.bounds.len() + 1, "overflow bucket");
        assert_eq!(
            h.buckets.iter().sum::<u64>(),
            values.len() as u64,
            "every observation lands in exactly one bucket"
        );
        assert_eq!(h.count, values.len() as u64);
        let expected_sum = values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        assert_eq!(h.sum, expected_sum, "wrapping sum of observations");
        // Each value sits in the first bucket whose inclusive bound admits
        // it — recompute the distribution independently.
        let mut expect = vec![0u64; h.bounds.len() + 1];
        for &v in &values {
            let i = h.bounds.partition_point(|&b| b < v);
            expect[i] += 1;
        }
        assert_eq!(h.buckets, expect);
    });
}

#[test]
fn cumulative_series_is_monotone_and_ends_at_count() {
    check(
        "cumulative_series_is_monotone_and_ends_at_count",
        128,
        |gen| {
            let bounds = gen_bounds(gen);
            let values = gen_values(gen, &bounds);
            let snap = observe_all(&bounds, &values);
            let h = snap.histogram("h").expect("histogram registered");
            let cum = h.cumulative();
            assert!(cum.windows(2).all(|w| w[0] <= w[1]), "monotone: {cum:?}");
            assert_eq!(cum.last().copied().unwrap_or(0), h.count);
            // The rendered `le` series is exactly this cumulative sequence.
            let rendered = snap.render();
            for (bound, c) in h.bounds.iter().zip(&cum) {
                let line = format!("h_bucket{{le=\"{bound}\"}} {c}");
                assert!(rendered.contains(&line), "{line:?} not in:\n{rendered}");
            }
            assert!(rendered.contains(&format!("h_bucket{{le=\"+Inf\"}} {}", h.count)));
        },
    );
}

#[test]
fn merge_of_two_registries_equals_registry_of_concatenation() {
    check(
        "merge_of_two_registries_equals_registry_of_concatenation",
        128,
        |gen| {
            let bounds = gen_bounds(gen);
            let xs = gen_values(gen, &bounds);
            let ys = gen_values(gen, &bounds);
            let merged = observe_all(&bounds, &xs)
                .merge(&observe_all(&bounds, &ys))
                .expect("same bounds merge cleanly");
            let mut concat = xs.clone();
            concat.extend_from_slice(&ys);
            let direct = observe_all(&bounds, &concat);
            assert_eq!(merged.render(), direct.render(), "merge homomorphism");
        },
    );
}

#[test]
fn merge_rejects_mismatched_bucket_bounds() {
    check("merge_rejects_mismatched_bucket_bounds", 64, |gen| {
        let bounds = gen_bounds(gen);
        let mut other = bounds.clone();
        other.push(bounds.last().copied().unwrap_or(0) + 1 + u64::from(gen.u32_in(0, 10)));
        let a = observe_all(&bounds, &[1, 2, 3]);
        let b = observe_all(&other, &[1, 2, 3]);
        assert!(a.merge(&b).is_err(), "mismatched bounds must not merge");
    });
}
