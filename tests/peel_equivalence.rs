//! The differential test layer for the two peel strategies.
//!
//! `PeelStrategy::Parallel` ([`par_peel`]) is the primary decomposition
//! path; `PeelStrategy::Sequential` ([`core_decomposition`]) is the
//! oracle. This suite proves they are **bit-identical** — coreness, rank
//! order, shell boundaries, the peel order itself, the Alg. 1 position
//! tags, the Alg. 2 per-k primaries, and the serialized `.bestk` snapshot
//! bytes (v1 *and* v2) — at threads {1, 2, 4, 7}, over random graphs and
//! the adversarial shapes (`k_chain`, `shell_ladder`, `tie_storm`,
//! max-degeneracy cliques).
//!
//! A third, independent reference implementation of the canonical peel
//! lives in this file and exposes what the production API hides (sub-round
//! ids and the decrement count), pinning the frontier/bucket invariants:
//! monotone non-decreasing peel level, disjoint frontiers covering every
//! vertex exactly once, and conservation of decrements (every edge
//! decrements exactly once unless both endpoints leave in the same
//! simultaneous sub-round).
//!
//! Random cases run on the seeded in-repo property harness
//! (`BESTK_PROP_SEED` / `BESTK_PROP_CASES`), like the other equivalence
//! suites.

use bestk::core::{
    core_decomposition, core_decomposition_with, core_set_profile, par_peel, CoreDecomposition,
    OrderedGraph, PeelStrategy,
};
use bestk::exec::ExecPolicy;
use bestk::graph::generators::{self, regular};
use bestk::graph::testkit::{check, Gen};
use bestk::graph::{CsrGraph, VertexId};
use bestk_engine::{snapshot, snapv2, Dataset};

/// Thread counts the parallel strategy is exercised at. 7 is deliberately
/// prime and larger than the chunk-per-worker alignment assumptions.
const THREADS: [usize; 4] = [1, 2, 4, 7];

/// Forces every sub-round through `for_each_disjoint`, however small.
const FORCE_PARALLEL: usize = 0;

/// Asserts the parallel primary reproduces the oracle bit-for-bit on `g`,
/// including the downstream artifacts the sweep consumes (tags and per-k
/// primaries).
fn assert_strategies_agree(g: &CsrGraph, context: &str) {
    let want = core_decomposition(g);
    let want_ordered = OrderedGraph::build(g, &want);
    let want_profile = core_set_profile(&want_ordered, true);
    for threads in THREADS {
        let policy = ExecPolicy::with_threads(threads).unwrap();
        let got = par_peel(g, &policy, FORCE_PARALLEL);
        assert_eq!(got, want, "{context}: decomposition at {threads} threads");
        let ordered = OrderedGraph::build_with(g, &got, &policy);
        assert_eq!(
            ordered.raw_tags(),
            want_ordered.raw_tags(),
            "{context}: Alg. 1 tags at {threads} threads"
        );
        let profile = core_set_profile(&ordered, true);
        assert_eq!(
            profile.primaries, want_profile.primaries,
            "{context}: Alg. 2 primaries at {threads} threads"
        );
        // The policy-dispatched entry point (production min-work gate)
        // must agree too, not just the forced-dispatch path.
        assert_eq!(
            core_decomposition_with(g, &policy),
            want,
            "{context}: core_decomposition_with at {threads} threads"
        );
    }
}

#[test]
fn random_graphs_are_bit_identical() {
    check("peel equivalence random sweep", 24, |gen: &mut Gen| {
        let g = gen.graph(60, 220);
        assert_strategies_agree(&g, "random");
    });
}

#[test]
fn sparse_and_degenerate_shapes_are_bit_identical() {
    for (name, g) in [
        ("empty", CsrGraph::empty(0)),
        ("isolated", CsrGraph::empty(5)),
        ("single-edge", {
            let mut b = bestk::graph::GraphBuilder::new();
            b.add_edge(0, 1);
            b.reserve_vertices(4);
            b.build()
        }),
        ("path", regular::path(31)),
        ("star", regular::star(17)),
        ("figure2", generators::paper_figure2()),
    ] {
        assert_strategies_agree(&g, name);
    }
}

#[test]
fn adversarial_shapes_are_bit_identical() {
    // Maximum shell depth, wide shells over a deep core, cross-component
    // ties, and max-degeneracy constructions (a clique peels in one
    // simultaneous frontier; a clique chain cascades through bridges).
    for (name, g) in [
        ("k-chain", generators::k_chain(10)),
        ("shell-ladder", generators::shell_ladder(8, 7)),
        ("tie-storm", generators::tie_storm(6, 5, 71)),
        ("complete", regular::complete(40)),
        ("clique-chain", regular::clique_chain(4, 12)),
        (
            "overlapping",
            generators::overlapping_cliques(80, 8, (4, 9), 17),
        ),
    ] {
        assert_strategies_agree(&g, name);
    }
}

#[test]
fn snapshot_bytes_are_identical_under_both_strategies() {
    // The end-to-end determinism contract: a dataset built under the
    // parallel policy serializes to the *same bytes* as one built by the
    // sequential oracle — v1 (which persists the peel order) and v2.
    let dir = std::env::temp_dir().join(format!("bestk-peel-eq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    for (name, g) in [
        ("random", generators::erdos_renyi_gnm(300, 1200, 41)),
        ("ladder", generators::shell_ladder(7, 9)),
    ] {
        let mut reference = Dataset::from_graph(g.clone());
        reference.ensure_built(&ExecPolicy::Sequential);
        let mut v1_want = Vec::new();
        snapshot::save(&reference, &mut v1_want).expect("save v1");
        let v2_path = dir.join(format!("{name}-seq.bestk"));
        snapv2::save_path(&reference, &v2_path).expect("save v2");
        let v2_want = std::fs::read(&v2_path).expect("read v2");
        for threads in [2, 4, 7] {
            let policy = ExecPolicy::with_threads(threads).unwrap();
            let mut ds = Dataset::from_graph(g.clone());
            ds.ensure_built(&policy);
            let mut v1 = Vec::new();
            snapshot::save(&ds, &mut v1).expect("save v1");
            assert_eq!(v1, v1_want, "{name}: v1 bytes at {threads} threads");
            let path = dir.join(format!("{name}-{threads}.bestk"));
            snapv2::save_path(&ds, &path).expect("save v2");
            assert_eq!(
                std::fs::read(&path).expect("read v2"),
                v2_want,
                "{name}: v2 bytes at {threads} threads"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// What the reference peel exposes beyond the production API.
struct ReferencePeel {
    peel_order: Vec<VertexId>,
    coreness: Vec<u32>,
    /// Global sub-round index (across levels) each vertex was removed in.
    round: Vec<usize>,
    /// Number of degree decrements applied over the whole run.
    decrements: usize,
    /// Total number of sub-rounds.
    rounds: usize,
}

/// A third, independent transcription of the canonical peel (kept
/// deliberately naive): per level, collect every live vertex of minimum
/// degree ascending by id; peel whole frontiers simultaneously; decrement
/// live neighbors in frontier-scan order; vertices crossing the level form
/// the next frontier in first-crossing order.
fn reference_peel(g: &CsrGraph) -> ReferencePeel {
    let n = g.num_vertices();
    let mut cur: Vec<usize> = (0..n).map(|v| g.degree(v as VertexId)).collect();
    let mut queued = vec![false; n];
    let mut peeled = vec![false; n];
    let mut coreness = vec![0u32; n];
    let mut round = vec![0usize; n];
    let mut peel_order = Vec::with_capacity(n);
    let mut decrements = 0usize;
    let mut rounds = 0usize;
    let mut remaining = n;
    while remaining > 0 {
        let k = (0..n)
            .filter(|&v| !queued[v])
            .map(|v| cur[v])
            .min()
            .expect("remaining > 0");
        let mut frontier: Vec<VertexId> = (0..n)
            .filter(|&v| !queued[v] && cur[v] == k)
            .map(|v| v as VertexId)
            .collect();
        for &v in &frontier {
            queued[v as usize] = true;
        }
        while !frontier.is_empty() {
            remaining -= frontier.len();
            for &v in &frontier {
                peeled[v as usize] = true;
                coreness[v as usize] = k as u32;
                round[v as usize] = rounds;
                peel_order.push(v);
            }
            let mut next = Vec::new();
            for &v in &frontier {
                for &u in g.neighbors(v) {
                    let uu = u as usize;
                    if peeled[uu] {
                        continue;
                    }
                    cur[uu] -= 1;
                    decrements += 1;
                    if !queued[uu] && cur[uu] <= k {
                        queued[uu] = true;
                        next.push(u);
                    }
                }
            }
            rounds += 1;
            frontier = next;
        }
    }
    ReferencePeel {
        peel_order,
        coreness,
        round,
        decrements,
        rounds,
    }
}

/// Checks the frontier/bucket invariants of one decomposition against the
/// reference peel's exposed internals.
fn assert_frontier_invariants(g: &CsrGraph, d: &CoreDecomposition, context: &str) {
    let n = g.num_vertices();
    let r = reference_peel(g);
    assert_eq!(d.peel_ordering(), &r.peel_order[..], "{context}: order");
    assert_eq!(d.coreness_slice(), &r.coreness[..], "{context}: coreness");

    // Disjoint frontiers covering every vertex exactly once: the peel
    // order is a permutation (checked via positions) and round ids are
    // monotone non-decreasing along it, as are the levels.
    let mut position = vec![usize::MAX; n];
    for (i, &v) in d.peel_ordering().iter().enumerate() {
        assert_eq!(position[v as usize], usize::MAX, "{context}: duplicate");
        position[v as usize] = i;
    }
    assert!(
        position.iter().all(|&p| p != usize::MAX),
        "{context}: cover"
    );
    for w in d.peel_ordering().windows(2) {
        let (a, b) = (w[0] as usize, w[1] as usize);
        assert!(
            r.round[a] <= r.round[b],
            "{context}: rounds must be contiguous runs of the peel order"
        );
        assert!(
            d.coreness_slice()[a] <= d.coreness_slice()[b],
            "{context}: peel level must be monotone non-decreasing"
        );
    }

    // Conservation of decrements: each edge decrements exactly once —
    // when its first endpoint leaves — unless both endpoints leave in the
    // same simultaneous sub-round, in which case it never does.
    let intra: usize = g
        .edges()
        .filter(|&(u, v)| r.round[u as usize] == r.round[v as usize])
        .count();
    assert_eq!(
        r.decrements + intra,
        g.num_edges(),
        "{context}: every edge decrements exactly once or is intra-frontier"
    );

    // Frozen-degree invariant: at removal, a vertex's live degree is at
    // most its level — so at most c(v) of its neighbors appear at or
    // after its own sub-round (strictly later rounds or same-round).
    for v in 0..n {
        let later = g
            .neighbors(v as VertexId)
            .iter()
            .filter(|&&u| r.round[u as usize] >= r.round[v])
            .count();
        assert!(
            later <= d.coreness_slice()[v] as usize,
            "{context}: vertex {v} kept {later} live neighbors past level {}",
            d.coreness_slice()[v]
        );
    }
}

#[test]
fn frontier_and_bucket_invariants_hold_for_both_strategies() {
    check("peel frontier invariants", 16, |gen: &mut Gen| {
        let g = gen.graph(40, 140);
        assert_frontier_invariants(&g, &core_decomposition(&g), "oracle");
        let policy = ExecPolicy::with_threads(4).unwrap();
        assert_frontier_invariants(&g, &par_peel(&g, &policy, FORCE_PARALLEL), "primary");
    });
}

#[test]
fn observed_rounds_and_frontier_sizes_are_strategy_invariant() {
    use std::sync::Arc;
    // Both strategies must report the identical canonical round structure
    // to bestk-obs — that is what keeps the metrics golden stable across
    // thread counts — and the histogram must account for every vertex
    // exactly once (frontier disjointness, observed externally).
    let g = generators::shell_ladder(6, 8);
    let reference = reference_peel(&g);
    let clock = || Arc::new(bestk::obs::ManualClock::with_step(1)) as Arc<dyn bestk::obs::Clock>;
    let ((), seq) = bestk::obs::with_fresh(clock(), || {
        core_decomposition(&g);
    });
    let rounds = seq.counter("phase.peel.rounds").expect("rounds recorded");
    let hist = seq.histogram("core.frontier_size").expect("sizes recorded");
    assert_eq!(rounds as usize, reference.rounds);
    assert_eq!(hist.count as usize, reference.rounds);
    assert_eq!(hist.sum as usize, g.num_vertices(), "frontiers cover n");
    for threads in THREADS {
        let policy = ExecPolicy::with_threads(threads).unwrap();
        let ((), par) = bestk::obs::with_fresh(clock(), || {
            par_peel(&g, &policy, FORCE_PARALLEL);
        });
        assert_eq!(par.counter("phase.peel.rounds"), Some(rounds), "{threads}");
        assert_eq!(
            par.histogram("core.frontier_size"),
            Some(hist),
            "{threads} threads"
        );
    }
}

#[test]
fn strategy_selection_follows_the_policy() {
    assert_eq!(
        PeelStrategy::for_policy(&ExecPolicy::Sequential),
        PeelStrategy::Sequential
    );
    for threads in [2, 4, 7] {
        let policy = ExecPolicy::with_threads(threads).unwrap();
        assert_eq!(PeelStrategy::for_policy(&policy), PeelStrategy::Parallel);
    }
}
