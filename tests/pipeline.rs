//! Cross-crate integration tests: the full pipeline from generation through
//! I/O, analysis, and the §V-D applications.

use bestk::apps::{charikar_peeling, contains_clique, maximum_clique, opt_d, opt_sc};
use bestk::core::{analyze, analyze_basic, CommunityMetric, Metric};
use bestk::graph::{generators, io, GraphBuilder};

#[test]
fn generate_save_load_analyze() {
    let g = generators::chung_lu_power_law(5_000, 9.0, 2.4, 11);
    // Binary round trip.
    let mut buf = Vec::new();
    io::write_binary(&g, &mut buf).unwrap();
    let g2 = io::read_binary(&buf[..]).unwrap();
    assert_eq!(g, g2);
    // Text round trip preserves the analysis outcome (relabel-invariant
    // because the writer emits ascending ids, so relabeling is identity
    // on the contiguous id space).
    let mut text = Vec::new();
    io::write_edge_list(&g, &mut text).unwrap();
    let (g3, _) = io::read_edge_list(&text[..]).unwrap();
    let a2 = analyze_basic(&g2);
    let a3 = analyze_basic(&g3);
    assert_eq!(a2.kmax(), a3.kmax());
    for m in [
        Metric::AverageDegree,
        Metric::Conductance,
        Metric::Modularity,
    ] {
        assert_eq!(
            a2.best_core_set(&m).map(|b| b.k),
            a3.best_core_set(&m).map(|b| b.k),
            "{}",
            m.name()
        );
    }
}

#[test]
fn analysis_is_deterministic() {
    let g = generators::rmat(12, 10, 0.57, 0.19, 0.19, 5);
    let a = analyze(&g);
    let b = analyze(&g);
    for m in Metric::ALL {
        assert_eq!(a.best_core_set(&m), b.best_core_set(&m));
        assert_eq!(a.best_single_core(&m), b.best_single_core(&m));
    }
}

#[test]
fn best_set_score_is_max_of_series() {
    let g = generators::chung_lu_power_law(3_000, 8.0, 2.5, 3);
    let a = analyze(&g);
    for m in Metric::ALL {
        let series = a.core_set_scores(&m);
        let best = a.best_core_set(&m).unwrap();
        let max = series
            .iter()
            .copied()
            .filter(|s| s.is_finite())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (best.score - max).abs() < 1e-12,
            "{}: best {} vs max {}",
            m.name(),
            best.score,
            max
        );
        assert!((series[best.k as usize] - best.score).abs() < 1e-12);
    }
}

#[test]
fn best_single_core_beats_every_set_score_under_density() {
    // The best single core under a size-normalized metric is at least as
    // good as the best whole-set score, because each set's score is a
    // "mixture" of its cores — concretely, the densest single core's
    // internal density is >= the best set's density on these graphs.
    let g = generators::overlapping_cliques(2_000, 300, (4, 12), 8);
    let a = analyze(&g);
    let set = a.best_core_set(&Metric::InternalDensity).unwrap();
    let core = a.best_single_core(&Metric::InternalDensity).unwrap();
    assert!(core.score >= set.score - 1e-12);
}

#[test]
fn applications_compose_with_analysis() {
    let g = generators::chung_lu_power_law(4_000, 10.0, 2.3, 17);
    let a = analyze_basic(&g);

    // Densest subgraph: Opt-D at least matches peeling on quality here.
    let d = opt_d(&g, &a);
    let peel = charikar_peeling(&g);
    assert!(d.average_degree > 0.0);
    assert!(peel.average_degree > 0.0);

    // Maximum clique is inside the kmax-core set (a clique of size s is a
    // (s-1)-core).
    let decomp = a.decomposition();
    let clique = maximum_clique(&g, decomp);
    assert!(clique.len() >= 3);
    let k = clique.len() as u32 - 1;
    let core_set = decomp.core_set_vertices(k);
    assert!(contains_clique(core_set, &clique));

    // Size-constrained query round trip.
    let q = *clique.first().unwrap();
    if let Some(res) = opt_sc(&g, &a, 2, 30, q) {
        assert!(res.vertices.contains(&q));
    }
}

#[test]
fn handcrafted_graph_full_pipeline() {
    // Two communities of different character, as in the case study.
    let mut b = GraphBuilder::new();
    // K6 "research group".
    for u in 0..6u32 {
        for v in (u + 1)..6 {
            b.add_edge(u, v);
        }
    }
    // Sparse ring of 12 around it.
    for i in 0..12u32 {
        b.add_edge(6 + i, 6 + (i + 1) % 12);
    }
    b.add_edge(0, 6);
    let g = b.build();
    let a = analyze(&g);
    assert_eq!(a.kmax(), 5);
    // Density picks the K6.
    let members = a
        .best_single_core_vertices(&Metric::InternalDensity)
        .unwrap();
    assert_eq!(members.len(), 6);
    assert!(members.iter().all(|&v| v < 6));
    // The k-core set score series has length kmax + 1 and is finite at the
    // ends for average degree.
    let series = a.core_set_scores(&Metric::AverageDegree);
    assert_eq!(series.len(), 6);
    assert!(series.iter().all(|s| s.is_finite()));
}

#[test]
fn truss_forest_and_community_search_compose() {
    let g = generators::overlapping_cliques(800, 150, (4, 10), 13);
    // Truss side.
    let idx = bestk::truss::EdgeIndex::build(&g);
    let t = bestk::truss::decomposition::truss_decomposition_with_index(&g, &idx);
    let f = bestk::truss::TrussForest::build(&g, &idx, &t);
    assert!(f.node_count() > 0);
    // Deepest truss node reconstructs to a subgraph whose minimum degree is
    // at least tmax - 1 (each edge in >= tmax - 2 triangles forces degree).
    let deepest = 0u32; // nodes sorted descending by level
    assert_eq!(f.node(deepest).truss, t.tmax());
    let (verts, edges) = f.truss_members(deepest);
    assert!(verts.len() as u32 >= t.tmax());
    assert!(edges.len() >= verts.len() - 1);
    // Community search around a deep vertex.
    let a = analyze(&g);
    let q = verts[0];
    let c = bestk::apps::max_min_degree_community(&a, q);
    assert!(c.vertices.contains(&q));
    assert!(bestk::apps::community::min_internal_degree(&g, &c.vertices) >= c.k as usize);
    let scored =
        bestk::apps::best_scored_community(&a, q, &Metric::InternalDensity, 0, None).unwrap();
    assert!(scored.vertices.contains(&q));
    // Spreader ranking is consistent with the decomposition.
    let ranked = bestk::apps::rank_by_coreness(&g, a.decomposition());
    assert_eq!(
        a.decomposition().coreness(ranked[0]),
        a.decomposition().kmax()
    );
}

#[test]
fn custom_metric_flows_through_the_whole_api() {
    /// Sparsity-seeking metric: negative average degree.
    struct SparsestSet;
    impl CommunityMetric for SparsestSet {
        fn name(&self) -> &str {
            "sparsest"
        }
        fn score(&self, pv: &bestk::core::PrimaryValues, _: &bestk::core::GraphContext) -> f64 {
            if pv.num_vertices == 0 {
                f64::NAN
            } else {
                -(2.0 * pv.internal_edges as f64 / pv.num_vertices as f64)
            }
        }
    }
    let g = generators::chung_lu_power_law(2_000, 8.0, 2.4, 4);
    let a = analyze_basic(&g);
    let best = a.best_core_set(&SparsestSet).unwrap();
    // The sparsest k-core set is the whole graph (k = 0 or 1, which dilute
    // density with low-degree vertices) — certainly not the top core.
    assert!(best.k <= 1);
    let single = a.best_single_core(&SparsestSet).unwrap();
    assert!(single.score <= 0.0);
}
