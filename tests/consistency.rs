//! Structured cross-crate consistency suite: the optimal algorithms agree
//! with the baselines, metric by metric, on every generator family the
//! harness uses.

use bestk::core::baseline::{baseline_core_set_primaries, baseline_single_core_primaries};
use bestk::core::{
    analyze, core_decomposition, CommunityMetric, CoreForest, GraphContext, Metric, OrderedGraph,
};
use bestk::graph::{generators, CsrGraph};

fn families() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("erdos_renyi", generators::erdos_renyi_gnm(400, 1600, 1)),
        (
            "erdos_renyi_sparse",
            generators::erdos_renyi_gnp(500, 0.004, 2),
        ),
        ("chung_lu", generators::chung_lu_power_law(600, 8.0, 2.4, 3)),
        ("barabasi_albert", generators::barabasi_albert(500, 4, 4)),
        ("rmat", generators::rmat(9, 10, 0.57, 0.19, 0.19, 5)),
        (
            "cliques",
            generators::overlapping_cliques(300, 60, (3, 10), 6),
        ),
        (
            "planted",
            generators::planted_partition(&[60, 50, 40, 80], 0.3, 0.01, 7).graph,
        ),
        ("paper_fig2", generators::paper_figure2()),
        ("grid", generators::regular::grid(15, 15)),
        ("clique_chain", generators::regular::clique_chain(6, 7)),
        ("complete", generators::regular::complete(25)),
        ("star", generators::regular::star(50)),
    ]
}

#[test]
fn best_set_scores_agree_with_baseline_for_every_metric() {
    for (name, g) in families() {
        let d = core_decomposition(&g);
        let base = baseline_core_set_primaries(&g, &d, true);
        let a = analyze(&g);
        let ctx = GraphContext {
            total_vertices: g.num_vertices() as u64,
            total_edges: g.num_edges() as u64,
        };
        for m in Metric::ALL {
            let optimal_scores = a.core_set_scores(&m);
            for (k, pv) in base.iter().enumerate() {
                let expect = m.score(pv, &ctx);
                let got = optimal_scores[k];
                let same = (expect.is_nan() && got.is_nan()) || (expect - got).abs() < 1e-9;
                assert!(same, "{name}/{}: k={k} expect {expect} got {got}", m.name());
            }
        }
    }
}

#[test]
fn best_single_core_agrees_with_baseline_argmax() {
    for (name, g) in families() {
        let d = core_decomposition(&g);
        let base = baseline_single_core_primaries(&g, &d, true);
        let a = analyze(&g);
        let ctx = GraphContext {
            total_vertices: g.num_vertices() as u64,
            total_edges: g.num_edges() as u64,
        };
        for m in Metric::ALL {
            let best_baseline = base
                .iter()
                .map(|(_, pv)| m.score(pv, &ctx))
                .filter(|s| s.is_finite())
                .fold(f64::NEG_INFINITY, f64::max);
            match a.best_single_core(&m) {
                Some(best) => {
                    assert!(
                        (best.score - best_baseline).abs() < 1e-9,
                        "{name}/{}: optimal {} vs baseline max {}",
                        m.name(),
                        best.score,
                        best_baseline
                    );
                }
                None => assert!(
                    best_baseline == f64::NEG_INFINITY,
                    "{name}/{}: optimal found nothing but baseline has {best_baseline}",
                    m.name()
                ),
            }
        }
    }
}

#[test]
fn triangle_counters_agree_across_modules() {
    for (name, g) in families() {
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        let forward = bestk::core::triangles::count_triangles(&g);
        let ordered = bestk::core::triangles::count_triangles_ordered(&o);
        let merge = bestk::core::triangles::count_triangles_merge(&o);
        assert_eq!(forward, ordered, "{name}");
        assert_eq!(forward, merge, "{name}");
        // k=0 entry of the set profile is the whole graph.
        let a = analyze(&g);
        assert_eq!(a.set_profile().primaries[0].triangles, forward, "{name}");
        assert_eq!(
            a.set_profile().primaries[0].triplets,
            bestk::core::triangles::count_triplets(&g),
            "{name}"
        );
    }
}

#[test]
fn forest_cores_tile_the_core_sets() {
    // Σ over nodes at each level slice == the k-core set primaries.
    for (name, g) in families() {
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        let f = CoreForest::build(&g, &d);
        let per_core = bestk::core::bestcore::single_core_primaries(&o, &f, false);
        let per_set = bestk::core::bestkset::core_set_primaries(&o);
        for k in 0..=d.kmax() {
            // Entry nodes at level k: coreness >= k, parent below k.
            let mut n_sum = 0u64;
            let mut m_sum = 0u64;
            for (i, node) in f.nodes().iter().enumerate() {
                let parent_below = node.parent.map(|p| f.node(p).coreness < k).unwrap_or(true);
                if node.coreness >= k && parent_below {
                    n_sum += per_core[i].num_vertices;
                    m_sum += per_core[i].internal_edges;
                }
            }
            // The k-core set C_k is the disjoint union of its k-cores...
            // except that forest entry nodes at level k may sit at a level
            // ABOVE k when a core has no coreness-k shell; the union of
            // their vertex sets is still exactly V(C_k).
            assert_eq!(
                n_sum, per_set[k as usize].num_vertices,
                "{name} k={k} vertices"
            );
            // Edge totals differ: per-core edges exclude edges between
            // sibling cores, but distinct k-cores share no edges, so the
            // sums must match exactly.
            assert_eq!(
                m_sum, per_set[k as usize].internal_edges,
                "{name} k={k} edges"
            );
        }
    }
}
