//! Finding the best single k-truss (paper §VI-B).
//!
//! The paper notes that the best-*single*-truss problem is harder than the
//! set version ("designing an optimal solution is still challenging"), so
//! this module implements the practical solution its discussion implies:
//! enumerate every distinct k-truss — the connected components of the
//! `t(e) ≥ k` edge subgraph, for each populated level `k` — score each from
//! its primaries, and keep the best. Following the k-core forest's Def. 6
//! analogue, a component is attributed to level `k` only if it contains an
//! edge of truss number exactly `k`, so nested identical trusses are not
//! re-reported.
//!
//! Cost: `O(Σ_k m_k + Σ_k m_k^{1.5})` with triangles — the truss analogue
//! of the §IV-B baseline, adequate for the million-edge scale the harness
//! uses.

use bestk_core::metrics::{CommunityMetric, GraphContext, PrimaryValues};
use bestk_core::triangles::{count_triangles, count_triplets};
use bestk_graph::cast;
use bestk_graph::subgraph::induced_subgraph;
use bestk_graph::{GraphView, VertexId};

use crate::decomposition::TrussDecomposition;
use crate::edgeindex::EdgeIndex;

/// One enumerated k-truss with its primaries.
#[derive(Debug, Clone)]
pub struct TrussInfo {
    /// The truss level `k`.
    pub k: u32,
    /// Vertices of the truss (ascending).
    pub vertices: Vec<VertexId>,
    /// Primary values (boundary counts edges leaving the vertex set).
    pub primaries: PrimaryValues,
}

/// The best single k-truss under a metric.
#[derive(Debug, Clone)]
pub struct BestSingleTruss {
    /// The winning truss.
    pub truss: TrussInfo,
    /// Its score.
    pub score: f64,
}

/// Enumerates every distinct k-truss with its primaries (triangles and
/// triplets included when `with_triangles`).
pub fn enumerate_trusses<G: GraphView>(
    g: &G,
    idx: &EdgeIndex,
    t: &TrussDecomposition,
    with_triangles: bool,
) -> Vec<TrussInfo> {
    let n = g.num_vertices();
    let mut out = Vec::new();
    let mut levels: Vec<u32> = t.truss_slice().to_vec();
    levels.sort_unstable();
    levels.dedup();
    // Per level: BFS over vertices incident to alive edges; claimed marks
    // avoid re-reporting the same component from several seeds.
    let mut claimed = vec![u32::MAX; n];
    for &k in levels.iter().rev() {
        if k < 2 {
            continue;
        }
        // Seeds: endpoints of truss-exactly-k edges (Def. 6 analogue).
        for e in 0..cast::u32_of(idx.num_edges()) {
            if t.truss(e) != k {
                continue;
            }
            let (su, _) = idx.endpoints(e);
            if claimed[su as usize] == k {
                continue;
            }
            // BFS over vertices through alive (t >= k) edges.
            let mut comp: Vec<VertexId> = Vec::new();
            let mut stack = vec![su];
            claimed[su as usize] = k;
            while let Some(v) = stack.pop() {
                comp.push(v);
                for p in idx.slots_of(v) {
                    if t.truss(idx.id_at_slot(p)) >= k {
                        let w = idx.neighbor_at(p);
                        if claimed[w as usize] != k {
                            claimed[w as usize] = k;
                            stack.push(w);
                        }
                    }
                }
            }
            comp.sort_unstable();
            out.push(TrussInfo {
                k,
                primaries: truss_primaries(g, idx, t, k, &comp, with_triangles),
                vertices: comp,
            });
        }
    }
    out
}

/// Primaries of one truss component: edges/triangles restricted to the
/// `t ≥ k` subgraph on `comp`; boundary = edges leaving the vertex set.
fn truss_primaries<G: GraphView>(
    g: &G,
    idx: &EdgeIndex,
    t: &TrussDecomposition,
    k: u32,
    comp: &[VertexId],
    with_triangles: bool,
) -> PrimaryValues {
    let mut inside = vec![false; g.num_vertices()];
    for &v in comp {
        inside[v as usize] = true;
    }
    let mut internal_twice = 0u64;
    let mut boundary = 0u64;
    for &v in comp {
        for p in idx.slots_of(v) {
            let w = idx.neighbor_at(p);
            if inside[w as usize] {
                if t.truss(idx.id_at_slot(p)) >= k {
                    internal_twice += 1;
                }
            } else {
                boundary += 1;
            }
        }
    }
    let mut pv = PrimaryValues {
        num_vertices: comp.len() as u64,
        internal_edges: internal_twice / 2,
        boundary_edges: boundary,
        ..Default::default()
    };
    if with_triangles {
        // Materialize the t >= k edge subgraph on comp.
        let sub = induced_subgraph(g, comp);
        // Filter out low-truss edges: rebuild with only alive edges.
        let mut b = bestk_graph::GraphBuilder::new();
        b.reserve_vertices(sub.graph.num_vertices());
        for (du, dv) in sub.graph.edges() {
            let (ou, ov) = (sub.original_id(du), sub.original_id(dv));
            if let Some(e) = idx.edge_id(ou, ov) {
                if t.truss(e) >= k {
                    b.add_edge(du, dv);
                }
            }
        }
        let alive = b.build();
        pv.triangles = count_triangles(&alive);
        pv.triplets = count_triplets(&alive);
    }
    pv
}

/// Finds the best single k-truss under `metric` (ties prefer the largest
/// `k`). Returns `None` on triangle-free or edgeless graphs where every
/// score is `NaN`.
pub fn best_single_k_truss<G: GraphView, M: CommunityMetric + ?Sized>(
    g: &G,
    idx: &EdgeIndex,
    t: &TrussDecomposition,
    metric: &M,
) -> Option<BestSingleTruss> {
    let ctx = GraphContext {
        total_vertices: g.num_vertices() as u64,
        total_edges: g.num_edges() as u64,
    };
    let trusses = enumerate_trusses(g, idx, t, metric.needs_triangles());
    let mut best: Option<BestSingleTruss> = None;
    for info in trusses {
        let score = metric.score(&info.primaries, &ctx);
        if score.is_nan() {
            continue;
        }
        let better = match &best {
            None => true,
            // The enumeration runs from the deepest level down, so strict
            // improvement keeps the largest k on ties.
            Some(b) => score > b.score,
        };
        if better {
            best = Some(BestSingleTruss { truss: info, score });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::truss_decomposition_with_index;
    use bestk_core::Metric;
    use bestk_graph::generators::{self, regular};
    use bestk_graph::CsrGraph;

    fn setup(g: &CsrGraph) -> (EdgeIndex, TrussDecomposition) {
        let idx = EdgeIndex::build(g);
        let t = truss_decomposition_with_index(g, &idx);
        (idx, t)
    }

    #[test]
    fn figure2_distinct_trusses() {
        let g = generators::paper_figure2();
        let (idx, t) = setup(&g);
        let trusses = enumerate_trusses(&g, &idx, &t, true);
        // Level 4: the two K4s. Level 3: one component (K4s joined through
        // the 3-truss triangles around v5..v8 — check connectivity),
        // level 2: the whole graph.
        let count_at = |k: u32| trusses.iter().filter(|ti| ti.k == k).count();
        assert_eq!(count_at(4), 2);
        assert!(count_at(2) >= 1);
        for ti in &trusses {
            if ti.k == 4 {
                assert_eq!(ti.vertices.len(), 4);
                assert_eq!(ti.primaries.internal_edges, 6);
                assert_eq!(ti.primaries.triangles, 4);
            }
        }
    }

    #[test]
    fn figure2_best_single_truss() {
        let g = generators::paper_figure2();
        let (idx, t) = setup(&g);
        let best = best_single_k_truss(&g, &idx, &t, &Metric::InternalDensity).unwrap();
        assert_eq!(best.truss.k, 4);
        assert_eq!(best.score, 1.0);
        assert_eq!(best.truss.vertices.len(), 4);
        let best_cc = best_single_k_truss(&g, &idx, &t, &Metric::ClusteringCoefficient).unwrap();
        assert_eq!(best_cc.truss.k, 4);
    }

    #[test]
    fn two_disjoint_cliques() {
        // K6 and K4: the K6 wins by average degree, the K4s tie density 1,
        // tie goes to larger k (the K6's 6-truss).
        let mut b = bestk_graph::GraphBuilder::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b.add_edge(u, v);
            }
        }
        for u in 6..10u32 {
            for v in (u + 1)..10 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let (idx, t) = setup(&g);
        let best = best_single_k_truss(&g, &idx, &t, &Metric::AverageDegree).unwrap();
        assert_eq!(best.truss.k, 6);
        assert_eq!(best.truss.vertices, vec![0, 1, 2, 3, 4, 5]);
        let dense = best_single_k_truss(&g, &idx, &t, &Metric::InternalDensity).unwrap();
        assert_eq!(dense.truss.k, 6, "density ties resolve to the larger k");
    }

    #[test]
    fn primaries_are_consistent_with_set_profile() {
        // Summing every truss at a level (with multiplicity rules) must
        // reproduce the set profile's vertex/edge counts at that level,
        // when the level has shell edges in every component.
        let g = generators::overlapping_cliques(120, 25, (3, 9), 4);
        let (idx, t) = setup(&g);
        let set_profile = crate::bestkset::truss_set_profile(&g, &idx, &t);
        let trusses = enumerate_trusses(&g, &idx, &t, false);
        // Reconstruct per-level totals from components: components at level
        // k plus deeper components that had no truss-k edge; easier check —
        // the top level must match exactly.
        let tmax = t.tmax();
        let top: Vec<&TrussInfo> = trusses.iter().filter(|ti| ti.k == tmax).collect();
        assert!(!top.is_empty());
        let n_sum: u64 = top.iter().map(|ti| ti.primaries.num_vertices).sum();
        let m_sum: u64 = top.iter().map(|ti| ti.primaries.internal_edges).sum();
        assert_eq!(n_sum, set_profile.primaries[tmax as usize].num_vertices);
        assert_eq!(m_sum, set_profile.primaries[tmax as usize].internal_edges);
    }

    #[test]
    fn triangle_free_graph_has_no_dense_truss() {
        let g = regular::cycle(12);
        let (idx, t) = setup(&g);
        let trusses = enumerate_trusses(&g, &idx, &t, true);
        assert_eq!(trusses.len(), 1);
        assert_eq!(trusses[0].k, 2);
        assert_eq!(trusses[0].primaries.triangles, 0);
        // The cycle has triplets but no triangles: cc is defined and zero.
        let cc = best_single_k_truss(&g, &idx, &t, &Metric::ClusteringCoefficient).unwrap();
        assert_eq!(cc.score, 0.0);
        assert!(best_single_k_truss(&g, &idx, &t, &Metric::AverageDegree).is_some());
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(3);
        let (idx, t) = setup(&g);
        assert!(enumerate_trusses(&g, &idx, &t, true).is_empty());
        assert!(best_single_k_truss(&g, &idx, &t, &Metric::AverageDegree).is_none());
    }
}
