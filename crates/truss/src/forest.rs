//! The truss forest: the §IV-A core-forest structure lifted to trusses.
//!
//! Every distinct k-truss maps to one node holding the truss's *shell*
//! (its edges with truss number exactly `k`, and the vertices whose maximum
//! incident truss is `k`); deeper trusses are descendants. Construction
//! processes truss levels descending with a union-find over vertices: each
//! level's edges merge components, and every merge event becomes a parent
//! link — `O(m α(n))` after the decomposition.
//!
//! Like the paper's core forest it stores the whole hierarchy in `O(n + m)`
//! space and supports `O(|truss|)` reconstruction, which is what
//! [`enumerate_trusses`](crate::besttruss::enumerate_trusses)-style scoring
//! needs. Isolated vertices (no incident edges) are outside every truss and
//! thus absent from the forest.

use bestk_graph::cast;
use bestk_graph::{GraphView, VertexId};

use crate::decomposition::TrussDecomposition;
use crate::edgeindex::EdgeIndex;

/// One node of the truss forest: a k-truss's shell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrussForestNode {
    /// The `k` of the associated k-truss.
    pub truss: u32,
    /// Edge ids with truss number exactly `k` inside this truss.
    pub edges: Vec<u32>,
    /// Vertices entering the hierarchy at this node (`vertex_truss == k`,
    /// inside this truss).
    pub vertices: Vec<VertexId>,
    /// Parent node (the enclosing truss with the next smaller populated
    /// level), `None` for roots.
    pub parent: Option<u32>,
    /// Child nodes (deeper trusses merged into this one).
    pub children: Vec<u32>,
}

/// The truss forest, nodes sorted by descending truss level (children
/// before parents).
#[derive(Debug, Clone)]
pub struct TrussForest {
    nodes: Vec<TrussForestNode>,
}

impl TrussForest {
    /// Builds the forest from a truss decomposition.
    pub fn build<G: GraphView>(g: &G, idx: &EdgeIndex, t: &TrussDecomposition) -> Self {
        Builder::new(g.num_vertices(), idx, t).run()
    }

    /// Number of nodes (= number of distinct k-trusses with a non-empty
    /// shell).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Node accessor.
    #[inline]
    pub fn node(&self, i: u32) -> &TrussForestNode {
        &self.nodes[i as usize]
    }

    /// All nodes, children before parents.
    #[inline]
    pub fn nodes(&self) -> &[TrussForestNode] {
        &self.nodes
    }

    /// Root node indices.
    pub fn roots(&self) -> Vec<u32> {
        (0..cast::u32_of(self.nodes.len()))
            .filter(|&i| self.nodes[i as usize].parent.is_none())
            .collect()
    }

    /// Reconstructs the truss at node `i`: its full vertex set (sorted) and
    /// edge-id set, in `O(size)`.
    pub fn truss_members(&self, i: u32) -> (Vec<VertexId>, Vec<u32>) {
        let mut verts = Vec::new();
        let mut edges = Vec::new();
        let mut stack = vec![i];
        while let Some(j) = stack.pop() {
            let node = &self.nodes[j as usize];
            verts.extend_from_slice(&node.vertices);
            edges.extend_from_slice(&node.edges);
            stack.extend_from_slice(&node.children);
        }
        verts.sort_unstable();
        (verts, edges)
    }
}

/// Union-find with path halving.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..cast::u32_of(n)).collect(),
        }
    }

    fn find(&mut self, mut v: u32) -> u32 {
        while self.parent[v as usize] != v {
            self.parent[v as usize] = self.parent[self.parent[v as usize] as usize];
            v = self.parent[v as usize];
        }
        v
    }

    /// Unions by attaching `b`'s root under `a`'s root; returns the root.
    fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
        ra
    }
}

struct Builder<'a> {
    idx: &'a EdgeIndex,
    t: &'a TrussDecomposition,
    nodes: Vec<TrussForestNode>,
    dsu: Dsu,
    /// Current node of each component, indexed by DSU root (`u32::MAX` =
    /// fresh component with no node yet). Only meaningful at roots.
    comp_node: Vec<u32>,
    /// Whether a vertex has been assigned to its entry node already.
    claimed_bits: Vec<bool>,
}

impl<'a> Builder<'a> {
    fn new(n: usize, idx: &'a EdgeIndex, t: &'a TrussDecomposition) -> Self {
        Builder {
            idx,
            t,
            nodes: Vec::new(),
            dsu: Dsu::new(n),
            comp_node: vec![u32::MAX; n],
            claimed_bits: vec![false; n],
        }
    }

    fn run(mut self) -> TrussForest {
        let m = self.idx.num_edges();
        // Edges grouped by truss level, descending.
        let mut by_level: Vec<(u32, u32)> =
            (0..cast::u32_of(m)).map(|e| (self.t.truss(e), e)).collect();
        by_level.sort_unstable_by_key(|&(lvl, e)| (std::cmp::Reverse(lvl), e));

        let mut i = 0usize;
        while i < by_level.len() {
            let level = by_level[i].0;
            let mut j = i;
            while j < by_level.len() && by_level[j].0 == level {
                j += 1;
            }
            let level_edges = &by_level[i..j];
            self.process_level(level, level_edges);
            i = j;
        }
        self.finish()
    }

    fn process_level(&mut self, level: u32, level_edges: &[(u32, u32)]) {
        // Pass A: old nodes of the components this level touches, deduped
        // by their pre-union roots.
        let mut old_entries: Vec<(u32, u32)> = Vec::new(); // (old_root, old_node)
        for &(_, e) in level_edges {
            let (u, v) = self.idx.endpoints(e);
            for w in [u, v] {
                let r = self.dsu.find(w);
                if self.comp_node[r as usize] != u32::MAX {
                    old_entries.push((r, self.comp_node[r as usize]));
                }
            }
        }
        old_entries.sort_unstable();
        old_entries.dedup();

        // Pass B: unions.
        for &(_, e) in level_edges {
            let (u, v) = self.idx.endpoints(e);
            self.dsu.union(u, v);
        }

        // Pass C: one new node per distinct post-union root; old nodes
        // become its children.
        let mut new_node_of_root: Vec<(u32, u32)> = Vec::new(); // (root, node)
        let node_at = |builder: &mut Self, root: u32, map: &mut Vec<(u32, u32)>| -> u32 {
            if let Some(&(_, nid)) = map.iter().find(|&&(r, _)| r == root) {
                return nid;
            }
            let nid = cast::u32_of(builder.nodes.len());
            builder.nodes.push(TrussForestNode {
                truss: level,
                edges: Vec::new(),
                vertices: Vec::new(),
                parent: None,
                children: Vec::new(),
            });
            map.push((root, nid));
            nid
        };
        for &(old_root, old_node) in &old_entries {
            let new_root = self.dsu.find(old_root);
            let nid = node_at(self, new_root, &mut new_node_of_root);
            self.nodes[old_node as usize].parent = Some(nid);
            self.nodes[nid as usize].children.push(old_node);
        }
        // Assign this level's edges and entering vertices.
        for &(_, e) in level_edges {
            let (u, v) = self.idx.endpoints(e);
            let root = self.dsu.find(u);
            let nid = node_at(self, root, &mut new_node_of_root);
            self.nodes[nid as usize].edges.push(e);
            for w in [u, v] {
                if self.t.vertex_truss(w) == level && !self.claimed(w) {
                    self.nodes[nid as usize].vertices.push(w);
                    self.mark_claimed(w);
                }
            }
        }
        // Update comp_node at the new roots.
        for &(root, nid) in &new_node_of_root {
            self.comp_node[root as usize] = nid;
        }
    }

    fn claimed(&self, v: VertexId) -> bool {
        self.claimed_bits.get(v as usize).copied().unwrap_or(false)
    }

    fn mark_claimed(&mut self, v: VertexId) {
        self.claimed_bits[v as usize] = true;
    }

    fn finish(mut self) -> TrussForest {
        // Sort by descending truss, remapping indices so children precede
        // parents (stable keeps deterministic order).
        let total = self.nodes.len();
        let mut order: Vec<u32> = (0..cast::u32_of(total)).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.nodes[i as usize].truss));
        let mut remap = vec![0u32; total];
        for (new_idx, &old) in order.iter().enumerate() {
            remap[old as usize] = cast::u32_of(new_idx);
        }
        let mut new_nodes: Vec<TrussForestNode> = Vec::with_capacity(total);
        for &old in &order {
            let node = &mut self.nodes[old as usize];
            new_nodes.push(TrussForestNode {
                truss: node.truss,
                edges: std::mem::take(&mut node.edges),
                vertices: std::mem::take(&mut node.vertices),
                parent: node.parent.map(|p| remap[p as usize]),
                children: node.children.iter().map(|&c| remap[c as usize]).collect(),
            });
        }
        TrussForest { nodes: new_nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::besttruss::enumerate_trusses;
    use crate::decomposition::truss_decomposition_with_index;
    use bestk_graph::generators::{self, regular};
    use bestk_graph::CsrGraph;

    fn forest_of(g: &CsrGraph) -> (TrussForest, EdgeIndex, TrussDecomposition) {
        let idx = EdgeIndex::build(g);
        let t = truss_decomposition_with_index(g, &idx);
        (TrussForest::build(g, &idx, &t), idx, t)
    }

    #[test]
    fn figure2_truss_forest() {
        // Levels: two 4-trusses (the K4s), one 3-truss node, one 2-truss
        // root (the whole graph's edges).
        let g = generators::paper_figure2();
        let (f, _, _) = forest_of(&g);
        let count_at = |k: u32| f.nodes().iter().filter(|n| n.truss == k).count();
        assert_eq!(count_at(4), 2);
        assert!(count_at(2) >= 1);
        // Shell edge counts at level 4: each K4 contributes its 6 edges.
        for node in f.nodes().iter().filter(|n| n.truss == 4) {
            assert_eq!(node.edges.len(), 6);
            assert_eq!(node.vertices.len(), 4);
            assert!(node.parent.is_some());
        }
        // The root holds the truss-2 shell (edges in no triangle).
        let roots = f.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(f.node(roots[0]).truss, 2);
    }

    #[test]
    fn structure_invariants() {
        for g in [
            generators::erdos_renyi_gnm(150, 600, 3),
            generators::overlapping_cliques(200, 40, (3, 10), 7),
            regular::clique_chain(4, 5),
            generators::paper_figure2(),
        ] {
            let (f, idx, t) = forest_of(&g);
            // Children precede parents; parents have strictly lower level.
            for (i, node) in f.nodes().iter().enumerate() {
                if let Some(p) = node.parent {
                    assert!((p as usize) > i);
                    assert!(f.node(p).truss < node.truss);
                    assert!(f.node(p).children.contains(&(i as u32)));
                }
                assert!(!node.edges.is_empty(), "every node has shell edges");
                for &e in &node.edges {
                    assert_eq!(t.truss(e), node.truss);
                }
                for &v in &node.vertices {
                    assert_eq!(t.vertex_truss(v), node.truss);
                }
            }
            // Every edge in exactly one node; every non-isolated vertex in
            // exactly one node.
            let mut edge_seen = vec![false; idx.num_edges()];
            let mut vert_seen = vec![false; g.num_vertices()];
            for node in f.nodes() {
                for &e in &node.edges {
                    assert!(!edge_seen[e as usize]);
                    edge_seen[e as usize] = true;
                }
                for &v in &node.vertices {
                    assert!(!vert_seen[v as usize]);
                    vert_seen[v as usize] = true;
                }
            }
            assert!(edge_seen.iter().all(|&b| b));
            for v in g.vertices() {
                assert_eq!(vert_seen[v as usize], g.degree(v) > 0);
            }
        }
    }

    #[test]
    fn reconstruction_matches_enumeration() {
        for g in [
            generators::erdos_renyi_gnm(100, 420, 9),
            generators::overlapping_cliques(120, 25, (3, 9), 5),
            generators::paper_figure2(),
        ] {
            let (f, idx, t) = forest_of(&g);
            let enumerated = enumerate_trusses(&g, &idx, &t, false);
            // Forest nodes and enumerated trusses must agree as multisets
            // of (k, sorted vertex set).
            let mut from_forest: Vec<(u32, Vec<VertexId>)> = (0..f.node_count() as u32)
                .map(|i| {
                    let (verts, _) = f.truss_members(i);
                    (f.node(i).truss, verts)
                })
                .collect();
            let mut from_enum: Vec<(u32, Vec<VertexId>)> = enumerated
                .into_iter()
                .map(|ti| (ti.k, ti.vertices))
                .collect();
            from_forest.sort();
            from_enum.sort();
            assert_eq!(from_forest, from_enum);
        }
    }

    #[test]
    fn edgeless_graph_forest_is_empty() {
        let (f, _, _) = forest_of(&CsrGraph::empty(4));
        assert_eq!(f.node_count(), 0);
        assert!(f.roots().is_empty());
    }

    #[test]
    fn disjoint_cliques_are_separate_trees() {
        let g =
            bestk_graph::transform::disjoint_union(&regular::complete(5), &regular::complete(4));
        let (f, _, _) = forest_of(&g);
        assert_eq!(f.roots().len(), 2);
        let mut levels: Vec<u32> = f.nodes().iter().map(|n| n.truss).collect();
        levels.sort_unstable();
        assert_eq!(levels, vec![4, 5]);
    }
}
