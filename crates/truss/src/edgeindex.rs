//! Dense edge ids over a CSR graph.
//!
//! Truss algorithms are edge-centric: supports, truss numbers, and deletion
//! flags are all per-undirected-edge arrays. This index assigns each
//! undirected edge a dense id `0..m` (both CSR directions map to the same
//! id) and supports `O(log d)` id lookup by endpoint pair.

use bestk_graph::{CsrGraph, VertexId};

/// Edge-id annotation for a [`CsrGraph`].
#[derive(Debug, Clone)]
pub struct EdgeIndex {
    /// `ids[p]` = edge id of the CSR adjacency slot `p` (aligned with
    /// `graph.raw_neighbors()`).
    ids: Vec<u32>,
    /// `endpoints[e]` = the edge's `(u, v)` with `u < v`.
    endpoints: Vec<(VertexId, VertexId)>,
}

impl EdgeIndex {
    /// Builds the index in `O(n + m)` (edges are numbered in the order
    /// [`CsrGraph::edges`] yields them).
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` edges.
    pub fn build(g: &CsrGraph) -> Self {
        assert!(g.num_edges() <= u32::MAX as usize, "edge ids are u32");
        let mut ids = vec![0u32; g.raw_neighbors().len()];
        let mut endpoints = Vec::with_capacity(g.num_edges());
        // Walk each vertex's sorted adjacency; assign ids to the (u, v)
        // direction with u < v first, then mirror to (v, u) via a per-vertex
        // cursor into the reverse slot.
        let offsets = g.offsets();
        let mut next = 0u32;
        // cursor[v]: how many back-edges of v (to smaller ids) we've mirrored.
        let mut cursor: Vec<usize> = offsets[..g.num_vertices()].to_vec();
        for u in g.vertices() {
            let (start, end) = (offsets[u as usize], offsets[u as usize + 1]);
            for p in start..end {
                let v = g.raw_neighbors()[p];
                if v > u {
                    ids[p] = next;
                    endpoints.push((u, v));
                    // Mirror on v's side: v's adjacency is sorted, and its
                    // sub-`v` neighbors appear in ascending order — which is
                    // exactly the order we visit (u ascending). So the next
                    // unmirrored slot of v is cursor[v].
                    let q = cursor[v as usize];
                    debug_assert_eq!(g.raw_neighbors()[q], u, "mirror slot mismatch");
                    ids[q] = next;
                    cursor[v as usize] = q + 1;
                    next += 1;
                }
            }
        }
        debug_assert_eq!(next as usize, g.num_edges());
        EdgeIndex { ids, endpoints }
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// The endpoints `(u, v)` (with `u < v`) of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: u32) -> (VertexId, VertexId) {
        self.endpoints[e as usize]
    }

    /// Edge ids aligned with the graph's raw adjacency array.
    #[inline]
    pub fn slot_ids(&self) -> &[u32] {
        &self.ids
    }

    /// The edge id at a raw adjacency slot.
    #[inline]
    pub fn id_at_slot(&self, slot: usize) -> u32 {
        self.ids[slot]
    }

    /// Looks up the id of edge `{u, v}` by binary search on the sorted
    /// adjacency of the lower-degree endpoint; `None` if absent.
    pub fn edge_id(&self, g: &CsrGraph, u: VertexId, v: VertexId) -> Option<u32> {
        if u == v {
            return None;
        }
        let (a, b) = if g.degree(u) <= g.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let start = g.offsets()[a as usize];
        let adj = g.neighbors(a);
        adj.binary_search(&b).ok().map(|i| self.ids[start + i])
    }

    /// Iterates `(slot_range, vertex)` pairs — each vertex's adjacency slot
    /// range, for algorithms that need slot-aligned scans.
    pub fn slots_of(&self, g: &CsrGraph, v: VertexId) -> std::ops::Range<usize> {
        g.offsets()[v as usize]..g.offsets()[v as usize + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_graph::generators::{self, regular};
    use bestk_graph::GraphBuilder;

    #[test]
    fn ids_are_dense_and_symmetric() {
        let g = generators::erdos_renyi_gnm(100, 400, 7);
        let idx = EdgeIndex::build(&g);
        assert_eq!(idx.num_edges(), 400);
        // Every id appears exactly twice in the slot array.
        let mut count = vec![0usize; 400];
        for &id in idx.slot_ids() {
            count[id as usize] += 1;
        }
        assert!(count.iter().all(|&c| c == 2));
        // Endpoint lookup round trips.
        for e in 0..400u32 {
            let (u, v) = idx.endpoints(e);
            assert!(u < v);
            assert_eq!(idx.edge_id(&g, u, v), Some(e));
            assert_eq!(idx.edge_id(&g, v, u), Some(e));
        }
    }

    #[test]
    fn missing_edges_and_self_loops() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2)]);
        let g = b.build();
        let idx = EdgeIndex::build(&g);
        assert_eq!(idx.edge_id(&g, 0, 2), None);
        assert_eq!(idx.edge_id(&g, 1, 1), None);
        assert!(idx.edge_id(&g, 0, 1).is_some());
    }

    #[test]
    fn slot_alignment() {
        let g = regular::complete(5);
        let idx = EdgeIndex::build(&g);
        for v in g.vertices() {
            let range = idx.slots_of(&g, v);
            for (i, slot) in range.enumerate() {
                let u = g.neighbors(v)[i];
                let e = idx.id_at_slot(slot);
                let (a, b) = idx.endpoints(e);
                assert!((a, b) == (u.min(v), u.max(v)));
            }
        }
    }

    #[test]
    fn empty_graph() {
        let idx = EdgeIndex::build(&CsrGraph::empty(4));
        assert_eq!(idx.num_edges(), 0);
    }
}
