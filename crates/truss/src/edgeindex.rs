//! Dense edge ids over a graph's adjacency structure.
//!
//! Truss algorithms are edge-centric: supports, truss numbers, and deletion
//! flags are all per-undirected-edge arrays. This index assigns each
//! undirected edge a dense id `0..m` (both adjacency directions map to the
//! same id) and supports `O(log d)` id lookup by endpoint pair.
//!
//! The index *owns* a materialized copy of the adjacency (offsets plus
//! sorted neighbor array), so it can be built from any [`GraphView`]
//! backend — canonical CSR, succinct, or memory-mapped — and the truss
//! kernels address adjacency exclusively through it rather than through
//! backend-specific raw arrays.

use bestk_graph::{GraphView, VertexId};

/// Edge-id annotation plus a slot-aligned adjacency copy.
#[derive(Debug, Clone)]
pub struct EdgeIndex {
    /// Adjacency offsets: vertex `v`'s slots are `offsets[v]..offsets[v+1]`.
    offsets: Vec<usize>,
    /// Slot-aligned neighbor ids (each undirected edge appears twice).
    adj: Vec<VertexId>,
    /// `ids[p]` = edge id of adjacency slot `p` (aligned with `adj`).
    ids: Vec<u32>,
    /// `endpoints[e]` = the edge's `(u, v)` with `u < v`.
    endpoints: Vec<(VertexId, VertexId)>,
}

impl EdgeIndex {
    /// Builds the index in `O(n + m)` from any storage backend (edges are
    /// numbered in ascending `(u, v)` order with `u < v`, matching
    /// `CsrGraph::edges`).
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` edges.
    pub fn build<G: GraphView>(g: &G) -> Self {
        assert!(g.num_edges() <= u32::MAX as usize, "edge ids are u32");
        let offsets = g.degree_offsets();
        let mut adj: Vec<VertexId> = Vec::with_capacity(offsets[g.num_vertices()]);
        for v in g.vertices() {
            adj.extend(g.neighbors(v));
        }
        let mut ids = vec![0u32; adj.len()];
        let mut endpoints = Vec::with_capacity(g.num_edges());
        // Walk each vertex's sorted adjacency; assign ids to the (u, v)
        // direction with u < v first, then mirror to (v, u) via a per-vertex
        // cursor into the reverse slot.
        let mut next = 0u32;
        // cursor[v]: how many back-edges of v (to smaller ids) we've mirrored.
        let mut cursor: Vec<usize> = offsets[..g.num_vertices()].to_vec();
        for u in g.vertices() {
            let (start, end) = (offsets[u as usize], offsets[u as usize + 1]);
            for p in start..end {
                let v = adj[p];
                if v > u {
                    ids[p] = next;
                    endpoints.push((u, v));
                    // Mirror on v's side: v's adjacency is sorted, and its
                    // sub-`v` neighbors appear in ascending order — which is
                    // exactly the order we visit (u ascending). So the next
                    // unmirrored slot of v is cursor[v].
                    let q = cursor[v as usize];
                    debug_assert_eq!(adj[q], u, "mirror slot mismatch");
                    ids[q] = next;
                    cursor[v as usize] = q + 1;
                    next += 1;
                }
            }
        }
        debug_assert_eq!(next as usize, g.num_edges());
        EdgeIndex {
            offsets,
            adj,
            ids,
            endpoints,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// Degree of vertex `v` (the width of its slot range).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The endpoints `(u, v)` (with `u < v`) of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: u32) -> (VertexId, VertexId) {
        self.endpoints[e as usize]
    }

    /// Edge ids aligned with the adjacency slot array.
    #[inline]
    pub fn slot_ids(&self) -> &[u32] {
        &self.ids
    }

    /// The edge id at an adjacency slot.
    #[inline]
    pub fn id_at_slot(&self, slot: usize) -> u32 {
        self.ids[slot]
    }

    /// The neighbor id at an adjacency slot.
    #[inline]
    pub fn neighbor_at(&self, slot: usize) -> VertexId {
        self.adj[slot]
    }

    /// Looks up the id of edge `{u, v}` by binary search on the sorted
    /// adjacency of the lower-degree endpoint; `None` if absent.
    pub fn edge_id(&self, u: VertexId, v: VertexId) -> Option<u32> {
        if u == v {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let range = self.slots_of(a);
        let start = range.start;
        self.adj[range]
            .binary_search(&b)
            .ok()
            .map(|i| self.ids[start + i])
    }

    /// The adjacency slot range of vertex `v`, for slot-aligned scans.
    #[inline]
    pub fn slots_of(&self, v: VertexId) -> std::ops::Range<usize> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_graph::generators::{self, regular};
    use bestk_graph::{CsrGraph, GraphBuilder, SuccinctCsr};

    #[test]
    fn ids_are_dense_and_symmetric() {
        let g = generators::erdos_renyi_gnm(100, 400, 7);
        let idx = EdgeIndex::build(&g);
        assert_eq!(idx.num_edges(), 400);
        // Every id appears exactly twice in the slot array.
        let mut count = vec![0usize; 400];
        for &id in idx.slot_ids() {
            count[id as usize] += 1;
        }
        assert!(count.iter().all(|&c| c == 2));
        // Endpoint lookup round trips.
        for e in 0..400u32 {
            let (u, v) = idx.endpoints(e);
            assert!(u < v);
            assert_eq!(idx.edge_id(u, v), Some(e));
            assert_eq!(idx.edge_id(v, u), Some(e));
        }
    }

    #[test]
    fn missing_edges_and_self_loops() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2)]);
        let g = b.build();
        let idx = EdgeIndex::build(&g);
        assert_eq!(idx.edge_id(0, 2), None);
        assert_eq!(idx.edge_id(1, 1), None);
        assert!(idx.edge_id(0, 1).is_some());
    }

    #[test]
    fn slot_alignment() {
        let g = regular::complete(5);
        let idx = EdgeIndex::build(&g);
        for v in g.vertices() {
            let range = idx.slots_of(v);
            for (i, slot) in range.enumerate() {
                let u = g.neighbors(v)[i];
                assert_eq!(idx.neighbor_at(slot), u);
                let e = idx.id_at_slot(slot);
                let (a, b) = idx.endpoints(e);
                assert!((a, b) == (u.min(v), u.max(v)));
            }
        }
    }

    #[test]
    fn backends_build_identical_indexes() {
        let g = generators::erdos_renyi_gnm(120, 500, 3);
        let from_csr = EdgeIndex::build(&g);
        let from_succinct = EdgeIndex::build(&SuccinctCsr::from_csr(&g));
        assert_eq!(from_csr.slot_ids(), from_succinct.slot_ids());
        for e in 0..500u32 {
            assert_eq!(from_csr.endpoints(e), from_succinct.endpoints(e));
        }
        for v in g.vertices() {
            assert_eq!(from_csr.slots_of(v), from_succinct.slots_of(v));
            assert_eq!(from_csr.degree(v), g.degree(v));
        }
    }

    #[test]
    fn empty_graph() {
        let idx = EdgeIndex::build(&CsrGraph::empty(4));
        assert_eq!(idx.num_edges(), 0);
        assert_eq!(idx.num_vertices(), 4);
    }
}
