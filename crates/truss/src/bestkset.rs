//! Finding the best k-truss set (paper §VI-B).
//!
//! The k-truss sets are nested like k-core sets, so the same
//! primaries-then-score framework applies. Because trusses are
//! edge-defined, every primary value reduces to counting over the *truss
//! numbers* of edges and the per-vertex entry levels:
//!
//! * `m(S_k)` — edges with `t(e) ≥ k`: one histogram suffix sum.
//! * `n(S_k)` — vertices whose max incident truss is ≥ k: another
//!   histogram.
//! * `b(S_k)` — an edge is boundary exactly while one endpoint has entered
//!   and the other has not, i.e. for `min_vt(e) < k ≤ max_vt(e)`: two
//!   histograms.
//! * `Δ(S_k)` — a triangle lives in the k-truss set iff the *minimum* truss
//!   number over its three edges is ≥ k: one triangle pass recording that
//!   minimum, then a histogram.
//! * `t(S_k)` — per-vertex incident truss numbers sorted descending give
//!   the degree sequence `d_k(v)` for every k at once; pair-count deltas
//!   accumulate per level.
//!
//! Total cost: `O(m^1.5)` for the triangle pass (matching the k-core
//! Algorithm 3 bound), `O(m log m)` for the rest, after the `O(m^1.5)`
//! decomposition itself.

use bestk_core::metrics::{best_k, CommunityMetric, GraphContext, PrimaryValues};
use bestk_graph::cast;
use bestk_graph::{GraphView, VertexId};

use crate::decomposition::TrussDecomposition;
use crate::edgeindex::EdgeIndex;

/// Per-k primary values of every k-truss set, `k = 2 ..= tmax`.
#[derive(Debug, Clone)]
pub struct TrussSetProfile {
    /// Largest truss number.
    pub tmax: u32,
    /// `primaries[k]` describes the k-truss set; indices 0 and 1 duplicate
    /// index 2 (k-trusses are defined from k = 2). Length `tmax + 1`
    /// (empty when the graph has no edges).
    pub primaries: Vec<PrimaryValues>,
    /// Whole-graph context used for scoring.
    pub context: GraphContext,
}

/// The answer to the best-k-truss-set problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestKTruss {
    /// The best `k` (≥ 2).
    pub k: u32,
    /// The score of the k-truss set at that `k`.
    pub score: f64,
}

impl TrussSetProfile {
    /// Scores every k-truss set under `metric`; `O(tmax)`.
    pub fn scores<M: CommunityMetric + ?Sized>(&self, metric: &M) -> Vec<f64> {
        self.primaries
            .iter()
            .map(|pv| metric.score(pv, &self.context))
            .collect()
    }

    /// The best `k` under `metric` (ties to the largest k; `k < 2` never
    /// wins because indices 0–1 duplicate index 2).
    pub fn best<M: CommunityMetric + ?Sized>(&self, metric: &M) -> Option<BestKTruss> {
        best_k(&self.scores(metric)).map(|(k, score)| BestKTruss { k: k.max(2), score })
    }
}

/// Computes the full [`TrussSetProfile`] from a decomposition.
pub fn truss_set_profile<G: GraphView>(
    g: &G,
    idx: &EdgeIndex,
    t: &TrussDecomposition,
) -> TrussSetProfile {
    let tmax = t.tmax();
    let context = GraphContext {
        total_vertices: g.num_vertices() as u64,
        total_edges: g.num_edges() as u64,
    };
    if tmax < 2 {
        return TrussSetProfile {
            tmax,
            primaries: Vec::new(),
            context,
        };
    }
    let levels = tmax as usize + 1;
    let m = idx.num_edges();

    // m(S_k): histogram of truss numbers, suffix-summed.
    let mut edges_at = vec![0u64; levels + 1];
    for e in 0..cast::u32_of(m) {
        edges_at[t.truss(e) as usize] += 1;
    }

    // n(S_k): histogram of vertex entry levels.
    let mut verts_at = vec![0u64; levels + 1];
    for v in g.vertices() {
        let vt = t.vertex_truss(v) as usize;
        if vt >= 2 {
            verts_at[vt] += 1;
        }
    }

    // b(S_k) = #{e : min_vt(e) < k <= max_vt(e)}.
    let mut max_vt_at = vec![0u64; levels + 1];
    let mut min_vt_at = vec![0u64; levels + 1];
    for e in 0..cast::u32_of(m) {
        let (u, v) = idx.endpoints(e);
        let (a, b) = (
            t.vertex_truss(u).min(t.vertex_truss(v)) as usize,
            t.vertex_truss(u).max(t.vertex_truss(v)) as usize,
        );
        max_vt_at[b.min(levels)] += 1;
        min_vt_at[a.min(levels)] += 1;
    }

    // Δ(S_k): histogram over each triangle's minimum edge truss.
    let tri_at = triangle_min_truss_histogram(idx, t, levels);

    // t(S_k): per-vertex descending incident-truss walk.
    let mut trip_at = vec![0u64; levels + 1];
    for v in g.vertices() {
        let mut incident: Vec<u32> = idx
            .slots_of(v)
            .map(|p| t.truss(idx.id_at_slot(p)))
            .collect();
        if incident.len() < 2 {
            continue;
        }
        incident.sort_unstable_by_key(|&x| std::cmp::Reverse(x));
        // Walk levels descending: at level k the degree is the count of
        // incident truss values >= k; record the pair-count delta at each
        // distinct level.
        let mut d_prev = 0u64;
        let mut i = 0usize;
        while i < incident.len() {
            let level = incident[i];
            let mut j = i;
            while j < incident.len() && incident[j] == level {
                j += 1;
            }
            let d_new = j as u64;
            trip_at[level as usize] += choose2(d_new) - choose2(d_prev);
            d_prev = d_new;
            i = j;
        }
    }

    // Suffix-sum everything into per-k primaries.
    let mut primaries = vec![PrimaryValues::default(); levels];
    let mut m_acc = 0u64;
    let mut n_acc = 0u64;
    let mut maxvt_acc = 0u64;
    let mut minvt_acc = 0u64;
    let mut tri_acc = 0u64;
    let mut trip_acc = 0u64;
    for k in (2..levels).rev() {
        m_acc += edges_at[k];
        n_acc += verts_at[k];
        maxvt_acc += max_vt_at[k];
        minvt_acc += min_vt_at[k];
        tri_acc += tri_at[k];
        trip_acc += trip_at[k];
        primaries[k] = PrimaryValues {
            num_vertices: n_acc,
            internal_edges: m_acc,
            boundary_edges: maxvt_acc - minvt_acc,
            triangles: tri_acc,
            triplets: trip_acc,
        };
    }
    primaries[0] = primaries[2];
    primaries[1] = primaries[2];
    TrussSetProfile {
        tmax,
        primaries,
        context,
    }
}

/// One forward-triangle pass recording, for each triangle, the minimum
/// truss number among its three edges; returns the per-level histogram.
fn triangle_min_truss_histogram(
    idx: &EdgeIndex,
    t: &TrussDecomposition,
    levels: usize,
) -> Vec<u64> {
    let n = idx.num_vertices();
    let mut hist = vec![0u64; levels + 1];
    let mut order: Vec<VertexId> = (0..cast::vertex_id(n)).collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(idx.degree(v)), v));
    let mut pos = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = cast::u32_of(i);
    }
    let mut mark: Vec<u32> = vec![u32::MAX; n];
    for &v in &order {
        let pv = pos[v as usize];
        let range = idx.slots_of(v);
        for p in range.clone() {
            let w = idx.neighbor_at(p);
            if pos[w as usize] > pv {
                mark[w as usize] = idx.id_at_slot(p);
            }
        }
        for p in range.clone() {
            let u = idx.neighbor_at(p);
            if pos[u as usize] <= pv {
                continue;
            }
            let t_vu = t.truss(idx.id_at_slot(p));
            for q in idx.slots_of(u) {
                let w = idx.neighbor_at(q);
                if pos[w as usize] > pos[u as usize] && mark[w as usize] != u32::MAX {
                    let t_vw = t.truss(mark[w as usize]);
                    let t_uw = t.truss(idx.id_at_slot(q));
                    let min_t = t_vu.min(t_vw).min(t_uw) as usize;
                    hist[min_t] += 1;
                }
            }
        }
        for p in range {
            let w = idx.neighbor_at(p);
            mark[w as usize] = u32::MAX;
        }
    }
    hist
}

#[inline]
fn choose2(x: u64) -> u64 {
    x * x.saturating_sub(1) / 2
}

/// One-call convenience: profile + best k under `metric`.
pub fn best_k_truss_set<G: GraphView, M: CommunityMetric + ?Sized>(
    g: &G,
    t: &TrussDecomposition,
    metric: &M,
) -> Option<BestKTruss> {
    let idx = EdgeIndex::build(g);
    truss_set_profile(g, &idx, t).best(metric)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::truss_decomposition_with_index;
    use bestk_core::Metric;
    use bestk_graph::generators::{self, regular};
    use bestk_graph::CsrGraph;

    fn profile(g: &CsrGraph) -> TrussSetProfile {
        let idx = EdgeIndex::build(g);
        let t = truss_decomposition_with_index(g, &idx);
        truss_set_profile(g, &idx, &t)
    }

    #[test]
    fn complete_graph_profile() {
        let g = regular::complete(5);
        let p = profile(&g);
        assert_eq!(p.tmax, 5);
        for k in 2..=5usize {
            assert_eq!(p.primaries[k].num_vertices, 5, "k={k}");
            assert_eq!(p.primaries[k].internal_edges, 10);
            assert_eq!(p.primaries[k].boundary_edges, 0);
            assert_eq!(p.primaries[k].triangles, 10);
            assert_eq!(p.primaries[k].triplets, 5 * choose2(4));
        }
    }

    #[test]
    fn figure2_truss_profile() {
        let g = generators::paper_figure2();
        let p = profile(&g);
        assert_eq!(p.tmax, 4);
        // 4-truss set: the two K4s — 8 vertices, 12 edges, 8 triangles.
        assert_eq!(p.primaries[4].num_vertices, 8);
        assert_eq!(p.primaries[4].internal_edges, 12);
        assert_eq!(p.primaries[4].triangles, 8);
        assert_eq!(p.primaries[4].triplets, 8 * choose2(3));
        // 2-truss set: everything — 12 vertices, 19 edges, 10 triangles,
        // 45 triplets (Example 5 whole-graph numbers).
        assert_eq!(p.primaries[2].num_vertices, 12);
        assert_eq!(p.primaries[2].internal_edges, 19);
        assert_eq!(p.primaries[2].boundary_edges, 0);
        assert_eq!(p.primaries[2].triangles, 10);
        assert_eq!(p.primaries[2].triplets, 45);
        // 3-truss set: K4s + triangles v3-v5-v6, v6-v7-v8 (v3..v8 enter).
        assert_eq!(p.primaries[3].num_vertices, 12);
        assert_eq!(p.primaries[3].internal_edges, 12 + 6);
    }

    #[test]
    fn best_k_truss_on_figure2() {
        let g = generators::paper_figure2();
        let idx = EdgeIndex::build(&g);
        let t = truss_decomposition_with_index(&g, &idx);
        let best = best_k_truss_set(&g, &t, &Metric::InternalDensity).unwrap();
        assert_eq!(best.k, 4);
        let best_cc = best_k_truss_set(&g, &t, &Metric::ClusteringCoefficient).unwrap();
        assert_eq!(best_cc.k, 4);
    }

    #[test]
    fn edgeless_graph_profile_is_empty() {
        let p = profile(&CsrGraph::empty(5));
        assert_eq!(p.tmax, 0);
        assert!(p.primaries.is_empty());
    }

    #[test]
    fn profile_is_monotone() {
        let g = generators::overlapping_cliques(200, 40, (3, 9), 4);
        let p = profile(&g);
        for k in 3..p.primaries.len() {
            let (a, b) = (&p.primaries[k - 1], &p.primaries[k]);
            assert!(b.num_vertices <= a.num_vertices);
            assert!(b.internal_edges <= a.internal_edges);
            assert!(b.triangles <= a.triangles);
            assert!(b.triplets <= a.triplets);
        }
    }
}
