//! Truss decomposition: edge supports and truss numbers.
//!
//! A k-truss (`k ≥ 2`) is a subgraph in which every edge participates in at
//! least `k − 2` triangles within the subgraph. The decomposition peels
//! edges in ascending support order — the edge analogue of the k-core
//! peeling — giving every edge its truss number `t(e)` in `O(m^1.5)` time
//! [Wang & Cheng, PVLDB 2012; paper references 19, 56].

use std::sync::atomic::{AtomicU32, Ordering};

use bestk_exec::{prefix_sum, ExecPolicy};
use bestk_graph::cast;
use bestk_graph::{GraphView, VertexId};

use crate::edgeindex::EdgeIndex;

/// The result of a truss decomposition.
#[derive(Debug, Clone)]
pub struct TrussDecomposition {
    /// `truss[e]` = truss number of edge `e` (≥ 2 for every existing edge).
    truss: Vec<u32>,
    /// Largest truss number (2 for a triangle-free graph with edges; 0 for
    /// an edgeless graph).
    tmax: u32,
    /// `vertex_truss[v]` = max truss number over v's incident edges (0 for
    /// isolated vertices) — the level at which v enters the k-truss set.
    vertex_truss: Vec<u32>,
}

impl TrussDecomposition {
    /// Truss number of edge `e`.
    #[inline]
    pub fn truss(&self, e: u32) -> u32 {
        self.truss[e as usize]
    }

    /// The full per-edge truss array.
    #[inline]
    pub fn truss_slice(&self) -> &[u32] {
        &self.truss
    }

    /// Largest `k` with a non-empty k-truss.
    #[inline]
    pub fn tmax(&self) -> u32 {
        self.tmax
    }

    /// The level at which vertex `v` first appears in a k-truss set:
    /// `max { t(e) : e incident to v }` (0 if isolated).
    #[inline]
    pub fn vertex_truss(&self, v: VertexId) -> u32 {
        self.vertex_truss[v as usize]
    }

    /// Ids of the edges in the k-truss set (`t(e) ≥ k`); `O(m)`.
    pub fn truss_set_edges(&self, k: u32) -> Vec<u32> {
        (0..cast::u32_of(self.truss.len()))
            .filter(|&e| self.truss[e as usize] >= k)
            .collect()
    }
}

/// Computes the support (number of triangles through each edge) in
/// `O(m^1.5)` using per-vertex marking. Adjacency is read through the
/// index, so the graph is consulted only for the degree ordering.
pub fn edge_supports<G: GraphView>(g: &G, idx: &EdgeIndex) -> Vec<u32> {
    let n = g.num_vertices();
    let m = idx.num_edges();
    let mut support = vec![0u32; m];
    // Degree-descending order to bound the scan cost, as in the forward
    // triangle algorithm.
    let mut order: Vec<VertexId> = (0..cast::vertex_id(n)).collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    let mut pos = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = cast::u32_of(i);
    }
    // mark[w] = slot of the edge (v, w) while scanning v, so each found
    // triangle can credit all three of its edges.
    let mut mark: Vec<u32> = vec![u32::MAX; n];
    for &v in &order {
        let pv = pos[v as usize];
        let range = idx.slots_of(v);
        for p in range.clone() {
            let w = idx.neighbor_at(p);
            if pos[w as usize] > pv {
                mark[w as usize] = idx.id_at_slot(p);
            }
        }
        for p in range.clone() {
            let u = idx.neighbor_at(p);
            if pos[u as usize] <= pv {
                continue;
            }
            let e_vu = idx.id_at_slot(p);
            for q in idx.slots_of(u) {
                let w = idx.neighbor_at(q);
                if pos[w as usize] > pos[u as usize] && mark[w as usize] != u32::MAX {
                    let e_vw = mark[w as usize];
                    let e_uw = idx.id_at_slot(q);
                    support[e_vu as usize] += 1;
                    support[e_vw as usize] += 1;
                    support[e_uw as usize] += 1;
                }
            }
        }
        for p in range {
            let w = idx.neighbor_at(p);
            mark[w as usize] = u32::MAX;
        }
    }
    support
}

/// [`edge_supports`] under an execution policy: the degree-descending outer
/// loop is split into edge-balanced chunks, each worker carrying its own
/// mark array; triangle credits land in shared atomic counters. Additions
/// commute, so the support vector is identical to the sequential one at
/// every thread count.
pub fn edge_supports_with<G: GraphView>(g: &G, idx: &EdgeIndex, policy: &ExecPolicy) -> Vec<u32> {
    if !policy.is_parallel() {
        return edge_supports(g, idx);
    }
    let n = g.num_vertices();
    let m = idx.num_edges();
    let support: Vec<AtomicU32> = (0..m).map(|_| AtomicU32::new(0)).collect();
    let mut order: Vec<VertexId> = (0..cast::vertex_id(n)).collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    let mut pos = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = cast::u32_of(i);
    }
    let prefix = prefix_sum(order.iter().map(|&v| g.degree(v)));
    let plan = policy.plan_weighted(&prefix);
    let (order, pos, support_ref) = (&order, &pos, &support);
    policy.map_reduce(
        &plan,
        || vec![u32::MAX; n],
        |mark, _, range| {
            for &v in &order[range] {
                let pv = pos[v as usize];
                let slots = idx.slots_of(v);
                for p in slots.clone() {
                    let w = idx.neighbor_at(p);
                    if pos[w as usize] > pv {
                        mark[w as usize] = idx.id_at_slot(p);
                    }
                }
                for p in slots.clone() {
                    let u = idx.neighbor_at(p);
                    if pos[u as usize] <= pv {
                        continue;
                    }
                    let e_vu = idx.id_at_slot(p);
                    for q in idx.slots_of(u) {
                        let w = idx.neighbor_at(q);
                        if pos[w as usize] > pos[u as usize] && mark[w as usize] != u32::MAX {
                            let e_vw = mark[w as usize];
                            let e_uw = idx.id_at_slot(q);
                            support_ref[e_vu as usize].fetch_add(1, Ordering::Relaxed);
                            support_ref[e_vw as usize].fetch_add(1, Ordering::Relaxed);
                            support_ref[e_uw as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                for p in slots {
                    let w = idx.neighbor_at(p);
                    mark[w as usize] = u32::MAX;
                }
            }
        },
        (),
        |(), ()| (),
    );
    support.into_iter().map(AtomicU32::into_inner).collect()
}

/// Runs the peeling truss decomposition; `O(m^1.5)` time, `O(m)` space.
pub fn truss_decomposition<G: GraphView>(g: &G) -> TrussDecomposition {
    let idx = EdgeIndex::build(g);
    truss_decomposition_with_index(g, &idx)
}

/// Like [`truss_decomposition`] but reuses a prebuilt [`EdgeIndex`].
pub fn truss_decomposition_with_index<G: GraphView>(g: &G, idx: &EdgeIndex) -> TrussDecomposition {
    peel_from_supports(idx, edge_supports(g, idx))
}

/// [`truss_decomposition_with_index`] under an execution policy: the support
/// initialization (the `O(m^1.5)` half of the cost) runs on the shared
/// runtime via [`edge_supports_with`]; the peel itself is inherently
/// sequential (each removal changes the supports the next step reads) and
/// runs as-is. The decomposition is identical at every thread count.
pub fn truss_decomposition_exec<G: GraphView>(
    g: &G,
    idx: &EdgeIndex,
    policy: &ExecPolicy,
) -> TrussDecomposition {
    peel_from_supports(idx, edge_supports_with(g, idx, policy))
}

/// The ascending-support peel, starting from precomputed edge supports.
/// Self-contained on the index: the peel never touches the graph backend.
fn peel_from_supports(idx: &EdgeIndex, mut support: Vec<u32>) -> TrussDecomposition {
    let m = idx.num_edges();
    let n = idx.num_vertices();
    // Bucket queue over supports with lazy entries.
    let max_sup = support.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_sup + 1];
    for (e, &s) in support.iter().enumerate() {
        buckets[s as usize].push(cast::u32_of(e));
    }
    let mut alive_edge = vec![true; m];
    let mut truss = vec![0u32; m];
    let mut tmax = 0u32;
    let mut cur = 0usize;
    let mut level = 2u32; // current k being peeled
    let mut processed = 0usize;
    while processed < m {
        // Find the lowest-support alive edge (lazy bucket queue).
        while cur <= max_sup
            && buckets[cur]
                .last()
                .is_none_or(|&e| !alive_edge[e as usize] || support[e as usize] as usize != cur)
        {
            // Pop stale entries; advance when the bucket is exhausted.
            match buckets[cur].last() {
                Some(&e) if !alive_edge[e as usize] || support[e as usize] as usize != cur => {
                    // bestk-analyze: allow(no-raw-peel) — truss peeling pops *edge-support* buckets, not vertex-degree buckets
                    buckets[cur].pop();
                }
                Some(_) => break,
                None => cur += 1,
            }
        }
        // bestk-analyze: allow(no-raw-peel) — truss peeling pops *edge-support* buckets, not vertex-degree buckets
        let Some(e) = buckets[cur].pop() else {
            continue;
        };
        let s = support[e as usize];
        level = level.max(s + 2);
        truss[e as usize] = level;
        tmax = tmax.max(level);
        alive_edge[e as usize] = false;
        processed += 1;

        // Remove e = (u, v): every surviving triangle through e loses one,
        // so decrement the supports of its two partner edges.
        let (u, v) = idx.endpoints(e);
        let (a, b) = if idx.degree(u) <= idx.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        for p in idx.slots_of(a) {
            let w = idx.neighbor_at(p);
            let e_aw = idx.id_at_slot(p);
            if !alive_edge[e_aw as usize] {
                continue;
            }
            if let Some(e_bw) = idx.edge_id(b, w) {
                if alive_edge[e_bw as usize] {
                    for &edge in &[e_aw, e_bw] {
                        let sup = support[edge as usize];
                        // Supports never drop below the current peel floor.
                        if sup as usize + 2 > level as usize {
                            support[edge as usize] = sup - 1;
                            buckets[(sup - 1) as usize].push(edge);
                            cur = cur.min((sup - 1) as usize);
                        }
                    }
                }
            }
        }
    }
    // Vertex entry levels.
    let mut vertex_truss = vec![0u32; n];
    for e in 0..cast::u32_of(m) {
        let (u, v) = idx.endpoints(e);
        let t = truss[e as usize];
        vertex_truss[u as usize] = vertex_truss[u as usize].max(t);
        vertex_truss[v as usize] = vertex_truss[v as usize].max(t);
    }
    TrussDecomposition {
        truss,
        tmax,
        vertex_truss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_graph::generators::{self, regular};
    use bestk_graph::{CsrGraph, GraphBuilder};

    fn truss_of(g: &CsrGraph) -> (TrussDecomposition, EdgeIndex) {
        let idx = EdgeIndex::build(g);
        (truss_decomposition_with_index(g, &idx), idx)
    }

    #[test]
    fn complete_graph_truss() {
        // In K_n every edge has truss number n.
        for n in [3usize, 4, 5, 6] {
            let g = regular::complete(n);
            let (t, _) = truss_of(&g);
            assert_eq!(t.tmax(), n as u32);
            assert!(t.truss_slice().iter().all(|&x| x == n as u32), "K{n}");
        }
    }

    #[test]
    fn triangle_free_graphs_are_2_trusses() {
        for g in [regular::cycle(8), regular::star(6), regular::grid(4, 3)] {
            let (t, _) = truss_of(&g);
            assert_eq!(t.tmax(), 2);
            assert!(t.truss_slice().iter().all(|&x| x == 2));
        }
    }

    #[test]
    fn paper_figure2_truss() {
        // The two K4s are 4-trusses; the triangles v3-v5-v6 and v6-v7-v8
        // form 3-truss edges; the bridge-ish edges (v8, v9) is in no
        // triangle -> truss 2.
        let g = generators::paper_figure2();
        let (t, idx) = truss_of(&g);
        assert_eq!(t.tmax(), 4);
        // All K4 edges have truss 4.
        for (u, v) in [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            let e = idx.edge_id(u, v).unwrap();
            assert_eq!(t.truss(e), 4, "K4 edge ({u},{v})");
        }
        // Triangle v3(2), v5(4), v6(5): each edge is in exactly that one
        // shared triangle after the K4 peels? v3-v5: triangles {v3,v5,v6}
        // only -> truss 3.
        let e = idx.edge_id(2, 4).unwrap();
        assert_eq!(t.truss(e), 3);
        let e = idx.edge_id(4, 5).unwrap();
        assert_eq!(t.truss(e), 3);
        // v8-v9 closes no triangle.
        let e = idx.edge_id(7, 8).unwrap();
        assert_eq!(t.truss(e), 2);
        // Vertex entry levels.
        assert_eq!(t.vertex_truss(0), 4);
        assert_eq!(t.vertex_truss(4), 3);
        assert_eq!(t.vertex_truss(8), 4);
    }

    #[test]
    fn supports_match_brute_force() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_gnm(60, 260, seed);
            let idx = EdgeIndex::build(&g);
            let support = edge_supports(&g, &idx);
            for e in 0..idx.num_edges() as u32 {
                let (u, v) = idx.endpoints(e);
                let brute = g
                    .neighbors(u)
                    .iter()
                    .filter(|&&w| w != v && g.has_edge(v, w))
                    .count();
                assert_eq!(
                    support[e as usize] as usize, brute,
                    "edge ({u},{v}) seed {seed}"
                );
            }
        }
    }

    /// Definitional oracle: t(e) >= k iff e survives iterated deletion of
    /// edges with < k-2 triangles.
    fn naive_truss(g: &CsrGraph, idx: &EdgeIndex) -> Vec<u32> {
        let m = idx.num_edges();
        let mut truss = vec![0u32; m];
        let mut alive = vec![true; m];
        let mut k = 2u32;
        let mut remaining = m;
        while remaining > 0 {
            loop {
                let mut removed_any = false;
                for e in 0..m as u32 {
                    if !alive[e as usize] {
                        continue;
                    }
                    let (u, v) = idx.endpoints(e);
                    let sup = g
                        .neighbors(u)
                        .iter()
                        .filter(|&&w| {
                            w != v
                                && idx.edge_id(v, w).is_some_and(|x| alive[x as usize])
                                && idx.edge_id(u, w).is_some_and(|x| alive[x as usize])
                        })
                        .count() as u32;
                    if sup < k.saturating_sub(2) {
                        alive[e as usize] = false;
                        truss[e as usize] = k - 1;
                        remaining -= 1;
                        removed_any = true;
                    }
                }
                if !removed_any {
                    break;
                }
            }
            k += 1;
        }
        truss
    }

    #[test]
    fn matches_naive_truss_on_random_graphs() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_gnm(40, 180, seed + 3);
            let idx = EdgeIndex::build(&g);
            let fast = truss_decomposition_with_index(&g, &idx);
            let naive = naive_truss(&g, &idx);
            assert_eq!(fast.truss_slice(), &naive[..], "seed {seed}");
        }
    }

    #[test]
    fn matches_naive_truss_on_dense_graph() {
        let g = generators::overlapping_cliques(60, 14, (3, 8), 5);
        let idx = EdgeIndex::build(&g);
        let fast = truss_decomposition_with_index(&g, &idx);
        let naive = naive_truss(&g, &idx);
        assert_eq!(fast.truss_slice(), &naive[..]);
    }

    #[test]
    fn policy_supports_and_truss_match_sequential() {
        bestk_graph::testkit::check("truss_policy_equals_sequential", 16, |gen| {
            let g = gen.graph(50, 220);
            let idx = EdgeIndex::build(&g);
            let ref_support = edge_supports(&g, &idx);
            let ref_truss = truss_decomposition_with_index(&g, &idx);
            for threads in [1, 2, 4, 7] {
                let policy = ExecPolicy::with_threads(threads).unwrap();
                assert_eq!(
                    edge_supports_with(&g, &idx, &policy),
                    ref_support,
                    "supports, {threads} threads"
                );
                let t = truss_decomposition_exec(&g, &idx, &policy);
                assert_eq!(
                    t.truss_slice(),
                    ref_truss.truss_slice(),
                    "truss, {threads} threads"
                );
                assert_eq!(t.tmax(), ref_truss.tmax());
            }
        });
    }

    #[test]
    fn truss_set_edges_are_nested() {
        let g = generators::erdos_renyi_gnm(80, 400, 9);
        let (t, _) = truss_of(&g);
        for k in 2..=t.tmax() {
            let upper = t.truss_set_edges(k + 1);
            let lower = t.truss_set_edges(k);
            let lower_set: std::collections::HashSet<u32> = lower.into_iter().collect();
            assert!(upper.iter().all(|e| lower_set.contains(e)));
        }
    }

    #[test]
    fn empty_and_edgeless() {
        let (t, _) = truss_of(&CsrGraph::empty(0));
        assert_eq!(t.tmax(), 0);
        let mut b = GraphBuilder::new();
        b.reserve_vertices(3);
        let (t, _) = truss_of(&b.build());
        assert_eq!(t.tmax(), 0);
        assert_eq!(t.vertex_truss(1), 0);
    }
}
