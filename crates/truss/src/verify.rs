//! Executable specification of the truss decomposition (§VI-B).
//!
//! Truss numbers admit the same two-sided certification as coreness:
//!
//! * a **local support check** — inside the t(e)-truss, every edge must
//!   close at least `t(e) − 2` triangles — certifies that the reported
//!   trusses are genuine trusses;
//! * an **independent naive recomputation** — iterative support peeling
//!   with full recounts — certifies maximality (no edge's truss number is
//!   understated). The naive pass is `O(m²)`-ish and only runs below an
//!   edge-count cutoff; the local check always runs.

use bestk_graph::cast;
use bestk_graph::verify::{VerifyError, VerifyResult};
use bestk_graph::GraphView;

use crate::decomposition::TrussDecomposition;
use crate::edgeindex::EdgeIndex;

/// Upper edge-count bound for the naive full recomputation inside
/// [`verify_truss_decomposition`]; larger graphs get the local checks only.
pub const NAIVE_RECHECK_EDGE_LIMIT: usize = 4_000;

/// Verifies a [`TrussDecomposition`] against its specification:
///
/// 1. per-edge array lengths and `tmax` agree with the graph;
/// 2. every edge of a non-empty graph has truss number ≥ 2;
/// 3. `vertex_truss(v)` equals the maximum truss number over `v`'s
///    incident edges (0 when isolated);
/// 4. **support**: edge `e = (u, v)` closes at least `t(e) − 2` triangles
///    whose other two edges both have truss numbers ≥ `t(e)` — i.e. `e`
///    really survives inside its own k-truss;
/// 5. **maximality** (graphs with ≤ [`NAIVE_RECHECK_EDGE_LIMIT`] edges):
///    an independent peeling recomputation reproduces every truss number
///    exactly.
pub fn verify_truss_decomposition<G: GraphView>(
    g: &G,
    idx: &EdgeIndex,
    t: &TrussDecomposition,
) -> VerifyResult {
    let m = idx.num_edges();
    if t.truss_slice().len() != m {
        return Err(VerifyError::new(
            "truss.edge-count",
            format!("{} truss numbers for {m} edges", t.truss_slice().len()),
        ));
    }
    let true_tmax = t.truss_slice().iter().copied().max().unwrap_or(0);
    if t.tmax() != true_tmax {
        return Err(VerifyError::new(
            "truss.tmax",
            format!("tmax() = {} but max truss number = {true_tmax}", t.tmax()),
        ));
    }
    for e in 0..cast::u32_of(m) {
        if t.truss(e) < 2 {
            let (u, v) = idx.endpoints(e);
            return Err(VerifyError::new(
                "truss.minimum",
                format!("edge ({u},{v}) has truss number {} < 2", t.truss(e)),
            ));
        }
    }

    // 3. vertex_truss consistency.
    for v in g.vertices() {
        let want = idx
            .slots_of(v)
            .map(|slot| t.truss(idx.id_at_slot(slot)))
            .max()
            .unwrap_or(0);
        if t.vertex_truss(v) != want {
            return Err(VerifyError::new(
                "truss.vertex-level",
                format!(
                    "vertex_truss({v}) = {} but incident max = {want}",
                    t.vertex_truss(v)
                ),
            ));
        }
    }

    // 4. support inside the own truss.
    for e in 0..cast::u32_of(m) {
        let (u, v) = idx.endpoints(e);
        let te = t.truss(e);
        let mut closed = 0u32;
        // Intersect N(u) and N(v); both lists are id-sorted (slot-aligned
        // copies in the index, so no backend access is needed).
        let (mut i, mut j) = (0usize, 0usize);
        let (su, sv) = (idx.slots_of(u), idx.slots_of(v));
        let (ni, nj) = (su.len(), sv.len());
        let at_u = |i: usize| idx.neighbor_at(su.start + i);
        let at_v = |j: usize| idx.neighbor_at(sv.start + j);
        while i < ni && j < nj {
            match at_u(i).cmp(&at_v(j)) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let w = at_u(i);
                    let (Some(uw), Some(vw)) = (idx.edge_id(u, w), idx.edge_id(v, w)) else {
                        return Err(VerifyError::new(
                            "truss.edge-index",
                            format!("triangle edge ({u},{v},{w}) missing from the index"),
                        ));
                    };
                    if t.truss(uw) >= te && t.truss(vw) >= te {
                        closed += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        if closed + 2 < te {
            return Err(VerifyError::new(
                "truss.support",
                format!(
                    "edge ({u},{v}) claims truss {te} but closes only {closed} \
                     triangles inside its truss"
                ),
            ));
        }
    }

    // 5. maximality by independent recomputation (small graphs).
    if m <= NAIVE_RECHECK_EDGE_LIMIT {
        let naive = naive_truss_numbers(idx);
        if naive != t.truss_slice() {
            let e = naive
                .iter()
                .zip(t.truss_slice())
                .position(|(a, b)| a != b)
                .map(cast::u32_of)
                .unwrap_or(0);
            let (u, v) = idx.endpoints(e);
            return Err(VerifyError::new(
                "truss.maximality",
                format!(
                    "edge ({u},{v}): truss number {} but naive recomputation gives {}",
                    t.truss(e),
                    naive[e as usize]
                ),
            ));
        }
    }
    Ok(())
}

/// Independent truss-number computation by the textbook definition:
/// repeatedly delete any edge whose support within the surviving subgraph
/// is below `k − 2`, recounting supports from scratch after every sweep.
/// Quadratic-ish and proudly so — an oracle, not an algorithm. Works
/// entirely from the index's adjacency copy.
pub fn naive_truss_numbers(idx: &EdgeIndex) -> Vec<u32> {
    let m = idx.num_edges();
    let mut truss = vec![0u32; m];
    let mut alive: Vec<bool> = vec![true; m];
    let mut k = 2u32;
    let mut remaining = m;
    while remaining > 0 {
        // Peel to a fixpoint at level k.
        loop {
            let mut removed = false;
            for e in 0..cast::u32_of(m) {
                if !alive[e as usize] {
                    continue;
                }
                if support_among(idx, &alive, e) + 2 < k {
                    alive[e as usize] = false;
                    truss[e as usize] = k;
                    remaining -= 1;
                    removed = true;
                }
            }
            if !removed {
                break;
            }
        }
        k += 1;
    }
    // An edge removed while peeling level k belongs to the (k-1)-truss.
    for tv in truss.iter_mut() {
        *tv = tv.saturating_sub(1).max(2);
    }
    truss
}

/// Support of edge `e` counting only triangles whose other two edges are
/// still alive.
fn support_among(idx: &EdgeIndex, alive: &[bool], e: u32) -> u32 {
    let (u, v) = idx.endpoints(e);
    let (mut i, mut j) = (0usize, 0usize);
    let (su, sv) = (idx.slots_of(u), idx.slots_of(v));
    let (ni, nj) = (su.len(), sv.len());
    let at_u = |i: usize| idx.neighbor_at(su.start + i);
    let at_v = |j: usize| idx.neighbor_at(sv.start + j);
    let mut closed = 0u32;
    while i < ni && j < nj {
        match at_u(i).cmp(&at_v(j)) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let w = at_u(i);
                // An inconsistent index cannot produce a triangle here; if it
                // somehow does, undercounting makes the oracle *stricter*.
                let (Some(uw), Some(vw)) = (idx.edge_id(u, w), idx.edge_id(v, w)) else {
                    i += 1;
                    j += 1;
                    continue;
                };
                if alive[uw as usize] && alive[vw as usize] {
                    closed += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    closed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truss_decomposition;
    use bestk_graph::generators;

    #[test]
    fn honest_decompositions_pass() {
        for g in [
            generators::paper_figure2(),
            generators::erdos_renyi_gnm(60, 200, 5),
            bestk_graph::CsrGraph::empty(3),
        ] {
            let idx = EdgeIndex::build(&g);
            let t = crate::decomposition::truss_decomposition_with_index(&g, &idx);
            verify_truss_decomposition(&g, &idx, &t).unwrap();
        }
    }

    #[test]
    fn naive_matches_fast_on_figure2() {
        let g = generators::paper_figure2();
        let idx = EdgeIndex::build(&g);
        let t = truss_decomposition(&g);
        assert_eq!(naive_truss_numbers(&idx), t.truss_slice());
    }
}
