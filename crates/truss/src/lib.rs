//! # bestk-truss
//!
//! The paper's §VI-B extension: *finding the best k in **truss**
//! decomposition*. A k-truss is a subgraph in which every edge closes at
//! least `k − 2` triangles inside the subgraph; truss decomposition assigns
//! every edge its *truss number* `t(e)` — the largest `k` whose k-truss
//! contains it. Like k-cores, k-trusses are nested (`(k+1)-truss ⊆
//! k-truss`), which is exactly the containment property the paper's best-k
//! framework needs.
//!
//! The crate mirrors `bestk-core`'s structure one level up the cohesion
//! hierarchy:
//!
//! * [`edgeindex`] — CSR edge-id index (the substrate truss algorithms
//!   need: a dense id per undirected edge, shared by both directions).
//! * [`decomposition`] — edge-support computation and the
//!   `O(m^1.5)`-peeling truss decomposition.
//! * [`bestkset`] — primary values of every k-truss set and the best-k
//!   selection, reusing `bestk-core`'s [`CommunityMetric`] /
//!   [`PrimaryValues`] machinery (paper §VI-B: "rank the incident edges of
//!   every vertex by their truss numbers … to facilitate the incremental
//!   score computation").
//! * [`baseline`] — per-k from-scratch rescoring, the comparator/oracle.
//!
//! [`CommunityMetric`]: bestk_core::CommunityMetric
//! [`PrimaryValues`]: bestk_core::PrimaryValues
//!
//! ## Example
//!
//! ```
//! use bestk_graph::generators;
//! use bestk_core::Metric;
//! use bestk_truss::{truss_decomposition, best_k_truss_set};
//!
//! let g = generators::paper_figure2();
//! let t = truss_decomposition(&g);
//! assert_eq!(t.tmax(), 4); // the two K4s are 4-trusses
//! let best = best_k_truss_set(&g, &t, &Metric::InternalDensity).unwrap();
//! assert_eq!(best.k, 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod bestkset;
pub mod besttruss;
pub mod decomposition;
pub mod edgeindex;
pub mod forest;
pub mod verify;

pub use bestkset::{best_k_truss_set, truss_set_profile, BestKTruss, TrussSetProfile};
pub use besttruss::{best_single_k_truss, enumerate_trusses, BestSingleTruss, TrussInfo};
pub use decomposition::{truss_decomposition, TrussDecomposition};
pub use edgeindex::EdgeIndex;
pub use forest::{TrussForest, TrussForestNode};
