//! Per-k from-scratch rescoring of k-truss sets — the §III-A-style
//! baseline lifted to trusses, used as comparator and test oracle.

use bestk_core::metrics::PrimaryValues;
use bestk_graph::cast;
use bestk_graph::{GraphView, VertexId};

use crate::decomposition::TrussDecomposition;
use crate::edgeindex::EdgeIndex;

/// Primary values of every k-truss set (`k = 2 ..= tmax`, indices 0–1
/// duplicating 2, like [`truss_set_profile`](crate::truss_set_profile)),
/// recomputed independently per k: `O(tmax · m^1.5)` worst case.
pub fn baseline_truss_set_primaries<G: GraphView>(
    g: &G,
    idx: &EdgeIndex,
    t: &TrussDecomposition,
) -> Vec<PrimaryValues> {
    let tmax = t.tmax();
    if tmax < 2 {
        return Vec::new();
    }
    let mut primaries = vec![PrimaryValues::default(); tmax as usize + 1];
    for k in 2..=tmax {
        primaries[k as usize] = truss_set_primaries_at(g, idx, t, k);
    }
    primaries[0] = primaries[2];
    primaries[1] = primaries[2];
    primaries
}

/// Direct computation of one k-truss set's primaries.
pub fn truss_set_primaries_at<G: GraphView>(
    g: &G,
    idx: &EdgeIndex,
    t: &TrussDecomposition,
    k: u32,
) -> PrimaryValues {
    let n = g.num_vertices();
    // Membership: edges with t >= k; vertices incident to at least one.
    let mut vertex_in = vec![false; n];
    let mut internal_edges = 0u64;
    for e in 0..cast::u32_of(idx.num_edges()) {
        if t.truss(e) >= k {
            internal_edges += 1;
            let (u, v) = idx.endpoints(e);
            vertex_in[u as usize] = true;
            vertex_in[v as usize] = true;
        }
    }
    let num_vertices = vertex_in.iter().filter(|&&b| b).count() as u64;
    // Boundary: edges (of any truss) with exactly one endpoint in the set.
    let mut boundary_edges = 0u64;
    for e in 0..cast::u32_of(idx.num_edges()) {
        let (u, v) = idx.endpoints(e);
        if vertex_in[u as usize] != vertex_in[v as usize] {
            boundary_edges += 1;
        }
    }
    // Triangles and triplets in the edge-induced subgraph.
    let mut degree = vec![0u64; n];
    for e in 0..cast::u32_of(idx.num_edges()) {
        if t.truss(e) >= k {
            let (u, v) = idx.endpoints(e);
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
    }
    let triplets = degree.iter().map(|&d| d * d.saturating_sub(1) / 2).sum();
    let mut triangles = 0u64;
    for e in 0..cast::u32_of(idx.num_edges()) {
        if t.truss(e) < k {
            continue;
        }
        let (u, v) = idx.endpoints(e);
        // Count each triangle at its lexicographically-first edge: demand
        // w > v (endpoints are canonical u < v, so (u,v) is the first edge
        // exactly when w is the largest vertex).
        for w in g.neighbors(u) {
            if w > v {
                let uv_w = idx.edge_id(u, w);
                let vw = idx.edge_id(v, w);
                if let (Some(a), Some(b)) = (uv_w, vw) {
                    if t.truss(a) >= k && t.truss(b) >= k {
                        triangles += 1;
                    }
                }
            }
        }
    }
    PrimaryValues {
        num_vertices,
        internal_edges,
        boundary_edges,
        triangles,
        triplets,
    }
}

/// The vertex set of the k-truss set (sorted ascending).
pub fn truss_set_vertices<G: GraphView>(
    g: &G,
    idx: &EdgeIndex,
    t: &TrussDecomposition,
    k: u32,
) -> Vec<VertexId> {
    let mut vertex_in = vec![false; g.num_vertices()];
    for e in 0..cast::u32_of(idx.num_edges()) {
        if t.truss(e) >= k {
            let (u, v) = idx.endpoints(e);
            vertex_in[u as usize] = true;
            vertex_in[v as usize] = true;
        }
    }
    (0..cast::vertex_id(g.num_vertices()))
        .filter(|&v| vertex_in[v as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bestkset::truss_set_profile;
    use crate::decomposition::truss_decomposition_with_index;
    use bestk_graph::generators::{self, regular};
    use bestk_graph::CsrGraph;

    fn check(g: &CsrGraph) {
        let idx = EdgeIndex::build(g);
        let t = truss_decomposition_with_index(g, &idx);
        let fast = truss_set_profile(g, &idx, &t).primaries;
        let slow = baseline_truss_set_primaries(g, &idx, &t);
        assert_eq!(fast, slow);
    }

    #[test]
    fn fast_profile_matches_baseline_on_random_graphs() {
        for seed in 0..5 {
            check(&generators::erdos_renyi_gnm(80, 360, seed));
        }
    }

    #[test]
    fn fast_profile_matches_baseline_on_structured_graphs() {
        check(&generators::paper_figure2());
        check(&regular::complete(8));
        check(&regular::clique_chain(4, 5));
        check(&generators::overlapping_cliques(150, 30, (3, 9), 2));
        check(&generators::planted_partition(&[30, 25, 20], 0.4, 0.03, 3).graph);
        check(&regular::grid(6, 6));
        check(&regular::cycle(10));
    }

    #[test]
    fn truss_set_vertices_match_num_vertices() {
        let g = generators::erdos_renyi_gnm(100, 450, 8);
        let idx = EdgeIndex::build(&g);
        let t = truss_decomposition_with_index(&g, &idx);
        let profile = truss_set_profile(&g, &idx, &t);
        for k in 2..=t.tmax() {
            let verts = truss_set_vertices(&g, &idx, &t, k);
            assert_eq!(
                verts.len() as u64,
                profile.primaries[k as usize].num_vertices,
                "k={k}"
            );
        }
    }
}
