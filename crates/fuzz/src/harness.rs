//! The fuzzing harness: surfaces, verdicts, and the seed-sweep driver.
//!
//! Every parse surface gets the same contract, checked on every input:
//!
//! * **typed error or valid result** — the parser returns `Ok` or its
//!   crate's error type;
//! * **never panic** — a caught unwind is a finding, reported as
//!   [`Check::Panic`], never process death;
//! * **never OOM beyond a byte budget** — inputs are capped at the budget
//!   and a successful parse must be size-proportional to its input (the
//!   pre-allocation caps inside the readers make a hostile header a cheap
//!   typed error, and the proportionality assertion here keeps them
//!   honest).
//!
//! [`run_surface`] drives a deterministic seed sweep: per seed, the
//! grammar generator emits an almost-valid input and the byte mutator
//! derives children from known-valid exemplars; every input goes through
//! [`check_bytes`]. The same entry point checks the committed corpus in
//! `tests/fuzz_regression.rs`, so a development finding becomes a pinned
//! regression by dropping its bytes into `tests/corpus/<surface>/`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use bestk_engine::mmap::Mmap;
use bestk_engine::{serve_lines_with, Dataset, ServeLimits, SharedEngine};
use bestk_exec::ExecPolicy;
use bestk_graph::cast;
use bestk_graph::generators;
use bestk_graph::io;

use crate::grammar;
use crate::mutate::ByteMutator;

/// The default per-input byte budget (also the CLI default).
pub const DEFAULT_BUDGET_BYTES: usize = 1 << 16;

/// A fuzzable parse surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Surface {
    /// The textual and binary graph readers (`read_edge_list`,
    /// `read_metis`, `read_binary`).
    GraphIo,
    /// The `.bestk` snapshot loaders, v1 (`load_bytes`) and v2
    /// (`open_mmap` over `BESTKSS2`).
    Snapshot,
    /// The `BESTKWAL1` write-ahead-log replayer (`replay_bytes`).
    Wal,
    /// The line-oriented serve loop (`serve_lines_with`).
    Serve,
}

/// Every surface, in CLI/report order.
pub const ALL_SURFACES: [Surface; 4] = [
    Surface::GraphIo,
    Surface::Snapshot,
    Surface::Wal,
    Surface::Serve,
];

impl Surface {
    /// The CLI name of this surface.
    pub fn name(self) -> &'static str {
        match self {
            Surface::GraphIo => "graph-io",
            Surface::Snapshot => "snapshot",
            Surface::Wal => "wal",
            Surface::Serve => "serve",
        }
    }

    /// Parses a CLI surface name.
    pub fn parse(name: &str) -> Option<Surface> {
        ALL_SURFACES.into_iter().find(|s| s.name() == name)
    }
}

/// The verdict on one input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Check {
    /// At least one parser accepted the input (within budget).
    Valid,
    /// Every parser rejected the input with its typed error.
    TypedError,
    /// A parser panicked — always a finding.
    Panic(String),
    /// The contract was violated without a panic (output
    /// disproportionate to the input, or the serve loop failed).
    Violation(String),
}

/// Aggregated verdicts over a sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SurfaceReport {
    /// Inputs checked.
    pub inputs: u64,
    /// Inputs at least one parser accepted.
    pub valid: u64,
    /// Inputs every parser rejected with a typed error.
    pub typed_errors: u64,
    /// Panics caught — must be zero.
    pub panics: u64,
    /// Non-panic contract violations — must be zero.
    pub violations: u64,
}

impl SurfaceReport {
    /// True when the sweep found nothing: no panics, no violations.
    pub fn clean(&self) -> bool {
        self.panics == 0 && self.violations == 0
    }

    fn absorb(&mut self, check: &Check) {
        self.inputs += 1;
        match check {
            Check::Valid => self.valid += 1,
            Check::TypedError => self.typed_errors += 1,
            Check::Panic(_) => self.panics += 1,
            Check::Violation(_) => self.violations += 1,
        }
    }
}

/// Runs `fun` under `catch_unwind`, mapping a panic payload to
/// [`Check::Panic`].
fn contained(fun: impl FnOnce() -> Check) -> Check {
    match catch_unwind(AssertUnwindSafe(fun)) {
        Ok(check) => check,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Check::Panic(msg)
        }
    }
}

/// Checks one input against one surface's contract.
pub fn check_bytes(surface: Surface, bytes: &[u8], budget: usize) -> Check {
    match surface {
        Surface::GraphIo => check_graph_io(bytes, budget),
        Surface::Snapshot => check_snapshot(bytes, budget),
        Surface::Wal => check_wal(bytes),
        Surface::Serve => check_serve(bytes),
    }
}

/// A successful graph parse must be size-proportional to its input: every
/// vertex and edge costs input bytes in all three formats, so a parse
/// that manufactures a graph orders of magnitude larger than its input
/// means a header was trusted somewhere.
fn graph_within_budget(n: usize, m: usize, input_len: usize) -> bool {
    n + m <= 8 * input_len + 64
}

fn check_graph_io(bytes: &[u8], _budget: usize) -> Check {
    let mut any_valid = false;
    for parse in [
        |b: &[u8]| io::read_edge_list(b).map(|(g, _)| (g.num_vertices(), g.num_edges())),
        |b: &[u8]| io::read_binary(b).map(|g| (g.num_vertices(), g.num_edges())),
        |b: &[u8]| io::read_metis(b).map(|g| (g.num_vertices(), g.num_edges())),
    ] {
        match contained(|| match parse(bytes) {
            Ok((n, m)) => {
                if graph_within_budget(n, m, bytes.len()) {
                    Check::Valid
                } else {
                    Check::Violation(format!(
                        "parsed {n} vertices / {m} edges from {} input bytes",
                        bytes.len()
                    ))
                }
            }
            Err(_) => Check::TypedError,
        }) {
            Check::Valid => any_valid = true,
            Check::TypedError => {}
            finding => return finding,
        }
    }
    if any_valid {
        Check::Valid
    } else {
        Check::TypedError
    }
}

fn check_snapshot(bytes: &[u8], _budget: usize) -> Check {
    let mut any_valid = false;
    let v1 = contained(|| match bestk_engine::snapshot::load_bytes(bytes) {
        Ok(ds) => snapshot_verdict(&ds, bytes.len()),
        Err(_) => Check::TypedError,
    });
    let map = Arc::new(Mmap::from_vec(bytes.to_vec()));
    let v2 = contained(|| match bestk_engine::snapv2::open_mmap(map) {
        Ok(ds) => snapshot_verdict(&ds, bytes.len()),
        Err(_) => Check::TypedError,
    });
    for v in [v1, v2] {
        match v {
            Check::Valid => any_valid = true,
            Check::TypedError => {}
            finding => return finding,
        }
    }
    if any_valid {
        Check::Valid
    } else {
        Check::TypedError
    }
}

fn snapshot_verdict(ds: &Dataset, input_len: usize) -> Check {
    if ds.resident_bytes() <= 64 * input_len + (1 << 16) {
        Check::Valid
    } else {
        Check::Violation(format!(
            "snapshot resident bytes {} from {input_len} input bytes",
            ds.resident_bytes()
        ))
    }
}

fn check_wal(bytes: &[u8]) -> Check {
    contained(|| match bestk_delta::replay_bytes(bytes) {
        Ok(replay) => {
            // Every decoded op costs a 13-byte frame minimum.
            if replay.ops.len() <= bytes.len() {
                Check::Valid
            } else {
                Check::Violation(format!(
                    "{} ops decoded from {} bytes",
                    replay.ops.len(),
                    bytes.len()
                ))
            }
        }
        Err(_) => Check::TypedError,
    })
}

fn check_serve(bytes: &[u8]) -> Check {
    contained(|| {
        let engine = SharedEngine::with_budget(None);
        engine.insert_graph("fig2", generators::paper_figure2());
        let limits = ServeLimits {
            max_line_bytes: 256,
            max_inflight: 4,
        };
        let mut out: Vec<u8> = Vec::new();
        match serve_lines_with(&engine, &ExecPolicy::Sequential, bytes, &mut out, &limits) {
            // Replies into a Vec cannot fail; bound the output so a reply
            // loop cannot amplify a small script without being noticed.
            Ok(_) if out.len() <= (1 << 22) => Check::Valid,
            Ok(_) => Check::Violation(format!(
                "{} reply bytes from {} request bytes",
                out.len(),
                bytes.len()
            )),
            Err(e) => Check::Violation(format!("serve loop returned an error: {e}")),
        }
    })
}

/// Known-valid exemplars per surface; the mutator's starting points.
pub fn base_inputs(surface: Surface) -> Vec<Vec<u8>> {
    match surface {
        Surface::GraphIo => {
            let g = generators::paper_figure2();
            let mut edge_list = Vec::new();
            io::write_edge_list(&g, &mut edge_list).expect("write edge list"); // bestk-analyze: allow(no-unwrap) — base exemplar encode cannot fail
            let mut metis = Vec::new();
            io::write_metis(&g, &mut metis).expect("write metis"); // bestk-analyze: allow(no-unwrap) — base exemplar encode cannot fail
            let mut binary = Vec::new();
            io::write_binary(&g, &mut binary).expect("write binary"); // bestk-analyze: allow(no-unwrap) — base exemplar encode cannot fail
            vec![edge_list, metis, binary]
        }
        Surface::Snapshot => {
            let ds = built_figure2();
            vec![snapshot_v1_bytes(&ds), snapshot_v2_bytes(&ds)]
        }
        Surface::Wal => {
            // A fully valid stream: magic + insert/delete/commit frames.
            let mut rng_free = Vec::new();
            rng_free.extend_from_slice(b"BESTKWAL1");
            for (tag, u, v) in [(0x01u8, 0u32, 11u32), (0x02, 0, 1), (0x03, 0, 0)] {
                let mut payload = vec![tag];
                if tag != 0x03 {
                    payload.extend_from_slice(&u.to_le_bytes());
                    payload.extend_from_slice(&v.to_le_bytes());
                }
                rng_free.extend_from_slice(&cast::u32_of(payload.len()).to_le_bytes());
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for &b in &payload {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                rng_free.extend_from_slice(&payload);
                rng_free.extend_from_slice(&h.to_le_bytes());
            }
            vec![rng_free]
        }
        Surface::Serve => {
            vec![b"query fig2 stats\nadd-edge fig2 0 11\ncommit fig2\nquery fig2 bestkset ad\nquit\n".to_vec()]
        }
    }
}

fn built_figure2() -> Dataset {
    let mut ds = Dataset::from_graph(generators::paper_figure2());
    ds.ensure_built(&ExecPolicy::Sequential);
    ds
}

fn snapshot_v1_bytes(ds: &Dataset) -> Vec<u8> {
    // v1 has no in-memory encoder, so bounce through a temp file.
    let dir = std::env::temp_dir().join(format!("bestk-fuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir"); // bestk-analyze: allow(no-unwrap) — exemplar fixture setup, broken build if it fails
    let path = dir.join("base-v1.bestk");
    bestk_engine::save_snapshot_path(ds, &path).expect("save v1"); // bestk-analyze: allow(no-unwrap) — exemplar fixture setup, broken build if it fails
    let bytes = std::fs::read(&path).expect("read v1"); // bestk-analyze: allow(no-unwrap) — exemplar fixture setup, broken build if it fails
    let _ = std::fs::remove_file(&path);
    bytes
}

fn snapshot_v2_bytes(ds: &Dataset) -> Vec<u8> {
    bestk_engine::snapv2::to_bytes(ds).expect("encode v2") // bestk-analyze: allow(no-unwrap) — exemplar fixture setup, broken build if it fails
}

/// Per-seed inputs: the grammar generator's almost-valid input(s) plus
/// one mutated child of each base exemplar.
fn seed_inputs(surface: Surface, seed: u64, bases: &[Vec<u8>], budget: usize) -> Vec<Vec<u8>> {
    let mut m = ByteMutator::new(seed);
    let mut inputs: Vec<Vec<u8>> = match surface {
        Surface::GraphIo => vec![
            grammar::edge_list(seed),
            grammar::metis(seed),
            grammar::binary_graph(&bases[2], seed),
        ],
        Surface::Snapshot => bases.iter().map(|b| grammar::snapshot(b, seed)).collect(),
        Surface::Wal => vec![grammar::wal(seed)],
        Surface::Serve => vec![grammar::serve_script(seed)],
    };
    for base in bases {
        inputs.push(m.mutate(base, budget));
    }
    for input in &mut inputs {
        input.truncate(budget);
    }
    inputs
}

/// Sweeps `seeds` consecutive seeds starting at `seed_start` over one
/// surface, returning the aggregated report. Deterministic: the same
/// `(surface, seed_start, seeds, budget)` always checks the same inputs.
pub fn run_surface(
    surface: Surface,
    seed_start: u64,
    seeds: u64,
    budget_bytes: usize,
) -> SurfaceReport {
    let bases = base_inputs(surface);
    let mut report = SurfaceReport::default();
    for seed in seed_start..seed_start.saturating_add(seeds) {
        for input in seed_inputs(surface, seed, &bases, budget_bytes) {
            let check = check_bytes(surface, &input, budget_bytes);
            if let Check::Panic(msg) | Check::Violation(msg) = &check {
                bestk_obs::counter("fuzz.findings").inc();
                eprintln!(
                    "fuzz finding: surface={} seed={seed} len={}: {msg}",
                    surface.name(),
                    input.len()
                );
            }
            report.absorb(&check);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_names_round_trip() {
        for s in ALL_SURFACES {
            assert_eq!(Surface::parse(s.name()), Some(s));
        }
        assert_eq!(Surface::parse("nope"), None);
    }

    #[test]
    fn base_inputs_are_all_valid() {
        for surface in ALL_SURFACES {
            for (i, base) in base_inputs(surface).iter().enumerate() {
                // The graph-io bases each satisfy a *different* parser, so
                // per-base validity is exactly what check_bytes reports.
                assert_eq!(
                    check_bytes(surface, base, DEFAULT_BUDGET_BYTES),
                    Check::Valid,
                    "{} base {i}",
                    surface.name()
                );
            }
        }
    }

    #[test]
    fn short_sweeps_are_clean_and_deterministic() {
        for surface in [Surface::GraphIo, Surface::Wal] {
            let a = run_surface(surface, 0, 64, DEFAULT_BUDGET_BYTES);
            let b = run_surface(surface, 0, 64, DEFAULT_BUDGET_BYTES);
            assert_eq!(a, b, "{}", surface.name());
            assert!(a.clean(), "{}: {a:?}", surface.name());
            assert!(a.inputs > 0);
            assert!(a.typed_errors > 0, "{}: {a:?}", surface.name());
        }
    }

    #[test]
    fn snapshot_sweep_is_clean() {
        let r = run_surface(Surface::Snapshot, 0, 32, DEFAULT_BUDGET_BYTES);
        assert!(r.clean(), "{r:?}");
        assert!(r.typed_errors > 0, "{r:?}");
    }

    #[test]
    fn serve_sweep_is_clean() {
        let r = run_surface(Surface::Serve, 0, 16, DEFAULT_BUDGET_BYTES);
        assert!(r.clean(), "{r:?}");
        assert!(r.valid > 0, "{r:?}");
    }

    #[test]
    fn hostile_metis_header_is_not_a_finding() {
        // As METIS this header claims ~1e12 edges (typed error after the
        // pre-allocation cap); as an edge list the two lines are honest
        // 64-bit ids (valid, relabeled). Either way: no panic, no OOM.
        let check = check_bytes(
            Surface::GraphIo,
            b"4000000000 999999999999\n1 2\n",
            DEFAULT_BUDGET_BYTES,
        );
        assert_eq!(check, Check::Valid);
    }
}
