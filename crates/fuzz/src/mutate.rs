//! The byte-level mutation engine.
//!
//! [`ByteMutator`] derives adversarial children from a (usually valid)
//! base input by composing a handful of classic structure-blind mutations:
//! truncation, bit flips, splices of the input into itself, length-field
//! corruption (little-endian boundary values written at arbitrary
//! offsets), byte overwrites, and junk insertion. Everything is driven by
//! the in-repo [`Xoshiro256`] stream, so a `(base, seed)` pair always
//! produces the same child — a crashing input is reproducible from its
//! seed alone.
//!
//! The mutator never grows an input past the caller's byte cap: the fuzz
//! contract is "typed error or valid result, never panic, never OOM
//! beyond a byte budget", and the cap is the input half of that budget.

use bestk_graph::cast;
use bestk_graph::rng::Xoshiro256;

/// Little-endian boundary values for length-field corruption: the values
/// most likely to expose unchecked `with_capacity`/`reserve` calls or
/// wrap-around arithmetic in a length-prefixed format.
const BOUNDARY_VALUES: &[u64] = &[
    0,
    1,
    u8::MAX as u64,
    u16::MAX as u64,
    u32::MAX as u64 - 1,
    u32::MAX as u64,
    u32::MAX as u64 + 1,
    1 << 40,
    1 << 60,
    u64::MAX - 1,
    u64::MAX,
];

/// A deterministic, structure-blind byte mutator.
#[derive(Debug)]
pub struct ByteMutator {
    rng: Xoshiro256,
}

impl ByteMutator {
    /// A mutator whose whole decision stream derives from `seed`.
    pub fn new(seed: u64) -> ByteMutator {
        ByteMutator {
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// Derives one mutated child of `base`, applying 1–4 mutation ops and
    /// never returning more than `cap` bytes.
    pub fn mutate(&mut self, base: &[u8], cap: usize) -> Vec<u8> {
        let mut buf = base.to_vec();
        if buf.len() > cap {
            buf.truncate(cap);
        }
        let rounds = 1 + self.rng.next_index(4);
        for _ in 0..rounds {
            self.apply_one(&mut buf, cap);
        }
        buf
    }

    fn apply_one(&mut self, buf: &mut Vec<u8>, cap: usize) {
        match self.rng.next_index(6) {
            0 => self.truncate(buf),
            1 => self.bit_flip(buf),
            2 => self.splice(buf, cap),
            3 => self.length_field(buf),
            4 => self.overwrite(buf),
            _ => self.insert_junk(buf, cap),
        }
    }

    /// Cuts the buffer at a uniformly chosen point (mid-record truncation
    /// is the classic torn-write shape).
    fn truncate(&mut self, buf: &mut Vec<u8>) {
        if buf.is_empty() {
            return;
        }
        let at = self.rng.next_index(buf.len());
        buf.truncate(at);
    }

    /// Flips 1–8 individual bits at uniform positions.
    fn bit_flip(&mut self, buf: &mut [u8]) {
        if buf.is_empty() {
            return;
        }
        let flips = 1 + self.rng.next_index(8);
        for _ in 0..flips {
            let i = self.rng.next_index(buf.len());
            let bit = cast::u32_of(self.rng.next_index(8));
            buf[i] ^= 1u8 << bit;
        }
    }

    /// Copies a random span of the input to a random insertion point —
    /// duplicated records, repeated sections, self-referential tables.
    fn splice(&mut self, buf: &mut Vec<u8>, cap: usize) {
        if buf.len() < 2 {
            return;
        }
        let start = self.rng.next_index(buf.len());
        let max_len = (buf.len() - start)
            .min(64)
            .min(cap.saturating_sub(buf.len()));
        if max_len == 0 {
            return;
        }
        let len = 1 + self.rng.next_index(max_len);
        let chunk: Vec<u8> = buf[start..start + len].to_vec();
        let at = self.rng.next_index(buf.len() + 1);
        buf.splice(at..at, chunk);
    }

    /// Writes a little-endian boundary value (4 or 8 bytes) at a random
    /// offset — the length-field corruption that hunts unchecked
    /// allocations behind `n`/`nnz`/section-length headers.
    fn length_field(&mut self, buf: &mut [u8]) {
        if buf.len() < 4 {
            return;
        }
        let value = BOUNDARY_VALUES[self.rng.next_index(BOUNDARY_VALUES.len())];
        let wide = buf.len() >= 8 && self.rng.next_bool(0.5);
        let width = if wide { 8 } else { 4 };
        let at = self.rng.next_index(buf.len() - width + 1);
        if wide {
            buf[at..at + 8].copy_from_slice(&value.to_le_bytes());
        } else {
            buf[at..at + 4].copy_from_slice(&value.to_le_bytes()[..4]);
        }
    }

    /// Overwrites 1–16 bytes with fresh random values.
    fn overwrite(&mut self, buf: &mut [u8]) {
        if buf.is_empty() {
            return;
        }
        let n = 1 + self.rng.next_index(16);
        for _ in 0..n {
            let i = self.rng.next_index(buf.len());
            buf[i] = cast::low_byte(self.rng.next_below(256));
        }
    }

    /// Inserts 1–32 random bytes at a random point, respecting the cap.
    fn insert_junk(&mut self, buf: &mut Vec<u8>, cap: usize) {
        let room = cap.saturating_sub(buf.len()).min(32);
        if room == 0 {
            return;
        }
        let n = 1 + self.rng.next_index(room);
        let at = self.rng.next_index(buf.len() + 1);
        let junk: Vec<u8> = (0..n)
            .map(|_| cast::low_byte(self.rng.next_below(256)))
            .collect();
        buf.splice(at..at, junk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let base: Vec<u8> = (0..200u8).collect();
        let a = ByteMutator::new(7).mutate(&base, 1024);
        let b = ByteMutator::new(7).mutate(&base, 1024);
        let c = ByteMutator::new(8).mutate(&base, 1024);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mutants_respect_the_byte_cap() {
        let base = vec![0xAAu8; 100];
        for seed in 0..200 {
            let child = ByteMutator::new(seed).mutate(&base, 120);
            assert!(child.len() <= 120, "seed {seed}: {}", child.len());
        }
    }

    #[test]
    fn empty_and_tiny_bases_never_panic() {
        for seed in 0..100 {
            let mut m = ByteMutator::new(seed);
            let _ = m.mutate(&[], 64);
            let _ = m.mutate(&[1], 64);
            let _ = m.mutate(&[1, 2, 3], 3);
            let _ = m.mutate(&[1, 2, 3, 4, 5, 6, 7, 8, 9], 4);
        }
    }

    #[test]
    fn mutants_usually_differ_from_the_base() {
        let base: Vec<u8> = (0..128u8).collect();
        let changed = (0..100)
            .filter(|&s| ByteMutator::new(s).mutate(&base, 256) != base)
            .count();
        assert!(changed > 90, "{changed}/100 mutants changed");
    }
}
