//! Grammar-aware input generators: *almost-valid* inputs per surface.
//!
//! Where [`crate::mutate::ByteMutator`] is structure-blind, these
//! generators know each format's grammar and aim one step past it: edge
//! lists with 64-bit ids and half-missing tokens, METIS headers whose
//! counts lie, WAL streams with checksummed-but-alien records and torn
//! tails, serve scripts that shadow the real verb grammar, and snapshot
//! headers with surgically corrupted length fields. Almost-valid inputs
//! reach much deeper into a parser than random bytes: they pass the early
//! validation layers and exercise the error paths behind them.
//!
//! Every generator is a pure function of its seed (and base bytes, where
//! it corrupts a valid exemplar), so any finding is reproducible from the
//! `(surface, seed)` pair alone.

use bestk_graph::cast;
use bestk_graph::rng::Xoshiro256;

/// The WAL magic, mirrored from `bestk-delta`'s spec (`BESTKWAL1`); the
/// generator deliberately re-implements the format from its documentation
/// rather than calling the production encoder, so encoder bugs cannot
/// hide from the fuzzer.
const WAL_MAGIC: &[u8] = b"BESTKWAL1";

/// FNV-1a 64-bit, as specified for WAL record checksums.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digit-string pool for numeric token positions: in-range ids, boundary
/// values, overflow values, and outright junk.
fn numeric_token(rng: &mut Xoshiro256) -> String {
    match rng.next_index(10) {
        0..=4 => rng.next_below(32).to_string(),
        5 => (u32::MAX as u64 + rng.next_below(3)).to_string(),
        6 => u64::MAX.to_string(),
        7 => format!("{}9", u64::MAX), // overflows u64 parsing
        8 => format!("-{}", rng.next_below(100)),
        _ => ["zz", "0x10", "1e9", "NaN", "", "１２"][rng.next_index(6)].to_string(),
    }
}

// ------------------------------------------------------------- graph I/O

/// An almost-valid whitespace edge list: mostly `u v` lines, salted with
/// comments, blank lines, missing/extra tokens, and 64-bit ids (the
/// reader relabels sparse ids, so huge ids must parse without huge
/// allocations).
pub fn edge_list(seed: u64) -> Vec<u8> {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut out = String::new();
    let lines = 1 + rng.next_index(40);
    for _ in 0..lines {
        match rng.next_index(8) {
            0 => out.push_str("# comment line\n"),
            1 => out.push('\n'),
            2 => {
                let t = numeric_token(&mut rng);
                out.push_str(&t);
                out.push('\n');
            }
            3 => {
                out.push_str(&format!(
                    "{} {} {}\n",
                    numeric_token(&mut rng),
                    numeric_token(&mut rng),
                    numeric_token(&mut rng)
                ));
            }
            _ => {
                out.push_str(&format!(
                    "{} {}\n",
                    numeric_token(&mut rng),
                    numeric_token(&mut rng)
                ));
            }
        }
    }
    out.into_bytes()
}

/// An almost-valid METIS file: a header whose `n`/`m` may lie (including
/// the hostile billions-of-edges shape), then adjacency lines with
/// 1-indexed, sometimes out-of-range neighbors.
pub fn metis(seed: u64) -> Vec<u8> {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d);
    let n = 1 + rng.next_below(8);
    let mut out = String::new();
    if rng.next_bool(0.2) {
        out.push_str("% metis comment\n");
    }
    // Header: truthful, inflated, hostile, or weighted.
    match rng.next_index(6) {
        0 => out.push_str(&format!("{n} {}\n", rng.next_below(16))),
        1 => out.push_str(&format!("{} {}\n", n * 1000, rng.next_below(16))),
        2 => out.push_str("4000000000 999999999999\n"),
        3 => out.push_str(&format!("{n} {} 011\n", rng.next_below(16))),
        4 => out.push_str(&format!("{n} {} 000\n", rng.next_below(16))),
        _ => out.push_str(&format!(
            "{} {}\n",
            numeric_token(&mut rng),
            numeric_token(&mut rng)
        )),
    }
    let lines = rng.next_index(2 * n as usize + 2);
    for _ in 0..lines {
        let degree = rng.next_index(4);
        let toks: Vec<String> = (0..degree)
            .map(|_| {
                if rng.next_bool(0.8) {
                    (1 + rng.next_below(n + 2)).to_string()
                } else {
                    numeric_token(&mut rng)
                }
            })
            .collect();
        out.push_str(&toks.join(" "));
        out.push('\n');
    }
    out.into_bytes()
}

/// Structured corruption of a valid `BESTKGR1` binary graph: length-field
/// lies in the `n`/`nnz` header, mid-section truncation, trailing bytes,
/// and magic damage.
pub fn binary_graph(base: &[u8], seed: u64) -> Vec<u8> {
    corrupt_framed(base, seed ^ 0xd1b5_4a32_d192_ed03)
}

// ------------------------------------------------------------- snapshots

/// Structured corruption of a valid snapshot (v1 `.bestk` or v2
/// `BESTKSS2`): header fields, section-table entries, body bytes,
/// truncation at and off section boundaries, appended trailers.
pub fn snapshot(base: &[u8], seed: u64) -> Vec<u8> {
    corrupt_framed(base, seed ^ 0x94d0_49bb_1331_11eb)
}

/// The shared "almost-valid binary" corruptor: applies 1–3 surgical edits
/// biased toward the header and length fields, where framed formats keep
/// their load-bearing integers.
fn corrupt_framed(base: &[u8], seed: u64) -> Vec<u8> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut buf = base.to_vec();
    let edits = 1 + rng.next_index(3);
    for _ in 0..edits {
        if buf.is_empty() {
            break;
        }
        match rng.next_index(6) {
            // Header-field lie: write a boundary value into the first 64
            // bytes, 4- or 8-byte aligned like real header fields.
            0 => {
                let header = buf.len().min(64);
                if header >= 8 {
                    let at = (rng.next_index(header - 7) / 4) * 4;
                    let v = [0u64, 1, u32::MAX as u64, u64::MAX, 1 << 40][rng.next_index(5)];
                    if rng.next_bool(0.5) {
                        buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
                    } else {
                        buf[at..at + 4].copy_from_slice(&v.to_le_bytes()[..4]);
                    }
                }
            }
            // Truncate at an 8-byte boundary (torn section)...
            1 => {
                let cut = (rng.next_index(buf.len()) / 8) * 8;
                buf.truncate(cut);
            }
            // ...or anywhere (torn field).
            2 => {
                let cut = rng.next_index(buf.len());
                buf.truncate(cut);
            }
            // Flip a bit somewhere in the body (checksum must catch it).
            3 => {
                let at = rng.next_index(buf.len());
                buf[at] ^= 1 << rng.next_index(8);
            }
            // Damage the magic itself.
            4 => {
                let at = rng.next_index(buf.len().min(9));
                buf[at] = buf[at].wrapping_add(1);
            }
            // Append trailing bytes (must be rejected, not ignored).
            _ => {
                let extra = 1 + rng.next_index(16);
                for _ in 0..extra {
                    buf.push(cast::low_byte(rng.next_below(256)));
                }
            }
        }
    }
    buf
}

// ------------------------------------------------------------------- WAL

/// An almost-valid `BESTKWAL1` stream: correctly checksummed frames mixed
/// with alien tags, lying length fields, checksum mismatches, and torn
/// tails — the full quarantine-path grammar.
pub fn wal(seed: u64) -> Vec<u8> {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xbf58_476d_1ce4_e5b9);
    let mut out = Vec::new();
    // Usually a correct magic; sometimes damaged or missing.
    match rng.next_index(8) {
        0 => {}
        1 => out.extend_from_slice(b"BESTKWAL2"),
        2 => out.extend_from_slice(&WAL_MAGIC[..rng.next_index(WAL_MAGIC.len())]),
        _ => out.extend_from_slice(WAL_MAGIC),
    }
    let frames = rng.next_index(12);
    for _ in 0..frames {
        // A mostly-valid payload: insert/delete (tag + 2×u32le), commit
        // (tag alone), or an alien tag/length combination.
        let mut payload = Vec::new();
        match rng.next_index(6) {
            0 | 1 => {
                payload.push(0x01);
                payload.extend_from_slice(&cast::u32_from_u64(rng.next_below(64)).to_le_bytes());
                payload.extend_from_slice(&cast::u32_from_u64(rng.next_below(64)).to_le_bytes());
            }
            2 => {
                payload.push(0x02);
                payload.extend_from_slice(&cast::u32_from_u64(rng.next_below(64)).to_le_bytes());
                payload.extend_from_slice(&cast::u32_from_u64(rng.next_below(64)).to_le_bytes());
            }
            3 => payload.push(0x03),
            4 => {
                // Alien tag, plausible length.
                payload.push(0x7f);
                payload.extend_from_slice(&rng.next_u64().to_le_bytes());
            }
            _ => {
                // Valid tag, wrong length.
                payload.push(if rng.next_bool(0.5) { 0x01 } else { 0x03 });
                for _ in 0..rng.next_index(4) {
                    payload.push(cast::low_byte(rng.next_below(256)));
                }
            }
        }
        // Frame it: len u32le | payload | fnv1a64(payload) u64le, with the
        // length or checksum sometimes lying.
        let mut len = cast::u32_of(payload.len());
        if rng.next_bool(0.15) {
            len = [0, 1, 10, 0xffff_ffff, len.wrapping_add(1)][rng.next_index(5)];
        }
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&payload);
        let mut sum = fnv1a64(&payload);
        if rng.next_bool(0.15) {
            sum ^= 1 << rng.next_index(64);
        }
        out.extend_from_slice(&sum.to_le_bytes());
    }
    // Torn tail: cut the stream mid-frame.
    if rng.next_bool(0.3) && !out.is_empty() {
        let keep = WAL_MAGIC.len().min(out.len());
        let cut = keep + rng.next_index(out.len() - keep + 1);
        out.truncate(cut);
    }
    out
}

// ----------------------------------------------------------------- serve

const SERVE_VERBS: &[&str] = &[
    "load", "query", "add-edge", "del-edge", "commit", "datasets", "counters", "metrics", "quit",
];
const QUERY_FORMS: &[&str] = &[
    "stats",
    "bestkset ad",
    "bestkset den",
    "bestkset cr",
    "bestkset zz",
    "coreof 5",
    "coreof",
    "bestkset",
    "frobnicate",
];

/// An almost-valid serve script: request lines shadowing the real verb
/// grammar (right verbs, wrong arity; in-range and absurd vertex ids;
/// nonexistent datasets and safe relative paths), plus blank lines,
/// control characters, and the occasional binary garbage line. `quit`
/// appears with low probability so most scripts run to EOF.
pub fn serve_script(seed: u64) -> Vec<u8> {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x2b99_2ddf_a232_49d6);
    let mut out: Vec<u8> = Vec::new();
    let lines = 1 + rng.next_index(24);
    for _ in 0..lines {
        let mut line: Vec<u8> = match rng.next_index(12) {
            0 => Vec::new(), // blank
            1 => {
                // Raw binary garbage (lossy UTF-8 on the read path).
                (0..rng.next_index(24))
                    .map(|_| cast::low_byte(rng.next_below(256)))
                    .collect()
            }
            2 => {
                let ds = ["fig2", "nope", "g"][rng.next_index(3)];
                format!(
                    "load {ds} fuzz-missing/{}.bestk{}",
                    rng.next_below(1000),
                    if rng.next_bool(0.3) {
                        " fuzz-missing/src.txt"
                    } else {
                        ""
                    }
                )
                .into_bytes()
            }
            3 => format!(
                "{} fig2 {} {}",
                ["add-edge", "del-edge"][rng.next_index(2)],
                numeric_token(&mut rng),
                numeric_token(&mut rng)
            )
            .into_bytes(),
            4 => format!("commit {}", ["fig2", "nope", ""][rng.next_index(3)]).into_bytes(),
            5 => SERVE_VERBS[rng.next_index(SERVE_VERBS.len())]
                .as_bytes()
                .to_vec(),
            6 => {
                // A verb with trailing junk (arity violations).
                format!(
                    "{} extra junk {}",
                    SERVE_VERBS[rng.next_index(SERVE_VERBS.len())],
                    numeric_token(&mut rng)
                )
                .into_bytes()
            }
            7 if rng.next_bool(0.3) => b"quit".to_vec(),
            _ => format!(
                "query {} {}",
                ["fig2", "nope"][rng.next_index(2)],
                QUERY_FORMS[rng.next_index(QUERY_FORMS.len())]
            )
            .into_bytes(),
        };
        // Occasional intra-line damage: tabs, CR, NULs, a very long token.
        if rng.next_bool(0.2) && !line.is_empty() {
            let at = rng.next_index(line.len());
            line[at] = [b'\t', b'\r', 0, 0xff][rng.next_index(4)];
        }
        if rng.next_bool(0.05) {
            line.extend(std::iter::repeat_n(b'x', 100 + rng.next_index(200)));
        }
        out.extend_from_slice(&line);
        out.push(b'\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for seed in 0..8 {
            assert_eq!(edge_list(seed), edge_list(seed));
            assert_eq!(metis(seed), metis(seed));
            assert_eq!(wal(seed), wal(seed));
            assert_eq!(serve_script(seed), serve_script(seed));
        }
        assert_ne!(wal(1), wal(2));
    }

    #[test]
    fn wal_streams_cover_valid_and_torn_shapes() {
        let mut with_magic = 0;
        let mut torn_or_alien = 0;
        for seed in 0..256 {
            let bytes = wal(seed);
            if bytes.starts_with(WAL_MAGIC) {
                with_magic += 1;
                if bestk_delta::replay_bytes(&bytes)
                    .map(|r| r.torn_tail)
                    .unwrap_or(true)
                {
                    torn_or_alien += 1;
                }
            }
        }
        assert!(with_magic > 128, "{with_magic} streams carried the magic");
        assert!(torn_or_alien > 32, "{torn_or_alien} streams were torn");
    }

    #[test]
    fn serve_scripts_are_line_oriented() {
        for seed in 0..32 {
            let s = serve_script(seed);
            assert!(s.ends_with(b"\n"), "seed {seed}");
        }
    }

    #[test]
    fn corruptor_handles_degenerate_bases() {
        for seed in 0..64 {
            let _ = snapshot(&[], seed);
            let _ = snapshot(&[1, 2, 3], seed);
            let _ = binary_graph(&[0; 7], seed);
        }
    }
}
