//! `bestk-fuzz`: structured fuzzing for the workspace's parse surfaces.
//!
//! The workspace accepts untrusted bytes in four places: the graph
//! readers (edge list / METIS / `BESTKGR1`), the `.bestk` snapshot
//! loaders (v1 and the zero-copy `BESTKSS2` v2), the `BESTKWAL1`
//! write-ahead log, and the line-oriented serve protocol. This crate
//! attacks each of them with the contract *typed error or valid result,
//! never panic, never OOM beyond a byte budget*, using only the in-repo
//! [`bestk_graph::rng`] streams — no external fuzzing dependency, and
//! every input is reproducible from a `(surface, seed)` pair.
//!
//! Three layers compose:
//!
//! * [`mutate::ByteMutator`] — structure-blind byte mutations
//!   (truncation, bit flips, splices, length-field corruption) of
//!   known-valid exemplars;
//! * [`grammar`] — grammar-aware generators emitting *almost-valid*
//!   inputs that pass the early validation layers and exercise the error
//!   paths behind them;
//! * [`harness`] — the per-surface contract checks and the deterministic
//!   seed-sweep driver behind `bestk fuzz`.
//!
//! Findings graduate into `tests/corpus/<surface>/` at the workspace
//! root, swept by `tests/fuzz_regression.rs` on every build. See
//! DESIGN.md §16 for the fuzzing model and corpus policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grammar;
pub mod harness;
pub mod mutate;

pub use harness::{
    base_inputs, check_bytes, run_surface, Check, Surface, SurfaceReport, ALL_SURFACES,
    DEFAULT_BUDGET_BYTES,
};
pub use mutate::ByteMutator;
