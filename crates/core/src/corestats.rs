//! Statistics over a core decomposition.
//!
//! The paper characterizes datasets by their coreness spectra (Table III's
//! `kmax`, the shell structure behind Figures 5–6). This module computes
//! those distributions from a [`CoreDecomposition`] in `O(n)`.

use crate::decomposition::CoreDecomposition;
use bestk_exec::ExecPolicy;
use bestk_graph::cast;

/// Summary of a graph's coreness structure.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreStats {
    /// The degeneracy `kmax`.
    pub kmax: u32,
    /// `shell_sizes[k]` = `|H_k|`. Length `kmax + 1`.
    pub shell_sizes: Vec<usize>,
    /// `core_set_sizes[k]` = `|V(C_k)|`. Length `kmax + 1`.
    pub core_set_sizes: Vec<usize>,
    /// Number of non-empty shells.
    pub populated_shells: usize,
    /// Mean coreness over all vertices.
    pub mean_coreness: f64,
    /// Median coreness.
    pub median_coreness: u32,
    /// Size of the innermost (kmax) core set.
    pub top_core_size: usize,
}

/// Computes [`CoreStats`] in `O(n + kmax)`.
pub fn core_stats(d: &CoreDecomposition) -> CoreStats {
    core_stats_with(d, &ExecPolicy::Sequential)
}

/// [`core_stats`] under an execution policy: the shell histogram pass runs
/// as per-chunk partial histograms merged in chunk order (sums commute, so
/// the result is identical at every thread count).
pub fn core_stats_with(d: &CoreDecomposition, policy: &ExecPolicy) -> CoreStats {
    let kmax = d.kmax();
    let n = d.num_vertices();
    let coreness = d.coreness_slice();
    let plan = policy.plan_even(n);
    let (shell_sizes, total) = policy.map_reduce(
        &plan,
        || (),
        |(), _, range| {
            let mut hist = vec![0usize; kmax as usize + 1];
            let mut sum = 0u64;
            for &c in &coreness[range] {
                hist[c as usize] += 1;
                sum += c as u64;
            }
            (hist, sum)
        },
        (vec![0usize; kmax as usize + 1], 0u64),
        |(mut hist, sum), (part_hist, part_sum)| {
            for (h, p) in hist.iter_mut().zip(&part_hist) {
                *h += p;
            }
            (hist, sum + part_sum)
        },
    );
    let mut core_set_sizes = vec![0usize; kmax as usize + 1];
    let mut acc = 0usize;
    for k in (0..=kmax as usize).rev() {
        acc += shell_sizes[k];
        core_set_sizes[k] = acc;
    }
    let populated_shells = shell_sizes.iter().filter(|&&s| s > 0).count();
    let mean_coreness = if n == 0 { 0.0 } else { total as f64 / n as f64 };
    // Median via the shell histogram.
    let mut median_coreness = 0u32;
    if n > 0 {
        let target = n.div_ceil(2);
        let mut seen = 0usize;
        for (k, &s) in shell_sizes.iter().enumerate() {
            seen += s;
            if seen >= target {
                median_coreness = cast::u32_of(k);
                break;
            }
        }
    }
    CoreStats {
        kmax,
        top_core_size: *core_set_sizes.last().unwrap_or(&0),
        shell_sizes,
        core_set_sizes,
        populated_shells,
        mean_coreness,
        median_coreness,
    }
}

/// The "coreness Gini-like" concentration: fraction of vertices in the top
/// decile of coreness levels — a quick heavy-tail indicator used by the
/// bench harness to sanity-check dataset stand-ins.
pub fn top_decile_concentration(d: &CoreDecomposition) -> f64 {
    let n = d.num_vertices();
    if n == 0 || d.kmax() == 0 {
        return 0.0;
    }
    let threshold = (d.kmax() * 9).div_ceil(10);
    let deep = d
        .coreness_slice()
        .iter()
        .filter(|&&c| c >= threshold)
        .count();
    deep as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::core_decomposition;
    use bestk_graph::generators::{self, regular};

    #[test]
    fn figure2_stats() {
        let d = core_decomposition(&generators::paper_figure2());
        let s = core_stats(&d);
        assert_eq!(s.kmax, 3);
        assert_eq!(s.shell_sizes, vec![0, 0, 4, 8]);
        assert_eq!(s.core_set_sizes, vec![12, 12, 12, 8]);
        assert_eq!(s.populated_shells, 2);
        assert_eq!(s.top_core_size, 8);
        assert!((s.mean_coreness - (4.0 * 2.0 + 8.0 * 3.0) / 12.0).abs() < 1e-12);
        assert_eq!(s.median_coreness, 3);
    }

    #[test]
    fn complete_graph_stats() {
        let d = core_decomposition(&regular::complete(6));
        let s = core_stats(&d);
        assert_eq!(s.kmax, 5);
        assert_eq!(s.shell_sizes[5], 6);
        assert_eq!(s.populated_shells, 1);
        assert_eq!(s.median_coreness, 5);
        assert_eq!(top_decile_concentration(&d), 1.0);
    }

    #[test]
    fn policy_stats_match_sequential() {
        bestk_graph::testkit::check("corestats_policy_equals_sequential", 24, |gen| {
            let g = gen.graph(60, 240);
            let d = core_decomposition(&g);
            let reference = core_stats(&d);
            for threads in [1, 2, 4, 7] {
                let policy = ExecPolicy::with_threads(threads).unwrap();
                assert_eq!(core_stats_with(&d, &policy), reference, "{threads} threads");
            }
        });
    }

    #[test]
    fn empty_graph_stats() {
        let d = core_decomposition(&bestk_graph::CsrGraph::empty(0));
        let s = core_stats(&d);
        assert_eq!(s.kmax, 0);
        assert_eq!(s.core_set_sizes, vec![0]);
        assert_eq!(s.mean_coreness, 0.0);
        assert_eq!(top_decile_concentration(&d), 0.0);
    }

    #[test]
    fn core_set_sizes_match_decomposition() {
        let g = generators::chung_lu_power_law(500, 8.0, 2.4, 3);
        let d = core_decomposition(&g);
        let s = core_stats(&d);
        for k in 0..=d.kmax() {
            assert_eq!(s.core_set_sizes[k as usize], d.core_set_size(k));
        }
        assert_eq!(s.shell_sizes.iter().sum::<usize>(), g.num_vertices());
    }

    #[test]
    fn concentration_detects_planted_core() {
        // Mostly sparse graph with one planted deep clique: concentration
        // is small but positive.
        let mut b = bestk_graph::GraphBuilder::new();
        b.extend_edges(generators::erdos_renyi_gnm(400, 800, 1).edges());
        for u in 400..430u32 {
            for v in (u + 1)..430 {
                b.add_edge(u, v);
            }
        }
        let d = core_decomposition(&b.build());
        let c = top_decile_concentration(&d);
        assert!(c > 0.0 && c < 0.2, "c = {c}");
    }
}
