//! Vertex ordering for optimal neighbor queries (paper §III-B, Algorithm 1).
//!
//! Every adjacency list is rewritten in ascending *vertex rank* (Def. 5:
//! coreness first, id as tie-break), and three position tags are recorded per
//! vertex (paper Table II):
//!
//! | tag    | meaning                                                    |
//! |--------|------------------------------------------------------------|
//! | `same` | first neighbor `u` with `c(u) ≥ c(v)`                      |
//! | `plus` | first neighbor `u` with `c(u) > c(v)`                      |
//! | `high` | first neighbor `u` with `rank(u) > rank(v)`                |
//!
//! After the `O(m)` construction, `|N(v, ·)|` queries answer in `O(1)` and
//! `N(v, ·)` slices in `O(|N(v, ·)|)` — the primitive every sweep in this
//! crate is built on.

use bestk_exec::ExecPolicy;
use bestk_graph::cast;
use bestk_graph::{GraphView, VertexId};

use crate::decomposition::CoreDecomposition;

/// A graph whose adjacency lists are re-ordered by vertex rank, with the
/// paper's position tags. Owns its offset and adjacency arrays (so any
/// [`GraphView`] backend can build it and be dropped afterwards) and
/// borrows only the decomposition.
#[derive(Debug)]
pub struct OrderedGraph<'a> {
    decomp: &'a CoreDecomposition,
    /// Degree prefix sums, length `n + 1`: `offsets[v]..offsets[v + 1]`
    /// is the adjacency range of `v` inside `adj`.
    offsets: Vec<usize>,
    /// Rank-ordered adjacency, aligned with `offsets`.
    adj: Vec<VertexId>,
    /// Position tags, relative to each list start.
    same: Vec<u32>,
    plus: Vec<u32>,
    high: Vec<u32>,
}

impl<'a> OrderedGraph<'a> {
    /// Builds the ordering in `O(n + m)` time and `O(m)` space (Algorithm 1).
    ///
    /// The edge set is sorted by flattening `kmax + 1` coreness bins: walking
    /// vertices in rank order and scattering each edge to its opposite
    /// endpoint's list yields every `N'(u)` in ascending rank without any
    /// comparison sort.
    pub fn build<G: GraphView>(graph: &G, decomp: &'a CoreDecomposition) -> Self {
        Self::build_with(graph, decomp, &ExecPolicy::Sequential)
    }

    /// [`build`](Self::build) under an execution policy: the rank-order
    /// scatter stays sequential (its write order *is* the sort), while the
    /// per-list tag scan — an independent `O(d(v))` pass per vertex — runs
    /// as edge-balanced chunks on the shared runtime. Tags are merged in
    /// chunk order, so the result is bit-identical at every thread count.
    pub fn build_with<G: GraphView>(
        graph: &G,
        decomp: &'a CoreDecomposition,
        policy: &ExecPolicy,
    ) -> Self {
        let n = graph.num_vertices();
        assert_eq!(
            n,
            decomp.num_vertices(),
            "decomposition does not match graph"
        );
        let offsets = graph.degree_offsets();
        let mut adj: Vec<VertexId> = vec![0; offsets[n]];
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        // Vertices in rank order = the decomposition's (coreness, id) order;
        // pushing v into every neighbor's new list in this order leaves each
        // list sorted by rank (lines 5-11 of Algorithm 1, with the explicit
        // bins replaced by the precomputed rank order).
        for &v in decomp.vertices_by_coreness() {
            for u in graph.neighbors(v) {
                adj[cursor[u as usize]] = v;
                cursor[u as usize] += 1;
            }
        }

        // One scan per list records the tags (line 13).
        let mut same = vec![0u32; n];
        let mut plus = vec![0u32; n];
        let mut high = vec![0u32; n];
        let plan = policy.plan_weighted(&offsets);
        let adj_ref = &adj;
        let parts = policy.map_chunks(
            &plan,
            || (),
            |(), _, vertices| {
                let mut part = (
                    Vec::with_capacity(vertices.len()),
                    Vec::with_capacity(vertices.len()),
                    Vec::with_capacity(vertices.len()),
                );
                for v in vertices {
                    let cv = decomp.coreness(cast::vertex_id(v));
                    let list = &adj_ref[offsets[v]..offsets[v + 1]];
                    let deg = cast::u32_of(list.len());
                    let mut s = deg;
                    let mut p = deg;
                    let mut h = deg;
                    for (i, &u) in list.iter().enumerate() {
                        let cu = decomp.coreness(u);
                        if s == deg && cu >= cv {
                            s = cast::u32_of(i);
                        }
                        if p == deg && cu > cv {
                            p = cast::u32_of(i);
                        }
                        if h == deg && (cu > cv || (cu == cv && u > cast::vertex_id(v))) {
                            h = cast::u32_of(i);
                        }
                    }
                    part.0.push(s);
                    part.1.push(p);
                    part.2.push(h);
                }
                part
            },
        );
        let (mut s_at, mut p_at, mut h_at) = (0usize, 0usize, 0usize);
        for (ps, pp, ph) in parts {
            same[s_at..s_at + ps.len()].copy_from_slice(&ps);
            s_at += ps.len();
            plus[p_at..p_at + pp.len()].copy_from_slice(&pp);
            p_at += pp.len();
            high[h_at..h_at + ph.len()].copy_from_slice(&ph);
            h_at += ph.len();
        }
        OrderedGraph {
            decomp,
            offsets,
            adj,
            same,
            plus,
            high,
        }
    }

    /// Reassembles an ordering from persisted arrays (the snapshot
    /// deserialization hook). Checks the cheap structural invariants —
    /// array lengths, tag ordering `same ≤ plus ≤ degree`, `high ≤ degree`,
    /// and that every adjacency slice is rank-sorted — in `O(n + m)`;
    /// untrusted input comes back as an error, never a panic.
    pub fn from_parts<G: GraphView>(
        graph: &G,
        decomp: &'a CoreDecomposition,
        adj: Vec<VertexId>,
        same: Vec<u32>,
        plus: Vec<u32>,
        high: Vec<u32>,
    ) -> Result<Self, String> {
        let n = graph.num_vertices();
        if decomp.num_vertices() != n {
            return Err("decomposition does not match graph".into());
        }
        let offsets = graph.degree_offsets();
        if adj.len() != offsets[n] {
            return Err(format!(
                "ordered adjacency has {} entries, graph has {}",
                adj.len(),
                offsets[n]
            ));
        }
        if same.len() != n || plus.len() != n || high.len() != n {
            return Err("tag arrays must have one entry per vertex".into());
        }
        for v in 0..n {
            // bestk-analyze: allow(unchecked-arith) — CSR offsets are validated monotone
            let deg = cast::u32_of(offsets[v + 1] - offsets[v]);
            let (s, p, h) = (same[v], plus[v], high[v]);
            if s > p || p > deg || h > deg {
                return Err(format!(
                    "tags of vertex {v} violate same <= plus <= degree: ({s}, {p}, {h}), degree {deg}"
                ));
            }
            let list = &adj[offsets[v]..offsets[v + 1]];
            for (i, &u) in list.iter().enumerate() {
                if u as usize >= n {
                    return Err(format!("ordered neighbor {u} out of range"));
                }
                let (cu, cv) = (decomp.coreness(u), decomp.coreness(cast::vertex_id(v)));
                let lo = cast::u32_of(i);
                if (lo < s && cu >= cv) || (lo >= s && cu < cv) {
                    return Err(format!("same tag of vertex {v} misplaces neighbor {u}"));
                }
                if (lo < p && cu > cv) || (lo >= p && cu <= cv) {
                    return Err(format!("plus tag of vertex {v} misplaces neighbor {u}"));
                }
                let rank_gt = cu > cv || (cu == cv && u > cast::vertex_id(v));
                if (lo < h) == rank_gt {
                    return Err(format!("high tag of vertex {v} misplaces neighbor {u}"));
                }
            }
        }
        Ok(OrderedGraph {
            decomp,
            offsets,
            adj,
            same,
            plus,
            high,
        })
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Iterator over all vertices `0..n`.
    #[inline]
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        0..cast::vertex_id(self.num_vertices())
    }

    /// The raw rank-ordered adjacency array, aligned with the graph's
    /// offsets (the snapshot serialization hook).
    #[inline]
    pub fn raw_adjacency(&self) -> &[VertexId] {
        &self.adj
    }

    /// The raw per-vertex `(same, plus, high)` tag arrays (the snapshot
    /// serialization hook).
    #[inline]
    pub fn raw_tags(&self) -> (&[u32], &[u32], &[u32]) {
        (&self.same, &self.plus, &self.high)
    }

    /// The underlying decomposition.
    #[inline]
    pub fn decomposition(&self) -> &CoreDecomposition {
        self.decomp
    }

    /// Dissolves the ordering into its owned `(adj, same, plus, high)`
    /// arrays, releasing the graph/decomposition borrows — how the engine
    /// keeps the arrays resident without holding a self-referential struct.
    #[inline]
    pub fn into_parts(self) -> (Vec<VertexId>, Vec<u32>, Vec<u32>, Vec<u32>) {
        (self.adj, self.same, self.plus, self.high)
    }

    /// Whether `rank(u) > rank(v)` (Def. 5).
    #[inline]
    pub fn rank_gt(&self, u: VertexId, v: VertexId) -> bool {
        let (cu, cv) = (self.decomp.coreness(u), self.decomp.coreness(v));
        cu > cv || (cu == cv && u > v)
    }

    #[inline]
    fn range(&self, v: VertexId) -> (usize, usize) {
        let v = v as usize;
        (self.offsets[v], self.offsets[v + 1])
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let (s, e) = self.range(v);
        // bestk-analyze: allow(unchecked-arith) — offsets are monotone prefix sums by construction
        e - s
    }

    /// The full rank-ordered neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let (s, e) = self.range(v);
        &self.adj[s..e]
    }

    /// `N(v, <)`: neighbors with strictly smaller coreness.
    #[inline]
    pub fn neighbors_lt(&self, v: VertexId) -> &[VertexId] {
        let (s, _) = self.range(v);
        &self.adj[s..s + self.same[v as usize] as usize]
    }

    /// `N(v, =)`: neighbors with equal coreness.
    #[inline]
    pub fn neighbors_eq(&self, v: VertexId) -> &[VertexId] {
        let (s, _) = self.range(v);
        &self.adj[s + self.same[v as usize] as usize..s + self.plus[v as usize] as usize]
    }

    /// `N(v, >)`: neighbors with strictly larger coreness.
    #[inline]
    pub fn neighbors_gt(&self, v: VertexId) -> &[VertexId] {
        let (s, e) = self.range(v);
        &self.adj[s + self.plus[v as usize] as usize..e]
    }

    /// `N(v, ≥)`: neighbors with coreness at least `c(v)`.
    #[inline]
    pub fn neighbors_ge(&self, v: VertexId) -> &[VertexId] {
        let (s, e) = self.range(v);
        &self.adj[s + self.same[v as usize] as usize..e]
    }

    /// `N(v, >r)`: neighbors with strictly larger rank.
    #[inline]
    pub fn neighbors_gt_rank(&self, v: VertexId) -> &[VertexId] {
        let (s, e) = self.range(v);
        &self.adj[s + self.high[v as usize] as usize..e]
    }

    /// `|N(v, <)|` in `O(1)`.
    #[inline]
    pub fn count_lt(&self, v: VertexId) -> usize {
        self.same[v as usize] as usize
    }

    /// `|N(v, =)|` in `O(1)`.
    #[inline]
    pub fn count_eq(&self, v: VertexId) -> usize {
        (self.plus[v as usize] - self.same[v as usize]) as usize
    }

    /// `|N(v, >)|` in `O(1)`.
    #[inline]
    pub fn count_gt(&self, v: VertexId) -> usize {
        self.degree(v) - self.plus[v as usize] as usize
    }

    /// `|N(v, ≥)|` in `O(1)`.
    #[inline]
    pub fn count_ge(&self, v: VertexId) -> usize {
        self.degree(v) - self.same[v as usize] as usize
    }

    /// `|N(v, >r)|` in `O(1)`.
    #[inline]
    pub fn count_gt_rank(&self, v: VertexId) -> usize {
        self.degree(v) - self.high[v as usize] as usize
    }

    /// The raw `(same, plus, high)` tags of `v` (paper Fig. 3 values).
    #[inline]
    pub fn tags(&self, v: VertexId) -> (u32, u32, u32) {
        let v = v as usize;
        (self.same[v], self.plus[v], self.high[v])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::core_decomposition;
    use bestk_graph::generators;

    fn fig2() -> (bestk_graph::CsrGraph, CoreDecomposition) {
        let g = generators::paper_figure2();
        let d = core_decomposition(&g);
        (g, d)
    }

    #[test]
    fn figure3_tags() {
        // Figure 3 lists (same, plus, high) for v1, v6, v8, v9.
        let (g, d) = fig2();
        let o = OrderedGraph::build(&g, &d);
        assert_eq!(o.tags(0), (0, 3, 0)); // v1
        assert_eq!(o.tags(5), (0, 3, 1)); // v6
        assert_eq!(o.tags(7), (0, 2, 2)); // v8
        assert_eq!(o.tags(8), (1, 4, 1)); // v9
    }

    #[test]
    fn figure3_ordered_neighbor_lists() {
        let (g, d) = fig2();
        let o = OrderedGraph::build(&g, &d);
        // v6 ~ v5, v7, v8 (coreness 2, ascending id), then v3 (coreness 3).
        assert_eq!(o.neighbors(5), &[4, 6, 7, 2]);
        // v8 ~ v6, v7 (coreness 2), then v9 (coreness 3).
        assert_eq!(o.neighbors(7), &[5, 6, 8]);
        // v9 ~ v8 (coreness 2), then v10, v11, v12.
        assert_eq!(o.neighbors(8), &[7, 9, 10, 11]);
    }

    #[test]
    fn example3_count_queries() {
        // Example 3: |N(v6, >)| = |N(v6)| - plus = 1.
        let (g, d) = fig2();
        let o = OrderedGraph::build(&g, &d);
        assert_eq!(o.count_gt(5), 1);
        assert_eq!(o.count_eq(5), 3);
        assert_eq!(o.count_lt(5), 0);
        assert_eq!(o.count_ge(5), 4);
        assert_eq!(o.count_gt_rank(5), 3);
        // v9: one lower-coreness neighbor (v8), three same, none higher.
        assert_eq!(o.count_lt(8), 1);
        assert_eq!(o.count_eq(8), 3);
        assert_eq!(o.count_gt(8), 0);
    }

    #[test]
    fn slices_agree_with_counts_and_definition() {
        let g = generators::erdos_renyi_gnm(200, 900, 5);
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        for v in g.vertices() {
            let cv = d.coreness(v);
            assert_eq!(o.neighbors_lt(v).len(), o.count_lt(v));
            assert_eq!(o.neighbors_eq(v).len(), o.count_eq(v));
            assert_eq!(o.neighbors_gt(v).len(), o.count_gt(v));
            assert_eq!(o.neighbors_ge(v).len(), o.count_ge(v));
            assert_eq!(o.neighbors_gt_rank(v).len(), o.count_gt_rank(v));
            assert!(o.neighbors_lt(v).iter().all(|&u| d.coreness(u) < cv));
            assert!(o.neighbors_eq(v).iter().all(|&u| d.coreness(u) == cv));
            assert!(o.neighbors_gt(v).iter().all(|&u| d.coreness(u) > cv));
            assert!(o.neighbors_gt_rank(v).iter().all(|&u| o.rank_gt(u, v)));
            // The reordered list is a permutation of the original.
            let mut a: Vec<_> = o.neighbors(v).to_vec();
            let mut b: Vec<_> = g.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn lists_are_sorted_by_rank() {
        let g = generators::chung_lu_power_law(300, 6.0, 2.5, 8);
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        for v in g.vertices() {
            let list = o.neighbors(v);
            for w in list.windows(2) {
                assert!(
                    o.rank_gt(w[1], w[0]),
                    "neighbors of {v} not rank-sorted: {:?} before {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn build_with_matches_sequential_build() {
        bestk_graph::testkit::check("ordering_policy_equals_sequential", 24, |gen| {
            let g = gen.graph(50, 250);
            let d = core_decomposition(&g);
            let reference = OrderedGraph::build(&g, &d);
            for threads in [1, 2, 4, 7] {
                let policy = ExecPolicy::with_threads(threads).unwrap();
                let o = OrderedGraph::build_with(&g, &d, &policy);
                assert_eq!(o.adj, reference.adj, "{threads} threads");
                assert_eq!(o.same, reference.same, "{threads} threads");
                assert_eq!(o.plus, reference.plus, "{threads} threads");
                assert_eq!(o.high, reference.high, "{threads} threads");
            }
        });
    }

    #[test]
    fn empty_and_isolated() {
        let g = bestk_graph::CsrGraph::empty(3);
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        assert_eq!(o.count_ge(0), 0);
        assert!(o.neighbors(2).is_empty());
        assert_eq!(o.tags(1), (0, 0, 0));
    }
}
