//! Primary values and community scoring metrics (paper §II-C).
//!
//! The paper's key observation is that most community scoring metrics are
//! functions of five *primary values* of the evaluated subgraph `S`:
//! `n(S)`, `m(S)`, `b(S)`, `Δ(S)`, and `t(S)`. All sweep algorithms in this
//! crate maintain a [`PrimaryValues`] incrementally and delegate scoring to a
//! [`CommunityMetric`]; adding a new metric therefore needs no new graph
//! traversal.

use bestk_graph::cast;

/// The five primary values of a subgraph `S` (paper §II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrimaryValues {
    /// `n(S)`: number of vertices.
    pub num_vertices: u64,
    /// `m(S)`: number of internal edges.
    pub internal_edges: u64,
    /// `b(S)`: number of boundary edges (exactly one endpoint in `S`).
    pub boundary_edges: u64,
    /// `Δ(S)`: number of triangles. Only maintained by the triangle sweeps.
    pub triangles: u64,
    /// `t(S)`: number of triplets (paths of length 2, counted per center:
    /// `Σ_v C(d(v, S), 2)`). Only maintained by the triangle sweeps.
    pub triplets: u64,
}

impl PrimaryValues {
    /// Accumulates another subgraph's primaries (used by the core forest to
    /// merge child cores into their parent).
    pub fn add_assign(&mut self, other: &PrimaryValues) {
        self.num_vertices += other.num_vertices;
        self.internal_edges += other.internal_edges;
        self.boundary_edges += other.boundary_edges;
        self.triangles += other.triangles;
        self.triplets += other.triplets;
    }
}

/// Whole-graph quantities some metrics need (cut ratio and modularity are
/// normalized by the size of the full graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphContext {
    /// `n`: vertices in the input graph.
    pub total_vertices: u64,
    /// `m`: edges in the input graph.
    pub total_edges: u64,
}

/// A typed scoring failure: the metric asked for primary values the
/// profile does not carry. Returned by the `try_*` scoring APIs; the
/// panicking convenience wrappers render this error as their panic
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricError {
    /// The metric needs `Δ`/`t` but the profile was built without them
    /// (an `analyze_basic` / `with_triangles = false` build).
    MissingTriangles {
        /// The metric's name.
        metric: String,
    },
    /// The metric needs `Δ`/`t`, which weighted sweeps never maintain.
    WeightedTriangles {
        /// The metric's name.
        metric: String,
    },
}

impl std::fmt::Display for MetricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricError::MissingTriangles { metric } => write!(
                f,
                "metric {metric:?} needs triangles; build the profile with triangles"
            ),
            MetricError::WeightedTriangles { metric } => write!(
                f,
                "metric {metric:?} needs triangles, which weighted profiles do not maintain"
            ),
        }
    }
}

impl std::error::Error for MetricError {}

/// A community scoring metric computable from [`PrimaryValues`].
///
/// Implement this trait to plug a custom metric into every algorithm of the
/// crate (paper §VI-A: "our algorithms can handle most community metrics
/// based on the studied 5 primary values").
///
/// Scores may be `NaN` where the metric is undefined (e.g. clustering
/// coefficient of a triplet-free subgraph); the best-k selection skips
/// non-finite scores.
pub trait CommunityMetric {
    /// Human-readable metric name.
    fn name(&self) -> &str;

    /// Whether the metric needs `Δ(S)` / `t(S)` — if so, the sweeps use the
    /// `O(m^1.5)` triangle variant (Algorithm 3) instead of the `O(n)` one.
    fn needs_triangles(&self) -> bool {
        false
    }

    /// The score of a subgraph with primaries `pv` inside a graph `ctx`.
    fn score(&self, pv: &PrimaryValues, ctx: &GraphContext) -> f64;
}

/// The six representative metrics evaluated in the paper (§II-C), abbreviated
/// in the experiments as `ad`, `den`, `cr`, `con`, `mod`, `cc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// `2 m(S) / n(S)` — average degree.
    AverageDegree,
    /// `2 m(S) / (n(S) (n(S) - 1))` — internal density.
    InternalDensity,
    /// `1 - b(S) / (n(S) (n - n(S)))` — cut ratio.
    CutRatio,
    /// `1 - b(S) / (2 m(S) + b(S))` — conductance (as a goodness score:
    /// higher is better, following the paper's formulation).
    Conductance,
    /// Newman modularity of the two-way partition `{S, V \ S}`.
    Modularity,
    /// `3 Δ(S) / t(S)` — (global) clustering coefficient.
    ClusteringCoefficient,
    /// `m(S) / b(S)` — separability [Yang & Leskovec 2015]: ratio of
    /// internal to boundary edges; `+∞` for a perfectly isolated community.
    /// Not part of the paper's six, included to demonstrate §VI-A
    /// extensibility.
    Separability,
    /// `Δ(S) / C(n(S), 3)` — triangle density: fraction of vertex triples
    /// that close a triangle. Not part of the paper's six.
    TriangleDensity,
}

impl Metric {
    /// All six paper metrics, in the paper's order.
    pub const ALL: [Metric; 6] = [
        Metric::AverageDegree,
        Metric::InternalDensity,
        Metric::CutRatio,
        Metric::Conductance,
        Metric::Modularity,
        Metric::ClusteringCoefficient,
    ];

    /// The paper's six plus the extension metrics (§VI-A: any metric over
    /// the five primary values plugs in unchanged).
    pub const EXTENDED: [Metric; 8] = [
        Metric::AverageDegree,
        Metric::InternalDensity,
        Metric::CutRatio,
        Metric::Conductance,
        Metric::Modularity,
        Metric::ClusteringCoefficient,
        Metric::Separability,
        Metric::TriangleDensity,
    ];

    /// The abbreviation used in the paper's experiment tables.
    pub fn abbrev(&self) -> &'static str {
        match self {
            Metric::AverageDegree => "ad",
            Metric::InternalDensity => "den",
            Metric::CutRatio => "cr",
            Metric::Conductance => "con",
            Metric::Modularity => "mod",
            Metric::ClusteringCoefficient => "cc",
            Metric::Separability => "sep",
            Metric::TriangleDensity => "td",
        }
    }
}

impl CommunityMetric for Metric {
    fn name(&self) -> &str {
        match self {
            Metric::AverageDegree => "average degree",
            Metric::InternalDensity => "internal density",
            Metric::CutRatio => "cut ratio",
            Metric::Conductance => "conductance",
            Metric::Modularity => "modularity",
            Metric::ClusteringCoefficient => "clustering coefficient",
            Metric::Separability => "separability",
            Metric::TriangleDensity => "triangle density",
        }
    }

    fn needs_triangles(&self) -> bool {
        matches!(
            self,
            Metric::ClusteringCoefficient | Metric::TriangleDensity
        )
    }

    fn score(&self, pv: &PrimaryValues, ctx: &GraphContext) -> f64 {
        let n_s = pv.num_vertices as f64;
        let m_s = pv.internal_edges as f64;
        let b_s = pv.boundary_edges as f64;
        match self {
            Metric::AverageDegree => {
                if pv.num_vertices == 0 {
                    f64::NAN
                } else {
                    2.0 * m_s / n_s
                }
            }
            Metric::InternalDensity => {
                if pv.num_vertices < 2 {
                    f64::NAN
                } else {
                    2.0 * m_s / (n_s * (n_s - 1.0))
                }
            }
            Metric::CutRatio => {
                if pv.num_vertices == 0 {
                    f64::NAN
                } else if pv.num_vertices == ctx.total_vertices {
                    // No external vertices; nothing can cross the boundary.
                    1.0
                } else {
                    1.0 - b_s / (n_s * (ctx.total_vertices as f64 - n_s))
                }
            }
            Metric::Conductance => {
                if 2.0 * m_s + b_s == 0.0 {
                    f64::NAN
                } else {
                    1.0 - b_s / (2.0 * m_s + b_s)
                }
            }
            Metric::Modularity => {
                let m = ctx.total_edges as f64;
                if ctx.total_edges == 0 {
                    return f64::NAN;
                }
                // Two-community partition {S, V \ S}; the boundary is shared.
                let m_rest = m - m_s - b_s;
                let part = |edges: f64| {
                    let total_deg = 2.0 * edges + b_s;
                    edges / m - (total_deg / (2.0 * m)).powi(2)
                };
                part(m_s) + part(m_rest)
            }
            Metric::ClusteringCoefficient => {
                if pv.triplets == 0 {
                    f64::NAN
                } else {
                    3.0 * pv.triangles as f64 / pv.triplets as f64
                }
            }
            Metric::Separability => {
                if pv.num_vertices == 0 || pv.internal_edges == 0 {
                    f64::NAN
                } else if pv.boundary_edges == 0 {
                    f64::INFINITY
                } else {
                    pv.internal_edges as f64 / pv.boundary_edges as f64
                }
            }
            Metric::TriangleDensity => {
                let n = pv.num_vertices as f64;
                let triples = n * (n - 1.0) * (n - 2.0) / 6.0;
                if triples <= 0.0 {
                    f64::NAN
                } else {
                    pv.triangles as f64 / triples
                }
            }
        }
    }
}

/// Picks the best `k` from a score array indexed by `k` (`scores[k]` is the
/// score of the k-core set / k-core at `k`).
///
/// `NaN` scores (metric undefined) are skipped; infinities are legitimate
/// values (e.g. separability of an isolated community). Ties break toward
/// the **largest** `k` (paper §V-A: "the largest k is recorded if multiple
/// values of k are the best"). Returns `None` if every score is `NaN`.
pub fn best_k(scores: &[f64]) -> Option<(u32, f64)> {
    let mut best: Option<(u32, f64)> = None;
    for (k, &s) in scores.iter().enumerate().rev() {
        if !s.is_nan() && best.is_none_or(|(_, bs)| s > bs) {
            best = Some((cast::u32_of(k), s));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(n: u64, m: u64) -> GraphContext {
        GraphContext {
            total_vertices: n,
            total_edges: m,
        }
    }

    #[test]
    fn average_degree_and_density() {
        // A triangle inside a 10-vertex, 20-edge graph.
        let pv = PrimaryValues {
            num_vertices: 3,
            internal_edges: 3,
            boundary_edges: 4,
            ..Default::default()
        };
        let c = ctx(10, 20);
        assert_eq!(Metric::AverageDegree.score(&pv, &c), 2.0);
        assert_eq!(Metric::InternalDensity.score(&pv, &c), 1.0);
    }

    #[test]
    fn cut_ratio() {
        let pv = PrimaryValues {
            num_vertices: 4,
            internal_edges: 5,
            boundary_edges: 6,
            ..Default::default()
        };
        let c = ctx(10, 20);
        // 1 - 6 / (4 * 6)
        assert!((Metric::CutRatio.score(&pv, &c) - 0.75).abs() < 1e-12);
        // Whole graph: defined as 1.
        let whole = PrimaryValues {
            num_vertices: 10,
            internal_edges: 20,
            ..Default::default()
        };
        assert_eq!(Metric::CutRatio.score(&whole, &c), 1.0);
    }

    #[test]
    fn conductance() {
        let pv = PrimaryValues {
            num_vertices: 4,
            internal_edges: 5,
            boundary_edges: 10,
            ..Default::default()
        };
        let c = ctx(10, 20);
        assert!((Metric::Conductance.score(&pv, &c) - 0.5).abs() < 1e-12);
        let empty = PrimaryValues::default();
        assert!(Metric::Conductance.score(&empty, &c).is_nan());
    }

    #[test]
    fn modularity_whole_graph_is_zero() {
        let c = ctx(10, 20);
        let whole = PrimaryValues {
            num_vertices: 10,
            internal_edges: 20,
            ..Default::default()
        };
        assert!((Metric::Modularity.score(&whole, &c)).abs() < 1e-12);
    }

    #[test]
    fn modularity_of_balanced_split() {
        // Two 3-cliques joined by one edge: S = one clique.
        // m = 7, m_S = 3, b = 1, m_rest = 3.
        let c = ctx(6, 7);
        let pv = PrimaryValues {
            num_vertices: 3,
            internal_edges: 3,
            boundary_edges: 1,
            ..Default::default()
        };
        let score = Metric::Modularity.score(&pv, &c);
        let expected = 2.0 * (3.0 / 7.0 - (7.0 / 14.0f64).powi(2));
        assert!((score - expected).abs() < 1e-12, "{score} vs {expected}");
        assert!(
            score > 0.0,
            "assortative split should have positive modularity"
        );
    }

    #[test]
    fn clustering_coefficient() {
        let c = ctx(10, 20);
        // A triangle: 1 triangle, 3 triplets -> cc = 1.
        let pv = PrimaryValues {
            triangles: 1,
            triplets: 3,
            num_vertices: 3,
            internal_edges: 3,
            ..Default::default()
        };
        assert_eq!(Metric::ClusteringCoefficient.score(&pv, &c), 1.0);
        let no_triplets = PrimaryValues::default();
        assert!(Metric::ClusteringCoefficient
            .score(&no_triplets, &c)
            .is_nan());
    }

    #[test]
    fn nan_guards() {
        let c = ctx(10, 20);
        let empty = PrimaryValues::default();
        assert!(Metric::AverageDegree.score(&empty, &c).is_nan());
        assert!(Metric::InternalDensity.score(&empty, &c).is_nan());
        assert!(Metric::CutRatio.score(&empty, &c).is_nan());
        let single = PrimaryValues {
            num_vertices: 1,
            ..Default::default()
        };
        assert!(Metric::InternalDensity.score(&single, &c).is_nan());
        assert!(Metric::Modularity.score(&empty, &ctx(5, 0)).is_nan());
    }

    #[test]
    fn needs_triangles_only_for_triangle_metrics() {
        for m in Metric::EXTENDED {
            assert_eq!(
                m.needs_triangles(),
                matches!(m, Metric::ClusteringCoefficient | Metric::TriangleDensity),
                "{}",
                m.name()
            );
        }
    }

    #[test]
    fn abbreviations_are_the_papers() {
        let abbrevs: Vec<_> = Metric::ALL.iter().map(|m| m.abbrev()).collect();
        assert_eq!(abbrevs, vec!["ad", "den", "cr", "con", "mod", "cc"]);
        assert_eq!(Metric::Separability.abbrev(), "sep");
        assert_eq!(Metric::TriangleDensity.abbrev(), "td");
    }

    #[test]
    fn separability_scores() {
        let c = ctx(20, 50);
        let pv = PrimaryValues {
            num_vertices: 5,
            internal_edges: 8,
            boundary_edges: 2,
            ..Default::default()
        };
        assert_eq!(Metric::Separability.score(&pv, &c), 4.0);
        let isolated = PrimaryValues {
            num_vertices: 5,
            internal_edges: 8,
            boundary_edges: 0,
            ..Default::default()
        };
        assert_eq!(Metric::Separability.score(&isolated, &c), f64::INFINITY);
        assert!(Metric::Separability
            .score(&PrimaryValues::default(), &c)
            .is_nan());
    }

    #[test]
    fn triangle_density_scores() {
        let c = ctx(20, 50);
        let k4 = PrimaryValues {
            num_vertices: 4,
            triangles: 4,
            ..Default::default()
        };
        assert_eq!(Metric::TriangleDensity.score(&k4, &c), 1.0);
        let sparse = PrimaryValues {
            num_vertices: 5,
            triangles: 2,
            ..Default::default()
        };
        assert!((Metric::TriangleDensity.score(&sparse, &c) - 0.2).abs() < 1e-12);
        let pair = PrimaryValues {
            num_vertices: 2,
            ..Default::default()
        };
        assert!(Metric::TriangleDensity.score(&pair, &c).is_nan());
    }

    #[test]
    fn best_k_accepts_infinite_scores() {
        assert_eq!(best_k(&[1.0, f64::INFINITY, 2.0]), Some((1, f64::INFINITY)));
    }

    #[test]
    fn best_k_prefers_largest_on_ties() {
        assert_eq!(best_k(&[1.0, 3.0, 3.0, 2.0]), Some((2, 3.0)));
        assert_eq!(best_k(&[f64::NAN, 1.0, f64::NAN]), Some((1, 1.0)));
        assert_eq!(best_k(&[f64::NAN, f64::NAN]), None);
        assert_eq!(best_k(&[]), None);
        assert_eq!(best_k(&[f64::NEG_INFINITY, -5.0]), Some((1, -5.0)));
    }

    #[test]
    fn custom_metric_via_trait() {
        /// Triangle density: Δ(S) / C(n(S), 3).
        struct TriangleDensity;
        impl CommunityMetric for TriangleDensity {
            fn name(&self) -> &str {
                "triangle density"
            }
            fn needs_triangles(&self) -> bool {
                true
            }
            fn score(&self, pv: &PrimaryValues, _: &GraphContext) -> f64 {
                let n = pv.num_vertices as f64;
                let denom = n * (n - 1.0) * (n - 2.0) / 6.0;
                if denom <= 0.0 {
                    f64::NAN
                } else {
                    pv.triangles as f64 / denom
                }
            }
        }
        let pv = PrimaryValues {
            num_vertices: 4,
            triangles: 4,
            ..Default::default()
        };
        let score = TriangleDensity.score(&pv, &ctx(4, 6));
        assert_eq!(score, 1.0); // K4 contains all 4 possible triangles
    }
}
