//! The core forest and its LCPS construction (paper §IV-A, Algorithm 4).
//!
//! Every k-core of the graph maps to one tree node holding exactly the
//! core's *k-shell* vertices (`S ∩ H_k`, paper Def. 6); deeper vertices live
//! in descendant nodes. The forest encodes the disjointness/containment
//! hierarchy of all k-cores in `O(n)` space and is built in `O(n + m)` time
//! by a Level Component Priority Search: a best-first traversal that always
//! expands the highest-priority frontier vertex, where the priority of a
//! frontier edge `(w → v)` is `min(c(w), c(v))` — the deepest core level the
//! edge certifies connectivity for.

use bestk_graph::cast;
use std::collections::VecDeque;

use bestk_graph::{GraphView, VertexId};

use crate::decomposition::CoreDecomposition;

/// One node of the core forest: a k-core's shell vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreForestNode {
    /// The `k` of the associated k-core.
    pub coreness: u32,
    /// The vertices of the core with coreness exactly `k` (the node's
    /// "delta"; not necessarily connected among themselves).
    pub vertices: Vec<VertexId>,
    /// Parent node index, `None` for roots.
    pub parent: Option<u32>,
    /// Child node indices (each a deeper core contained in this one).
    pub children: Vec<u32>,
}

/// The compressed core forest, nodes sorted by **descending** coreness so
/// that every child precedes its parent — the processing order Algorithm 5
/// requires.
#[derive(Debug, Clone)]
pub struct CoreForest {
    nodes: Vec<CoreForestNode>,
    /// `vertex_node[v]` = index of the node containing `v`.
    vertex_node: Vec<u32>,
}

impl CoreForest {
    /// Builds the forest with LCPS (Algorithm 4), then compresses empty
    /// nodes and sorts by descending coreness.
    pub fn build<G: GraphView>(g: &G, d: &CoreDecomposition) -> Self {
        Builder::new(g, d).run()
    }

    /// Reassembles a forest from persisted nodes (the snapshot
    /// deserialization hook). `nodes` carry coreness, vertices, and parent
    /// pointers; child lists are rebuilt here so the serialized form stays
    /// minimal. Structural invariants — children-before-parents index
    /// order, strictly decreasing coreness toward the leaves, every vertex
    /// in exactly the node `vertex_node` claims — are re-checked in
    /// `O(n + #nodes)`; untrusted input comes back as an error, never a
    /// panic.
    pub fn from_parts(
        mut nodes: Vec<CoreForestNode>,
        vertex_node: Vec<u32>,
    ) -> Result<CoreForest, String> {
        let count = nodes.len();
        for node in nodes.iter_mut() {
            node.children.clear();
        }
        for i in 0..count {
            match nodes[i].parent {
                None => {}
                Some(p) => {
                    let pu = p as usize;
                    if pu <= i || pu >= count {
                        return Err(format!(
                            "node {i} has parent {p}; parents must come after children"
                        ));
                    }
                    if nodes[pu].coreness >= nodes[i].coreness {
                        return Err(format!(
                            "node {i} (coreness {}) has parent of coreness {}",
                            nodes[i].coreness, nodes[pu].coreness
                        ));
                    }
                    nodes[pu].children.push(cast::u32_of(i));
                }
            }
        }
        if !nodes.windows(2).all(|w| w[0].coreness >= w[1].coreness) {
            return Err("nodes must be sorted by descending coreness".into());
        }
        let n = vertex_node.len();
        let mut placed = vec![false; n];
        for (i, node) in nodes.iter().enumerate() {
            if node.vertices.is_empty() {
                return Err(format!("node {i} is empty; the forest is compressed"));
            }
            for &v in &node.vertices {
                let vu = v as usize;
                if vu >= n || placed[vu] {
                    return Err(format!("vertex {v} misplaced in node {i}"));
                }
                placed[vu] = true;
                if vertex_node[vu] != cast::u32_of(i) {
                    return Err(format!(
                        "vertex_node[{v}] = {} but node {i} contains it",
                        vertex_node[vu]
                    ));
                }
            }
        }
        if let Some(v) = placed.iter().position(|&p| !p) {
            return Err(format!("vertex {v} belongs to no forest node"));
        }
        Ok(CoreForest { nodes, vertex_node })
    }

    /// Number of nodes (= number of distinct k-cores over all k that own at
    /// least one shell vertex).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The per-vertex node index array (the snapshot serialization hook).
    #[inline]
    pub fn vertex_nodes(&self) -> &[u32] {
        &self.vertex_node
    }

    /// Node accessor.
    #[inline]
    pub fn node(&self, i: u32) -> &CoreForestNode {
        &self.nodes[i as usize]
    }

    /// All nodes, children before parents.
    #[inline]
    pub fn nodes(&self) -> &[CoreForestNode] {
        &self.nodes
    }

    /// Index of the node whose shell contains `v`.
    #[inline]
    pub fn node_of(&self, v: VertexId) -> u32 {
        self.vertex_node[v as usize]
    }

    /// Root node indices (one per connected component of the graph).
    pub fn roots(&self) -> Vec<u32> {
        (0..cast::u32_of(self.nodes.len()))
            .filter(|&i| self.nodes[i as usize].parent.is_none())
            .collect()
    }

    /// Reconstructs the full vertex set of the k-core associated with node
    /// `i` (the node's shell plus all descendant shells), in
    /// `O(|V(core)|)` — the paper's §IV-B retrieval primitive.
    pub fn core_vertices(&self, i: u32) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut stack = vec![i];
        while let Some(j) = stack.pop() {
            let node = &self.nodes[j as usize];
            out.extend_from_slice(&node.vertices);
            stack.extend_from_slice(&node.children);
        }
        out
    }

    /// The chain of node indices from node `i` up to its root (inclusive).
    pub fn ancestors(&self, i: u32) -> Vec<u32> {
        let mut chain = vec![i];
        let mut cur = i;
        while let Some(p) = self.nodes[cur as usize].parent {
            chain.push(p);
            cur = p;
        }
        chain
    }
}

/// LCPS traversal state (one instance per [`CoreForest::build`]).
struct Builder<'a, G> {
    g: &'a G,
    d: &'a CoreDecomposition,
    nodes: Vec<CoreForestNode>,
    vertex_node: Vec<u32>,
    visited: Vec<bool>,
    /// `bins[p]`: frontier vertices enqueued with priority `p`.
    bins: Vec<VecDeque<VertexId>>,
    pending: usize,
    cur_max: usize,
}

impl<'a, G: GraphView> Builder<'a, G> {
    fn new(g: &'a G, d: &'a CoreDecomposition) -> Self {
        let n = g.num_vertices();
        Builder {
            g,
            d,
            nodes: Vec::new(),
            vertex_node: vec![u32::MAX; n],
            visited: vec![false; n],
            bins: vec![VecDeque::new(); d.kmax() as usize + 1],
            pending: 0,
            cur_max: 0,
        }
    }

    fn new_node(&mut self, coreness: u32, parent: Option<u32>) -> u32 {
        let id = cast::u32_of(self.nodes.len());
        self.nodes.push(CoreForestNode {
            coreness,
            vertices: Vec::new(),
            parent,
            children: Vec::new(),
        });
        id
    }

    fn push(&mut self, v: VertexId, p: usize) {
        self.bins[p].push_back(v);
        self.pending += 1;
        self.cur_max = self.cur_max.max(p);
    }

    fn pop_max(&mut self) -> (VertexId, usize) {
        loop {
            if let Some(v) = self.bins[self.cur_max].pop_front() {
                self.pending -= 1;
                return (v, self.cur_max);
            }
            self.cur_max -= 1;
        }
    }

    fn run(mut self) -> CoreForest {
        let n = self.g.num_vertices();
        for s in 0..cast::vertex_id(n) {
            if self.visited[s as usize] {
                continue;
            }
            self.traverse_tree(s);
        }
        self.compress_and_sort()
    }

    /// One LCPS tree: the connected component of `s`.
    fn traverse_tree(&mut self, s: VertexId) {
        // `path` is the current root-to-node chain; levels strictly increase.
        let root = self.new_node(0, None);
        let mut path: Vec<u32> = vec![root];
        self.push(s, 0);
        while self.pending > 0 {
            let (v, r) = self.pop_max();
            if self.visited[v as usize] {
                continue;
            }
            self.visited[v as usize] = true;

            // Adjust the path: the invariant `r <= level(top)` holds because
            // every enqueued priority is bounded by the level current when it
            // was enqueued, and we always pop the maximum.
            let top_level = |nodes: &Vec<CoreForestNode>, path: &Vec<u32>| {
                // bestk-analyze: allow(no-unwrap) — the root never leaves the path
                nodes[*path.last().expect("path never empties") as usize].coreness
            };
            if top_level(&self.nodes, &path) > cast::u32_of(r) {
                // Line 10: k > r — climb until the enclosing core of level
                // <= r, keeping the detached sub-chain correctly parented.
                let mut detached: Option<u32> = None;
                while top_level(&self.nodes, &path) > cast::u32_of(r) {
                    detached = path.pop();
                }
                if top_level(&self.nodes, &path) < cast::u32_of(r) {
                    // No node at level r exists on the path yet: splice one
                    // in between the remaining path and the detached chain.
                    // bestk-analyze: allow(no-unwrap) — the root never leaves the path
                    let parent = *path.last().expect("path never empties");
                    let nid = self.new_node(cast::u32_of(r), Some(parent));
                    if let Some(dchild) = detached {
                        self.nodes[dchild as usize].parent = Some(nid);
                    }
                    path.push(nid);
                }
            }
            let cv = self.d.coreness(v);
            if cv > top_level(&self.nodes, &path) {
                // Line 11: c(v) > r — enter a deeper core.
                // bestk-analyze: allow(no-unwrap) — the root never leaves the path
                let parent = *path.last().expect("path never empties");
                let nid = self.new_node(cv, Some(parent));
                path.push(nid);
            }

            // Line 12: insert v into the node pointed to by the path.
            // bestk-analyze: allow(no-unwrap) — the root never leaves the path
            let cur = *path.last().expect("path never empties");
            debug_assert_eq!(
                self.nodes[cur as usize].coreness, cv,
                "vertex lands at its own level"
            );
            self.nodes[cur as usize].vertices.push(v);
            self.vertex_node[v as usize] = cur;

            // Lines 14-16: enqueue unvisited neighbors at the connectivity
            // priority min(c(w), c(v)).
            for w in self.g.neighbors(v) {
                if !self.visited[w as usize] {
                    let p = self.d.coreness(w).min(cv) as usize;
                    self.push(w, p);
                }
            }
        }
    }

    /// Adaptation steps (ii) and (iii): drop empty nodes (splicing children
    /// to the parent) and sort the survivors by descending coreness,
    /// remapping all indices.
    fn compress_and_sort(mut self) -> CoreForest {
        let total = self.nodes.len();
        // Resolve each node's compressed parent: nearest non-empty ancestor.
        let mut kept: Vec<u32> = (0..cast::u32_of(total))
            .filter(|&i| !self.nodes[i as usize].vertices.is_empty())
            .collect();
        // Sort by descending coreness (stable, so construction order breaks
        // ties deterministically).
        kept.sort_by_key(|&i| std::cmp::Reverse(self.nodes[i as usize].coreness));
        let mut remap = vec![u32::MAX; total];
        for (new_idx, &old) in kept.iter().enumerate() {
            remap[old as usize] = cast::u32_of(new_idx);
        }
        let find_parent = |nodes: &Vec<CoreForestNode>, mut i: u32| -> Option<u32> {
            loop {
                match nodes[i as usize].parent {
                    None => return None,
                    Some(p) => {
                        if nodes[p as usize].vertices.is_empty() {
                            i = p;
                        } else {
                            return Some(p);
                        }
                    }
                }
            }
        };
        let mut new_nodes: Vec<CoreForestNode> = Vec::with_capacity(kept.len());
        for &old in &kept {
            let parent = find_parent(&self.nodes, old).map(|p| remap[p as usize]);
            let node = &mut self.nodes[old as usize];
            new_nodes.push(CoreForestNode {
                coreness: node.coreness,
                vertices: std::mem::take(&mut node.vertices),
                parent,
                children: Vec::new(),
            });
        }
        for i in 0..new_nodes.len() {
            if let Some(p) = new_nodes[i].parent {
                new_nodes[p as usize].children.push(cast::u32_of(i));
            }
        }
        let mut vertex_node = self.vertex_node;
        for slot in vertex_node.iter_mut() {
            debug_assert_ne!(*slot, u32::MAX, "every vertex must be placed");
            *slot = remap[*slot as usize];
        }
        CoreForest {
            nodes: new_nodes,
            vertex_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::core_decomposition;
    use bestk_graph::generators::{self, regular};
    use bestk_graph::CsrGraph;
    use bestk_graph::GraphBuilder;

    fn forest(g: &CsrGraph) -> CoreForest {
        let d = core_decomposition(g);
        CoreForest::build(g, &d)
    }

    #[test]
    fn figure4_core_forest() {
        // Paper Figure 4: one tree; NS1 (k=2, {v5..v8}) is the root with two
        // children NS2 = {v1..v4} and NS3 = {v9..v12}, both k=3.
        let g = generators::paper_figure2();
        let f = forest(&g);
        assert_eq!(f.node_count(), 3);
        let roots = f.roots();
        assert_eq!(roots.len(), 1);
        let root = f.node(roots[0]);
        assert_eq!(root.coreness, 2);
        let mut shell = root.vertices.clone();
        shell.sort_unstable();
        assert_eq!(shell, vec![4, 5, 6, 7]);
        assert_eq!(root.children.len(), 2);
        let mut child_sets: Vec<Vec<u32>> = root
            .children
            .iter()
            .map(|&c| {
                let mut v = f.node(c).vertices.clone();
                v.sort_unstable();
                assert_eq!(f.node(c).coreness, 3);
                v
            })
            .collect();
        child_sets.sort();
        assert_eq!(child_sets, vec![vec![0, 1, 2, 3], vec![8, 9, 10, 11]]);
    }

    #[test]
    fn figure4_reconstruction_counts() {
        // Example 6: |S1| = |NS1| + |S2| + |S3| = 12.
        let g = generators::paper_figure2();
        let f = forest(&g);
        let root = f.roots()[0];
        let mut s1 = f.core_vertices(root);
        s1.sort_unstable();
        assert_eq!(s1, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn nodes_sorted_children_before_parents() {
        let g = generators::chung_lu_power_law(400, 6.0, 2.4, 3);
        let f = forest(&g);
        for (i, node) in f.nodes().iter().enumerate() {
            if let Some(p) = node.parent {
                assert!((p as usize) > i, "parent must come after child");
                assert!(
                    f.node(p).coreness < node.coreness,
                    "parent coreness must be strictly smaller"
                );
            }
            for &c in &node.children {
                assert!((c as usize) < i);
            }
        }
        // Descending coreness order.
        for w in f.nodes().windows(2) {
            assert!(w[0].coreness >= w[1].coreness);
        }
    }

    #[test]
    fn every_vertex_in_exactly_one_node() {
        let g = generators::erdos_renyi_gnm(300, 900, 2);
        let f = forest(&g);
        let mut count = vec![0usize; g.num_vertices()];
        for node in f.nodes() {
            for &v in &node.vertices {
                count[v as usize] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1));
        // vertex_node agrees with the node contents.
        for (i, node) in f.nodes().iter().enumerate() {
            for &v in &node.vertices {
                assert_eq!(f.node_of(v), i as u32);
            }
        }
    }

    #[test]
    fn node_vertices_have_node_coreness() {
        let g = generators::overlapping_cliques(200, 25, (4, 10), 9);
        let d = core_decomposition(&g);
        let f = CoreForest::build(&g, &d);
        for node in f.nodes() {
            for &v in &node.vertices {
                assert_eq!(d.coreness(v), node.coreness);
            }
        }
    }

    /// Oracle: the k-cores of G for a given k are the connected components
    /// of the subgraph induced by coreness >= k.
    fn naive_k_cores(g: &CsrGraph, d: &CoreDecomposition, k: u32) -> Vec<Vec<VertexId>> {
        let verts: Vec<VertexId> = g.vertices().filter(|&v| d.coreness(v) >= k).collect();
        let sub = bestk_graph::subgraph::induced_subgraph(g, &verts);
        let cc = bestk_graph::connectivity::connected_components(&sub.graph);
        let mut groups = vec![Vec::new(); cc.count];
        for (dense, &comp) in cc.component.iter().enumerate() {
            groups[comp as usize].push(sub.vertices[dense]);
        }
        groups.iter_mut().for_each(|g| g.sort_unstable());
        groups.sort();
        groups
    }

    /// Forest answer: for level k, the k-cores are the reconstructed vertex
    /// sets of the "k-level entry nodes": nodes with coreness >= k whose
    /// parent has coreness < k (or no parent).
    fn forest_k_cores(f: &CoreForest, k: u32) -> Vec<Vec<VertexId>> {
        let mut out = Vec::new();
        for (i, node) in f.nodes().iter().enumerate() {
            if node.coreness >= k {
                let parent_below = match node.parent {
                    None => true,
                    Some(p) => f.node(p).coreness < k,
                };
                if parent_below {
                    let mut verts = f.core_vertices(i as u32);
                    verts.sort_unstable();
                    out.push(verts);
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn forest_reproduces_k_cores_on_random_graphs() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_gnm(150, 450, seed + 50);
            let d = core_decomposition(&g);
            let f = CoreForest::build(&g, &d);
            for k in 1..=d.kmax() {
                assert_eq!(
                    forest_k_cores(&f, k),
                    naive_k_cores(&g, &d, k),
                    "k={k} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn forest_reproduces_k_cores_on_structured_graphs() {
        for g in [
            generators::paper_figure2(),
            regular::clique_chain(4, 5),
            generators::planted_partition(&[30, 25, 20], 0.4, 0.02, 7).graph,
            generators::overlapping_cliques(150, 30, (3, 8), 1),
        ] {
            let d = core_decomposition(&g);
            let f = CoreForest::build(&g, &d);
            for k in 1..=d.kmax() {
                assert_eq!(forest_k_cores(&f, k), naive_k_cores(&g, &d, k), "k={k}");
            }
        }
    }

    #[test]
    fn disconnected_components_make_separate_trees() {
        let mut b = GraphBuilder::new();
        // Two disjoint triangles and an isolated vertex.
        b.extend_edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        b.reserve_vertices(7);
        let f = forest(&b.build());
        assert_eq!(f.roots().len(), 3);
        // The isolated vertex forms a coreness-0 node.
        let zero = f.node(f.node_of(6));
        assert_eq!(zero.coreness, 0);
        assert_eq!(zero.vertices, vec![6]);
    }

    #[test]
    fn bridged_cliques_are_one_core() {
        // Two K4s plus a bridge: every vertex has coreness 3 and the whole
        // graph is a single (connected) 3-core -> exactly one forest node.
        let g = regular::clique_chain(2, 4);
        let f = forest(&g);
        assert_eq!(f.node_count(), 1);
        assert_eq!(f.node(0).coreness, 3);
        assert_eq!(f.node(0).vertices.len(), 8);
    }

    #[test]
    fn ancestors_chain() {
        let g = generators::paper_figure2();
        let f = forest(&g);
        let deep = f.node_of(0); // v1, in a 3-core node
        let chain = f.ancestors(deep);
        assert_eq!(chain.len(), 2);
        assert_eq!(f.node(chain[1]).coreness, 2);
        assert!(f.node(chain[1]).parent.is_none());
    }

    #[test]
    fn empty_graph_forest() {
        let f = forest(&CsrGraph::empty(0));
        assert_eq!(f.node_count(), 0);
        assert!(f.roots().is_empty());
    }
}
