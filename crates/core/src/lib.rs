//! # bestk-core
//!
//! A from-scratch Rust implementation of *"Finding the Best k in Core
//! Decomposition: A Time and Space Optimal Solution"* (Chu, Zhang, Lin,
//! Zhang, Zhang, Xia, Zhang — ICDE 2020).
//!
//! Given a graph and a community scoring metric, the crate finds
//!
//! 1. the **best k-core set**: the `k` whose k-core set `C_k` scores highest
//!    over all `0 ≤ k ≤ kmax` (paper §III), and
//! 2. the **best single k-core**: the individual connected k-core with the
//!    highest score over all `k` (paper §IV),
//!
//! in worst-case optimal time and space: `O(m)` for metrics over vertex /
//! edge / boundary counts, `O(m^1.5)` for triangle-based metrics, both with
//! `O(m)` space.
//!
//! ## Pipeline
//!
//! | stage | paper | module |
//! |-------|-------|--------|
//! | core decomposition (`O(m)`) | §II-A | [`decomposition`] |
//! | vertex ordering + position tags | Alg. 1, §III-B | [`ordering`] |
//! | best k-core set sweep | Alg. 2–3, §III-C/D | [`bestkset`] |
//! | LCPS core forest | Alg. 4, §IV-A | [`forest`] |
//! | best single k-core | Alg. 5, §IV-C | [`bestcore`] |
//! | primary values & metrics | §II-C | [`metrics`] |
//! | baselines (comparators / oracles) | §III-A, §IV-B | [`baseline`] |
//! | triangle counting primitives | ref. \[35\] | [`triangles`] |
//!
//! ## Quick start
//!
//! ```
//! use bestk_core::{analyze, Metric};
//! use bestk_graph::generators;
//!
//! let g = generators::paper_figure2();
//! let analysis = analyze(&g);
//!
//! // Example 4 of the paper: with the average-degree metric the best
//! // k-core set is at k = 2. Under internal density, the best single
//! // k-core is one of the two 4-cliques.
//! let set = analysis.best_core_set(&Metric::AverageDegree).unwrap();
//! assert_eq!(set.k, 2);
//! let core = analysis.best_single_core(&Metric::InternalDensity).unwrap();
//! assert_eq!(core.k, 3);
//! assert_eq!(core.score, 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod baseline;
pub mod bestcore;
pub mod bestkset;
pub mod corestats;
pub mod decomposition;
pub mod forest;
pub mod hindex;
pub mod metrics;
pub mod ordering;
pub mod triangles;
pub mod verify;
pub mod weighted;

pub use analysis::{analyze, analyze_basic, analyze_basic_with, analyze_with, BestKAnalysis};
pub use bestcore::{best_single_core, single_core_profile, BestCore, SingleCoreProfile};
pub use bestkset::{best_k_core_set, core_set_profile, BestKSet, CoreSetProfile};
pub use decomposition::{
    core_decomposition, core_decomposition_with, par_peel, CoreDecomposition, PeelStrategy,
};
pub use forest::{CoreForest, CoreForestNode};
pub use metrics::{best_k, CommunityMetric, GraphContext, Metric, MetricError, PrimaryValues};
pub use ordering::OrderedGraph;
pub use weighted::{
    weighted_core_decomposition, weighted_core_set_profile, WeightedCoreDecomposition,
    WeightedCoreSetProfile,
};
