//! The paper's baseline algorithms (§III-A and §IV-B).
//!
//! Both baselines re-materialize every k-core (set) and recompute its score
//! from scratch: `O(Σ_k (q_k + |V(C_k)|))` overall, where `q_k` is the
//! per-set scoring cost. They are implemented faithfully — bin-sorted
//! coreness retrieval, per-k rescans, per-k triangle recounts — because they
//! are both the experimental comparator (Figures 7 and 8) and the test
//! oracle for the optimal algorithms.

use bestk_graph::connectivity::bfs_restricted;
use bestk_graph::subgraph::induced_subgraph;
use bestk_graph::CsrGraph;

use crate::decomposition::CoreDecomposition;
use crate::metrics::PrimaryValues;
use crate::triangles::{count_triangles, count_triplets};

/// §III-A: primary values of every k-core set, recomputed from scratch per
/// `k`. With `with_triangles`, each k-core set is materialized and its
/// triangles recounted — the cost that dominates the paper's Figure 7(d).
pub fn baseline_core_set_primaries(
    g: &CsrGraph,
    d: &CoreDecomposition,
    with_triangles: bool,
) -> Vec<PrimaryValues> {
    let kmax = d.kmax();
    let mut primaries = vec![PrimaryValues::default(); kmax as usize + 1];
    for k in 0..=kmax {
        let verts = d.core_set_vertices(k);
        let mut pv = PrimaryValues {
            num_vertices: verts.len() as u64,
            ..Default::default()
        };
        let mut in_twice = 0u64;
        for &v in verts {
            for &u in g.neighbors(v) {
                if d.coreness(u) >= k {
                    in_twice += 1;
                } else {
                    pv.boundary_edges += 1;
                }
            }
        }
        pv.internal_edges = in_twice / 2;
        if with_triangles {
            let sub = induced_subgraph(g, verts);
            pv.triangles = count_triangles(&sub.graph);
            pv.triplets = count_triplets(&sub.graph);
        }
        primaries[k as usize] = pv;
    }
    primaries
}

/// §IV-B: primary values of every individual k-core, recomputed from
/// scratch. Returns `(k, primaries)` pairs for every *distinct* k-core —
/// following Def. 6, a core is reported at level `k` only if it contains at
/// least one coreness-`k` vertex (so nested identical vertex sets are not
/// repeated), which makes the output directly comparable to the forest
/// nodes of the optimal Algorithm 5.
pub fn baseline_single_core_primaries(
    g: &CsrGraph,
    d: &CoreDecomposition,
    with_triangles: bool,
) -> Vec<(u32, PrimaryValues)> {
    let n = g.num_vertices();
    let mut out = Vec::new();
    let mut claimed = vec![u32::MAX; n]; // per-k visited stamp
    for k in 0..=d.kmax() {
        // Components of the induced subgraph on coreness >= k, discovered by
        // restricted BFS from every coreness-k seed (Def. 6: the core must
        // own a shell vertex).
        for &s in d.shell(k) {
            if claimed[s as usize] == k {
                continue;
            }
            let comp = bfs_restricted(g, s, |v| d.coreness(v) >= k);
            for &v in &comp {
                claimed[v as usize] = k;
            }
            let mut pv = PrimaryValues {
                num_vertices: comp.len() as u64,
                ..Default::default()
            };
            let mut in_twice = 0u64;
            for &v in &comp {
                for &u in g.neighbors(v) {
                    if d.coreness(u) >= k {
                        in_twice += 1;
                    } else {
                        pv.boundary_edges += 1;
                    }
                }
            }
            pv.internal_edges = in_twice / 2;
            if with_triangles {
                let sub = induced_subgraph(g, &comp);
                pv.triangles = count_triangles(&sub.graph);
                pv.triplets = count_triplets(&sub.graph);
            }
            out.push((k, pv));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bestcore::single_core_primaries;
    use crate::bestkset::{core_set_primaries, core_set_primaries_with_triangles};
    use crate::decomposition::core_decomposition;
    use crate::forest::CoreForest;
    use crate::ordering::OrderedGraph;
    use bestk_graph::generators::{self, regular};

    #[test]
    fn baseline_matches_optimal_core_set_primaries() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_gnm(140, 500, seed + 11);
            let d = core_decomposition(&g);
            let o = OrderedGraph::build(&g, &d);
            assert_eq!(
                baseline_core_set_primaries(&g, &d, false),
                core_set_primaries(&o),
                "basic, seed {seed}"
            );
            assert_eq!(
                baseline_core_set_primaries(&g, &d, true),
                core_set_primaries_with_triangles(&o),
                "triangles, seed {seed}"
            );
        }
    }

    #[test]
    fn baseline_matches_optimal_on_structured_graphs() {
        for g in [
            generators::paper_figure2(),
            regular::clique_chain(4, 5),
            regular::complete(8),
            generators::overlapping_cliques(120, 20, (3, 9), 6),
            generators::planted_partition(&[30, 20, 25], 0.4, 0.02, 9).graph,
        ] {
            let d = core_decomposition(&g);
            let o = OrderedGraph::build(&g, &d);
            assert_eq!(
                baseline_core_set_primaries(&g, &d, true),
                core_set_primaries_with_triangles(&o)
            );
        }
    }

    /// Compares the per-core baseline with Algorithm 5 as multisets of
    /// (k, primaries).
    fn assert_cores_match(g: &CsrGraph, with_triangles: bool) {
        let d = core_decomposition(g);
        let o = OrderedGraph::build(g, &d);
        let f = CoreForest::build(g, &d);
        let optimal = single_core_primaries(&o, &f, with_triangles);
        let mut from_forest: Vec<(u32, PrimaryValues)> = f
            .nodes()
            .iter()
            .zip(optimal)
            .map(|(node, pv)| (node.coreness, pv))
            .collect();
        let mut from_baseline = baseline_single_core_primaries(g, &d, with_triangles);
        let key = |(k, pv): &(u32, PrimaryValues)| {
            (
                *k,
                pv.num_vertices,
                pv.internal_edges,
                pv.boundary_edges,
                pv.triangles,
                pv.triplets,
            )
        };
        from_forest.sort_by_key(key);
        from_baseline.sort_by_key(key);
        assert_eq!(from_forest, from_baseline);
    }

    #[test]
    fn baseline_matches_optimal_single_cores() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_gnm(130, 420, seed + 23);
            assert_cores_match(&g, false);
            assert_cores_match(&g, true);
        }
    }

    #[test]
    fn baseline_matches_optimal_single_cores_structured() {
        assert_cores_match(&generators::paper_figure2(), true);
        assert_cores_match(&regular::clique_chain(3, 6), true);
        assert_cores_match(&generators::overlapping_cliques(100, 15, (4, 8), 2), true);
        let mut b = bestk_graph::GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (2, 0)]);
        b.reserve_vertices(6);
        assert_cores_match(&b.build(), true);
    }

    #[test]
    fn figure2_distinct_cores() {
        let g = generators::paper_figure2();
        let d = core_decomposition(&g);
        let cores = baseline_single_core_primaries(&g, &d, false);
        // Exactly three distinct cores: the 2-core (whole graph) and two K4s.
        assert_eq!(cores.len(), 3);
        let ks: Vec<u32> = cores.iter().map(|(k, _)| *k).collect();
        assert_eq!(ks, vec![2, 3, 3]);
    }
}
