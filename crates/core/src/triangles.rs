//! Triangle and triplet counting primitives.
//!
//! The optimal sweeps embed their own incremental counting (Algorithm 3);
//! this module provides whole-graph counters used by the baselines, tests,
//! and the ablation benches. All counters are `O(m^1.5)` \[Latapy 2008,
//! paper reference 35\].

use bestk_exec::{prefix_sum, ExecPolicy};
use bestk_graph::cast;
use bestk_graph::{GraphView, VertexId};

use crate::ordering::OrderedGraph;

/// Counts the triangles of `g` with the forward algorithm over a
/// degree-descending total order: each triangle is found exactly once at its
/// lowest-ordered vertex. `O(m^1.5)` time, `O(n)` space.
///
/// Needs no core decomposition, which is what makes it the right primitive
/// for the baseline's per-k-core-set recounts.
pub fn count_triangles<G: GraphView>(g: &G) -> u64 {
    let n = g.num_vertices();
    // Order: degree descending, ties by id; position in this order.
    let mut order: Vec<VertexId> = (0..cast::vertex_id(n)).collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    let mut pos = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = cast::u32_of(i);
    }
    // forward[v]: neighbors of v that come *later* in the order.
    let mut marked = vec![0u32; n];
    let mut stamp = 0u32;
    let mut triangles = 0u64;
    for &v in &order {
        stamp += 1;
        let pv = pos[v as usize];
        for u in g.neighbors(v) {
            if pos[u as usize] > pv {
                marked[u as usize] = stamp;
            }
        }
        for u in g.neighbors(v) {
            if pos[u as usize] > pv {
                for w in g.neighbors(u) {
                    if pos[w as usize] > pos[u as usize] && marked[w as usize] == stamp {
                        triangles += 1;
                    }
                }
            }
        }
    }
    triangles
}

/// [`count_triangles`] under an execution policy: the degree-descending
/// outer loop is split into edge-balanced chunks on the shared runtime,
/// each worker carrying its own marker array. The count is exactly that of
/// the sequential version at every thread count (each outer vertex's
/// contribution is independent, and the per-chunk partials are summed in
/// chunk order).
pub fn count_triangles_with<G: GraphView + Sync>(g: &G, policy: &ExecPolicy) -> u64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    if !policy.is_parallel() {
        return count_triangles(g);
    }
    let mut order: Vec<VertexId> = (0..cast::vertex_id(n)).collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    let mut pos = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = cast::u32_of(i);
    }
    // Edge-balanced chunking: the cost of outer vertex `order[i]` is
    // degree-shaped, so chunk by cumulative degree, not by vertex count.
    let prefix = prefix_sum(order.iter().map(|&v| g.degree(v)));
    let plan = policy.plan_weighted(&prefix);
    let order = &order;
    let pos = &pos;
    policy.map_reduce(
        &plan,
        || (vec![0u32; n], 0u32),
        |(marked, stamp), _, range| {
            let mut local = 0u64;
            for &v in &order[range] {
                *stamp += 1;
                let pv = pos[v as usize];
                for u in g.neighbors(v) {
                    if pos[u as usize] > pv {
                        marked[u as usize] = *stamp;
                    }
                }
                for u in g.neighbors(v) {
                    if pos[u as usize] > pv {
                        for w in g.neighbors(u) {
                            if pos[w as usize] > pos[u as usize] && marked[w as usize] == *stamp {
                                local += 1;
                            }
                        }
                    }
                }
            }
            local
        },
        0u64,
        |acc, part| acc + part,
    )
}

/// Parallel version of [`count_triangles`] with an explicit thread count —
/// a thin wrapper over [`count_triangles_with`] kept for callers that think
/// in threads rather than policies. Small graphs run sequentially (worker
/// spawning would dominate).
pub fn count_triangles_parallel<G: GraphView + Sync>(g: &G, threads: usize) -> u64 {
    if g.num_vertices() < 1024 {
        return count_triangles(g);
    }
    let policy = ExecPolicy::with_threads(threads.max(1)).unwrap_or(ExecPolicy::Sequential);
    count_triangles_with(g, &policy)
}

/// Counts the triplets of `g`: `Σ_v C(d(v), 2)`. `O(n)`.
pub fn count_triplets<G: GraphView>(g: &G) -> u64 {
    g.vertices()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Counts triangles using the rank order and `N(·, >r)` slices with a marker
/// array — the strategy Algorithm 3 uses internally, exposed for testing and
/// benchmarking against [`count_triangles`].
pub fn count_triangles_ordered(o: &OrderedGraph<'_>) -> u64 {
    let n = o.num_vertices();
    let mut marked = vec![0u32; n];
    let mut stamp = 0u32;
    let mut triangles = 0u64;
    for v in o.vertices() {
        stamp += 1;
        for &u in o.neighbors_gt_rank(v) {
            marked[u as usize] = stamp;
        }
        for &u in o.neighbors_gt_rank(v) {
            for &w in o.neighbors_gt_rank(u) {
                if marked[w as usize] == stamp {
                    triangles += 1;
                }
            }
        }
    }
    triangles
}

/// The paper's literal strategy (Algorithm 3 lines 8-12): for each rank-
/// increasing edge `(v, u)`, intersect the two `N(·, >r)` lists, scanning
/// the shorter one and merge-probing the other (both are rank-sorted).
/// Exposed as an ablation comparator for [`count_triangles_ordered`].
pub fn count_triangles_merge(o: &OrderedGraph<'_>) -> u64 {
    let mut triangles = 0u64;
    for v in o.vertices() {
        for &u in o.neighbors_gt_rank(v) {
            let (a, b) = {
                let (x, y) = if o.degree(u) > o.degree(v) {
                    (v, u)
                } else {
                    (u, v)
                };
                (o.neighbors_gt_rank(x), o.neighbors_gt_rank(y))
            };
            triangles += sorted_intersection_size(o, a, b);
        }
    }
    triangles
}

/// Size of the intersection of two rank-sorted neighbor slices.
fn sorted_intersection_size(o: &OrderedGraph<'_>, a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        if a[i] == b[j] {
            count += 1;
            i += 1;
            j += 1;
        } else if o.rank_gt(b[j], a[i]) {
            i += 1;
        } else {
            j += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::core_decomposition;
    use bestk_graph::generators::{self, regular};
    use bestk_graph::CsrGraph;

    fn brute_force(g: &CsrGraph) -> u64 {
        let mut t = 0u64;
        for (u, v) in g.edges() {
            for &w in g.neighbors(v) {
                if w > v && g.has_edge(u, w) {
                    t += 1;
                }
            }
        }
        t
    }

    #[test]
    fn known_counts() {
        assert_eq!(count_triangles(&regular::complete(4)), 4);
        assert_eq!(count_triangles(&regular::complete(6)), 20);
        assert_eq!(count_triangles(&regular::cycle(10)), 0);
        assert_eq!(count_triangles(&regular::star(8)), 0);
        assert_eq!(count_triangles(&generators::paper_figure2()), 10);
        assert_eq!(count_triangles(&CsrGraph::empty(5)), 0);
    }

    #[test]
    fn triplet_counts() {
        assert_eq!(count_triplets(&regular::complete(4)), 4 * 3);
        assert_eq!(count_triplets(&regular::star(5)), 10);
        assert_eq!(count_triplets(&regular::cycle(6)), 6);
        // Example 5: the whole Figure 2 graph has 45 triplets.
        assert_eq!(count_triplets(&generators::paper_figure2()), 45);
    }

    #[test]
    fn all_three_counters_agree_with_brute_force() {
        for seed in 0..5 {
            let g = generators::erdos_renyi_gnm(70, 320, seed);
            let expected = brute_force(&g);
            assert_eq!(count_triangles(&g), expected, "forward, seed {seed}");
            let d = core_decomposition(&g);
            let o = OrderedGraph::build(&g, &d);
            assert_eq!(
                count_triangles_ordered(&o),
                expected,
                "ordered, seed {seed}"
            );
            assert_eq!(count_triangles_merge(&o), expected, "merge, seed {seed}");
        }
    }

    #[test]
    fn counters_agree_on_dense_graphs() {
        let g = generators::overlapping_cliques(150, 25, (4, 10), 3);
        let expected = brute_force(&g);
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        assert_eq!(count_triangles(&g), expected);
        assert_eq!(count_triangles_ordered(&o), expected);
        assert_eq!(count_triangles_merge(&o), expected);
    }

    #[test]
    fn policy_counter_matches_sequential_on_generated_graphs() {
        bestk_graph::testkit::check("triangles_policy_equals_sequential", 24, |gen| {
            let g = gen.graph(60, 300);
            let expected = count_triangles(&g);
            assert_eq!(count_triangles_with(&g, &ExecPolicy::Sequential), expected);
            for threads in [1, 2, 4, 7] {
                let policy = ExecPolicy::with_threads(threads).unwrap();
                assert_eq!(
                    count_triangles_with(&g, &policy),
                    expected,
                    "{threads} threads"
                );
            }
        });
    }

    #[test]
    fn parallel_counter_matches_sequential() {
        for (g, label) in [
            (generators::chung_lu_power_law(3000, 10.0, 2.4, 7), "cl"),
            (
                generators::overlapping_cliques(800, 120, (4, 12), 9),
                "cliques",
            ),
            (regular::complete(40), "k40"),
            (CsrGraph::empty(10), "empty"),
        ] {
            let expected = count_triangles(&g);
            for threads in [1, 2, 4, 7] {
                assert_eq!(
                    count_triangles_parallel(&g, threads),
                    expected,
                    "{label} with {threads} threads"
                );
            }
        }
        assert_eq!(count_triangles_parallel(&CsrGraph::empty(0), 4), 0);
    }
}
