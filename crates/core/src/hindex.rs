//! Core decomposition by h-index iteration.
//!
//! The locality-based alternative to peeling (Lü et al., *Nature Comm.*
//! 2016), which is the kernel of the distributed decomposition the paper
//! cites as reference \[43\] (Montresor et al., TPDS 2013): start from
//! `c⁰(v) = d(v)` and repeatedly set
//!
//! ```text
//! cᵗ⁺¹(v) = H( cᵗ(u) : u ∈ N(v) )
//! ```
//!
//! where `H` is the h-index (the largest `h` such that at least `h` of the
//! values are ≥ `h`). The sequence decreases monotonically to the coreness
//! of every vertex. Each round is embarrassingly parallel and touches each
//! vertex's neighborhood once — exactly why it distributes; the trade-off
//! is the number of rounds (bounded by `n`, tiny in practice).
//!
//! Provided here both as an independent oracle for the peeling
//! decomposition and as the substrate a distributed/semi-external port
//! would build on.

use bestk_exec::ExecPolicy;
use bestk_graph::cast;
use bestk_graph::{GraphView, VertexId};

/// The result of an h-index iteration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HIndexDecomposition {
    /// Final values — equal to the coreness of every vertex.
    pub coreness: Vec<u32>,
    /// Number of full rounds executed until the fixpoint.
    pub rounds: usize,
}

/// Runs synchronous h-index iteration to fixpoint. `O(rounds · m)` time,
/// `O(n)` space beyond the graph.
pub fn hindex_core_decomposition<G: GraphView + Sync>(g: &G) -> HIndexDecomposition {
    hindex_core_decomposition_with(g, &ExecPolicy::Sequential)
}

/// Synchronous h-index iteration under an execution policy: each round is
/// embarrassingly parallel (every vertex reads the previous round's values
/// and writes its own slot), so rounds run as edge-balanced chunks on the
/// shared runtime. The per-vertex h-index depends only on the immutable
/// previous-round snapshot, so coreness *and* round count are bit-identical
/// to the sequential run at every thread count.
pub fn hindex_core_decomposition_with<G: GraphView + Sync>(
    g: &G,
    policy: &ExecPolicy,
) -> HIndexDecomposition {
    let n = g.num_vertices();
    let mut values: Vec<u32> = (0..n)
        .map(|v| cast::u32_of(g.degree(cast::vertex_id(v))))
        .collect();
    let mut next = values.clone();
    let mut rounds = 0usize;
    // Chunk by cumulative degree: each vertex's update costs O(d(v)).
    let plan = policy.plan_weighted(&g.degree_offsets());
    let cuts = plan.bounds().to_vec();
    loop {
        let values_ref = &values;
        // bestk-analyze: allow(raw-atomic) — monotone convergence flag; true-stores commute
        let changed = std::sync::atomic::AtomicBool::new(false);
        policy.for_each_disjoint(
            &plan,
            &mut next,
            &cuts,
            Vec::new,
            |scratch, _, vertices, out| {
                let base = vertices.start;
                let mut any = false;
                for v in vertices {
                    let h = neighborhood_h_index(g, cast::vertex_id(v), values_ref, scratch);
                    any |= h != values_ref[v];
                    out[v - base] = h;
                }
                if any {
                    changed.store(true, std::sync::atomic::Ordering::Relaxed);
                }
            },
        );
        rounds += 1;
        std::mem::swap(&mut values, &mut next);
        if !changed.into_inner() {
            break;
        }
    }
    HIndexDecomposition {
        coreness: values,
        rounds,
    }
}

/// Asynchronous variant: updates in place (Gauss–Seidel style), which
/// converges in fewer rounds; the fixpoint is identical.
pub fn hindex_core_decomposition_async<G: GraphView>(g: &G) -> HIndexDecomposition {
    let n = g.num_vertices();
    let mut values: Vec<u32> = (0..n)
        .map(|v| cast::u32_of(g.degree(cast::vertex_id(v))))
        .collect();
    let mut scratch: Vec<u32> = Vec::new();
    let mut rounds = 0usize;
    loop {
        let mut changed = false;
        for v in 0..n {
            let h = neighborhood_h_index(g, cast::vertex_id(v), &values, &mut scratch);
            if h != values[v] {
                values[v] = h;
                changed = true;
            }
        }
        rounds += 1;
        if !changed {
            break;
        }
    }
    HIndexDecomposition {
        coreness: values,
        rounds,
    }
}

/// The h-index of `v`'s neighbor values, computed with a counting pass
/// bounded by `d(v)` (values above the degree can be clamped: the h-index
/// never exceeds the list length).
fn neighborhood_h_index<G: GraphView>(
    g: &G,
    v: VertexId,
    values: &[u32],
    scratch: &mut Vec<u32>,
) -> u32 {
    let d = g.degree(v);
    scratch.clear();
    scratch.resize(d + 1, 0);
    for u in g.neighbors(v) {
        let val = (values[u as usize] as usize).min(d);
        scratch[val] += 1;
    }
    let mut at_least = 0u32;
    for h in (0..=d).rev() {
        at_least += scratch[h];
        if at_least as usize >= h {
            return cast::u32_of(h);
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::core_decomposition;
    use bestk_graph::generators::{self, regular};

    #[test]
    fn matches_peeling_on_paper_example() {
        let g = generators::paper_figure2();
        let d = core_decomposition(&g);
        let h = hindex_core_decomposition(&g);
        assert_eq!(h.coreness, d.coreness_slice());
        let ha = hindex_core_decomposition_async(&g);
        assert_eq!(ha.coreness, d.coreness_slice());
        // Async converges at least as fast.
        assert!(ha.rounds <= h.rounds);
    }

    #[test]
    fn matches_peeling_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::erdos_renyi_gnm(200, 800, seed);
            let d = core_decomposition(&g);
            assert_eq!(
                hindex_core_decomposition(&g).coreness,
                d.coreness_slice(),
                "sync seed {seed}"
            );
            assert_eq!(
                hindex_core_decomposition_async(&g).coreness,
                d.coreness_slice(),
                "async seed {seed}"
            );
        }
    }

    #[test]
    fn matches_peeling_on_structured_graphs() {
        for g in [
            regular::complete(12),
            regular::cycle(30),
            regular::star(20),
            regular::clique_chain(5, 6),
            generators::overlapping_cliques(200, 40, (3, 10), 3),
            generators::chung_lu_power_law(400, 7.0, 2.4, 9),
        ] {
            let d = core_decomposition(&g);
            assert_eq!(hindex_core_decomposition(&g).coreness, d.coreness_slice());
        }
    }

    #[test]
    fn policy_runs_match_sequential_exactly() {
        bestk_graph::testkit::check("hindex_policy_equals_sequential", 24, |gen| {
            let g = gen.graph(50, 250);
            let reference = hindex_core_decomposition(&g);
            for threads in [1, 2, 4, 7] {
                let policy = ExecPolicy::with_threads(threads).unwrap();
                let got = hindex_core_decomposition_with(&g, &policy);
                assert_eq!(got.coreness, reference.coreness, "{threads} threads");
                assert_eq!(got.rounds, reference.rounds, "{threads} threads");
            }
        });
    }

    #[test]
    fn rounds_are_modest_on_small_world_graphs() {
        let g = generators::chung_lu_power_law(2000, 8.0, 2.4, 4);
        let h = hindex_core_decomposition(&g);
        // Convergence is much faster than the trivial n bound.
        assert!(h.rounds < 64, "rounds = {}", h.rounds);
        assert!(h.rounds >= 2);
    }

    #[test]
    fn path_needs_propagation_rounds() {
        // A long path: degree estimate 2 everywhere except the endpoints;
        // the correct coreness 1 must propagate inward one hop per round,
        // the classic worst-ish case for the synchronous variant.
        let g = regular::path(64);
        let d = core_decomposition(&g);
        let h = hindex_core_decomposition(&g);
        assert_eq!(h.coreness, d.coreness_slice());
        assert!(h.rounds >= 16, "rounds = {}", h.rounds);
    }

    #[test]
    fn empty_and_isolated() {
        let h = hindex_core_decomposition(&bestk_graph::CsrGraph::empty(0));
        assert!(h.coreness.is_empty());
        let h = hindex_core_decomposition(&bestk_graph::CsrGraph::empty(5));
        assert_eq!(h.coreness, vec![0; 5]);
        assert_eq!(h.rounds, 1);
    }
}
