//! Executable specification of the core-decomposition pipeline.
//!
//! The paper's optimality argument leans on structural invariants that the
//! hot paths maintain implicitly: coreness is the unique fixpoint of the
//! neighborhood h-index operator, the rank order is bin-sorted by
//! `(coreness, id)`, every k-core set is a suffix of that order, and the
//! peel order is a degeneracy ordering. This module re-checks all of them
//! from first principles, plus cross-checks best-k answers against the
//! §III-A/§IV-B baselines — so future performance rewrites of the hot
//! loops have a machine-checkable contract to satisfy, not just example
//! tests.
//!
//! Everything here is deliberately *independent* of the code it verifies:
//! the h-index fixpoint check never runs the peeling algorithm, and the
//! best-k checks rescore every k from scratch.

use bestk_graph::cast;
use bestk_graph::verify::{VerifyError, VerifyResult};
use bestk_graph::CsrGraph;

use crate::baseline::{baseline_core_set_primaries, baseline_single_core_primaries};
use crate::bestcore::BestCore;
use crate::bestkset::BestKSet;
use crate::decomposition::CoreDecomposition;
use crate::metrics::{best_k, CommunityMetric, GraphContext};

/// The h-index of a multiset of values: the largest `h` such that at least
/// `h` of the values are `>= h`.
fn h_index(values: &mut [u32]) -> u32 {
    values.sort_unstable_by(|a, b| b.cmp(a));
    let mut h = 0u32;
    for (i, &v) in values.iter().enumerate() {
        if v as usize > i {
            h = cast::u32_of(i + 1);
        } else {
            break;
        }
    }
    h
}

/// Verifies a [`CoreDecomposition`] against its full specification:
///
/// 1. **h-index fixpoint** (Lü et al. 2016): for every vertex,
///    `H({c(u) : u ∈ N(v)}) == c(v)`. Coreness is the *unique* fixpoint of
///    this operator that is pointwise ≤ degree, so this single local check
///    certifies the global peeling result without re-running peeling.
/// 2. **rank order**: `vertices_by_coreness()` is a permutation of `V`
///    strictly sorted by `(coreness, id)`.
/// 3. **shell partition**: concatenating `shell(0) ... shell(kmax)`
///    reproduces the rank order exactly, and every `shell(k)` member has
///    coreness `k`.
/// 4. **suffix property**: `core_set_vertices(k)` is precisely the suffix
///    of the rank order holding all vertices with coreness ≥ k.
/// 5. **kmax**: equals the maximum coreness (0 on empty graphs).
/// 6. **degeneracy peel order**: `peel_ordering()` is a permutation in
///    which every vertex has at most `c(v)` neighbors appearing later.
pub fn verify_decomposition(g: &CsrGraph, d: &CoreDecomposition) -> VerifyResult {
    let n = g.num_vertices();
    if d.num_vertices() != n {
        return Err(VerifyError::new(
            "core.vertex-count",
            format!(
                "decomposition covers {} vertices, graph has {n}",
                d.num_vertices()
            ),
        ));
    }

    // 1. h-index fixpoint.
    let mut scratch: Vec<u32> = Vec::new();
    for v in g.vertices() {
        scratch.clear();
        scratch.extend(g.neighbors(v).iter().map(|&u| d.coreness(u)));
        let h = h_index(&mut scratch);
        if h != d.coreness(v) {
            return Err(VerifyError::new(
                "core.hindex-fixpoint",
                format!("H(N({v})) = {h} but c({v}) = {}", d.coreness(v)),
            ));
        }
    }

    // 5. kmax (checked early so later clauses may trust it).
    let true_kmax = g.vertices().map(|v| d.coreness(v)).max().unwrap_or(0);
    if d.kmax() != true_kmax {
        return Err(VerifyError::new(
            "core.kmax",
            format!("kmax() = {} but max coreness = {true_kmax}", d.kmax()),
        ));
    }

    // 2. rank order: strictly sorted permutation.
    let order = d.vertices_by_coreness();
    if order.len() != n {
        return Err(VerifyError::new(
            "core.rank-order-permutation",
            format!("rank order has {} entries for {n} vertices", order.len()),
        ));
    }
    let mut seen = vec![false; n];
    for &v in order {
        if (v as usize) >= n || seen[v as usize] {
            return Err(VerifyError::new(
                "core.rank-order-permutation",
                format!("vertex {v} out of range or repeated in rank order"),
            ));
        }
        seen[v as usize] = true;
    }
    for w in order.windows(2) {
        let key = |v: u32| (d.coreness(v), v);
        if key(w[0]) >= key(w[1]) {
            return Err(VerifyError::new(
                "core.rank-order-sorted",
                format!(
                    "rank order not strictly (coreness, id)-sorted at {} -> {}",
                    w[0], w[1]
                ),
            ));
        }
    }

    // 3. shell partition.
    let mut rebuilt: Vec<u32> = Vec::with_capacity(n);
    for k in 0..=d.kmax() {
        for &v in d.shell(k) {
            if d.coreness(v) != k {
                return Err(VerifyError::new(
                    "core.shell-membership",
                    format!(
                        "vertex {v} with coreness {} listed in shell {k}",
                        d.coreness(v)
                    ),
                ));
            }
            rebuilt.push(v);
        }
    }
    if rebuilt != order {
        return Err(VerifyError::new(
            "core.shell-partition",
            "concatenated shells do not reproduce the rank order".to_string(),
        ));
    }

    // 4. suffix property.
    for k in 0..=d.kmax() {
        let suffix = d.core_set_vertices(k);
        let expect = order.len() - order.partition_point(|&v| d.coreness(v) < k);
        if suffix.len() != expect {
            return Err(VerifyError::new(
                "core.suffix",
                format!("C_{k} holds {} vertices, want {expect}", suffix.len()),
            ));
        }
        if !suffix.is_empty() && suffix != &order[order.len() - suffix.len()..] {
            return Err(VerifyError::new(
                "core.suffix",
                format!("C_{k} is not the rank-order suffix"),
            ));
        }
    }

    // 6. peel order: permutation + degeneracy bound.
    let peel = d.peel_ordering();
    if peel.len() != n {
        return Err(VerifyError::new(
            "core.peel-permutation",
            format!("peel order has {} entries for {n} vertices", peel.len()),
        ));
    }
    let mut position = vec![usize::MAX; n];
    for (i, &v) in peel.iter().enumerate() {
        if (v as usize) >= n || position[v as usize] != usize::MAX {
            return Err(VerifyError::new(
                "core.peel-permutation",
                format!("vertex {v} out of range or repeated in peel order"),
            ));
        }
        position[v as usize] = i;
    }
    for v in g.vertices() {
        let later = g
            .neighbors(v)
            .iter()
            .filter(|&&u| position[u as usize] > position[v as usize])
            .count();
        if later > d.coreness(v) as usize {
            return Err(VerifyError::new(
                "core.peel-degeneracy",
                format!(
                    "vertex {v} has {later} later neighbors but coreness {}",
                    d.coreness(v)
                ),
            ));
        }
    }
    Ok(())
}

/// Verifies a best-k-core-set answer by replaying the §III-A baseline:
/// recompute every k-core set's primaries from scratch, rescore them, and
/// check that the claimed `k` attains the maximum (largest-k tie-break)
/// and the claimed score matches the recomputation.
///
/// `O(Σ_k |C_k|)` time (plus triangle recounts for triangle metrics) — an
/// oracle for tests and `--verify` runs, not a production path.
pub fn verify_best_core_set<M: CommunityMetric + ?Sized>(
    g: &CsrGraph,
    metric: &M,
    claimed: &BestKSet,
) -> VerifyResult {
    let d = crate::core_decomposition(g);
    let primaries = baseline_core_set_primaries(g, &d, metric.needs_triangles());
    let ctx = GraphContext {
        total_vertices: g.num_vertices() as u64,
        total_edges: g.num_edges() as u64,
    };
    let scores: Vec<f64> = primaries.iter().map(|pv| metric.score(pv, &ctx)).collect();
    match best_k(&scores) {
        None => Err(VerifyError::new(
            "bestk.set-exists",
            format!("claimed best k = {} but every score is NaN", claimed.k),
        )),
        Some((k, score)) => {
            if k != claimed.k {
                return Err(VerifyError::new(
                    "bestk.set-argmax",
                    format!(
                        "claimed best k = {} (score {}), baseline says k = {k} (score {score})",
                        claimed.k, claimed.score
                    ),
                ));
            }
            if !scores_match(score, claimed.score) {
                return Err(VerifyError::new(
                    "bestk.set-score",
                    format!(
                        "score at k = {k}: claimed {}, baseline {score}",
                        claimed.score
                    ),
                ));
            }
            Ok(())
        }
    }
}

/// Verifies a best-single-k-core answer against the §IV-B baseline: every
/// distinct connected k-core is re-materialized and rescored from scratch;
/// the claimed score must equal the best of them (and the claimed `k` must
/// attain it).
pub fn verify_best_single_core<M: CommunityMetric + ?Sized>(
    g: &CsrGraph,
    metric: &M,
    claimed: &BestCore,
) -> VerifyResult {
    let d = crate::core_decomposition(g);
    let cores = baseline_single_core_primaries(g, &d, metric.needs_triangles());
    let ctx = GraphContext {
        total_vertices: g.num_vertices() as u64,
        total_edges: g.num_edges() as u64,
    };
    let mut best: Option<(u32, f64)> = None;
    for (k, pv) in &cores {
        let s = metric.score(pv, &ctx);
        if !s.is_nan() && best.is_none_or(|(_, bs)| s > bs) {
            best = Some((*k, s));
        }
    }
    match best {
        None => Err(VerifyError::new(
            "bestk.core-exists",
            format!(
                "claimed best core at k = {} but every score is NaN",
                claimed.k
            ),
        )),
        Some((_, score)) => {
            if !scores_match(score, claimed.score) {
                return Err(VerifyError::new(
                    "bestk.core-score",
                    format!(
                        "claimed best score {}, baseline best {score}",
                        claimed.score
                    ),
                ));
            }
            let attains = cores.iter().any(|(k, pv)| {
                *k == claimed.k && scores_match(metric.score(pv, &ctx), claimed.score)
            });
            if !attains {
                return Err(VerifyError::new(
                    "bestk.core-argmax",
                    format!(
                        "no k = {} core attains the claimed score {}",
                        claimed.k, claimed.score
                    ),
                ));
            }
            Ok(())
        }
    }
}

/// Float comparison for recomputed scores: exact for infinities, tight
/// relative tolerance otherwise (both sides are short sums over the same
/// integer primaries, so only rounding-order noise is admissible).
fn scores_match(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, core_decomposition, Metric};
    use bestk_graph::generators;

    #[test]
    fn honest_decompositions_pass() {
        for g in [
            generators::paper_figure2(),
            generators::erdos_renyi_gnm(120, 420, 3),
            bestk_graph::CsrGraph::empty(4),
            bestk_graph::CsrGraph::empty(0),
        ] {
            let d = core_decomposition(&g);
            verify_decomposition(&g, &d).unwrap();
        }
    }

    #[test]
    fn doctored_coreness_fails_fixpoint() {
        // A decomposition computed for a *different* 12-vertex graph: its
        // coreness array cannot satisfy figure 2's h-index fixpoint.
        let g = generators::paper_figure2();
        let d = core_decomposition(&generators::erdos_renyi_gnm(12, 30, 1));
        let err = verify_decomposition(&g, &d).unwrap_err();
        assert!(
            err.invariant.starts_with("core."),
            "expected a core.* violation, got {err}"
        );
    }

    #[test]
    fn best_set_answers_verify() {
        let g = generators::paper_figure2();
        let a = analyze(&g);
        for m in Metric::EXTENDED {
            if let Some(best) = a.best_core_set(&m) {
                verify_best_core_set(&g, &m, &best).unwrap();
            }
            if let Some(best) = a.best_single_core(&m) {
                verify_best_single_core(&g, &m, &best).unwrap();
            }
        }
    }

    #[test]
    fn wrong_best_k_is_rejected() {
        let g = generators::paper_figure2();
        let a = analyze(&g);
        let mut best = a.best_core_set(&Metric::AverageDegree).unwrap();
        best.k += 1;
        let err = verify_best_core_set(&g, &Metric::AverageDegree, &best).unwrap_err();
        assert!(err.invariant.starts_with("bestk."), "{err}");
    }

    #[test]
    fn wrong_best_score_is_rejected() {
        let g = generators::paper_figure2();
        let a = analyze(&g);
        let mut best = a.best_single_core(&Metric::InternalDensity).unwrap();
        best.score += 0.5;
        let err = verify_best_single_core(&g, &Metric::InternalDensity, &best).unwrap_err();
        assert!(err.invariant.starts_with("bestk."), "{err}");
    }
}
