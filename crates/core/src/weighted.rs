//! Weighted-core ("s-core") decomposition and the best-s weighted core set
//! — the extension the paper's §VII points at (references \[23\], \[27\],
//! \[60\]: s-core decomposition generalizes k-core to weighted degrees, and
//! "our algorithm may shed light on finding the best k-core on weighted
//! graphs if we apply the weighted community scores").
//!
//! The s-core of a weighted graph is the maximal subgraph in which every
//! vertex has *weighted* degree ≥ s; the s-core number of a vertex is the
//! largest such s containing it. Containment holds exactly as for k-cores,
//! so the paper's top-down incremental framework transfers: per-vertex
//! weight sums toward lower/equal/higher s-core numbers (`w<`, `w=`, `w>`)
//! play the role of the `|N(v, ·)|` counts, and the per-level primaries
//! reuse [`PrimaryValues`] with `internal_edges` / `boundary_edges`
//! carrying *weights*, so every weight-compatible [`CommunityMetric`]
//! (weighted average degree, weighted conductance, weighted modularity, …)
//! scores unchanged.

use bestk_graph::cast;
use bestk_graph::weighted::WeightedCsrGraph;
use bestk_graph::VertexId;

use crate::metrics::{CommunityMetric, GraphContext, MetricError, PrimaryValues};

/// The result of a weighted (s-core) decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedCoreDecomposition {
    /// `score[v]` = the s-core number of `v`.
    score: Vec<u64>,
    /// Largest s-core number.
    smax: u64,
    /// Distinct s-core numbers, ascending.
    levels: Vec<u64>,
    /// Vertices sorted by (s-core number, id) ascending.
    order: Vec<VertexId>,
    /// `level_start[i]..level_start[i + 1]` indexes the shell of
    /// `levels[i]` inside `order`.
    level_start: Vec<usize>,
}

impl WeightedCoreDecomposition {
    /// The s-core number of `v`.
    #[inline]
    pub fn score(&self, v: VertexId) -> u64 {
        self.score[v as usize]
    }

    /// Largest s with a non-empty s-core.
    #[inline]
    pub fn smax(&self) -> u64 {
        self.smax
    }

    /// Distinct s-core numbers, ascending.
    #[inline]
    pub fn levels(&self) -> &[u64] {
        &self.levels
    }

    /// The shell of the `i`-th level (vertices with exactly that s-core
    /// number), sorted by id.
    #[inline]
    pub fn shell_at(&self, i: usize) -> &[VertexId] {
        &self.order[self.level_start[i]..self.level_start[i + 1]]
    }

    /// The vertex set of the s-core set at the `i`-th level (everything
    /// with s-core number ≥ `levels[i]`).
    #[inline]
    pub fn core_set_at(&self, i: usize) -> &[VertexId] {
        &self.order[self.level_start[i]..]
    }
}

/// Runs the weighted peeling decomposition with a lazy bucket queue over
/// integer weighted degrees: `O(n + m + W)` time where `W` is the maximum
/// weighted degree.
pub fn weighted_core_decomposition(g: &WeightedCsrGraph) -> WeightedCoreDecomposition {
    let n = g.num_vertices();
    if n == 0 {
        return WeightedCoreDecomposition {
            score: Vec::new(),
            smax: 0,
            levels: Vec::new(),
            order: Vec::new(),
            level_start: vec![0],
        };
    }
    let mut wdeg: Vec<u64> = (0..n)
        .map(|v| g.weighted_degree(cast::vertex_id(v)))
        .collect();
    let max_wdeg = wdeg.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_wdeg.saturating_add(1)];
    for v in 0..n {
        buckets[wdeg[v] as usize].push(cast::vertex_id(v));
    }
    let mut processed = vec![false; n];
    let mut score = vec![0u64; n];
    let mut level = 0u64;
    let mut cur = 0usize;
    let mut remaining = n;
    while remaining > 0 {
        // Advance to the lowest bucket with a fresh entry.
        let v = loop {
            while cur < buckets.len() && buckets[cur].is_empty() {
                cur += 1;
            }
            if let Some(cand) = buckets[cur].pop() {
                if !processed[cand as usize] && wdeg[cand as usize] as usize == cur {
                    break cand;
                }
            }
        };
        processed[v as usize] = true;
        remaining -= 1;
        level = level.max(wdeg[v as usize]);
        score[v as usize] = level;
        for (u, w) in g.neighbors_with_weights(v) {
            if !processed[u as usize] {
                let du = wdeg[u as usize];
                let nu = du.saturating_sub(w as u64);
                wdeg[u as usize] = nu;
                buckets[nu as usize].push(u);
                cur = cur.min(nu as usize);
            }
        }
    }
    let smax = score.iter().copied().max().unwrap_or(0);
    // Group vertices by level.
    let mut levels: Vec<u64> = score.clone();
    levels.sort_unstable();
    levels.dedup();
    // Every queried s appears in `levels` (it is the sorted-deduped score
    // list), so the partition point is s's own index.
    let level_index = |s: u64| levels.partition_point(|&x| x < s);
    let mut counts = vec![0usize; levels.len() + 1];
    for &s in &score {
        counts[level_index(s) + 1] += 1;
    }
    for i in 0..levels.len() {
        counts[i + 1] += counts[i];
    }
    let level_start = counts.clone();
    let mut order: Vec<VertexId> = vec![0; n];
    let mut cursor = counts;
    for (v, &s) in score.iter().enumerate() {
        let i = level_index(s);
        order[cursor[i]] = cast::vertex_id(v);
        cursor[i] += 1;
    }
    WeightedCoreDecomposition {
        score,
        smax,
        levels,
        order,
        level_start,
    }
}

/// Per-level primaries of every s-core set. `primaries[i]` corresponds to
/// `levels[i]`; `internal_edges` / `boundary_edges` carry edge **weights**.
#[derive(Debug, Clone)]
pub struct WeightedCoreSetProfile {
    /// Distinct s-core numbers, ascending (aligned with `primaries`).
    pub levels: Vec<u64>,
    /// Weighted primaries of each s-core set.
    pub primaries: Vec<PrimaryValues>,
    /// Context with `total_edges` = total edge weight.
    pub context: GraphContext,
}

impl WeightedCoreSetProfile {
    /// Scores every s-core set under a weight-compatible metric; a typed
    /// [`MetricError`] for triangle-based metrics (weighted profiles do not
    /// maintain triangle counts).
    pub fn try_scores<M: CommunityMetric + ?Sized>(
        &self,
        metric: &M,
    ) -> Result<Vec<f64>, MetricError> {
        if metric.needs_triangles() {
            return Err(MetricError::WeightedTriangles {
                metric: metric.name().to_owned(),
            });
        }
        Ok(self
            .primaries
            .iter()
            .map(|pv| metric.score(pv, &self.context))
            .collect())
    }

    /// [`try_scores`](Self::try_scores) as a panicking convenience.
    ///
    /// # Panics
    ///
    /// Panics if the metric needs triangles (not maintained for weighted
    /// sweeps).
    pub fn scores<M: CommunityMetric + ?Sized>(&self, metric: &M) -> Vec<f64> {
        // bestk-analyze: allow(no-panic) — documented panicking facade over try_scores
        self.try_scores(metric).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The best s (ties to the largest s) and its score; a typed
    /// [`MetricError`] for triangle-based metrics.
    pub fn try_best<M: CommunityMetric + ?Sized>(
        &self,
        metric: &M,
    ) -> Result<Option<(u64, f64)>, MetricError> {
        let scores = self.try_scores(metric)?;
        let mut best: Option<(u64, f64)> = None;
        for (i, &s) in scores.iter().enumerate().rev() {
            if !s.is_nan() && best.is_none_or(|(_, bs)| s > bs) {
                best = Some((self.levels[i], s));
            }
        }
        Ok(best)
    }

    /// [`try_best`](Self::try_best) as a panicking convenience.
    ///
    /// # Panics
    ///
    /// Panics if the metric needs triangles (not maintained for weighted
    /// sweeps).
    pub fn best<M: CommunityMetric + ?Sized>(&self, metric: &M) -> Option<(u64, f64)> {
        // bestk-analyze: allow(no-panic) — documented panicking facade over try_best
        self.try_best(metric).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Computes the weighted per-level profile with the paper's top-down
/// incremental sweep in `O(n + m)` after decomposition.
pub fn weighted_core_set_profile(
    g: &WeightedCsrGraph,
    d: &WeightedCoreDecomposition,
) -> WeightedCoreSetProfile {
    let n = g.num_vertices();
    // Per-vertex weight sums toward lower / equal / higher s-core numbers —
    // the weighted analogue of Algorithm 1's |N(v, ·)| tags.
    let mut w_lt = vec![0u64; n];
    let mut w_eq = vec![0u64; n];
    let mut w_gt = vec![0u64; n];
    for v in 0..cast::vertex_id(n) {
        let sv = d.score(v);
        for (u, w) in g.neighbors_with_weights(v) {
            let su = d.score(u);
            let w = w as u64;
            if su < sv {
                w_lt[v as usize] += w;
            } else if su == sv {
                w_eq[v as usize] += w;
            } else {
                w_gt[v as usize] += w;
            }
        }
    }
    let level_count = d.levels().len();
    let mut primaries = vec![PrimaryValues::default(); level_count];
    let mut in_twice = 0u64;
    let mut out = 0i64;
    let mut num = 0u64;
    for i in (0..level_count).rev() {
        for &v in d.shell_at(i) {
            in_twice += 2 * w_gt[v as usize] + w_eq[v as usize];
            out += w_lt[v as usize] as i64 - w_gt[v as usize] as i64;
            num += 1;
        }
        debug_assert!(in_twice.is_multiple_of(2));
        debug_assert!(out >= 0);
        primaries[i] = PrimaryValues {
            num_vertices: num,
            internal_edges: in_twice / 2,
            boundary_edges: out as u64,
            ..Default::default()
        };
    }
    WeightedCoreSetProfile {
        levels: d.levels().to_vec(),
        primaries,
        context: GraphContext {
            total_vertices: g.num_vertices() as u64,
            total_edges: g.total_weight(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::core_decomposition;
    use crate::metrics::Metric;
    use crate::ordering::OrderedGraph;
    use bestk_graph::generators;
    use bestk_graph::weighted::{unit_weights, WeightedGraphBuilder};

    #[test]
    fn unit_weights_reduce_to_unweighted_coreness() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_gnm(120, 420, seed);
            let wg = unit_weights(&g);
            let wd = weighted_core_decomposition(&wg);
            let d = core_decomposition(&g);
            for v in g.vertices() {
                assert_eq!(wd.score(v), d.coreness(v) as u64, "v={v} seed={seed}");
            }
            assert_eq!(wd.smax(), d.kmax() as u64);
        }
    }

    #[test]
    fn unit_weight_profile_matches_unweighted_primaries() {
        let g = generators::chung_lu_power_law(300, 8.0, 2.4, 7);
        let wg = unit_weights(&g);
        let wd = weighted_core_decomposition(&wg);
        let wp = weighted_core_set_profile(&wg, &wd);
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        let up = crate::bestkset::core_set_primaries(&o);
        for (i, &level) in wp.levels.iter().enumerate() {
            let k = level as usize;
            assert_eq!(
                wp.primaries[i].num_vertices, up[k].num_vertices,
                "level {level}"
            );
            assert_eq!(wp.primaries[i].internal_edges, up[k].internal_edges);
            assert_eq!(wp.primaries[i].boundary_edges, up[k].boundary_edges);
        }
    }

    #[test]
    fn weighted_triangle_example() {
        // A triangle with weights 5, 3, 1: weighted degrees 8, 6, 4.
        // Peeling: v2 (wdeg 4) at level 4; then the 5-edge pair remains.
        let mut b = WeightedGraphBuilder::new();
        b.add_edge(0, 1, 5);
        b.add_edge(1, 2, 3);
        b.add_edge(2, 0, 1);
        let wg = b.build();
        let wd = weighted_core_decomposition(&wg);
        assert_eq!(wd.score(2), 4);
        assert_eq!(wd.score(0), 5);
        assert_eq!(wd.score(1), 5);
        assert_eq!(wd.smax(), 5);
        assert_eq!(wd.levels(), &[4, 5]);
    }

    #[test]
    fn heavy_community_beats_topologically_denser_one() {
        // Two triangles: one with heavy edges (weight 10), one with light
        // edges (weight 1), plus a light bridge. Weighted best-s by average
        // (weighted) degree must pick the heavy triangle's s-core.
        let mut b = WeightedGraphBuilder::new();
        b.add_edge(0, 1, 10);
        b.add_edge(1, 2, 10);
        b.add_edge(2, 0, 10);
        b.add_edge(3, 4, 1);
        b.add_edge(4, 5, 1);
        b.add_edge(5, 3, 1);
        b.add_edge(2, 3, 1);
        let wg = b.build();
        let wd = weighted_core_decomposition(&wg);
        let profile = weighted_core_set_profile(&wg, &wd);
        let (best_s, _) = profile.best(&Metric::AverageDegree).unwrap();
        assert_eq!(best_s, 20, "the heavy triangle forms the 20-core");
        // Its core set is exactly the heavy triangle.
        let i = profile.levels.iter().position(|&l| l == best_s).unwrap();
        assert_eq!(profile.primaries[i].num_vertices, 3);
        assert_eq!(profile.primaries[i].internal_edges, 30);
    }

    #[test]
    fn profile_against_direct_recount() {
        // Random weighted graph; check each level against a from-scratch
        // weighted count.
        let g = generators::erdos_renyi_gnm(80, 240, 9);
        let mut b = WeightedGraphBuilder::new();
        let mut rng = bestk_graph::rng::Xoshiro256::seed_from_u64(4);
        for (u, v) in g.edges() {
            b.add_edge(u, v, 1 + rng.next_below(9) as u32);
        }
        let wg = b.build();
        let wd = weighted_core_decomposition(&wg);
        let profile = weighted_core_set_profile(&wg, &wd);
        for (i, &level) in profile.levels.iter().enumerate() {
            let inside: Vec<bool> = (0..wg.num_vertices() as u32)
                .map(|v| wd.score(v) >= level)
                .collect();
            let mut win2 = 0u64;
            let mut wout = 0u64;
            let mut num = 0u64;
            for v in 0..wg.num_vertices() as u32 {
                if !inside[v as usize] {
                    continue;
                }
                num += 1;
                for (u, w) in wg.neighbors_with_weights(v) {
                    if inside[u as usize] {
                        win2 += w as u64;
                    } else {
                        wout += w as u64;
                    }
                }
            }
            assert_eq!(profile.primaries[i].num_vertices, num, "level {level}");
            assert_eq!(profile.primaries[i].internal_edges, win2 / 2);
            assert_eq!(profile.primaries[i].boundary_edges, wout);
        }
    }

    #[test]
    fn scores_reject_triangle_metrics() {
        let wg = unit_weights(&generators::paper_figure2());
        let wd = weighted_core_decomposition(&wg);
        let profile = weighted_core_set_profile(&wg, &wd);
        assert!(matches!(
            profile.try_scores(&Metric::ClusteringCoefficient),
            Err(MetricError::WeightedTriangles { .. })
        ));
        assert!(matches!(
            profile.try_best(&Metric::ClusteringCoefficient),
            Err(MetricError::WeightedTriangles { .. })
        ));
        assert!(profile.best(&Metric::Conductance).is_some());
    }

    #[test]
    fn empty_weighted_graph() {
        let wg = WeightedGraphBuilder::new().build();
        let wd = weighted_core_decomposition(&wg);
        assert_eq!(wd.smax(), 0);
        let profile = weighted_core_set_profile(&wg, &wd);
        assert!(profile.levels.is_empty());
        assert!(profile.best(&Metric::AverageDegree).is_none());
    }

    #[test]
    fn s_core_monotone_containment() {
        let g = generators::overlapping_cliques(100, 20, (3, 8), 2);
        let mut b = WeightedGraphBuilder::new();
        let mut rng = bestk_graph::rng::Xoshiro256::seed_from_u64(8);
        for (u, v) in g.edges() {
            b.add_edge(u, v, 1 + rng.next_below(5) as u32);
        }
        let wg = b.build();
        let wd = weighted_core_decomposition(&wg);
        // Definition check: within the s-core set at each level, every
        // vertex retains weighted degree >= that level.
        for (i, &level) in wd.levels().iter().enumerate() {
            let members: std::collections::HashSet<VertexId> =
                wd.core_set_at(i).iter().copied().collect();
            for &v in wd.core_set_at(i) {
                let deg: u64 = wg
                    .neighbors_with_weights(v)
                    .filter(|(u, _)| members.contains(u))
                    .map(|(_, w)| w as u64)
                    .sum();
                assert!(deg >= level, "v={v} deg={deg} level={level}");
            }
        }
    }
}
