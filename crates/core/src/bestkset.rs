//! Finding the best k-core set (paper §III, Algorithms 2 and 3).
//!
//! Both algorithms sweep the shells *top-down* (`k = kmax … 0`), maintaining
//! the primary values of the k-core set incrementally from those of the
//! (k+1)-core set using only `O(1)` neighbor-count queries per visited
//! vertex:
//!
//! * [`core_set_primaries`] — Algorithm 2: `n(S)`, `m(S)`, `b(S)` for every
//!   k-core set in `O(n)` after the ordering is built.
//! * [`core_set_primaries_with_triangles`] — Algorithm 3: additionally
//!   `Δ(S)` and `t(S)` in `O(m^1.5)`.
//!
//! A [`CoreSetProfile`] holds the per-k primaries; scoring any metric over it
//! costs `O(kmax)`, so one profile answers every metric (and the paper's
//! Figure 5 series) without retraversal.

use bestk_exec::ExecPolicy;
use bestk_graph::VertexId;

use crate::metrics::{best_k, CommunityMetric, GraphContext, MetricError, PrimaryValues};
use crate::ordering::OrderedGraph;

/// Per-k primary values of every k-core set, `k = 0 ..= kmax`.
#[derive(Debug, Clone)]
pub struct CoreSetProfile {
    /// Largest coreness in the graph.
    pub kmax: u32,
    /// `primaries[k]` describes the k-core set `C_k`. Length `kmax + 1`.
    pub primaries: Vec<PrimaryValues>,
    /// Whether `Δ` and `t` were computed (Algorithm 3 ran).
    pub has_triangles: bool,
    /// Whole-graph context used for scoring.
    pub context: GraphContext,
}

impl CoreSetProfile {
    fn require_triangles<M: CommunityMetric + ?Sized>(
        &self,
        metric: &M,
    ) -> Result<(), MetricError> {
        if metric.needs_triangles() && !self.has_triangles {
            return Err(MetricError::MissingTriangles {
                metric: metric.name().to_owned(),
            });
        }
        Ok(())
    }

    /// Scores every k-core set under `metric` (`scores[k]` is the score of
    /// `C_k`); `O(kmax)`. A typed [`MetricError`] when the metric needs
    /// triangles the profile was built without.
    pub fn try_scores<M: CommunityMetric + ?Sized>(
        &self,
        metric: &M,
    ) -> Result<Vec<f64>, MetricError> {
        self.require_triangles(metric)?;
        Ok(self
            .primaries
            .iter()
            .map(|pv| metric.score(pv, &self.context))
            .collect())
    }

    /// [`try_scores`](Self::try_scores) as a panicking convenience.
    ///
    /// # Panics
    ///
    /// Panics if the metric needs triangles but the profile was built without
    /// them.
    pub fn scores<M: CommunityMetric + ?Sized>(&self, metric: &M) -> Vec<f64> {
        // bestk-analyze: allow(no-panic) — documented panicking facade over try_scores
        self.try_scores(metric).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`try_scores`](Self::try_scores) under an execution policy: the
    /// per-k sweep is scored in even chunks merged in k order, so the
    /// series (each entry an independent float expression over that k's
    /// primaries) is bit-identical at every thread count. Worth it when
    /// `kmax` is large or the metric is a custom, expensive one.
    pub fn try_scores_with<M: CommunityMetric + ?Sized + Sync>(
        &self,
        metric: &M,
        policy: &ExecPolicy,
    ) -> Result<Vec<f64>, MetricError> {
        self.require_triangles(metric)?;
        let plan = policy.plan_even(self.primaries.len());
        Ok(policy.map_reduce(
            &plan,
            || (),
            |(), _, range| {
                self.primaries[range]
                    .iter()
                    .map(|pv| metric.score(pv, &self.context))
                    .collect::<Vec<f64>>()
            },
            Vec::with_capacity(self.primaries.len()),
            |mut acc: Vec<f64>, part| {
                acc.extend_from_slice(&part);
                acc
            },
        ))
    }

    /// [`try_scores_with`](Self::try_scores_with) as a panicking convenience.
    ///
    /// # Panics
    ///
    /// Panics if the metric needs triangles but the profile was built without
    /// them.
    pub fn scores_with<M: CommunityMetric + ?Sized + Sync>(
        &self,
        metric: &M,
        policy: &ExecPolicy,
    ) -> Vec<f64> {
        self.try_scores_with(metric, policy)
            // bestk-analyze: allow(no-panic) — documented panicking facade over try_scores_with
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The best k under `metric` (ties to the largest k), with its score;
    /// a typed [`MetricError`] when the metric cannot be scored on this
    /// profile.
    pub fn try_best<M: CommunityMetric + ?Sized>(
        &self,
        metric: &M,
    ) -> Result<Option<BestKSet>, MetricError> {
        let _span = bestk_obs::span!("phase.select");
        Ok(best_k(&self.try_scores(metric)?).map(|(k, score)| BestKSet { k, score }))
    }

    /// [`try_best`](Self::try_best) as a panicking convenience.
    ///
    /// # Panics
    ///
    /// Panics if the metric needs triangles but the profile was built without
    /// them.
    pub fn best<M: CommunityMetric + ?Sized>(&self, metric: &M) -> Option<BestKSet> {
        // bestk-analyze: allow(no-panic) — documented panicking facade over try_best
        self.try_best(metric).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// The answer to the best-k-core-set problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestKSet {
    /// The best value of `k`.
    pub k: u32,
    /// The score of the k-core set at that `k`.
    pub score: f64,
}

/// Algorithm 2: primary values `n`, `m`, `b` of every k-core set in `O(n)`.
///
/// Top-down over shells: visiting `v ∈ H_k` adds
/// `|N(v,>)| + ½ |N(v,=)|` internal edges (higher-coreness edges become
/// internal now; same-shell edges are split between their two endpoints) and
/// `|N(v,<)| − |N(v,>)|` boundary edges (lower-coreness edges appear on the
/// boundary; the higher-coreness ones stop being boundary).
pub fn core_set_primaries(o: &OrderedGraph<'_>) -> Vec<PrimaryValues> {
    let d = o.decomposition();
    let kmax = d.kmax();
    let mut primaries = vec![PrimaryValues::default(); kmax as usize + 1];
    let mut in_twice: u64 = 0; // 2 * m(S), stays integral mid-shell
    let mut out: i64 = 0;
    let mut num: u64 = 0;
    for k in (0..=kmax).rev() {
        for &v in d.shell(k) {
            let gt = o.count_gt(v) as u64;
            let eq = o.count_eq(v) as u64;
            let lt = o.count_lt(v) as u64;
            in_twice += 2 * gt + eq;
            out += lt as i64 - gt as i64;
            num += 1;
        }
        debug_assert!(
            in_twice.is_multiple_of(2),
            "half-edges must pair up per shell"
        );
        debug_assert!(out >= 0, "boundary count cannot go negative");
        let pv = &mut primaries[k as usize];
        pv.num_vertices = num;
        pv.internal_edges = in_twice / 2;
        pv.boundary_edges = out as u64;
    }
    primaries
}

/// Algorithm 3: like [`core_set_primaries`] but additionally maintains
/// triangle and triplet counts, in `O(m^1.5)` time and `O(n)` extra space.
pub fn core_set_primaries_with_triangles(o: &OrderedGraph<'_>) -> Vec<PrimaryValues> {
    let mut primaries = core_set_primaries(o);
    let d = o.decomposition();
    let n = d.num_vertices();
    let kmax = d.kmax();

    let mut triangle: u64 = 0;
    let mut triplet: u64 = 0;
    // f_ge[v] / f_gt[v]: number of u ∈ N(v) with c(u) ≥ k / > k for the
    // current sweep level k (valid for v in the (k+1)-core set).
    let mut f_gt = vec![0u32; n];
    let mut f_ge = vec![0u32; n];
    // Epoch-stamped scratch: marked[w] == stamp means w ∈ N(v, >r) of the
    // current v; nbr_stamp[w] == k-stamp means w is already in kshell_nbr.
    let mut marked = vec![0u32; n];
    let mut mark_stamp = 0u32;
    let mut nbr_seen = vec![u32::MAX; n];
    let mut kshell_nbr: Vec<VertexId> = Vec::new();

    for k in (0..=kmax).rev() {
        let shell = d.shell(k);

        // --- Triangles with minimum-rank vertex in the k-shell (lines 7-12).
        // For each v, mark N(v, >r) and intersect each higher-rank neighbor's
        // N(u, >r) against the marks: every triangle (v, u, w) is found at
        // its unique rank ordering rank(v) < rank(u) < rank(w).
        for &v in shell {
            mark_stamp += 1;
            for &u in o.neighbors_gt_rank(v) {
                marked[u as usize] = mark_stamp;
            }
            for &u in o.neighbors_gt_rank(v) {
                for &w in o.neighbors_gt_rank(u) {
                    if marked[w as usize] == mark_stamp {
                        triangle += 1;
                    }
                }
            }
        }

        // --- Triplets centered in the k-shell (line 13).
        for &v in shell {
            triplet += choose2(o.count_ge(v) as u64);
        }

        // --- Triplets centered in the (k+1)-core set (lines 14-22).
        kshell_nbr.clear();
        for &v in shell {
            for &u in o.neighbors_gt(v) {
                if nbr_seen[u as usize] != k {
                    nbr_seen[u as usize] = k;
                    kshell_nbr.push(u);
                }
            }
        }
        for &w in &kshell_nbr {
            f_gt[w as usize] = f_ge[w as usize];
        }
        for &v in shell {
            for &u in o.neighbors(v) {
                f_ge[u as usize] += 1;
            }
        }
        for &w in &kshell_nbr {
            let gt_k = f_gt[w as usize] as u64;
            let eq_k = (f_ge[w as usize] - f_gt[w as usize]) as u64;
            triplet += choose2(eq_k) + gt_k * eq_k;
        }

        let pv = &mut primaries[k as usize];
        pv.triangles = triangle;
        pv.triplets = triplet;
    }
    primaries
}

/// Ablation variant (DESIGN.md §6.2): the same incremental primaries
/// computed **bottom-up** (`k = 0 … kmax`), *subtracting* each shell on the
/// way up instead of adding it on the way down.
///
/// For the basic primaries the two directions are symmetric and equally
/// cheap — this function exists to demonstrate that, and to contrast with
/// the triangle/triplet primaries, where bottom-up would need to *recount*
/// destroyed triangles (deletion is not incremental) and degenerates to the
/// baseline's cost. That asymmetry is exactly why the paper sweeps
/// top-down (§III-C: "it is costly to count some primary values in a
/// bottom-up manner").
pub fn core_set_primaries_bottom_up(o: &OrderedGraph<'_>) -> Vec<PrimaryValues> {
    let d = o.decomposition();
    let kmax = d.kmax();
    let mut primaries = vec![PrimaryValues::default(); kmax as usize + 1];
    let mut in_twice: u64 = 2 * o.num_edges() as u64;
    let mut out: i64 = 0;
    let mut num: u64 = o.num_vertices() as u64;
    primaries[0] = PrimaryValues {
        num_vertices: num,
        internal_edges: in_twice / 2,
        boundary_edges: 0,
        ..Default::default()
    };
    for k in 1..=kmax {
        // Remove the (k-1)-shell: intra-shell and shell-to-higher edges
        // stop being internal; shell-to-higher edges become boundary, and
        // the shell's old boundary edges (to lower coreness) vanish.
        for &v in d.shell(k - 1) {
            let gt = o.count_gt(v) as u64;
            let eq = o.count_eq(v) as u64;
            let lt = o.count_lt(v) as u64;
            in_twice -= 2 * gt + eq;
            out += gt as i64 - lt as i64;
            num -= 1;
        }
        debug_assert!(in_twice.is_multiple_of(2));
        debug_assert!(out >= 0);
        primaries[k as usize] = PrimaryValues {
            num_vertices: num,
            internal_edges: in_twice / 2,
            boundary_edges: out as u64,
            ..Default::default()
        };
    }
    primaries
}

#[inline]
fn choose2(x: u64) -> u64 {
    x * x.saturating_sub(1) / 2
}

/// Builds the full [`CoreSetProfile`]; runs Algorithm 3 when
/// `with_triangles`, otherwise Algorithm 2.
pub fn core_set_profile(o: &OrderedGraph<'_>, with_triangles: bool) -> CoreSetProfile {
    let _span = bestk_obs::span!("phase.sweep");
    let primaries = if with_triangles {
        core_set_primaries_with_triangles(o)
    } else {
        core_set_primaries(o)
    };
    CoreSetProfile {
        kmax: o.decomposition().kmax(),
        primaries,
        has_triangles: with_triangles,
        context: GraphContext {
            total_vertices: o.num_vertices() as u64,
            total_edges: o.num_edges() as u64,
        },
    }
}

/// One-call convenience: the best k-core set under `metric` (Algorithm 2 or
/// 3, chosen by [`CommunityMetric::needs_triangles`]).
pub fn best_k_core_set<M: CommunityMetric + ?Sized>(
    o: &OrderedGraph<'_>,
    metric: &M,
) -> Option<BestKSet> {
    core_set_profile(o, metric.needs_triangles()).best(metric)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::core_decomposition;
    use crate::metrics::Metric;
    use bestk_graph::generators::{self, regular};

    fn profile(g: &bestk_graph::CsrGraph, triangles: bool) -> CoreSetProfile {
        let d = core_decomposition(g);
        let o = OrderedGraph::build(g, &d);
        core_set_profile(&o, triangles)
    }

    #[test]
    fn example4_average_degree_sweep() {
        // Paper Example 4 on the Figure 2 graph:
        // 3-core set: 12 internal edges over 8 vertices (avg degree 3);
        // 2-core set: 19 internal edges over 12 vertices (avg degree ~3.17);
        // best k for average degree is 2.
        let g = generators::paper_figure2();
        let p = profile(&g, false);
        assert_eq!(p.kmax, 3);
        assert_eq!(p.primaries[3].internal_edges, 12);
        assert_eq!(p.primaries[3].num_vertices, 8);
        assert_eq!(p.primaries[2].internal_edges, 19);
        assert_eq!(p.primaries[2].num_vertices, 12);
        let scores = p.scores(&Metric::AverageDegree);
        assert!((scores[3] - 3.0).abs() < 1e-12);
        assert!((scores[2] - 2.0 * 19.0 / 12.0).abs() < 1e-12);
        let best = p.best(&Metric::AverageDegree).unwrap();
        assert_eq!(best.k, 2);
    }

    #[test]
    fn example5_clustering_coefficient_sweep() {
        // Paper Example 5: 3-core set has 8 triangles / 24 triplets (cc = 1);
        // 2-core set has 10 triangles / 45 triplets (cc ≈ 0.67); best k = 3.
        let g = generators::paper_figure2();
        let p = profile(&g, true);
        assert_eq!(p.primaries[3].triangles, 8);
        assert_eq!(p.primaries[3].triplets, 24);
        assert_eq!(p.primaries[2].triangles, 10);
        assert_eq!(p.primaries[2].triplets, 45);
        let scores = p.scores(&Metric::ClusteringCoefficient);
        assert!((scores[3] - 1.0).abs() < 1e-12);
        assert!((scores[2] - 30.0 / 45.0).abs() < 1e-12);
        assert_eq!(p.best(&Metric::ClusteringCoefficient).unwrap().k, 3);
    }

    #[test]
    fn policy_scores_match_sequential_bitwise() {
        bestk_graph::testkit::check("scores_policy_equals_sequential", 16, |gen| {
            let g = gen.graph(70, 300);
            let p = profile(&g, true);
            for metric in Metric::ALL {
                let reference = p.scores(&metric);
                for threads in [1, 2, 4, 7] {
                    let policy = ExecPolicy::with_threads(threads).unwrap();
                    let got = p.scores_with(&metric, &policy);
                    // Bit-identical, not just approximately equal: the series
                    // is chunked and concatenated, never re-associated.
                    assert_eq!(
                        got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        reference.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "{} at {threads} threads",
                        metric.name()
                    );
                }
            }
        });
    }

    #[test]
    fn boundary_edges_of_figure2() {
        // Example 6: the 3-core set has 3 boundary edges (v3-v5, v3-v6, v8-v9).
        let g = generators::paper_figure2();
        let p = profile(&g, false);
        assert_eq!(p.primaries[3].boundary_edges, 3);
        // The whole graph (k <= 2) has no boundary.
        assert_eq!(p.primaries[2].boundary_edges, 0);
        assert_eq!(p.primaries[0].boundary_edges, 0);
    }

    #[test]
    fn complete_graph_profile() {
        let g = regular::complete(6);
        let p = profile(&g, true);
        assert_eq!(p.kmax, 5);
        for k in 0..=5usize {
            // Every core set is the whole K6.
            assert_eq!(p.primaries[k].num_vertices, 6);
            assert_eq!(p.primaries[k].internal_edges, 15);
            assert_eq!(p.primaries[k].boundary_edges, 0);
            assert_eq!(p.primaries[k].triangles, 20);
            assert_eq!(p.primaries[k].triplets, 6 * choose2(5));
        }
        let scores = p.scores(&Metric::ClusteringCoefficient);
        assert!((scores[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn primaries_match_baseline_on_random_graphs() {
        use bestk_graph::subgraph::{boundary_edge_count, induced_edge_count};
        for seed in 0..4 {
            let g = generators::erdos_renyi_gnm(120, 420, seed);
            let d = core_decomposition(&g);
            let o = OrderedGraph::build(&g, &d);
            let primaries = core_set_primaries(&o);
            for k in 0..=d.kmax() {
                let verts = d.core_set_vertices(k);
                let pv = &primaries[k as usize];
                assert_eq!(
                    pv.num_vertices as usize,
                    verts.len(),
                    "n at k={k} seed={seed}"
                );
                assert_eq!(
                    pv.internal_edges as usize,
                    induced_edge_count(&g, verts),
                    "m at k={k} seed={seed}"
                );
                assert_eq!(
                    pv.boundary_edges as usize,
                    boundary_edge_count(&g, verts),
                    "b at k={k} seed={seed}"
                );
            }
        }
    }

    /// Naive per-subgraph triangle/triplet counts for cross-checking.
    fn naive_triangles_triplets(g: &bestk_graph::CsrGraph, verts: &[VertexId]) -> (u64, u64) {
        let sub = bestk_graph::subgraph::induced_subgraph(g, verts);
        let sg = &sub.graph;
        let mut triangles = 0u64;
        for v in sg.vertices() {
            for &u in sg.neighbors(v) {
                if u <= v {
                    continue;
                }
                for &w in sg.neighbors(u) {
                    if w > u && sg.has_edge(v, w) {
                        triangles += 1;
                    }
                }
            }
        }
        let triplets = sg.vertices().map(|v| choose2(sg.degree(v) as u64)).sum();
        (triangles, triplets)
    }

    #[test]
    fn triangles_match_naive_on_random_graphs() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_gnm(80, 400, seed + 100);
            let d = core_decomposition(&g);
            let o = OrderedGraph::build(&g, &d);
            let primaries = core_set_primaries_with_triangles(&o);
            for k in 0..=d.kmax() {
                let (tri, trip) = naive_triangles_triplets(&g, d.core_set_vertices(k));
                let pv = &primaries[k as usize];
                assert_eq!(pv.triangles, tri, "triangles at k={k} seed={seed}");
                assert_eq!(pv.triplets, trip, "triplets at k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn triangles_match_naive_on_dense_overlaps() {
        let g = generators::overlapping_cliques(120, 20, (4, 9), 5);
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        let primaries = core_set_primaries_with_triangles(&o);
        for k in (0..=d.kmax()).step_by(2) {
            let (tri, trip) = naive_triangles_triplets(&g, d.core_set_vertices(k));
            assert_eq!(primaries[k as usize].triangles, tri, "k={k}");
            assert_eq!(primaries[k as usize].triplets, trip, "k={k}");
        }
    }

    #[test]
    fn bottom_up_matches_top_down() {
        for (name, g) in [
            ("fig2", generators::paper_figure2()),
            ("er", generators::erdos_renyi_gnm(200, 800, 4)),
            ("cl", generators::chung_lu_power_law(300, 7.0, 2.4, 5)),
            (
                "cliques",
                generators::overlapping_cliques(150, 25, (3, 9), 6),
            ),
        ] {
            let d = core_decomposition(&g);
            let o = OrderedGraph::build(&g, &d);
            let top_down = core_set_primaries(&o);
            let bottom_up = core_set_primaries_bottom_up(&o);
            assert_eq!(top_down, bottom_up, "{name}");
        }
    }

    #[test]
    fn best_k_convenience_matches_profile() {
        let g = generators::chung_lu_power_law(400, 7.0, 2.4, 12);
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        for m in Metric::ALL {
            let via_profile = core_set_profile(&o, true).best(&m);
            let via_fn = best_k_core_set(&o, &m);
            assert_eq!(via_profile, via_fn, "{}", m.name());
        }
    }

    #[test]
    fn scoring_cc_without_triangles_is_a_typed_error() {
        let g = regular::complete(4);
        let p = profile(&g, false);
        assert!(matches!(
            p.try_scores(&Metric::ClusteringCoefficient),
            Err(MetricError::MissingTriangles { .. })
        ));
        assert!(matches!(
            p.try_best(&Metric::ClusteringCoefficient),
            Err(MetricError::MissingTriangles { .. })
        ));
        // With triangles the same calls succeed.
        let with = profile(&g, true);
        assert!(with.try_scores(&Metric::ClusteringCoefficient).is_ok());
    }

    #[test]
    fn empty_graph_profile() {
        let g = bestk_graph::CsrGraph::empty(0);
        let p = profile(&g, true);
        assert_eq!(p.kmax, 0);
        assert_eq!(p.primaries.len(), 1);
        assert_eq!(p.primaries[0], PrimaryValues::default());
        assert!(p.best(&Metric::AverageDegree).is_none());
    }

    #[test]
    fn isolated_vertices_only_affect_k0() {
        let mut b = bestk_graph::GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (2, 0)]);
        b.reserve_vertices(5);
        let g = b.build();
        let p = profile(&g, false);
        assert_eq!(p.primaries[0].num_vertices, 5);
        assert_eq!(p.primaries[1].num_vertices, 3);
        assert_eq!(p.primaries[2].num_vertices, 3);
        // Average degree of C_0 is diluted by the isolated vertices.
        let scores = p.scores(&Metric::AverageDegree);
        assert!(scores[0] < scores[1]);
        assert_eq!(p.best(&Metric::AverageDegree).unwrap().k, 2);
    }
}
