//! Finding the best single k-core (paper §IV, Algorithm 5).
//!
//! Processes the compressed core forest children-first (the nodes come
//! sorted by descending coreness), aggregating each core's primary values
//! from its child cores plus the contribution of its own shell vertices —
//! the same `O(1)`-per-vertex neighbor-count deltas as Algorithm 2/3, so the
//! whole profile costs `O(n)` (`O(m^1.5)` with triangles) after
//! decomposition, ordering, and forest construction.

use crate::forest::CoreForest;
use crate::metrics::{CommunityMetric, GraphContext, MetricError, PrimaryValues};
use crate::ordering::OrderedGraph;
use bestk_graph::cast;

/// Per-core primary values for every node of the core forest.
#[derive(Debug, Clone)]
pub struct SingleCoreProfile {
    /// `primaries[i]` describes the k-core of forest node `i` (shell plus
    /// all descendants).
    pub primaries: Vec<PrimaryValues>,
    /// Corenesses aligned with `primaries` (copied from the forest nodes).
    pub coreness: Vec<u32>,
    /// Whether `Δ` and `t` were computed.
    pub has_triangles: bool,
    /// Whole-graph context used for scoring.
    pub context: GraphContext,
}

/// The answer to the best-single-k-core problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestCore {
    /// Forest node index of the winning core.
    pub node: u32,
    /// Its `k`.
    pub k: u32,
    /// Its score.
    pub score: f64,
}

impl SingleCoreProfile {
    /// Scores every k-core under `metric`, aligned with the forest nodes;
    /// a typed [`MetricError`] when the metric needs triangles the profile
    /// was built without.
    pub fn try_scores<M: CommunityMetric + ?Sized>(
        &self,
        metric: &M,
    ) -> Result<Vec<f64>, MetricError> {
        if metric.needs_triangles() && !self.has_triangles {
            return Err(MetricError::MissingTriangles {
                metric: metric.name().to_owned(),
            });
        }
        Ok(self
            .primaries
            .iter()
            .map(|pv| metric.score(pv, &self.context))
            .collect())
    }

    /// [`try_scores`](Self::try_scores) as a panicking convenience.
    ///
    /// # Panics
    ///
    /// Panics if the metric needs triangles but the profile lacks them.
    pub fn scores<M: CommunityMetric + ?Sized>(&self, metric: &M) -> Vec<f64> {
        // bestk-analyze: allow(no-panic) — documented panicking facade over try_scores
        self.try_scores(metric).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The best single k-core under `metric`; ties prefer the largest `k`
    /// (the forest's descending-coreness order makes this the first
    /// maximum). `NaN` scores are skipped; `Ok(None)` when every score is
    /// `NaN`, a typed [`MetricError`] when the metric cannot be scored.
    pub fn try_best<M: CommunityMetric + ?Sized>(
        &self,
        metric: &M,
    ) -> Result<Option<BestCore>, MetricError> {
        let _span = bestk_obs::span!("phase.select");
        let scores = self.try_scores(metric)?;
        let mut best: Option<BestCore> = None;
        for (i, &s) in scores.iter().enumerate() {
            if !s.is_nan() && best.is_none_or(|b| s > b.score) {
                best = Some(BestCore {
                    node: cast::u32_of(i),
                    k: self.coreness[i],
                    score: s,
                });
            }
        }
        Ok(best)
    }

    /// [`try_best`](Self::try_best) as a panicking convenience.
    ///
    /// # Panics
    ///
    /// Panics if the metric needs triangles but the profile lacks them.
    pub fn best<M: CommunityMetric + ?Sized>(&self, metric: &M) -> Option<BestCore> {
        // bestk-analyze: allow(no-panic) — documented panicking facade over try_best
        self.try_best(metric).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The paper's Figure 6 series: every k-core's `(k, score)`, sorted by
    /// ascending `k` with ties broken by ascending score. Non-finite scores
    /// are dropped. A typed [`MetricError`] when the metric cannot be
    /// scored.
    pub fn try_sequence<M: CommunityMetric + ?Sized>(
        &self,
        metric: &M,
    ) -> Result<Vec<(u32, f64)>, MetricError> {
        let mut seq: Vec<(u32, f64)> = self
            .try_scores(metric)?
            .into_iter()
            .zip(self.coreness.iter().copied())
            .filter(|(s, _)| s.is_finite())
            .map(|(s, k)| (k, s))
            .collect();
        seq.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        Ok(seq)
    }

    /// [`try_sequence`](Self::try_sequence) as a panicking convenience.
    ///
    /// # Panics
    ///
    /// Panics if the metric needs triangles but the profile lacks them.
    pub fn sequence<M: CommunityMetric + ?Sized>(&self, metric: &M) -> Vec<(u32, f64)> {
        // bestk-analyze: allow(no-panic) — documented panicking facade over try_sequence
        self.try_sequence(metric).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Computes per-core primary values over the forest (Algorithm 5). With
/// `with_triangles`, the triangle/triplet recurrence of Algorithm 3 runs
/// per node (the forest's descending-coreness order provides exactly the
/// top-down level sweep the recurrence needs).
pub fn single_core_primaries(
    o: &OrderedGraph<'_>,
    forest: &CoreForest,
    with_triangles: bool,
) -> Vec<PrimaryValues> {
    let node_count = forest.node_count();
    let mut primaries = vec![PrimaryValues::default(); node_count];

    // Triangle/triplet sweep state (global across nodes; see Algorithm 3).
    let n = o.num_vertices();
    let mut f_gt = vec![0u32; n];
    let mut f_ge = vec![0u32; n];
    let mut marked = vec![0u32; n];
    let mut mark_stamp = 0u32;
    let mut nbr_seen = vec![u32::MAX; n];
    let mut kshell_nbr: Vec<bestk_graph::VertexId> = Vec::new();

    for i in 0..node_count {
        let node = forest.node(cast::u32_of(i));
        // Children first (they precede i in the array): aggregate.
        let mut pv = PrimaryValues::default();
        for &c in &node.children {
            pv.add_assign(&primaries[c as usize]);
        }
        // Shell ("delta") contribution, exactly Algorithm 2's per-vertex
        // updates restricted to this node's vertices.
        let mut in_twice: u64 = 0;
        let mut out: i64 = pv.boundary_edges as i64;
        for &v in &node.vertices {
            let gt = o.count_gt(v) as u64;
            let eq = o.count_eq(v) as u64;
            let lt = o.count_lt(v) as u64;
            in_twice += 2 * gt + eq;
            out += lt as i64 - gt as i64;
            pv.num_vertices += 1;
        }
        debug_assert!(
            in_twice.is_multiple_of(2),
            "same-shell half-edges must pair up within a node"
        );
        debug_assert!(out >= 0, "boundary count cannot go negative");
        pv.internal_edges += in_twice / 2;
        pv.boundary_edges = out as u64;

        if with_triangles {
            // Triangles whose minimum-rank vertex lies in this shell.
            let mut tri: u64 = 0;
            for &v in &node.vertices {
                mark_stamp += 1;
                for &u in o.neighbors_gt_rank(v) {
                    marked[u as usize] = mark_stamp;
                }
                for &u in o.neighbors_gt_rank(v) {
                    for &w in o.neighbors_gt_rank(u) {
                        if marked[w as usize] == mark_stamp {
                            tri += 1;
                        }
                    }
                }
            }
            // Triplets centered in this shell.
            let mut trip: u64 = 0;
            for &v in &node.vertices {
                trip += choose2(o.count_ge(v) as u64);
            }
            // New triplets centered in this core's deeper vertices.
            kshell_nbr.clear();
            for &v in &node.vertices {
                for &u in o.neighbors_gt(v) {
                    if nbr_seen[u as usize] != cast::u32_of(i) {
                        nbr_seen[u as usize] = cast::u32_of(i);
                        kshell_nbr.push(u);
                    }
                }
            }
            for &w in &kshell_nbr {
                f_gt[w as usize] = f_ge[w as usize];
            }
            for &v in &node.vertices {
                for &u in o.neighbors(v) {
                    f_ge[u as usize] += 1;
                }
            }
            for &w in &kshell_nbr {
                let gt_k = f_gt[w as usize] as u64;
                let eq_k = (f_ge[w as usize] - f_gt[w as usize]) as u64;
                trip += choose2(eq_k) + gt_k * eq_k;
            }
            pv.triangles += tri;
            pv.triplets += trip;
        }
        primaries[i] = pv;
    }
    primaries
}

#[inline]
fn choose2(x: u64) -> u64 {
    x * x.saturating_sub(1) / 2
}

/// Builds the full [`SingleCoreProfile`].
pub fn single_core_profile(
    o: &OrderedGraph<'_>,
    forest: &CoreForest,
    with_triangles: bool,
) -> SingleCoreProfile {
    let _span = bestk_obs::span!("phase.sweep");
    SingleCoreProfile {
        primaries: single_core_primaries(o, forest, with_triangles),
        coreness: forest.nodes().iter().map(|n| n.coreness).collect(),
        has_triangles: with_triangles,
        context: GraphContext {
            total_vertices: o.num_vertices() as u64,
            total_edges: o.num_edges() as u64,
        },
    }
}

/// One-call convenience: the best single k-core under `metric`.
pub fn best_single_core<M: CommunityMetric + ?Sized>(
    o: &OrderedGraph<'_>,
    forest: &CoreForest,
    metric: &M,
) -> Option<BestCore> {
    single_core_profile(o, forest, metric.needs_triangles()).best(metric)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::core_decomposition;
    use crate::metrics::Metric;
    use crate::ordering::OrderedGraph;
    use bestk_graph::generators::{self, regular};

    struct Fixture {
        g: bestk_graph::CsrGraph,
    }

    impl Fixture {
        fn profile(&self, with_triangles: bool) -> (SingleCoreProfile, CoreForest) {
            let d = core_decomposition(&self.g);
            let o = OrderedGraph::build(&self.g, &d);
            let f = CoreForest::build(&self.g, &d);
            (single_core_profile(&o, &f, with_triangles), f)
        }
    }

    #[test]
    fn figure2_per_core_primaries() {
        // Figure 4 / Example 6: three cores.
        //   S2, S3: the two K4s — 4 vertices, 6 edges, 3 boundary edges each
        //   split 2/1 (v3 has two shell neighbors, v9 one);
        //   S1: the whole graph — 12 vertices, 19 edges, 0 boundary.
        let fx = Fixture {
            g: generators::paper_figure2(),
        };
        let (p, f) = fx.profile(true);
        assert_eq!(p.primaries.len(), 3);
        // Root is last (lowest coreness).
        let root_idx = f.roots()[0] as usize;
        assert_eq!(root_idx, 2);
        let root = &p.primaries[root_idx];
        assert_eq!(root.num_vertices, 12);
        assert_eq!(root.internal_edges, 19);
        assert_eq!(root.boundary_edges, 0);
        // The two 3-cores (K4s).
        for i in 0..2 {
            assert_eq!(p.coreness[i], 3);
            assert_eq!(p.primaries[i].num_vertices, 4);
            assert_eq!(p.primaries[i].internal_edges, 6);
            assert_eq!(p.primaries[i].triangles, 4);
            assert_eq!(p.primaries[i].triplets, 12);
        }
        // Boundary edges of the K4s: v3 has 2 (to v5, v6), v9 has 1 (to v8).
        let mut boundaries: Vec<u64> = (0..2).map(|i| p.primaries[i].boundary_edges).collect();
        boundaries.sort_unstable();
        assert_eq!(boundaries, vec![1, 2]);
        // Whole graph: 10 triangles, 45 triplets (Example 5 at k=2).
        assert_eq!(root.triangles, 10);
        assert_eq!(root.triplets, 45);
    }

    #[test]
    fn best_single_core_per_metric_on_figure2() {
        // On Figure 2's graph the whole 2-core has average degree
        // 2·19/12 ≈ 3.17, beating both K4s (3.0) — so the best single core
        // under average degree is the root. Under internal density the K4s
        // win (density 1).
        let fx = Fixture {
            g: generators::paper_figure2(),
        };
        let (p, f) = fx.profile(false);
        let best = p.best(&Metric::AverageDegree).unwrap();
        assert_eq!(best.k, 2);
        assert!((best.score - 2.0 * 19.0 / 12.0).abs() < 1e-12);
        assert_eq!(f.core_vertices(best.node).len(), 12);
        let dense = p.best(&Metric::InternalDensity).unwrap();
        assert_eq!(dense.k, 3);
        assert!((dense.score - 1.0).abs() < 1e-12);
        assert_eq!(f.core_vertices(dense.node).len(), 4);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn per_core_matches_direct_computation_on_random_graphs() {
        use bestk_graph::subgraph::{boundary_edge_count, induced_edge_count};
        for seed in 0..4 {
            let g = generators::erdos_renyi_gnm(120, 420, seed + 7);
            let d = core_decomposition(&g);
            let o = OrderedGraph::build(&g, &d);
            let f = CoreForest::build(&g, &d);
            let primaries = single_core_primaries(&o, &f, false);
            for i in 0..f.node_count() {
                let verts = f.core_vertices(i as u32);
                let pv = &primaries[i];
                assert_eq!(
                    pv.num_vertices as usize,
                    verts.len(),
                    "n node={i} seed={seed}"
                );
                assert_eq!(
                    pv.internal_edges as usize,
                    induced_edge_count(&g, &verts),
                    "m node={i} seed={seed}"
                );
                assert_eq!(
                    pv.boundary_edges as usize,
                    boundary_edge_count(&g, &verts),
                    "b node={i} seed={seed}"
                );
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn per_core_triangles_match_naive() {
        for (label, g) in [
            ("er", generators::erdos_renyi_gnm(90, 380, 31)),
            (
                "cliques",
                generators::overlapping_cliques(120, 18, (4, 9), 13),
            ),
            (
                "planted",
                generators::planted_partition(&[25, 25, 25], 0.35, 0.03, 2).graph,
            ),
        ] {
            let d = core_decomposition(&g);
            let o = OrderedGraph::build(&g, &d);
            let f = CoreForest::build(&g, &d);
            let primaries = single_core_primaries(&o, &f, true);
            for i in 0..f.node_count() {
                let verts = f.core_vertices(i as u32);
                let sub = bestk_graph::subgraph::induced_subgraph(&g, &verts);
                let sg = &sub.graph;
                let mut tri = 0u64;
                for v in sg.vertices() {
                    for &u in sg.neighbors(v) {
                        if u <= v {
                            continue;
                        }
                        for &w in sg.neighbors(u) {
                            if w > u && sg.has_edge(v, w) {
                                tri += 1;
                            }
                        }
                    }
                }
                let trip: u64 = sg.vertices().map(|v| choose2(sg.degree(v) as u64)).sum();
                assert_eq!(primaries[i].triangles, tri, "{label} node {i}");
                assert_eq!(primaries[i].triplets, trip, "{label} node {i}");
            }
        }
    }

    #[test]
    fn best_core_on_two_unequal_cliques() {
        // K5 and K3, disjoint: the K5 wins under average degree.
        let mut b = bestk_graph::GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v);
            }
        }
        b.extend_edges([(5, 6), (6, 7), (5, 7)]);
        let fx = Fixture { g: b.build() };
        let (p, f) = fx.profile(false);
        let best = p.best(&Metric::AverageDegree).unwrap();
        assert_eq!(best.k, 4);
        assert_eq!(f.core_vertices(best.node).len(), 5);
        // Under cut ratio both are perfectly separated (score 1);
        // the tie goes to the larger k.
        let best_cr = p.best(&Metric::CutRatio).unwrap();
        assert_eq!(best_cr.k, 4);
        assert!((best_cr.score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sequence_is_sorted_like_figure6() {
        let fx = Fixture {
            g: generators::chung_lu_power_law(500, 7.0, 2.4, 5),
        };
        let (p, _) = fx.profile(false);
        let seq = p.sequence(&Metric::AverageDegree);
        assert!(!seq.is_empty());
        for w in seq.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 <= w[1].1));
        }
    }

    #[test]
    fn clique_chain_cores() {
        // Three K5s bridged in a chain: all one 4-core? No — bridges have
        // both endpoints with coreness 4, so the whole chain is a single
        // connected 4-core (cf. forest tests); the profile has one node.
        let fx = Fixture {
            g: regular::clique_chain(3, 5),
        };
        let (p, _) = fx.profile(false);
        assert_eq!(p.primaries.len(), 1);
        assert_eq!(p.primaries[0].num_vertices, 15);
        assert_eq!(p.primaries[0].internal_edges, 32);
    }

    #[test]
    fn empty_graph() {
        let fx = Fixture {
            g: bestk_graph::CsrGraph::empty(0),
        };
        let (p, _) = fx.profile(true);
        assert!(p.primaries.is_empty());
        assert!(p.best(&Metric::AverageDegree).is_none());
        assert!(p.sequence(&Metric::AverageDegree).is_empty());
    }

    #[test]
    fn best_single_core_convenience() {
        let g = generators::erdos_renyi_gnm(200, 800, 17);
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        let f = CoreForest::build(&g, &d);
        for m in Metric::ALL {
            let a = best_single_core(&o, &f, &m);
            let b = single_core_profile(&o, &f, true).best(&m);
            assert_eq!(a, b, "{}", m.name());
        }
    }
}
