//! One-call facade over the whole pipeline.
//!
//! [`analyze`] runs decomposition → ordering → sweeps → forest once and
//! stores the *profiles* (per-k and per-core primary values), after which
//! every metric — including user-defined [`CommunityMetric`]s — is scored in
//! `O(kmax)` / `O(#cores)` with no further graph traversal. This mirrors the
//! paper's point that the primaries, not the scores, are the expensive part.

use bestk_exec::ExecPolicy;
use bestk_graph::{GraphView, VertexId};

use crate::bestcore::{single_core_profile, BestCore, SingleCoreProfile};
use crate::bestkset::{core_set_profile, BestKSet, CoreSetProfile};
use crate::decomposition::{core_decomposition_with, CoreDecomposition};
use crate::forest::CoreForest;
use crate::metrics::{CommunityMetric, MetricError};
use crate::ordering::OrderedGraph;

/// Precomputed best-k state for one graph: the decomposition, the core
/// forest, and both primary-value profiles.
#[derive(Debug, Clone)]
pub struct BestKAnalysis {
    decomp: CoreDecomposition,
    forest: CoreForest,
    set_profile: CoreSetProfile,
    core_profile: SingleCoreProfile,
}

/// Runs the full pipeline with triangle counting (`O(m^1.5)`), enabling all
/// six paper metrics plus any custom one.
pub fn analyze<G: GraphView + Sync>(g: &G) -> BestKAnalysis {
    analyze_inner(g, true)
}

/// Runs the pipeline without triangle counting (`O(m)`); clustering
/// coefficient (and any [`CommunityMetric`] with
/// [`needs_triangles`](CommunityMetric::needs_triangles)) is unavailable.
pub fn analyze_basic<G: GraphView + Sync>(g: &G) -> BestKAnalysis {
    analyze_inner(g, false)
}

/// [`analyze`] under an execution policy: the peel dispatches to the
/// [`PeelStrategy`](crate::PeelStrategy) the policy selects (the parallel
/// bucket-frontier primary under `Parallel`, the sequential oracle
/// otherwise) and the ordered-adjacency tag scan runs on the shared
/// runtime. The analysis is identical to the sequential one at every
/// thread count.
pub fn analyze_with<G: GraphView + Sync>(g: &G, policy: &ExecPolicy) -> BestKAnalysis {
    analyze_inner_with(g, true, policy)
}

/// [`analyze_basic`] under an execution policy; see [`analyze_with`].
pub fn analyze_basic_with<G: GraphView + Sync>(g: &G, policy: &ExecPolicy) -> BestKAnalysis {
    analyze_inner_with(g, false, policy)
}

fn analyze_inner<G: GraphView + Sync>(g: &G, with_triangles: bool) -> BestKAnalysis {
    analyze_inner_with(g, with_triangles, &ExecPolicy::Sequential)
}

fn analyze_inner_with<G: GraphView + Sync>(
    g: &G,
    with_triangles: bool,
    policy: &ExecPolicy,
) -> BestKAnalysis {
    let decomp = core_decomposition_with(g, policy);
    let ordered = OrderedGraph::build_with(g, &decomp, policy);
    let set_profile = core_set_profile(&ordered, with_triangles);
    let forest = CoreForest::build(g, &decomp);
    let core_profile = single_core_profile(&ordered, &forest, with_triangles);
    BestKAnalysis {
        decomp,
        forest,
        set_profile,
        core_profile,
    }
}

impl BestKAnalysis {
    /// The core decomposition.
    pub fn decomposition(&self) -> &CoreDecomposition {
        &self.decomp
    }

    /// The core forest.
    pub fn forest(&self) -> &CoreForest {
        &self.forest
    }

    /// The per-k profile of the k-core sets.
    pub fn set_profile(&self) -> &CoreSetProfile {
        &self.set_profile
    }

    /// The per-core profile over the forest nodes.
    pub fn core_profile(&self) -> &SingleCoreProfile {
        &self.core_profile
    }

    /// Largest coreness in the graph.
    pub fn kmax(&self) -> u32 {
        self.decomp.kmax()
    }

    /// Problem 1 (§II-B): the best k-core set under `metric`; a typed
    /// [`MetricError`] when the metric cannot be scored on this analysis.
    pub fn try_best_core_set<M: CommunityMetric + ?Sized>(
        &self,
        metric: &M,
    ) -> Result<Option<BestKSet>, MetricError> {
        self.set_profile.try_best(metric)
    }

    /// [`try_best_core_set`](Self::try_best_core_set) as a panicking
    /// convenience.
    ///
    /// # Panics
    ///
    /// Panics if the metric needs triangles but the analysis was built
    /// without them.
    pub fn best_core_set<M: CommunityMetric + ?Sized>(&self, metric: &M) -> Option<BestKSet> {
        self.set_profile.best(metric)
    }

    /// Problem 2 (§II-B): the best single k-core under `metric`; a typed
    /// [`MetricError`] when the metric cannot be scored on this analysis.
    pub fn try_best_single_core<M: CommunityMetric + ?Sized>(
        &self,
        metric: &M,
    ) -> Result<Option<BestCore>, MetricError> {
        self.core_profile.try_best(metric)
    }

    /// [`try_best_single_core`](Self::try_best_single_core) as a panicking
    /// convenience.
    ///
    /// # Panics
    ///
    /// Panics if the metric needs triangles but the analysis was built
    /// without them.
    pub fn best_single_core<M: CommunityMetric + ?Sized>(&self, metric: &M) -> Option<BestCore> {
        self.core_profile.best(metric)
    }

    /// Score of every k-core set (`result[k]` = score of `C_k`); the data
    /// series of the paper's Figure 5. A typed [`MetricError`] when the
    /// metric cannot be scored on this analysis.
    pub fn try_core_set_scores<M: CommunityMetric + ?Sized>(
        &self,
        metric: &M,
    ) -> Result<Vec<f64>, MetricError> {
        self.set_profile.try_scores(metric)
    }

    /// [`try_core_set_scores`](Self::try_core_set_scores) as a panicking
    /// convenience.
    ///
    /// # Panics
    ///
    /// Panics if the metric needs triangles but the analysis was built
    /// without them.
    pub fn core_set_scores<M: CommunityMetric + ?Sized>(&self, metric: &M) -> Vec<f64> {
        self.set_profile.scores(metric)
    }

    /// Score of every single k-core as Figure 6's `(k, score)` sequence; a
    /// typed [`MetricError`] when the metric cannot be scored.
    pub fn try_single_core_scores<M: CommunityMetric + ?Sized>(
        &self,
        metric: &M,
    ) -> Result<Vec<(u32, f64)>, MetricError> {
        self.core_profile.try_sequence(metric)
    }

    /// [`try_single_core_scores`](Self::try_single_core_scores) as a
    /// panicking convenience.
    ///
    /// # Panics
    ///
    /// Panics if the metric needs triangles but the analysis was built
    /// without them.
    pub fn single_core_scores<M: CommunityMetric + ?Sized>(&self, metric: &M) -> Vec<(u32, f64)> {
        self.core_profile.sequence(metric)
    }

    /// Materializes the vertex set of the best single k-core under `metric`
    /// (`None` if every score is non-finite).
    pub fn best_single_core_vertices<M: CommunityMetric + ?Sized>(
        &self,
        metric: &M,
    ) -> Option<Vec<VertexId>> {
        self.best_single_core(metric)
            .map(|b| self.forest.core_vertices(b.node))
    }

    /// Materializes the vertex set of the best k-core set under `metric`.
    pub fn best_core_set_vertices<M: CommunityMetric + ?Sized>(
        &self,
        metric: &M,
    ) -> Option<Vec<VertexId>> {
        self.best_core_set(metric)
            .map(|b| self.decomp.core_set_vertices(b.k).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metric;
    use bestk_graph::generators;

    #[test]
    fn facade_runs_all_metrics_on_figure2() {
        // Example 4: with average degree, the best set is at k = 2; the best
        // single core is the whole graph (avg degree 19/6 beats the K4s).
        // Under internal density the best single core is a K4.
        let g = generators::paper_figure2();
        let a = analyze(&g);
        assert_eq!(a.kmax(), 3);
        assert_eq!(a.best_core_set(&Metric::AverageDegree).unwrap().k, 2);
        let best = a.best_single_core(&Metric::AverageDegree).unwrap();
        assert_eq!(best.k, 2);
        let verts = a
            .best_single_core_vertices(&Metric::InternalDensity)
            .unwrap();
        assert_eq!(verts.len(), 4);
        // Clustering coefficient prefers the 3-core set (Example 5).
        assert_eq!(
            a.best_core_set(&Metric::ClusteringCoefficient).unwrap().k,
            3
        );
    }

    #[test]
    fn basic_analysis_rejects_cc() {
        let g = generators::paper_figure2();
        let a = analyze_basic(&g);
        assert!(a.best_core_set(&Metric::AverageDegree).is_some());
        assert!(matches!(
            a.try_best_core_set(&Metric::ClusteringCoefficient),
            Err(MetricError::MissingTriangles { .. })
        ));
        assert!(matches!(
            a.try_best_single_core(&Metric::ClusteringCoefficient),
            Err(MetricError::MissingTriangles { .. })
        ));
        assert!(matches!(
            a.try_core_set_scores(&Metric::ClusteringCoefficient),
            Err(MetricError::MissingTriangles { .. })
        ));
        assert!(matches!(
            a.try_single_core_scores(&Metric::ClusteringCoefficient),
            Err(MetricError::MissingTriangles { .. })
        ));
    }

    #[test]
    fn facade_consistent_with_direct_calls() {
        let g = generators::chung_lu_power_law(600, 7.0, 2.5, 99);
        let a = analyze(&g);
        let d = crate::core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        for m in Metric::ALL {
            assert_eq!(
                a.best_core_set(&m),
                crate::bestkset::best_k_core_set(&o, &m),
                "{}",
                m.name()
            );
        }
    }

    #[test]
    fn policy_analysis_matches_sequential() {
        let g = generators::chung_lu_power_law(300, 6.0, 2.4, 17);
        let reference = analyze(&g);
        for threads in [1, 2, 4, 7] {
            let policy = bestk_exec::ExecPolicy::with_threads(threads).unwrap();
            let a = analyze_with(&g, &policy);
            for m in Metric::ALL {
                assert_eq!(
                    a.best_core_set(&m),
                    reference.best_core_set(&m),
                    "{}",
                    m.name()
                );
                assert_eq!(
                    a.core_set_scores(&m),
                    reference.core_set_scores(&m),
                    "{}",
                    m.name()
                );
                assert_eq!(a.single_core_scores(&m), reference.single_core_scores(&m));
            }
        }
    }

    #[test]
    fn score_series_shapes() {
        let g = generators::erdos_renyi_gnm(300, 1000, 4);
        let a = analyze(&g);
        let series = a.core_set_scores(&Metric::AverageDegree);
        assert_eq!(series.len(), a.kmax() as usize + 1);
        let seq = a.single_core_scores(&Metric::Conductance);
        assert_eq!(seq.len(), a.forest().node_count());
        let set_verts = a.best_core_set_vertices(&Metric::AverageDegree).unwrap();
        assert!(!set_verts.is_empty());
    }
}
