//! Core decomposition (paper §II-A).
//!
//! The Batagelj–Zaveršnik peeling algorithm: repeatedly remove a vertex of
//! minimum degree; the value of `k` being peeled when a vertex is removed is
//! its *coreness*. With bucketed degree queues the whole decomposition runs
//! in `O(n + m)` time and `O(n)` extra space.

use bestk_graph::cast;
use bestk_graph::{GraphView, VertexId};

/// The result of a core decomposition: every vertex's coreness plus the
/// vertex ordering the paper's algorithms build on.
///
/// Vertices are stored bin-sorted by coreness (ascending, ties by id), so the
/// vertex set of any k-core set `C_k` is a contiguous *suffix* of
/// [`vertices_by_coreness`](Self::vertices_by_coreness) — retrieving it is
/// `O(|V(C_k)|)`, exactly the baseline's §III-A retrieval step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    coreness: Vec<u32>,
    kmax: u32,
    /// Vertices sorted by (coreness, id) ascending.
    order: Vec<VertexId>,
    /// Vertices in the order they were peeled (a degeneracy ordering).
    peel_order: Vec<VertexId>,
    /// `shell_start[k]..shell_start[k + 1]` indexes the k-shell `H_k` inside
    /// `order`. Length `kmax + 2`.
    shell_start: Vec<usize>,
}

impl CoreDecomposition {
    /// Coreness `c(v)` (paper Def. 3).
    #[inline]
    pub fn coreness(&self, v: VertexId) -> u32 {
        self.coreness[v as usize]
    }

    /// The full coreness array, indexed by vertex id.
    #[inline]
    pub fn coreness_slice(&self) -> &[u32] {
        &self.coreness
    }

    /// The degeneracy `kmax`: largest `k` with a non-empty k-core.
    #[inline]
    pub fn kmax(&self) -> u32 {
        self.kmax
    }

    /// All vertices sorted by `(coreness, id)` ascending — the paper's vertex
    /// rank order (Def. 5).
    #[inline]
    pub fn vertices_by_coreness(&self) -> &[VertexId] {
        &self.order
    }

    /// The k-shell `H_k = {v | c(v) = k}` as a sorted-by-id slice.
    #[inline]
    pub fn shell(&self, k: u32) -> &[VertexId] {
        if k > self.kmax {
            return &[];
        }
        let k = k as usize;
        &self.order[self.shell_start[k]..self.shell_start[k + 1]]
    }

    /// The vertex set of the k-core set `C_k` (all vertices with coreness
    /// ≥ k), as the suffix of the rank order; `O(1)` to obtain.
    #[inline]
    pub fn core_set_vertices(&self, k: u32) -> &[VertexId] {
        if k > self.kmax {
            return &[];
        }
        &self.order[self.shell_start[k as usize]..]
    }

    /// Number of vertices in the k-core set.
    #[inline]
    pub fn core_set_size(&self, k: u32) -> usize {
        self.core_set_vertices(k).len()
    }

    /// Number of vertices in the graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.coreness.len()
    }

    /// The peeling order — a true *degeneracy ordering*: when vertex `v` is
    /// peeled, at most `c(v) ≤ kmax` of its neighbors are still unpeeled
    /// (i.e. appear later in this order). Useful for branch-and-bound
    /// algorithms such as maximum clique (paper §V-D).
    #[inline]
    pub fn peel_ordering(&self) -> &[VertexId] {
        &self.peel_order
    }

    /// The shell boundary array: `shell_starts()[k]..shell_starts()[k + 1]`
    /// indexes the k-shell inside
    /// [`vertices_by_coreness`](Self::vertices_by_coreness). Length
    /// `kmax + 2`. Exposed for the snapshot serializer.
    #[inline]
    pub fn shell_starts(&self) -> &[usize] {
        &self.shell_start
    }

    /// Reassembles a decomposition from its persisted arrays (the snapshot
    /// deserialization hook). All structural invariants are re-checked in
    /// `O(n + kmax)`; untrusted input comes back as a descriptive error,
    /// never a panic.
    pub fn from_parts(
        coreness: Vec<u32>,
        order: Vec<VertexId>,
        peel_order: Vec<VertexId>,
        shell_start: Vec<usize>,
    ) -> Result<CoreDecomposition, String> {
        let n = coreness.len();
        if order.len() != n || peel_order.len() != n {
            return Err(format!(
                "array lengths disagree: coreness {n}, order {}, peel {}",
                order.len(),
                peel_order.len()
            ));
        }
        if shell_start.len() < 2 {
            return Err("shell_start must have length kmax + 2 >= 2".into());
        }
        let kmax = cast::u32_of(shell_start.len() - 2);
        if shell_start[0] != 0 || shell_start[shell_start.len() - 1] != n {
            return Err("shell_start must run from 0 to n".into());
        }
        if !shell_start.windows(2).all(|w| w[0] <= w[1]) {
            return Err("shell_start must be non-decreasing".into());
        }
        // `order` must be exactly the (coreness, id) sort with shells at the
        // recorded boundaries; checking per-slot membership also proves it
        // is a permutation of 0..n.
        let mut seen = vec![false; n];
        for k in 0..=kmax as usize {
            for &v in order.get(shell_start[k]..shell_start[k + 1]).unwrap_or(&[]) {
                let vu = v as usize;
                if vu >= n || seen[vu] {
                    return Err(format!("order is not a permutation at vertex {v}"));
                }
                seen[vu] = true;
                if coreness[vu] != cast::u32_of(k) {
                    return Err(format!(
                        "vertex {v} sits in shell {k} but has coreness {}",
                        coreness[vu]
                    ));
                }
            }
            let shell = &order[shell_start[k]..shell_start[k + 1]];
            if !shell.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("shell {k} is not sorted by vertex id"));
            }
        }
        let mut peeled = vec![false; n];
        for &v in &peel_order {
            let vu = v as usize;
            if vu >= n || peeled[vu] {
                return Err(format!("peel order is not a permutation at vertex {v}"));
            }
            peeled[vu] = true;
        }
        // Trim kmax down to the largest populated shell so `kmax()` agrees
        // with a freshly built decomposition.
        let kmax = coreness.iter().copied().max().unwrap_or(0);
        if (kmax as usize) + 2 != shell_start.len() {
            return Err(format!(
                "shell_start has {} entries but the largest coreness is {kmax}",
                shell_start.len()
            ));
        }
        Ok(CoreDecomposition {
            coreness,
            kmax,
            order,
            peel_order,
            shell_start,
        })
    }
}

/// Runs the `O(m)` bucket-based core decomposition of [Batagelj &
/// Zaveršnik 2003] (paper §II-A, reference \[7\]), over any storage
/// backend implementing [`GraphView`].
pub fn core_decomposition<G: GraphView>(g: &G) -> CoreDecomposition {
    let _span = bestk_obs::span!("phase.peel");
    let n = g.num_vertices();
    if n == 0 {
        return CoreDecomposition {
            coreness: Vec::new(),
            kmax: 0,
            order: Vec::new(),
            peel_order: Vec::new(),
            shell_start: vec![0, 0],
        };
    }
    let max_deg = g.max_degree();

    // Bucket sort vertices by current degree.
    // pos[v]: index of v in vert; vert: vertices sorted by degree;
    // bin[d]: start index of degree-d block inside vert.
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(cast::vertex_id(v))).collect();
    let mut bin = vec![0usize; max_deg.saturating_add(2)];
    for &d in &degree {
        bin[d + 1] += 1;
    }
    for d in 0..=max_deg {
        bin[d + 1] += bin[d];
    }
    let mut start = bin.clone(); // start[d] = first index of degree-d block
    let mut vert: Vec<VertexId> = vec![0; n];
    let mut pos = vec![0usize; n];
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            let d = degree[v];
            vert[cursor[d]] = cast::vertex_id(v);
            pos[v] = cursor[d];
            cursor[d] += 1;
        }
    }

    let mut coreness = vec![0u32; n];
    let mut kmax = 0u32;
    for i in 0..n {
        let v = vert[i];
        let k = degree[v as usize];
        coreness[v as usize] = cast::u32_of(k);
        kmax = kmax.max(cast::u32_of(k));
        for u in g.neighbors(v) {
            let du = degree[u as usize];
            if du > k {
                // Move u to the front of its degree block, then shrink the
                // block: u's degree drops by one.
                let pu = pos[u as usize];
                let pw = start[du];
                let w = vert[pw];
                if u != w {
                    vert[pu] = w;
                    vert[pw] = u;
                    pos[w as usize] = pu;
                    pos[u as usize] = pw;
                }
                start[du] += 1;
                degree[u as usize] = du - 1;
            }
        }
    }

    // Bin-sort vertices by coreness (stable in id because we scan ids
    // ascending), recording shell boundaries — the §III-A ordering.
    let mut shell_start = vec![0usize; kmax as usize + 2];
    for &c in &coreness {
        shell_start[c as usize + 1] += 1;
    }
    for k in 0..=kmax as usize {
        shell_start[k + 1] += shell_start[k];
    }
    let mut order: Vec<VertexId> = vec![0; n];
    let mut cursor = shell_start.clone();
    for (v, &c) in coreness.iter().enumerate() {
        let c = c as usize;
        order[cursor[c]] = cast::vertex_id(v);
        cursor[c] += 1;
    }

    CoreDecomposition {
        coreness,
        kmax,
        order,
        peel_order: vert,
        shell_start,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_graph::generators::{self, regular};
    use bestk_graph::GraphBuilder;

    #[test]
    fn paper_figure2_coreness() {
        // Example 2: v5, v6, v7, v8 have coreness 2; the rest coreness 3.
        let g = generators::paper_figure2();
        let d = core_decomposition(&g);
        assert_eq!(d.kmax(), 3);
        for v in [4u32, 5, 6, 7] {
            assert_eq!(d.coreness(v), 2, "v{}", v + 1);
        }
        for v in [0u32, 1, 2, 3, 8, 9, 10, 11] {
            assert_eq!(d.coreness(v), 3, "v{}", v + 1);
        }
    }

    #[test]
    fn paper_figure2_shells_and_core_sets() {
        let g = generators::paper_figure2();
        let d = core_decomposition(&g);
        assert_eq!(d.shell(2), &[4, 5, 6, 7]);
        assert_eq!(d.shell(3), &[0, 1, 2, 3, 8, 9, 10, 11]);
        assert!(d.shell(0).is_empty());
        assert!(d.shell(1).is_empty());
        assert!(d.shell(4).is_empty());
        assert_eq!(d.core_set_size(3), 8);
        assert_eq!(d.core_set_size(2), 12);
        assert_eq!(d.core_set_size(0), 12);
        assert!(d.core_set_vertices(4).is_empty());
        assert!(d.core_set_vertices(99).is_empty());
    }

    #[test]
    fn complete_graph_coreness() {
        let g = regular::complete(7);
        let d = core_decomposition(&g);
        assert_eq!(d.kmax(), 6);
        assert!(g.vertices().all(|v| d.coreness(v) == 6));
    }

    #[test]
    fn cycle_and_path_and_star() {
        let d = core_decomposition(&regular::cycle(10));
        assert_eq!(d.kmax(), 2);
        assert!((0..10).all(|v| d.coreness(v) == 2));

        let d = core_decomposition(&regular::path(10));
        assert_eq!(d.kmax(), 1);

        let d = core_decomposition(&regular::star(9));
        assert_eq!(d.kmax(), 1);
        assert!((0..10).all(|v| d.coreness(v) == 1));
    }

    #[test]
    fn isolated_vertices_have_coreness_zero() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.reserve_vertices(4);
        let d = core_decomposition(&b.build());
        assert_eq!(d.coreness(0), 1);
        assert_eq!(d.coreness(2), 0);
        assert_eq!(d.coreness(3), 0);
        assert_eq!(d.shell(0), &[2, 3]);
        assert_eq!(d.kmax(), 1);
    }

    #[test]
    fn empty_graph() {
        let d = core_decomposition(&bestk_graph::CsrGraph::empty(0));
        assert_eq!(d.kmax(), 0);
        assert_eq!(d.num_vertices(), 0);
        assert!(d.core_set_vertices(0).is_empty());
    }

    #[test]
    fn clique_chain_coreness() {
        let g = regular::clique_chain(3, 5);
        let d = core_decomposition(&g);
        assert_eq!(d.kmax(), 4);
        assert!(g.vertices().all(|v| d.coreness(v) == 4));
    }

    #[test]
    fn order_is_sorted_by_coreness_then_id() {
        let g = generators::erdos_renyi_gnm(300, 1200, 3);
        let d = core_decomposition(&g);
        let order = d.vertices_by_coreness();
        assert_eq!(order.len(), 300);
        for w in order.windows(2) {
            let (a, b) = (w[0], w[1]);
            let key = |v: u32| (d.coreness(v), v);
            assert!(
                key(a) < key(b),
                "order not strictly sorted by (coreness, id)"
            );
        }
    }

    /// Definitional check: c(v) ≥ k iff v survives peeling to min degree k.
    fn naive_coreness(g: &bestk_graph::CsrGraph) -> Vec<u32> {
        let n = g.num_vertices();
        let mut coreness = vec![0u32; n];
        let mut alive = vec![true; n];
        for k in 1..=n as u32 {
            // Peel vertices with degree < k among alive ones.
            loop {
                let mut removed = false;
                for v in 0..n {
                    if alive[v] {
                        let deg = g
                            .neighbors(v as VertexId)
                            .iter()
                            .filter(|&&u| alive[u as usize])
                            .count();
                        if (deg as u32) < k {
                            alive[v] = false;
                            removed = true;
                        }
                    }
                }
                if !removed {
                    break;
                }
            }
            for v in 0..n {
                if alive[v] {
                    coreness[v] = k;
                }
            }
            if alive.iter().all(|&a| !a) {
                break;
            }
        }
        coreness
    }

    #[test]
    fn matches_naive_peeling_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::erdos_renyi_gnm(60, 150, seed);
            let d = core_decomposition(&g);
            assert_eq!(d.coreness_slice(), &naive_coreness(&g)[..], "seed {seed}");
        }
    }

    #[test]
    fn peel_ordering_is_a_degeneracy_ordering() {
        for (name, g) in [
            ("cl", generators::chung_lu_power_law(400, 8.0, 2.4, 10)),
            ("er", generators::erdos_renyi_gnm(300, 1500, 4)),
        ] {
            let d = core_decomposition(&g);
            let peel = d.peel_ordering();
            assert_eq!(peel.len(), g.num_vertices());
            let mut position = vec![0usize; g.num_vertices()];
            for (i, &v) in peel.iter().enumerate() {
                position[v as usize] = i;
            }
            for v in g.vertices() {
                let later = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| position[u as usize] > position[v as usize])
                    .count();
                assert!(
                    later <= d.kmax() as usize,
                    "{name}: vertex {v} has {later} later neighbors > kmax {}",
                    d.kmax()
                );
            }
        }
    }

    #[test]
    fn later_rank_neighbors_have_geq_coreness() {
        // In the (coreness, id) rank order, every neighbor appearing later
        // than v has coreness >= c(v) — the property Algorithm 3's triangle
        // attribution relies on.
        let g = generators::chung_lu_power_law(500, 8.0, 2.4, 10);
        let d = core_decomposition(&g);
        let mut position = vec![0usize; g.num_vertices()];
        for (i, &v) in d.vertices_by_coreness().iter().enumerate() {
            position[v as usize] = i;
        }
        for v in g.vertices() {
            for &u in g.neighbors(v) {
                if position[u as usize] > position[v as usize] {
                    assert!(d.coreness(u) >= d.coreness(v));
                }
            }
        }
    }
}
