//! Core decomposition (paper §II-A) under a canonical frontier peel.
//!
//! Peeling repeatedly removes every vertex of minimum current degree; the
//! level `k` being peeled when a vertex is removed is its *coreness*. Both
//! strategies here implement one **canonical peel order** so their output —
//! coreness, rank order, shell boundaries, *and the peel order itself* — is
//! bit-identical at every thread count:
//!
//! * a level `k` opens with every live vertex of current degree `k`,
//!   ascending by id (the *opening frontier*);
//! * the whole frontier is removed **simultaneously**, then each removed
//!   vertex's live neighbors are decremented in frontier-scan order; the
//!   vertices that cross the level (current degree ≤ `k`) form the next
//!   *cascade frontier*, ordered by first crossing;
//! * when the cascade dries up, the next level opens at the new minimum.
//!
//! [`PeelStrategy::Sequential`] (the oracle behind [`core_decomposition`])
//! is the auditably simple transcription of that specification: it rescans
//! all vertices at each level opening, `O(n·kmax + m)` total.
//! [`PeelStrategy::Parallel`] ([`par_peel`]) is the primary path: a lazy
//! bucket queue finds level openings in `O(n + m)` total, and each
//! sub-round's degree decrements are *generated* in parallel on
//! [`bestk_exec::ExecPolicy::for_each_disjoint`] — one count-prefixed
//! event region per chunk — then *applied* in chunk order. Because the
//! frontier is contiguously chunked, the chunk-order merge replays the
//! exact sequential decrement order, which is what keeps the cascade
//! frontiers (and therefore the peel order the Alg. 2 sweep and the
//! snapshot serializer consume) identical. See `tests/peel_equivalence.rs`
//! for the differential layer and DESIGN.md §17 for the contract.

use bestk_exec::{prefix_sum, ExecPolicy};
use bestk_graph::cast;
use bestk_graph::{GraphView, VertexId};

/// The result of a core decomposition: every vertex's coreness plus the
/// vertex ordering the paper's algorithms build on.
///
/// Vertices are stored bin-sorted by coreness (ascending, ties by id), so the
/// vertex set of any k-core set `C_k` is a contiguous *suffix* of
/// [`vertices_by_coreness`](Self::vertices_by_coreness) — retrieving it is
/// `O(|V(C_k)|)`, exactly the baseline's §III-A retrieval step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    coreness: Vec<u32>,
    kmax: u32,
    /// Vertices sorted by (coreness, id) ascending.
    order: Vec<VertexId>,
    /// Vertices in the canonical peel order (a degeneracy ordering).
    peel_order: Vec<VertexId>,
    /// `shell_start[k]..shell_start[k + 1]` indexes the k-shell `H_k` inside
    /// `order`. Length `kmax + 2`.
    shell_start: Vec<usize>,
}

impl CoreDecomposition {
    /// Coreness `c(v)` (paper Def. 3).
    #[inline]
    pub fn coreness(&self, v: VertexId) -> u32 {
        self.coreness[v as usize]
    }

    /// The full coreness array, indexed by vertex id.
    #[inline]
    pub fn coreness_slice(&self) -> &[u32] {
        &self.coreness
    }

    /// The degeneracy `kmax`: largest `k` with a non-empty k-core.
    #[inline]
    pub fn kmax(&self) -> u32 {
        self.kmax
    }

    /// All vertices sorted by `(coreness, id)` ascending — the paper's vertex
    /// rank order (Def. 5).
    #[inline]
    pub fn vertices_by_coreness(&self) -> &[VertexId] {
        &self.order
    }

    /// The k-shell `H_k = {v | c(v) = k}` as a sorted-by-id slice.
    #[inline]
    pub fn shell(&self, k: u32) -> &[VertexId] {
        if k > self.kmax {
            return &[];
        }
        let k = k as usize;
        &self.order[self.shell_start[k]..self.shell_start[k + 1]]
    }

    /// The vertex set of the k-core set `C_k` (all vertices with coreness
    /// ≥ k), as the suffix of the rank order; `O(1)` to obtain.
    #[inline]
    pub fn core_set_vertices(&self, k: u32) -> &[VertexId] {
        if k > self.kmax {
            return &[];
        }
        &self.order[self.shell_start[k as usize]..]
    }

    /// Number of vertices in the k-core set.
    #[inline]
    pub fn core_set_size(&self, k: u32) -> usize {
        self.core_set_vertices(k).len()
    }

    /// Number of vertices in the graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.coreness.len()
    }

    /// The peeling order — a true *degeneracy ordering*: when vertex `v` is
    /// peeled, at most `c(v) ≤ kmax` of its neighbors are still unpeeled
    /// (i.e. appear later in this order). Useful for branch-and-bound
    /// algorithms such as maximum clique (paper §V-D).
    ///
    /// The order is *canonical* — defined by the graph alone, not by the
    /// peel implementation — so both [`PeelStrategy`]s reproduce it
    /// bit-identically (and v1 snapshots round-trip byte-for-byte under
    /// either strategy).
    #[inline]
    pub fn peel_ordering(&self) -> &[VertexId] {
        &self.peel_order
    }

    /// The shell boundary array: `shell_starts()[k]..shell_starts()[k + 1]`
    /// indexes the k-shell inside
    /// [`vertices_by_coreness`](Self::vertices_by_coreness). Length
    /// `kmax + 2`. Exposed for the snapshot serializer.
    #[inline]
    pub fn shell_starts(&self) -> &[usize] {
        &self.shell_start
    }

    /// Reassembles a decomposition from its persisted arrays (the snapshot
    /// deserialization hook). All structural invariants are re-checked in
    /// `O(n + kmax)`; untrusted input comes back as a descriptive error,
    /// never a panic.
    pub fn from_parts(
        coreness: Vec<u32>,
        order: Vec<VertexId>,
        peel_order: Vec<VertexId>,
        shell_start: Vec<usize>,
    ) -> Result<CoreDecomposition, String> {
        let n = coreness.len();
        if order.len() != n || peel_order.len() != n {
            return Err(format!(
                "array lengths disagree: coreness {n}, order {}, peel {}",
                order.len(),
                peel_order.len()
            ));
        }
        if shell_start.len() < 2 {
            return Err("shell_start must have length kmax + 2 >= 2".into());
        }
        let kmax = cast::u32_of(shell_start.len() - 2);
        if shell_start[0] != 0 || shell_start[shell_start.len() - 1] != n {
            return Err("shell_start must run from 0 to n".into());
        }
        if !shell_start.windows(2).all(|w| w[0] <= w[1]) {
            return Err("shell_start must be non-decreasing".into());
        }
        // `order` must be exactly the (coreness, id) sort with shells at the
        // recorded boundaries; checking per-slot membership also proves it
        // is a permutation of 0..n.
        let mut seen = vec![false; n];
        for k in 0..=kmax as usize {
            for &v in order.get(shell_start[k]..shell_start[k + 1]).unwrap_or(&[]) {
                let vu = v as usize;
                if vu >= n || seen[vu] {
                    return Err(format!("order is not a permutation at vertex {v}"));
                }
                seen[vu] = true;
                if coreness[vu] != cast::u32_of(k) {
                    return Err(format!(
                        "vertex {v} sits in shell {k} but has coreness {}",
                        coreness[vu]
                    ));
                }
            }
            let shell = &order[shell_start[k]..shell_start[k + 1]];
            if !shell.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("shell {k} is not sorted by vertex id"));
            }
        }
        let mut peeled = vec![false; n];
        for &v in &peel_order {
            let vu = v as usize;
            if vu >= n || peeled[vu] {
                return Err(format!("peel order is not a permutation at vertex {v}"));
            }
            peeled[vu] = true;
        }
        // Trim kmax down to the largest populated shell so `kmax()` agrees
        // with a freshly built decomposition.
        let kmax = coreness.iter().copied().max().unwrap_or(0);
        if (kmax as usize) + 2 != shell_start.len() {
            return Err(format!(
                "shell_start has {} entries but the largest coreness is {kmax}",
                shell_start.len()
            ));
        }
        Ok(CoreDecomposition {
            coreness,
            kmax,
            order,
            peel_order,
            shell_start,
        })
    }
}

/// Which peel implementation a decomposition runs on.
///
/// Both strategies produce bit-identical [`CoreDecomposition`]s (the
/// differential contract in `tests/peel_equivalence.rs`); they differ only
/// in cost. `Sequential` is the auditable oracle, `Parallel` the primary
/// production path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeelStrategy {
    /// The straight-line transcription of the canonical peel: per-level
    /// `O(n)` frontier rescans, direct in-place decrements. `O(n·kmax + m)`.
    Sequential,
    /// The bucket-frontier primary: lazy bucket queue for level openings
    /// (`O(n + m)` total) and parallel decrement-event generation with a
    /// deterministic chunk-order merge.
    Parallel,
}

impl PeelStrategy {
    /// The strategy an [`ExecPolicy`] selects: the parallel primary
    /// whenever the policy spawns workers, the sequential oracle otherwise.
    pub fn for_policy(policy: &ExecPolicy) -> PeelStrategy {
        if policy.is_parallel() {
            PeelStrategy::Parallel
        } else {
            PeelStrategy::Sequential
        }
    }

    /// Runs this strategy's decomposition over `g`.
    pub fn decompose<G: GraphView + Sync>(&self, g: &G, policy: &ExecPolicy) -> CoreDecomposition {
        match self {
            PeelStrategy::Sequential => core_decomposition(g),
            PeelStrategy::Parallel => par_peel(g, policy, PAR_PEEL_MIN_WORK),
        }
    }
}

/// Minimum sub-round work (sum of frontier degrees) before [`par_peel`]
/// dispatches event generation to worker threads; below it the events are
/// generated inline. Output is identical either way — the threshold only
/// gates the per-dispatch thread-spawn cost — so correctness tests force
/// the parallel path with an explicit `min_work` of 0.
const PAR_PEEL_MIN_WORK: usize = 32_768;

/// Histogram bounds for `core.frontier_size` (sub-round frontier sizes).
const FRONTIER_BOUNDS: &[u64] = &[1, 4, 16, 64, 256, 1024, 4096, 16384, 65536];

/// Per-sub-round observability: both strategies record the same canonical
/// round structure, so `phase.peel.rounds` and `core.frontier_size` are
/// strategy- and thread-count-invariant (golden-covered in
/// `tests/obs_golden.rs`).
struct PeelObs {
    rounds: bestk_obs::Counter,
    frontier_size: bestk_obs::Histogram,
}

impl PeelObs {
    fn new() -> PeelObs {
        let registry = bestk_obs::registry();
        PeelObs {
            rounds: registry.counter("phase.peel.rounds"),
            frontier_size: registry.histogram("core.frontier_size", FRONTIER_BOUNDS),
        }
    }

    #[inline]
    fn round(&self, frontier_len: usize) {
        self.rounds.inc();
        self.frontier_size.observe(frontier_len as u64);
    }
}

/// The `n == 0` decomposition both strategies short-circuit to.
fn empty_decomposition() -> CoreDecomposition {
    CoreDecomposition {
        coreness: Vec::new(),
        kmax: 0,
        order: Vec::new(),
        peel_order: Vec::new(),
        shell_start: vec![0, 0],
    }
}

/// Bin-sorts `coreness` into the (coreness, id) rank order with shell
/// boundaries (stable in id because vertices are scanned ascending) — the
/// §III-A ordering — and assembles the final decomposition.
fn assemble(coreness: Vec<u32>, kmax: u32, peel_order: Vec<VertexId>) -> CoreDecomposition {
    let n = coreness.len();
    let mut shell_start = vec![0usize; kmax as usize + 2];
    for &c in &coreness {
        shell_start[c as usize + 1] += 1;
    }
    for k in 0..=kmax as usize {
        shell_start[k + 1] += shell_start[k];
    }
    let mut order: Vec<VertexId> = vec![0; n];
    let mut cursor = shell_start.clone();
    for (v, &c) in coreness.iter().enumerate() {
        let c = c as usize;
        order[cursor[c]] = cast::vertex_id(v);
        cursor[c] += 1;
    }
    CoreDecomposition {
        coreness,
        kmax,
        order,
        peel_order,
        shell_start,
    }
}

/// Applies one degree decrement to `u` at level `k`: crossing the level
/// queues `u` for the next cascade frontier exactly once; staying above it
/// re-files `u` in the lazy bucket queue (when one is maintained). This is
/// the *shared application step* both the sequential scan and the parallel
/// chunk-order merge replay — identical event order in, identical state
/// trajectory out.
#[inline]
fn apply_decrement(
    u: VertexId,
    k: usize,
    cur: &mut [usize],
    queued: &mut [bool],
    next: &mut Vec<VertexId>,
    mut buckets: Option<&mut Vec<Vec<VertexId>>>,
) {
    let uu = u as usize;
    cur[uu] -= 1;
    if queued[uu] {
        return;
    }
    if cur[uu] <= k {
        queued[uu] = true;
        next.push(u);
    } else if let Some(buckets) = buckets.as_mut() {
        buckets[cur[uu]].push(u);
    }
}

/// The sequential oracle: runs the canonical frontier peel exactly as
/// specified in the module docs, favoring auditability over constants —
/// every level opening is a fresh `O(n)` scan for the minimum live degree,
/// and decrements are applied directly in frontier-scan order.
/// `O(n·kmax + m)` time, `O(n)` extra space.
///
/// This is the reference [`par_peel`] is differentially tested against;
/// see [`core_decomposition_with`] for the policy-dispatched entry point.
pub fn core_decomposition<G: GraphView>(g: &G) -> CoreDecomposition {
    let _span = bestk_obs::span!("phase.peel");
    let n = g.num_vertices();
    if n == 0 {
        return empty_decomposition();
    }
    let obs = PeelObs::new();
    let mut cur: Vec<usize> = (0..n).map(|v| g.degree(cast::vertex_id(v))).collect();
    // `queued`: scheduled for peeling (frontier membership is permanent);
    // `peeled`: actually removed from the graph — the two differ only for
    // vertices sitting in the not-yet-processed cascade frontier.
    let mut queued = vec![false; n];
    let mut peeled = vec![false; n];
    let mut coreness = vec![0u32; n];
    let mut peel_order: Vec<VertexId> = Vec::with_capacity(n);
    let mut kmax = 0u32;
    let mut remaining = n;
    let mut frontier: Vec<VertexId> = Vec::new();
    let mut next: Vec<VertexId> = Vec::new();
    while remaining > 0 {
        // Open the next level: the minimum current degree over live
        // vertices, frontier collected ascending by id in the same scan.
        let mut k = usize::MAX;
        frontier.clear();
        for v in 0..n {
            if queued[v] {
                continue;
            }
            if cur[v] < k {
                k = cur[v];
                frontier.clear();
            }
            if cur[v] == k {
                frontier.push(cast::vertex_id(v));
            }
        }
        for &v in &frontier {
            queued[v as usize] = true;
        }
        let level = cast::u32_of(k);
        kmax = level; // levels open in strictly increasing order
        while !frontier.is_empty() {
            obs.round(frontier.len());
            remaining -= frontier.len();
            // Simultaneous removal: the whole frontier leaves the graph
            // before any decrement is generated, so edges internal to the
            // frontier never decrement anybody.
            for &v in &frontier {
                peeled[v as usize] = true;
                coreness[v as usize] = level;
                peel_order.push(v);
            }
            next.clear();
            for &v in &frontier {
                for u in g.neighbors(v) {
                    if !peeled[u as usize] {
                        apply_decrement(u, k, &mut cur, &mut queued, &mut next, None);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
    }
    assemble(coreness, kmax, peel_order)
}

/// [`core_decomposition`] under an execution policy: dispatches to the
/// [`PeelStrategy`] the policy selects. The primary entry point for every
/// engine build/rebuild/compaction and CLI path; output is bit-identical
/// to the sequential oracle at every thread count.
pub fn core_decomposition_with<G: GraphView + Sync>(
    g: &G,
    policy: &ExecPolicy,
) -> CoreDecomposition {
    PeelStrategy::for_policy(policy).decompose(g, policy)
}

/// The parallel primary: bucket-frontier peeling.
///
/// Level openings come from a *lazy bucket queue* — every vertex always has
/// an entry filed under its current degree (stale higher entries are
/// skipped on drain), so advancing the level pointer is `O(n + m)` over the
/// whole run instead of the oracle's per-level rescan. Opening frontiers
/// are sorted ascending by id to match the canonical order; cascade
/// frontiers need no sort because the decrement *events* are already
/// replayed in the oracle's scan order.
///
/// Each sub-round with at least `min_work` total frontier degree generates
/// its decrement events on [`ExecPolicy::for_each_disjoint`]: the frontier
/// is chunked by cumulative degree, each chunk writes the live-neighbor
/// events of its contiguous frontier slice into a private count-prefixed
/// region, and the regions are then applied in chunk order. Concatenating
/// contiguous chunks in chunk order *is* the frontier-scan order, so the
/// merged event stream — and with it every `cur`/bucket/frontier
/// trajectory — is identical to the sequential oracle's.
///
/// `min_work` gates the per-dispatch thread-spawn cost; pass 0 to force
/// every sub-round through the parallel machinery (what the differential
/// tests do on small graphs).
pub fn par_peel<G: GraphView + Sync>(
    g: &G,
    policy: &ExecPolicy,
    min_work: usize,
) -> CoreDecomposition {
    let _span = bestk_obs::span!("phase.peel");
    let n = g.num_vertices();
    if n == 0 {
        return empty_decomposition();
    }
    let obs = PeelObs::new();
    let mut cur: Vec<usize> = (0..n).map(|v| g.degree(cast::vertex_id(v))).collect();
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); g.max_degree() + 1];
    for v in 0..n {
        buckets[cur[v]].push(cast::vertex_id(v));
    }
    let mut queued = vec![false; n];
    let mut peeled = vec![false; n];
    let mut coreness = vec![0u32; n];
    let mut peel_order: Vec<VertexId> = Vec::with_capacity(n);
    let mut kmax = 0u32;
    let mut remaining = n;
    let mut frontier: Vec<VertexId> = Vec::new();
    let mut next: Vec<VertexId> = Vec::new();
    // Reused event buffer: one count-prefixed region per chunk per
    // dispatched sub-round.
    let mut events: Vec<VertexId> = Vec::new();
    let mut k = 0usize;
    while remaining > 0 {
        // Advance the level pointer over the lazy bucket queue. An entry
        // is live iff its vertex still has exactly this degree and was
        // never scheduled; every live vertex has a live entry, so the
        // first non-empty drain is exactly the oracle's opening frontier.
        frontier.clear();
        while frontier.is_empty() {
            let bucket = std::mem::take(&mut buckets[k]);
            for v in bucket {
                let vu = v as usize;
                if !queued[vu] && cur[vu] == k {
                    frontier.push(v);
                }
            }
            if frontier.is_empty() {
                k += 1;
            }
        }
        frontier.sort_unstable(); // canonical: openings ascend by id
        for &v in &frontier {
            queued[v as usize] = true;
        }
        let level = cast::u32_of(k);
        kmax = level;
        while !frontier.is_empty() {
            obs.round(frontier.len());
            remaining -= frontier.len();
            for &v in &frontier {
                peeled[v as usize] = true;
                coreness[v as usize] = level;
                peel_order.push(v);
            }
            next.clear();
            let prefix = prefix_sum(frontier.iter().map(|&v| g.degree(v)));
            let work = prefix[frontier.len()];
            if policy.is_parallel() && work >= min_work.max(1) {
                let plan = policy.plan_weighted(&prefix);
                let chunks = plan.num_chunks();
                // Region `c` holds chunk `c`'s events behind one count
                // slot: `cuts` shifts each degree-balanced boundary right
                // by its chunk index to make room.
                let cuts: Vec<usize> = plan
                    .bounds()
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| prefix[b] + i)
                    .collect();
                events.clear();
                events.resize(work + chunks, 0);
                let frontier_ref = &frontier;
                let peeled_ref = &peeled;
                policy.for_each_disjoint(
                    &plan,
                    &mut events,
                    &cuts,
                    || (),
                    |_, _, items, region| {
                        let mut count = 0usize;
                        for i in items {
                            for u in g.neighbors(frontier_ref[i]) {
                                if !peeled_ref[u as usize] {
                                    count += 1;
                                    region[count] = u;
                                }
                            }
                        }
                        region[0] = cast::u32_of(count);
                    },
                );
                // Deterministic ordered merge: applying the regions in
                // chunk order replays the sequential decrement order.
                for c in 0..chunks {
                    let region = &events[cuts[c]..cuts[c + 1]];
                    let count = region[0] as usize;
                    for &u in &region[1..=count] {
                        apply_decrement(u, k, &mut cur, &mut queued, &mut next, Some(&mut buckets));
                    }
                }
            } else {
                for &v in &frontier {
                    for u in g.neighbors(v) {
                        if !peeled[u as usize] {
                            apply_decrement(
                                u,
                                k,
                                &mut cur,
                                &mut queued,
                                &mut next,
                                Some(&mut buckets),
                            );
                        }
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
    }
    assemble(coreness, kmax, peel_order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_graph::generators::{self, regular};
    use bestk_graph::GraphBuilder;

    #[test]
    fn paper_figure2_coreness() {
        // Example 2: v5, v6, v7, v8 have coreness 2; the rest coreness 3.
        let g = generators::paper_figure2();
        let d = core_decomposition(&g);
        assert_eq!(d.kmax(), 3);
        for v in [4u32, 5, 6, 7] {
            assert_eq!(d.coreness(v), 2, "v{}", v + 1);
        }
        for v in [0u32, 1, 2, 3, 8, 9, 10, 11] {
            assert_eq!(d.coreness(v), 3, "v{}", v + 1);
        }
    }

    #[test]
    fn paper_figure2_shells_and_core_sets() {
        let g = generators::paper_figure2();
        let d = core_decomposition(&g);
        assert_eq!(d.shell(2), &[4, 5, 6, 7]);
        assert_eq!(d.shell(3), &[0, 1, 2, 3, 8, 9, 10, 11]);
        assert!(d.shell(0).is_empty());
        assert!(d.shell(1).is_empty());
        assert!(d.shell(4).is_empty());
        assert_eq!(d.core_set_size(3), 8);
        assert_eq!(d.core_set_size(2), 12);
        assert_eq!(d.core_set_size(0), 12);
        assert!(d.core_set_vertices(4).is_empty());
        assert!(d.core_set_vertices(99).is_empty());
    }

    #[test]
    fn complete_graph_coreness() {
        let g = regular::complete(7);
        let d = core_decomposition(&g);
        assert_eq!(d.kmax(), 6);
        assert!(g.vertices().all(|v| d.coreness(v) == 6));
    }

    #[test]
    fn cycle_and_path_and_star() {
        let d = core_decomposition(&regular::cycle(10));
        assert_eq!(d.kmax(), 2);
        assert!((0..10).all(|v| d.coreness(v) == 2));

        let d = core_decomposition(&regular::path(10));
        assert_eq!(d.kmax(), 1);

        let d = core_decomposition(&regular::star(9));
        assert_eq!(d.kmax(), 1);
        assert!((0..10).all(|v| d.coreness(v) == 1));
    }

    #[test]
    fn isolated_vertices_have_coreness_zero() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.reserve_vertices(4);
        let d = core_decomposition(&b.build());
        assert_eq!(d.coreness(0), 1);
        assert_eq!(d.coreness(2), 0);
        assert_eq!(d.coreness(3), 0);
        assert_eq!(d.shell(0), &[2, 3]);
        assert_eq!(d.kmax(), 1);
    }

    #[test]
    fn empty_graph() {
        let d = core_decomposition(&bestk_graph::CsrGraph::empty(0));
        assert_eq!(d.kmax(), 0);
        assert_eq!(d.num_vertices(), 0);
        assert!(d.core_set_vertices(0).is_empty());
    }

    #[test]
    fn clique_chain_coreness() {
        let g = regular::clique_chain(3, 5);
        let d = core_decomposition(&g);
        assert_eq!(d.kmax(), 4);
        assert!(g.vertices().all(|v| d.coreness(v) == 4));
    }

    #[test]
    fn order_is_sorted_by_coreness_then_id() {
        let g = generators::erdos_renyi_gnm(300, 1200, 3);
        let d = core_decomposition(&g);
        let order = d.vertices_by_coreness();
        assert_eq!(order.len(), 300);
        for w in order.windows(2) {
            let (a, b) = (w[0], w[1]);
            let key = |v: u32| (d.coreness(v), v);
            assert!(
                key(a) < key(b),
                "order not strictly sorted by (coreness, id)"
            );
        }
    }

    #[test]
    fn canonical_peel_order_on_fixed_shapes() {
        // A cycle is one simultaneous level-2 frontier: ascending by id.
        let d = core_decomposition(&regular::cycle(6));
        assert_eq!(d.peel_ordering(), &[0, 1, 2, 3, 4, 5]);

        // A star peels all leaves in one level-1 opening, then the hub
        // cascades (its degree collapses past the level).
        let d = core_decomposition(&regular::star(4));
        assert_eq!(d.peel_ordering(), &[1, 2, 3, 4, 0]);

        // A path peels both endpoints, then cascades inward pairwise from
        // the ends, in decrement (= frontier-scan) order.
        let d = core_decomposition(&regular::path(6));
        assert_eq!(d.peel_ordering(), &[0, 5, 1, 4, 2, 3]);
    }

    #[test]
    fn par_peel_is_bit_identical_to_the_oracle() {
        // The unit-level differential smoke; the full sweep (adversarial
        // shapes, snapshot bytes, tags) lives in tests/peel_equivalence.rs.
        for seed in 0..4 {
            let g = generators::erdos_renyi_gnm(120, 400, seed);
            let want = core_decomposition(&g);
            for threads in [1, 2, 4, 7] {
                let policy = ExecPolicy::with_threads(threads).unwrap();
                let got = par_peel(&g, &policy, 0);
                assert_eq!(got, want, "seed {seed}, {threads} threads");
            }
        }
    }

    #[test]
    fn strategy_dispatch_follows_the_policy() {
        assert_eq!(
            PeelStrategy::for_policy(&ExecPolicy::Sequential),
            PeelStrategy::Sequential
        );
        let par = ExecPolicy::with_threads(3).unwrap();
        assert_eq!(PeelStrategy::for_policy(&par), PeelStrategy::Parallel);
        // And the policy entry point agrees with the oracle either way.
        let g = generators::erdos_renyi_gnm(80, 240, 9);
        let want = core_decomposition(&g);
        assert_eq!(core_decomposition_with(&g, &ExecPolicy::Sequential), want);
        assert_eq!(core_decomposition_with(&g, &par), want);
    }

    #[test]
    fn peel_obs_rounds_are_strategy_invariant() {
        use std::sync::Arc;
        let g = generators::erdos_renyi_gnm(100, 300, 5);
        let clock = || Arc::new(bestk_obs::ManualClock::with_step(1)) as Arc<dyn bestk_obs::Clock>;
        let ((), seq) = bestk_obs::with_fresh(clock(), || {
            core_decomposition(&g);
        });
        let policy = ExecPolicy::with_threads(4).unwrap();
        let ((), par) = bestk_obs::with_fresh(clock(), || {
            par_peel(&g, &policy, 0);
        });
        let rounds = seq.counter("phase.peel.rounds");
        assert!(rounds.is_some_and(|r| r > 0), "rounds must be recorded");
        assert_eq!(rounds, par.counter("phase.peel.rounds"));
        assert_eq!(
            seq.histogram("core.frontier_size"),
            par.histogram("core.frontier_size"),
            "frontier-size histogram must be strategy-invariant"
        );
    }

    /// Definitional check: c(v) ≥ k iff v survives peeling to min degree k.
    fn naive_coreness(g: &bestk_graph::CsrGraph) -> Vec<u32> {
        let n = g.num_vertices();
        let mut coreness = vec![0u32; n];
        let mut alive = vec![true; n];
        for k in 1..=n as u32 {
            // Peel vertices with degree < k among alive ones.
            loop {
                let mut removed = false;
                for v in 0..n {
                    if alive[v] {
                        let deg = g
                            .neighbors(v as VertexId)
                            .iter()
                            .filter(|&&u| alive[u as usize])
                            .count();
                        if (deg as u32) < k {
                            alive[v] = false;
                            removed = true;
                        }
                    }
                }
                if !removed {
                    break;
                }
            }
            for v in 0..n {
                if alive[v] {
                    coreness[v] = k;
                }
            }
            if alive.iter().all(|&a| !a) {
                break;
            }
        }
        coreness
    }

    #[test]
    fn matches_naive_peeling_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::erdos_renyi_gnm(60, 150, seed);
            let d = core_decomposition(&g);
            assert_eq!(d.coreness_slice(), &naive_coreness(&g)[..], "seed {seed}");
        }
    }

    #[test]
    fn peel_ordering_is_a_degeneracy_ordering() {
        for (name, g) in [
            ("cl", generators::chung_lu_power_law(400, 8.0, 2.4, 10)),
            ("er", generators::erdos_renyi_gnm(300, 1500, 4)),
        ] {
            let d = core_decomposition(&g);
            let peel = d.peel_ordering();
            assert_eq!(peel.len(), g.num_vertices());
            let mut position = vec![0usize; g.num_vertices()];
            for (i, &v) in peel.iter().enumerate() {
                position[v as usize] = i;
            }
            for v in g.vertices() {
                let later = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| position[u as usize] > position[v as usize])
                    .count();
                assert!(
                    later <= d.kmax() as usize,
                    "{name}: vertex {v} has {later} later neighbors > kmax {}",
                    d.kmax()
                );
            }
        }
    }

    #[test]
    fn later_rank_neighbors_have_geq_coreness() {
        // In the (coreness, id) rank order, every neighbor appearing later
        // than v has coreness >= c(v) — the property Algorithm 3's triangle
        // attribution relies on.
        let g = generators::chung_lu_power_law(500, 8.0, 2.4, 10);
        let d = core_decomposition(&g);
        let mut position = vec![0usize; g.num_vertices()];
        for (i, &v) in d.vertices_by_coreness().iter().enumerate() {
            position[v as usize] = i;
        }
        for v in g.vertices() {
            for &u in g.neighbors(v) {
                if position[u as usize] > position[v as usize] {
                    assert!(d.coreness(u) >= d.coreness(v));
                }
            }
        }
    }
}
