//! # bestk-apps
//!
//! Applications of best-k core decomposition (paper §V-D): three NP-hard
//! problems where the per-core profiles computed by `bestk-core` serve as a
//! fast approximation or a search-space pruner.
//!
//! * [`densest`] — densest subgraph: the paper's `Opt-D` (best single
//!   k-core by average degree, ½-approximate) versus a `CoreApp`-style
//!   comparator, Charikar peeling, and an exact flow-based oracle.
//! * [`clique`] — exact maximum clique over the degeneracy ordering, used to
//!   check the paper's `MC ⊆ S*` observation (Table VIII).
//! * [`sizecore`] — `Opt-SC` for size-constrained k-core queries
//!   (Table IX).
//! * [`flow`] — Dinic max-flow, the substrate for the exact densest-subgraph
//!   oracle.
//! * [`spreaders`] — influential-spreader identification by k-shell
//!   (Kitsak et al.) with an SIR simulation substrate to measure it.
//! * [`community`] — community search: the max-min-degree community of a
//!   query vertex (Sozio–Gionis) and its best-scored generalization.
//! * [`coloring`] — smallest-last greedy coloring with the degeneracy+1
//!   bound (Matula & Beck, the paper's reference 42).
//! * [`anomaly`] — CoreScope-style mirror-pattern anomaly scores (the
//!   paper's reference 53).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod anomaly;
pub mod clique;
pub mod coloring;
pub mod community;
pub mod densest;
pub mod flow;
pub mod sizecore;
pub mod spreaders;

pub use anomaly::{mirror_anomaly_scores, MirrorAnomalies};
pub use clique::{contains_clique, maximum_clique};
pub use coloring::{smallest_last_coloring, Coloring};
pub use community::{best_scored_community, max_min_degree_community, Community};
pub use densest::{charikar_peeling, core_app, goldberg_exact, opt_d, DenseSubgraph};
pub use flow::FlowNetwork;
pub use sizecore::{opt_sc, SizeConstrainedCore};
pub use spreaders::{compare_heuristics, rank_by_coreness, rank_by_degree, sir_spread};
