//! Size-constrained k-core queries (paper §V-D, Table IX).
//!
//! Given an integer `k`, a target size `h`, and a query vertex `q`, find a
//! connected subgraph of ~`h` vertices containing `q` in which every vertex
//! has degree ≥ `k` (the SCK query; NP-hard in general).
//!
//! `Opt-SC` is the paper's heuristic: among all cores containing `q` — the
//! ancestor chain of `q`'s forest node — pick the one with the highest
//! average degree whose level is ≥ `k` and size is ≥ `h` (all read off the
//! precomputed per-core profile in `O(depth)`), then greedily peel it down
//! toward `h` vertices: repeatedly delete the minimum-degree vertex (never
//! `q`), cascading deletions of vertices whose degree drops below `k`.

use bestk_core::{BestKAnalysis, Metric};
use bestk_graph::cast;
use bestk_graph::connectivity::bfs_restricted;
use bestk_graph::{GraphView, VertexId};

/// The result of an Opt-SC query.
#[derive(Debug, Clone)]
pub struct SizeConstrainedCore {
    /// The surviving vertex set after peeling (always contains the query
    /// vertex — peeling skips it). Like the paper's heuristic output it is
    /// *approximately* a k-core: non-query vertices keep degree ≥ `k`
    /// inside it while anything remains to peel, but it may be disconnected
    /// and the query vertex's own degree may fall below `k`. Use
    /// [`query_component`](Self::query_component) for the connected
    /// refinement around the query vertex.
    pub vertices: Vec<VertexId>,
    /// The `k'` of the core the peeling started from.
    pub source_core_k: u32,
    /// The query vertex.
    pub query: VertexId,
}

impl SizeConstrainedCore {
    /// The paper's hit criterion: within `tolerance` (e.g. `0.05`) relative
    /// size deviation from the target `h` (the result contains the query
    /// vertex by construction).
    pub fn hits(&self, h: usize, tolerance: f64) -> bool {
        let dev = (self.vertices.len() as f64 - h as f64).abs() / h as f64;
        dev <= tolerance
    }

    /// The connected component of the query vertex within the survivor set.
    pub fn query_component(&self, g: &impl GraphView) -> Vec<VertexId> {
        let mut inside = vec![false; g.num_vertices()];
        for &v in &self.vertices {
            inside[v as usize] = true;
        }
        bfs_restricted(g, self.query, |v| inside[v as usize])
    }
}

/// Runs `Opt-SC`. Returns `None` when no core containing `q` satisfies
/// `k' ≥ k` and `|V| ≥ h` (e.g. `c(q) < k`, or `h` larger than every
/// enclosing core).
pub fn opt_sc<G: GraphView>(
    g: &G,
    analysis: &BestKAnalysis,
    k: u32,
    h: usize,
    q: VertexId,
) -> Option<SizeConstrainedCore> {
    assert!(h >= 1, "target size must be positive");
    let forest = analysis.forest();
    let profile = analysis.core_profile();
    if g.num_vertices() == 0 {
        return None;
    }

    // Step 1: best candidate core on q's ancestor chain.
    let scores = profile.scores(&Metric::AverageDegree);
    let mut best: Option<(u32, f64)> = None;
    for node in forest.ancestors(forest.node_of(q)) {
        let level = forest.node(node).coreness;
        let size = profile.primaries[node as usize].num_vertices as usize;
        if level >= k && size >= h {
            let s = scores[node as usize];
            if s.is_finite() && best.is_none_or(|(_, bs)| s > bs) {
                best = Some((node, s));
            }
        }
    }
    let (start_node, _) = best?;
    let source_core_k = forest.node(start_node).coreness;
    let members = forest.core_vertices(start_node);

    // Step 2: peel toward h.
    let vertices = peel_to_size(g, &members, k, h, q);
    Some(SizeConstrainedCore {
        vertices,
        source_core_k,
        query: q,
    })
}

/// Greedy peel of `members` down toward `h`, protecting `q` and keeping the
/// min-degree-≥-k invariant by cascade deletion; returns the survivor set
/// (paper semantics: the whole peeled residue, not just `q`'s component).
/// `O(|members| + Σ deg)` via a lazy bucket queue.
fn peel_to_size<G: GraphView>(
    g: &G,
    members: &[VertexId],
    k: u32,
    h: usize,
    q: VertexId,
) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut inside = vec![false; n];
    for &v in members {
        inside[v as usize] = true;
    }
    let mut degree = vec![0u32; n];
    let mut max_deg = 0u32;
    for &v in members {
        let d = cast::u32_of(g.neighbors(v).filter(|&u| inside[u as usize]).count());
        // bestk-analyze: allow(no-raw-peel) — Opt-SC maintains subgraph degrees for its own size-bounded deletion order
        degree[v as usize] = d;
        max_deg = max_deg.max(d);
    }
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg as usize + 1];
    for &v in members {
        buckets[degree[v as usize] as usize].push(v);
    }
    let mut remaining = members.len();
    let mut cur_min = 0usize;
    // Cascade queue of forced deletions (degree < k).
    let mut forced: Vec<VertexId> = Vec::new();
    // One *step* per iteration (paper wording): remove the minimum-degree
    // vertex (never q), then drain the whole < k cascade — even past the
    // size target — so the residue always satisfies the degree invariant
    // for every non-query vertex. The size check runs between steps.
    'outer: while remaining > h {
        // Voluntary deletion: current minimum-degree vertex, skipping q.
        let v = loop {
            while cur_min < buckets.len() && buckets[cur_min].is_empty() {
                cur_min += 1;
            }
            if cur_min >= buckets.len() {
                break 'outer; // only q left deletable
            }
            // bestk-analyze: allow(no-raw-peel) — Opt-SC's min-degree deletion is a different algorithm than the coreness peel
            let Some(cand) = buckets[cur_min].pop() else {
                continue;
            };
            if inside[cand as usize] && degree[cand as usize] as usize == cur_min {
                if cand == q {
                    // Defer q: re-push and try the next entry; if q is the
                    // only remaining vertex at the minimum we must stop to
                    // avoid spinning.
                    let others: Vec<VertexId> = buckets[cur_min]
                        .iter()
                        .copied()
                        .filter(|&u| {
                            u != q && inside[u as usize] && degree[u as usize] as usize == cur_min
                        })
                        .collect();
                    buckets[cur_min].push(cand);
                    match others.last() {
                        Some(&u) => break u,
                        None => {
                            cur_min += 1;
                            continue;
                        }
                    }
                }
                break cand;
            }
        };
        if !inside[v as usize] {
            continue;
        }
        remove(
            g,
            v,
            &mut inside,
            &mut degree,
            &mut buckets,
            &mut forced,
            k,
            &mut cur_min,
        );
        remaining -= 1;
        // Complete the step's cascade ("and the vertices with degree less
        // than k"), regardless of the size target.
        while let Some(u) = forced.pop() {
            if !inside[u as usize] || u == q {
                // The query vertex is never deleted ("skip v"), even when
                // its degree falls below k; it simply stays in the residue.
                continue;
            }
            remove(
                g,
                u,
                &mut inside,
                &mut degree,
                &mut buckets,
                &mut forced,
                k,
                &mut cur_min,
            );
            remaining -= 1;
        }
    }
    members
        .iter()
        .copied()
        .filter(|&v| inside[v as usize])
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn remove<G: GraphView>(
    g: &G,
    v: VertexId,
    inside: &mut [bool],
    degree: &mut [u32],
    buckets: &mut [Vec<VertexId>],
    forced: &mut Vec<VertexId>,
    k: u32,
    cur_min: &mut usize,
) {
    inside[v as usize] = false;
    for u in g.neighbors(v) {
        if inside[u as usize] {
            let du = degree[u as usize] - 1;
            // bestk-analyze: allow(no-raw-peel) — Opt-SC deletion cascade updates its own subgraph degrees
            degree[u as usize] = du;
            buckets[du as usize].push(u);
            *cur_min = (*cur_min).min(du as usize);
            if du < k {
                forced.push(u);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_core::analyze_basic;
    use bestk_graph::generators::{self, regular};

    #[test]
    fn query_inside_large_clique() {
        // K20: ask for a 10-vertex 5-core around vertex 0.
        let g = regular::complete(20);
        let a = analyze_basic(&g);
        let res = opt_sc(&g, &a, 5, 10, 0).expect("query should succeed");
        assert!(res.vertices.contains(&0));
        assert!(res.hits(10, 0.05), "got {} vertices", res.vertices.len());
        // Every returned vertex keeps degree >= 5 inside the answer.
        let set: std::collections::HashSet<_> = res.vertices.iter().copied().collect();
        for &v in &res.vertices {
            let deg = g.neighbors(v).iter().filter(|u| set.contains(u)).count();
            assert!(deg >= 5, "vertex {v} has degree {deg}");
        }
    }

    #[test]
    fn infeasible_when_core_too_small() {
        let g = regular::complete(6); // 5-core of 6 vertices
        let a = analyze_basic(&g);
        assert!(
            opt_sc(&g, &a, 3, 100, 0).is_none(),
            "h larger than any core"
        );
        assert!(opt_sc(&g, &a, 9, 3, 0).is_none(), "k above kmax");
    }

    #[test]
    fn low_coreness_query_vertex() {
        // Pendant vertex attached to a K6: coreness 1, so no 3-core
        // contains it.
        let mut b = bestk_graph::GraphBuilder::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(0, 6);
        let g = b.build();
        let a = analyze_basic(&g);
        assert!(opt_sc(&g, &a, 3, 4, 6).is_none());
        // But the K6 members work.
        let res = opt_sc(&g, &a, 3, 5, 1).unwrap();
        assert!(res.vertices.contains(&1));
    }

    #[test]
    fn exact_core_size_needs_no_peeling() {
        let g = regular::complete(8);
        let a = analyze_basic(&g);
        let res = opt_sc(&g, &a, 4, 8, 2).unwrap();
        assert_eq!(res.vertices.len(), 8);
        assert_eq!(res.source_core_k, 7);
    }

    #[test]
    fn answer_contains_q_and_component_is_connected() {
        let g = generators::chung_lu_power_law(2000, 10.0, 2.3, 77);
        let a = analyze_basic(&g);
        let d = a.decomposition();
        let mut tested = 0;
        for q in g.vertices() {
            if d.coreness(q) >= 5 && tested < 20 {
                if let Some(res) = opt_sc(&g, &a, 4, 30, q) {
                    tested += 1;
                    assert!(res.vertices.contains(&q), "q={q}");
                    let comp = res.query_component(&g);
                    assert!(comp.contains(&q));
                    assert!(comp.len() <= res.vertices.len());
                    // Non-query survivors keep degree >= k inside the
                    // survivor set.
                    let set: std::collections::HashSet<_> = res.vertices.iter().copied().collect();
                    for &v in &res.vertices {
                        if v == q {
                            continue;
                        }
                        let deg = g.neighbors(v).iter().filter(|u| set.contains(u)).count();
                        assert!(deg >= 4, "vertex {v} has degree {deg} < k");
                    }
                }
            }
        }
        assert!(tested > 0, "no feasible queries found");
    }

    #[test]
    fn hit_rate_reasonable_on_planted_communities() {
        let pp = generators::planted_partition(&[200, 200, 200], 0.12, 0.002, 5);
        let g = &pp.graph;
        let a = analyze_basic(g);
        let d = a.decomposition();
        let k = 8u32;
        let h = 60usize;
        let (mut hits, mut total) = (0usize, 0usize);
        for q in g.vertices() {
            if d.coreness(q) > k + 4 {
                if let Some(res) = opt_sc(g, &a, k, h, q) {
                    total += 1;
                    if res.hits(h, 0.05) {
                        hits += 1;
                    }
                }
            }
            if total >= 30 {
                break;
            }
        }
        assert!(total >= 10, "expected feasible queries, got {total}");
        // The paper reports >90% hit rates when c(q) clearly exceeds k; we
        // only require a sane majority on the synthetic stand-in.
        assert!(hits * 2 >= total, "hit rate too low: {hits}/{total}");
    }
}
