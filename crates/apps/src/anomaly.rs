//! Core-based anomaly detection (CoreScope — the paper's reference 53).
//!
//! Shin, Eliassi-Rad & Faloutsos observe the **mirror pattern**: in real
//! graphs a vertex's coreness tracks its degree closely (`log c(v)` is
//! almost linear in `log d(v)`), and vertices that break the pattern are
//! structurally anomalous — e.g. a "loner star" hub whose neighbors are all
//! periphery (huge degree, tiny coreness, the fingerprint of fake-follower
//! accounts), or a small dense block lifting coreness above its degree
//! trend.
//!
//! [`mirror_anomaly_scores`] fits the log-log trend by least squares and
//! scores every vertex by its absolute residual, exactly CoreScope's
//! "Core-A" idea.

use bestk_core::CoreDecomposition;
use bestk_graph::cast;
use bestk_graph::{GraphView, VertexId};

/// Result of a mirror-pattern anomaly analysis.
#[derive(Debug, Clone)]
pub struct MirrorAnomalies {
    /// `score[v]` = |residual| of vertex `v` in the log-log fit (0 for
    /// isolated vertices, which are excluded from the fit).
    pub score: Vec<f64>,
    /// Fitted slope of `ln(coreness)` on `ln(degree)`.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Pearson correlation of the log-log pair over non-isolated vertices
    /// (close to 1 on "normal" graphs — the mirror pattern itself).
    pub correlation: f64,
}

impl MirrorAnomalies {
    /// Vertices ranked most-anomalous first (ties by id).
    pub fn ranked(&self) -> Vec<VertexId> {
        let mut order: Vec<VertexId> = (0..cast::vertex_id(self.score.len())).collect();
        order.sort_by(|&a, &b| {
            self.score[b as usize]
                .total_cmp(&self.score[a as usize])
                .then(a.cmp(&b))
        });
        order
    }
}

/// Fits the mirror pattern and scores deviations; `O(n)` after the
/// decomposition.
pub fn mirror_anomaly_scores<G: GraphView>(g: &G, d: &CoreDecomposition) -> MirrorAnomalies {
    let n = g.num_vertices();
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for v in g.vertices() {
        let deg = g.degree(v);
        if deg > 0 {
            xs.push((deg as f64).ln());
            ys.push((d.coreness(v) as f64).max(1.0).ln());
        }
    }
    let m = xs.len() as f64;
    let (slope, intercept, correlation) = if xs.len() < 2 {
        (0.0, 0.0, 0.0)
    } else {
        // bestk-analyze: allow(float-reduce) — sequential in-order slice sum
        let mean_x = xs.iter().sum::<f64>() / m;
        // bestk-analyze: allow(float-reduce) — sequential in-order slice sum
        let mean_y = ys.iter().sum::<f64>() / m;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        let mut sxy = 0.0;
        for (&x, &y) in xs.iter().zip(&ys) {
            sxx += (x - mean_x) * (x - mean_x);
            syy += (y - mean_y) * (y - mean_y);
            sxy += (x - mean_x) * (y - mean_y);
        }
        let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
        let intercept = mean_y - slope * mean_x;
        let corr = if sxx > 0.0 && syy > 0.0 {
            sxy / (sxx * syy).sqrt()
        } else {
            0.0
        };
        (slope, intercept, corr)
    };
    let mut score = vec![0.0f64; n];
    for v in g.vertices() {
        let deg = g.degree(v);
        if deg > 0 {
            let x = (deg as f64).ln();
            let y = (d.coreness(v) as f64).max(1.0).ln();
            score[v as usize] = (y - (slope * x + intercept)).abs();
        }
    }
    MirrorAnomalies {
        score,
        slope,
        intercept,
        correlation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_core::core_decomposition;
    use bestk_graph::generators;
    use bestk_graph::{CsrGraph, GraphBuilder};

    #[test]
    fn loner_star_hub_is_most_anomalous() {
        // Power-law background plus a hub whose 300 neighbors are all
        // fresh periphery vertices: degree 300+, coreness 1.
        let base = generators::chung_lu_power_law(3_000, 8.0, 2.4, 6);
        let n = base.num_vertices() as u32;
        let mut b = GraphBuilder::new();
        b.extend_edges(base.edges());
        let hub = n;
        for leaf in 0..300u32 {
            b.add_edge(hub, n + 1 + leaf);
        }
        let g = b.build();
        let d = core_decomposition(&g);
        let a = mirror_anomaly_scores(&g, &d);
        assert_eq!(a.ranked()[0], hub, "the loner star must rank first");
        assert!(a.slope > 0.0, "mirror pattern: coreness grows with degree");
        assert!(a.correlation > 0.5, "correlation {}", a.correlation);
    }

    #[test]
    fn homogeneous_graph_has_low_scores() {
        // A regular-ish graph: everyone on the trend line.
        let g = bestk_graph::generators::regular::grid(20, 20);
        let d = core_decomposition(&g);
        let a = mirror_anomaly_scores(&g, &d);
        let max = a.score.iter().cloned().fold(0.0, f64::max);
        assert!(max < 1.0, "max residual {max}");
    }

    #[test]
    fn degenerate_inputs() {
        let g = CsrGraph::empty(3);
        let d = core_decomposition(&g);
        let a = mirror_anomaly_scores(&g, &d);
        assert!(a.score.iter().all(|&s| s == 0.0));
        assert_eq!(a.correlation, 0.0);
        assert_eq!(a.ranked().len(), 3);
        // Single edge.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        let g = b.build();
        let d = core_decomposition(&g);
        let a = mirror_anomaly_scores(&g, &d);
        assert!(a.score.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn scores_are_deterministic_and_finite() {
        let g = generators::rmat(10, 8, 0.57, 0.19, 0.19, 3);
        let d = core_decomposition(&g);
        let a1 = mirror_anomaly_scores(&g, &d);
        let a2 = mirror_anomaly_scores(&g, &d);
        assert_eq!(a1.ranked(), a2.ranked());
        assert!(a1.score.iter().all(|s| s.is_finite()));
    }
}
