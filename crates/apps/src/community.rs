//! Community search: the best community containing a query vertex.
//!
//! The paper's related work highlights community *search* as a major k-core
//! application (references 15, 16, 25, 28, 38, 39): given a query vertex,
//! return a cohesive subgraph containing it. Two classic formulations, both
//! answered in `O(depth)` from the precomputed per-core profiles:
//!
//! * [`max_min_degree_community`] — Sozio & Gionis' "cocktail party"
//!   objective: the connected subgraph containing `q` maximizing the
//!   minimum degree. The answer is exactly the innermost core containing
//!   `q` (the forest node of `q`'s coreness level).
//! * [`best_scored_community`] — the best-k twist this workspace enables:
//!   among all cores containing `q` (its ancestor chain), return the one a
//!   community metric scores highest — "the best community around q"
//!   instead of "the globally best community".

use bestk_core::{BestKAnalysis, CommunityMetric};
use bestk_graph::{GraphView, VertexId};

/// A community-search answer.
#[derive(Debug, Clone)]
pub struct Community {
    /// Vertices of the community (sorted ascending).
    pub vertices: Vec<VertexId>,
    /// The core level `k` the community came from.
    pub k: u32,
    /// The metric score ([`f64::NAN`] for the min-degree objective, which
    /// reports `k` itself).
    pub score: f64,
}

/// The maximal-min-degree community of `q` (Sozio–Gionis): the
/// `c(q)`-core containing `q`. Every vertex has degree ≥ `c(q)` inside it,
/// and no connected subgraph containing `q` does better.
pub fn max_min_degree_community(analysis: &BestKAnalysis, q: VertexId) -> Community {
    let forest = analysis.forest();
    let node = forest.node_of(q);
    let mut vertices = forest.core_vertices(node);
    vertices.sort_unstable();
    Community {
        vertices,
        k: forest.node(node).coreness,
        score: f64::NAN,
    }
}

/// The best-scoring community containing `q` under `metric`, drawn from
/// `q`'s ancestor chain in the core forest. Optional constraints: minimum
/// core level `min_k` and a maximum community size.
///
/// Returns `None` when no ancestor satisfies the constraints or every score
/// is `NaN`.
pub fn best_scored_community<M: CommunityMetric + ?Sized>(
    analysis: &BestKAnalysis,
    q: VertexId,
    metric: &M,
    min_k: u32,
    max_size: Option<usize>,
) -> Option<Community> {
    let forest = analysis.forest();
    let profile = analysis.core_profile();
    let scores = profile.scores(metric);
    let mut best: Option<(u32, f64)> = None;
    for node in forest.ancestors(forest.node_of(q)) {
        let level = forest.node(node).coreness;
        if level < min_k {
            continue;
        }
        let size = profile.primaries[node as usize].num_vertices as usize;
        if max_size.is_some_and(|cap| size > cap) {
            continue;
        }
        let s = scores[node as usize];
        if !s.is_nan() && best.is_none_or(|(_, bs)| s > bs) {
            best = Some((node, s));
        }
    }
    best.map(|(node, score)| {
        let mut vertices = forest.core_vertices(node);
        vertices.sort_unstable();
        Community {
            vertices,
            k: forest.node(node).coreness,
            score,
        }
    })
}

/// Convenience check: the minimum degree of `vertices` within themselves.
pub fn min_internal_degree(g: &impl GraphView, vertices: &[VertexId]) -> usize {
    let mut inside = vec![false; g.num_vertices()];
    for &v in vertices {
        inside[v as usize] = true;
    }
    vertices
        .iter()
        .map(|&v| g.neighbors(v).filter(|&u| inside[u as usize]).count())
        .min()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_core::{analyze, analyze_basic, Metric};
    use bestk_graph::generators::{self, regular};
    use bestk_graph::GraphBuilder;

    #[test]
    fn min_degree_community_on_figure2() {
        let g = generators::paper_figure2();
        let a = analyze_basic(&g);
        // Query v1 (in a K4): the 3-core containing it is its K4.
        let c = max_min_degree_community(&a, 0);
        assert_eq!(c.k, 3);
        assert_eq!(c.vertices, vec![0, 1, 2, 3]);
        assert_eq!(min_internal_degree(&g, &c.vertices), 3);
        // Query v5 (coreness 2): the whole graph.
        let c = max_min_degree_community(&a, 4);
        assert_eq!(c.k, 2);
        assert_eq!(c.vertices.len(), 12);
    }

    #[test]
    fn min_degree_is_maximal() {
        // No connected subgraph containing q beats the c(q)-core's minimum
        // degree (spot check against all cores on a random graph).
        let g = generators::erdos_renyi_gnm(150, 600, 5);
        let a = analyze_basic(&g);
        let d = a.decomposition();
        for q in g.vertices().take(25) {
            let c = max_min_degree_community(&a, q);
            assert_eq!(c.k, d.coreness(q));
            assert!(min_internal_degree(&g, &c.vertices) >= c.k as usize);
        }
    }

    #[test]
    fn scored_community_prefers_dense_ancestor() {
        // Chain: q in a K8 hanging off a sparse ring.
        let mut b = GraphBuilder::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                b.add_edge(u, v);
            }
        }
        for i in 0..20u32 {
            b.add_edge(8 + i, 8 + (i + 1) % 20);
        }
        b.add_edge(0, 8);
        let g = b.build();
        let a = analyze(&g);
        let c = best_scored_community(&a, 0, &Metric::InternalDensity, 0, None).unwrap();
        assert_eq!(c.k, 7);
        assert_eq!(c.vertices, (0..8).collect::<Vec<_>>());
        assert!((c.score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scored_community_respects_constraints() {
        let g = regular::clique_chain(3, 6); // one connected 5-core of 18
        let a = analyze_basic(&g);
        let c = best_scored_community(&a, 0, &Metric::AverageDegree, 0, None).unwrap();
        assert_eq!(c.vertices.len(), 18);
        // Impossible min_k.
        assert!(best_scored_community(&a, 0, &Metric::AverageDegree, 99, None).is_none());
        // Size cap below the only core's size.
        assert!(best_scored_community(&a, 0, &Metric::AverageDegree, 0, Some(10)).is_none());
    }

    #[test]
    fn scored_community_on_low_coreness_query() {
        // A pendant vertex: its only community is the whole component.
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let g = b.build();
        let a = analyze_basic(&g);
        let c = best_scored_community(&a, 3, &Metric::AverageDegree, 0, None).unwrap();
        assert_eq!(c.k, 1);
        assert_eq!(c.vertices.len(), 4);
    }
}
