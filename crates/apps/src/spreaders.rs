//! Influential spreader identification via k-shells.
//!
//! One of the paper's motivating k-core applications (references 24, 34,
//! 40, 41: Kitsak et al., *Nature Physics* 2010): a node's spreading power
//! in an epidemic is predicted better by its *coreness* than by its degree.
//! This module provides
//!
//! * [`rank_by_coreness`] / [`rank_by_degree`] — the two seed-ranking
//!   heuristics the literature compares, and
//! * [`sir_spread`] / [`average_spread`] — a seeded SIR
//!   (susceptible-infected-recovered) simulation substrate to measure the
//!   actual spreading power of any seed, so the claim is testable inside
//!   this workspace.

use bestk_core::CoreDecomposition;
use bestk_graph::rng::Xoshiro256;
use bestk_graph::{GraphView, VertexId};

/// Vertices ranked by coreness (descending), ties by degree then id —
/// the k-shell spreader heuristic.
pub fn rank_by_coreness<G: GraphView>(g: &G, d: &CoreDecomposition) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = g.vertices().collect();
    order.sort_unstable_by_key(|&v| {
        (
            std::cmp::Reverse(d.coreness(v)),
            std::cmp::Reverse(g.degree(v)),
            v,
        )
    });
    order
}

/// Vertices ranked by degree (descending), ties by id — the naive baseline.
pub fn rank_by_degree<G: GraphView>(g: &G) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = g.vertices().collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    order
}

/// One SIR epidemic from `seed`: each infected vertex infects each
/// susceptible neighbor independently with probability `beta`, then
/// recovers (never reinfected). Returns the total number of ever-infected
/// vertices (including the seed).
pub fn sir_spread<G: GraphView>(g: &G, seed: VertexId, beta: f64, rng: &mut Xoshiro256) -> usize {
    let n = g.num_vertices();
    debug_assert!((seed as usize) < n);
    // 0 = susceptible, 1 = infected (queued), 2 = recovered.
    let mut state = vec![0u8; n];
    state[seed as usize] = 1;
    let mut frontier = vec![seed];
    let mut infected_total = 1usize;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for u in g.neighbors(v) {
                if state[u as usize] == 0 && rng.next_bool(beta) {
                    state[u as usize] = 1;
                    infected_total += 1;
                    next.push(u);
                }
            }
            state[v as usize] = 2;
        }
        frontier = next;
    }
    infected_total
}

/// Average SIR outbreak size over `trials` runs from `seed`.
pub fn average_spread<G: GraphView>(
    g: &G,
    seed: VertexId,
    beta: f64,
    trials: usize,
    rng: &mut Xoshiro256,
) -> f64 {
    let total: usize = (0..trials).map(|_| sir_spread(g, seed, beta, rng)).sum();
    total as f64 / trials.max(1) as f64
}

/// Compares the two heuristics: mean outbreak size over the top-`k` seeds
/// of each ranking. Returns `(coreness_mean, degree_mean)`.
pub fn compare_heuristics<G: GraphView>(
    g: &G,
    d: &CoreDecomposition,
    top: usize,
    beta: f64,
    trials: usize,
    seed: u64,
) -> (f64, f64) {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let by_core = rank_by_coreness(g, d);
    let by_deg = rank_by_degree(g);
    let mean = |seeds: &[VertexId], rng: &mut Xoshiro256| -> f64 {
        let sum: f64 = seeds
            .iter()
            .take(top)
            .map(|&s| average_spread(g, s, beta, trials, rng))
            .sum(); // bestk-analyze: allow(float-reduce) — sequential in-order iteration
        sum / top.min(seeds.len()).max(1) as f64
    };
    let c = mean(&by_core, &mut rng);
    let g_ = mean(&by_deg, &mut rng);
    (c, g_)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_core::core_decomposition;
    use bestk_graph::generators::{self, regular};
    use bestk_graph::GraphBuilder;

    #[test]
    fn rankings_are_permutations() {
        let g = generators::erdos_renyi_gnm(100, 300, 3);
        let d = core_decomposition(&g);
        for ranking in [rank_by_coreness(&g, &d), rank_by_degree(&g)] {
            let mut sorted = ranking.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn coreness_ranking_puts_core_before_hub() {
        // Kitsak's canonical example: a star hub (high degree, coreness 1)
        // versus clique members (moderate degree, high coreness).
        let mut b = GraphBuilder::new();
        // K6 on 0..6.
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b.add_edge(u, v);
            }
        }
        // Star hub 6 with 20 leaves, attached to the clique via one edge.
        for leaf in 7..27u32 {
            b.add_edge(6, leaf);
        }
        b.add_edge(6, 0);
        let g = b.build();
        let d = core_decomposition(&g);
        let by_core = rank_by_coreness(&g, &d);
        let by_deg = rank_by_degree(&g);
        assert_eq!(by_deg[0], 6, "degree ranks the hub first");
        assert!(by_core[0] < 6, "coreness ranks a clique member first");
    }

    #[test]
    fn sir_spread_bounds_and_determinism() {
        let g = regular::complete(20);
        let mut rng = Xoshiro256::seed_from_u64(1);
        let spread = sir_spread(&g, 0, 1.0, &mut rng);
        assert_eq!(spread, 20, "beta=1 on a clique infects everyone");
        let mut rng = Xoshiro256::seed_from_u64(1);
        let zero = sir_spread(&g, 0, 0.0, &mut rng);
        assert_eq!(zero, 1, "beta=0 infects only the seed");
        // Determinism for a fixed RNG stream.
        let mut a = Xoshiro256::seed_from_u64(9);
        let mut b = Xoshiro256::seed_from_u64(9);
        let ga = generators::erdos_renyi_gnm(200, 600, 5);
        assert_eq!(
            sir_spread(&ga, 3, 0.2, &mut a),
            sir_spread(&ga, 3, 0.2, &mut b)
        );
    }

    #[test]
    fn spread_cannot_leave_component() {
        let g =
            bestk_graph::transform::disjoint_union(&regular::complete(5), &regular::complete(10));
        let mut rng = Xoshiro256::seed_from_u64(2);
        assert!(sir_spread(&g, 0, 1.0, &mut rng) <= 5);
        assert!(sir_spread(&g, 7, 1.0, &mut rng) <= 10);
    }

    #[test]
    fn average_spread_increases_with_beta() {
        let g = generators::chung_lu_power_law(500, 6.0, 2.4, 7);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let low = average_spread(&g, 0, 0.02, 30, &mut rng);
        let high = average_spread(&g, 0, 0.5, 30, &mut rng);
        assert!(
            high > low,
            "high-beta epidemics spread further ({high} vs {low})"
        );
    }

    #[test]
    fn coreness_seeds_spread_at_least_as_far_on_star_plus_clique() {
        // On the canonical example the clique seed reliably reaches the
        // clique; the hub seed at small beta usually dies among leaves.
        let mut b = GraphBuilder::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                b.add_edge(u, v);
            }
        }
        for leaf in 9..39u32 {
            b.add_edge(8, leaf);
        }
        b.add_edge(8, 0);
        let g = b.build();
        let d = core_decomposition(&g);
        let (core_mean, deg_mean) = compare_heuristics(&g, &d, 3, 0.3, 200, 11);
        assert!(
            core_mean > deg_mean * 0.8,
            "coreness seeds should be competitive: {core_mean} vs {deg_mean}"
        );
    }
}
