//! Densest subgraph (paper §V-D, Table VIII).
//!
//! The densest-subgraph (DS) problem asks for the vertex set maximizing the
//! average degree `2 m(S) / n(S)`. Four solvers are provided:
//!
//! * [`opt_d`] — the paper's `Opt-D`: the best single k-core under the
//!   average-degree metric (Algorithm 5). A ½-approximation, because the
//!   `kmax`-core — itself ½-approximate [Fang et al. 2019] — is among the
//!   candidates.
//! * [`core_app`] — re-implementation of the core-based approximation the
//!   paper compares against (`CoreApp`): return the densest connected
//!   component of the `kmax`-core set.
//! * [`charikar_peeling`] — the classic greedy ½-approximation: peel the
//!   minimum-degree vertex and keep the best prefix.
//! * [`goldberg_exact`] — the exact flow-based oracle (binary search over
//!   the density guess with Goldberg's cut construction); for small graphs
//!   and tests.

use bestk_core::{analyze_basic, BestKAnalysis, Metric};
use bestk_graph::cast;
use bestk_graph::subgraph::induced_edge_count;
use bestk_graph::{GraphView, VertexId};

use crate::flow::FlowNetwork;

/// A densest-subgraph answer: the vertex set and its average degree.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseSubgraph {
    /// Vertices of the subgraph (sorted ascending).
    pub vertices: Vec<VertexId>,
    /// Its average degree `2 m(S) / n(S)`.
    pub average_degree: f64,
}

fn answer<G: GraphView>(g: &G, mut vertices: Vec<VertexId>) -> DenseSubgraph {
    vertices.sort_unstable();
    vertices.dedup();
    let m = induced_edge_count(g, &vertices);
    let average_degree = if vertices.is_empty() {
        0.0
    } else {
        2.0 * m as f64 / vertices.len() as f64
    };
    DenseSubgraph {
        vertices,
        average_degree,
    }
}

/// Each undirected edge once, as `(u, v)` with `u < v`, from any backend's
/// sorted adjacency.
fn undirected_edges<G: GraphView>(g: &G) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
    g.vertices()
        .flat_map(move |u| g.neighbors(u).filter(move |&v| u < v).map(move |v| (u, v)))
}

/// `Opt-D`: best single k-core by average degree. `O(m)` after analysis.
///
/// Accepts a prebuilt [`BestKAnalysis`] so the (shared) decomposition cost
/// is not re-paid when several applications run on one graph.
pub fn opt_d<G: GraphView>(g: &G, analysis: &BestKAnalysis) -> DenseSubgraph {
    match analysis.best_single_core_vertices(&Metric::AverageDegree) {
        Some(verts) => answer(g, verts),
        None => DenseSubgraph {
            vertices: Vec::new(),
            average_degree: 0.0,
        },
    }
}

/// Convenience wrapper running the analysis internally.
pub fn opt_d_standalone<G: GraphView + Sync>(g: &G) -> DenseSubgraph {
    opt_d(g, &analyze_basic(g))
}

/// `CoreApp`-style approximation: the densest connected component of the
/// `kmax`-core set (the k-core-based ½-approximation of Fang et al. 2019
/// that the paper benchmarks against in Table VIII).
pub fn core_app<G: GraphView>(g: &G, analysis: &BestKAnalysis) -> DenseSubgraph {
    let d = analysis.decomposition();
    let kmax = d.kmax();
    let profile = analysis.core_profile();
    // Forest nodes with coreness == kmax are exactly the kmax-cores.
    let mut best: Option<(u32, f64)> = None;
    for (i, node) in analysis.forest().nodes().iter().enumerate() {
        if node.coreness != kmax {
            continue;
        }
        let pv = &profile.primaries[i];
        let avg = if pv.num_vertices == 0 {
            f64::NAN
        } else {
            2.0 * pv.internal_edges as f64 / pv.num_vertices as f64
        };
        if avg.is_finite() && best.is_none_or(|(_, b)| avg > b) {
            best = Some((cast::u32_of(i), avg));
        }
    }
    match best {
        Some((node, _)) => answer(g, analysis.forest().core_vertices(node)),
        None => DenseSubgraph {
            vertices: Vec::new(),
            average_degree: 0.0,
        },
    }
}

/// Charikar's greedy peeling: remove the minimum-degree vertex until the
/// graph is empty; return the intermediate subgraph with the highest average
/// degree. `O(n + m)` with a bucket queue; ½-approximate.
pub fn charikar_peeling<G: GraphView>(g: &G) -> DenseSubgraph {
    let n = g.num_vertices();
    if n == 0 {
        return DenseSubgraph {
            vertices: Vec::new(),
            average_degree: 0.0,
        };
    }
    // Bucket queue over current degrees.
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(cast::vertex_id(v))).collect();
    let max_deg = g.max_degree();
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(cast::vertex_id(v));
    }
    let mut removed = vec![false; n];
    let mut cur_min = 0usize;
    let mut remaining_edges = g.num_edges();
    let mut remaining_vertices = n;
    // Track the density of every suffix; record the best cut position.
    let mut removal_order = Vec::with_capacity(n);
    let mut best_density = 2.0 * remaining_edges as f64 / remaining_vertices as f64;
    let mut best_cut = 0usize; // remove this many vertices for the best suffix
    for step in 0..n {
        // Find the current minimum-degree vertex (lazy deletion).
        let v = loop {
            while cur_min <= max_deg && buckets[cur_min].is_empty() {
                cur_min += 1;
            }
            // bestk-analyze: allow(no-raw-peel) — Charikar's greedy 1/2-approximation peels by its own schedule, not the core decomposition's
            if let Some(cand) = buckets[cur_min].pop() {
                if !removed[cand as usize] && degree[cand as usize] == cur_min {
                    break cand;
                }
            }
        };
        removed[v as usize] = true;
        removal_order.push(v);
        remaining_edges -= degree[v as usize];
        remaining_vertices -= 1;
        for u in g.neighbors(v) {
            if !removed[u as usize] {
                let du = degree[u as usize];
                // bestk-analyze: allow(no-raw-peel) — density-peel degree bookkeeping, independent of the coreness peel
                degree[u as usize] = du - 1;
                buckets[du - 1].push(u);
                cur_min = cur_min.min(du - 1);
            }
        }
        if remaining_vertices > 0 {
            let density = 2.0 * remaining_edges as f64 / remaining_vertices as f64;
            if density > best_density {
                best_density = density;
                best_cut = step + 1;
            }
        }
    }
    let kept: Vec<VertexId> = {
        let cut: std::collections::HashSet<VertexId> =
            removal_order[..best_cut].iter().copied().collect();
        (0..cast::vertex_id(n))
            .filter(|v| !cut.contains(v))
            .collect()
    };
    answer(g, kept)
}

/// Exact densest subgraph via Goldberg's flow construction: binary search
/// the density guess `ρ`; a min cut of the associated network is non-trivial
/// iff some subgraph has `m(S)/n(S) > ρ`. Terminates when the interval is
/// below `1/(n(n-1))`, the minimum gap between distinct densities.
///
/// `O(log n · maxflow)` — intended for graphs up to a few thousand edges
/// (tests and Table VIII's quality validation), not for the full datasets.
pub fn goldberg_exact<G: GraphView>(g: &G) -> DenseSubgraph {
    let n = g.num_vertices();
    let m = g.num_edges();
    if n == 0 || m == 0 {
        return DenseSubgraph {
            vertices: g.vertices().take(1).collect(),
            average_degree: 0.0,
        };
    }
    // Density here is m(S)/n(S); average degree is twice that.
    let mut lo = 0.0f64;
    let mut hi = m as f64;
    let gap = 1.0 / (n as f64 * (n as f64 - 1.0));
    let mut best: Vec<VertexId> = Vec::new();
    while hi - lo >= gap {
        let guess = (lo + hi) / 2.0;
        let side = goldberg_cut(g, guess);
        if side.is_empty() {
            hi = guess;
        } else {
            lo = guess;
            best = side;
        }
    }
    if best.is_empty() {
        // Densest is at density exactly lo = 0? Fall back to a single edge.
        if let Some((u, v)) = undirected_edges(g).next() {
            best = vec![u, v];
        }
    }
    answer(g, best)
}

/// One Goldberg cut: returns the source-side vertex set (empty ⇒ no subgraph
/// with density > `guess`).
fn goldberg_cut<G: GraphView>(g: &G, guess: f64) -> Vec<VertexId> {
    let n = g.num_vertices();
    let m = g.num_edges() as f64;
    let s = n;
    let t = n + 1;
    let mut net = FlowNetwork::new(n + 2);
    for v in 0..n {
        net.add_edge(s, v, m);
        net.add_edge(v, t, m + 2.0 * guess - g.degree(cast::vertex_id(v)) as f64);
    }
    for (u, v) in undirected_edges(g) {
        net.add_edge(u as usize, v as usize, 1.0);
        net.add_edge(v as usize, u as usize, 1.0);
    }
    net.max_flow(s, t);
    let side = net.min_cut_source_side(s);
    (0..cast::vertex_id(n))
        .filter(|&v| side[v as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_core::analyze_basic;
    use bestk_graph::generators::{self, regular};
    use bestk_graph::{CsrGraph, GraphBuilder};

    /// K5 with a long path attached: the densest subgraph is exactly the K5.
    fn k5_with_tail() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v);
            }
        }
        b.extend_edges([(4, 5), (5, 6), (6, 7), (7, 8)]);
        b.build()
    }

    #[test]
    fn exact_finds_the_planted_clique() {
        let g = k5_with_tail();
        let exact = goldberg_exact(&g);
        assert_eq!(exact.vertices, vec![0, 1, 2, 3, 4]);
        assert!((exact.average_degree - 4.0).abs() < 1e-9);
    }

    #[test]
    fn opt_d_matches_exact_on_clique_plus_tail() {
        let g = k5_with_tail();
        let a = analyze_basic(&g);
        let res = opt_d(&g, &a);
        assert_eq!(res.vertices, vec![0, 1, 2, 3, 4]);
        assert!((res.average_degree - 4.0).abs() < 1e-9);
    }

    #[test]
    fn peeling_finds_the_planted_clique() {
        let g = k5_with_tail();
        let res = charikar_peeling(&g);
        assert_eq!(res.vertices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn core_app_returns_kmax_core() {
        let g = k5_with_tail();
        let a = analyze_basic(&g);
        let res = core_app(&g, &a);
        assert_eq!(res.vertices, vec![0, 1, 2, 3, 4]);
        assert!((res.average_degree - 4.0).abs() < 1e-9);
    }

    #[test]
    fn all_methods_respect_half_approximation_on_random_graphs() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_gnm(60, 240, seed);
            let a = analyze_basic(&g);
            let exact = goldberg_exact(&g);
            for (name, approx) in [
                ("opt_d", opt_d(&g, &a)),
                ("core_app", core_app(&g, &a)),
                ("peeling", charikar_peeling(&g)),
            ] {
                assert!(
                    approx.average_degree >= exact.average_degree / 2.0 - 1e-9,
                    "{name} below 1/2-approx on seed {seed}: {} vs exact {}",
                    approx.average_degree,
                    exact.average_degree
                );
                assert!(
                    approx.average_degree <= exact.average_degree + 1e-9,
                    "{name} beats the exact optimum?! seed {seed}"
                );
            }
        }
    }

    #[test]
    fn opt_d_never_below_core_app() {
        // Opt-D maximizes over all cores; the kmax-core is one of them.
        for seed in 0..4 {
            let g = generators::chung_lu_power_law(300, 8.0, 2.3, seed);
            let a = analyze_basic(&g);
            let d = opt_d(&g, &a);
            let c = core_app(&g, &a);
            assert!(
                d.average_degree >= c.average_degree - 1e-9,
                "seed {seed}: opt_d {} < core_app {}",
                d.average_degree,
                c.average_degree
            );
        }
    }

    #[test]
    fn density_reported_matches_vertex_set() {
        let g = generators::erdos_renyi_gnm(80, 300, 9);
        let a = analyze_basic(&g);
        for res in [opt_d(&g, &a), core_app(&g, &a), charikar_peeling(&g)] {
            let m = bestk_graph::subgraph::induced_edge_count(&g, &res.vertices);
            let expect = 2.0 * m as f64 / res.vertices.len() as f64;
            assert!((res.average_degree - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_inputs() {
        let empty = CsrGraph::empty(0);
        assert_eq!(charikar_peeling(&empty).vertices.len(), 0);
        let single = CsrGraph::empty(1);
        assert_eq!(charikar_peeling(&single).average_degree, 0.0);
        let edgeless = CsrGraph::empty(5);
        let a = analyze_basic(&edgeless);
        assert_eq!(opt_d(&edgeless, &a).average_degree, 0.0);
        let exact = goldberg_exact(&edgeless);
        assert_eq!(exact.average_degree, 0.0);
    }

    #[test]
    fn exact_on_two_unequal_cliques() {
        // K6 and K4 disjoint: exact must return the K6.
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b.add_edge(u, v);
            }
        }
        for u in 6..10u32 {
            for v in (u + 1)..10 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let exact = goldberg_exact(&g);
        assert_eq!(exact.vertices, vec![0, 1, 2, 3, 4, 5]);
        assert!((exact.average_degree - 5.0).abs() < 1e-9);
    }

    #[test]
    fn exact_beats_peeling_on_known_adversarial_shape() {
        // Peeling is only 1/2-approximate; on most graphs it is close.
        // Here we simply check exact >= peeling on a structured instance.
        let g = regular::clique_chain(3, 6);
        let exact = goldberg_exact(&g);
        let peel = charikar_peeling(&g);
        assert!(exact.average_degree >= peel.average_degree - 1e-9);
    }
}
