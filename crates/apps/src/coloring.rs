//! Smallest-last greedy graph coloring (Matula & Beck 1983 — the paper's
//! reference 42, the same work that introduced the LCPS core hierarchy).
//!
//! Coloring vertices greedily in *reverse peel order* guarantees at most
//! `kmax + 1` colors: when a vertex is colored, only the ≤ `c(v) ≤ kmax`
//! neighbors that survived it in the peeling are already colored. This is
//! the classic constructive proof that the chromatic number is at most the
//! degeneracy plus one, and a neat consumer of the decomposition's peel
//! ordering.

use bestk_core::CoreDecomposition;
use bestk_graph::cast;
use bestk_graph::GraphView;

/// A proper vertex coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// `colors[v]` = the color of vertex `v` (0-based).
    pub colors: Vec<u32>,
    /// Number of distinct colors used.
    pub num_colors: u32,
}

impl Coloring {
    /// Verifies properness in `O(m)`.
    pub fn is_proper(&self, g: &impl GraphView) -> bool {
        g.vertices().all(|v| {
            g.neighbors(v)
                .all(|u| self.colors[u as usize] != self.colors[v as usize])
        })
    }
}

/// Colors `g` greedily in smallest-last (reverse peel) order; uses at most
/// `kmax + 1` colors in `O(n + m)` time.
pub fn smallest_last_coloring<G: GraphView>(g: &G, d: &CoreDecomposition) -> Coloring {
    let n = g.num_vertices();
    let mut colors = vec![u32::MAX; n];
    // Scratch: `used[c] == stamp` means color c is taken by a neighbor.
    let max_colors = d.kmax() as usize + 2;
    let mut used = vec![u32::MAX; max_colors];
    let mut num_colors = 0u32;
    for (stamp, &v) in d.peel_ordering().iter().rev().enumerate() {
        let stamp = cast::u32_of(stamp);
        for u in g.neighbors(v) {
            let cu = colors[u as usize];
            if cu != u32::MAX && (cu as usize) < max_colors {
                used[cu as usize] = stamp;
            }
        }
        let mut c = 0u32;
        while used[c as usize] == stamp {
            c += 1;
        }
        colors[v as usize] = c;
        num_colors = num_colors.max(c + 1);
    }
    if n == 0 {
        num_colors = 0;
    }
    Coloring { colors, num_colors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_core::core_decomposition;
    use bestk_graph::generators::{self, regular};
    use bestk_graph::CsrGraph;

    fn color(g: &CsrGraph) -> Coloring {
        let d = core_decomposition(g);
        let c = smallest_last_coloring(g, &d);
        assert!(c.is_proper(g), "coloring must be proper");
        assert!(
            c.num_colors <= d.kmax() + 1,
            "{} colors exceeds degeneracy bound {}",
            c.num_colors,
            d.kmax() + 1
        );
        c
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        assert_eq!(color(&regular::complete(7)).num_colors, 7);
    }

    #[test]
    fn bipartite_graphs_get_two() {
        assert_eq!(color(&regular::grid(5, 4)).num_colors, 2);
        assert_eq!(color(&regular::star(10)).num_colors, 2);
        assert_eq!(color(&regular::cycle(8)).num_colors, 2);
    }

    #[test]
    fn odd_cycle_gets_three() {
        assert_eq!(color(&regular::cycle(9)).num_colors, 3);
    }

    #[test]
    fn paper_figure2_bound() {
        // kmax = 3 -> at most 4 colors; the K4s force exactly 4.
        let c = color(&generators::paper_figure2());
        assert_eq!(c.num_colors, 4);
    }

    #[test]
    fn random_graphs_respect_degeneracy_bound() {
        for seed in 0..4 {
            color(&generators::erdos_renyi_gnm(200, 800, seed));
            color(&generators::chung_lu_power_law(300, 8.0, 2.4, seed));
        }
    }

    #[test]
    fn empty_and_isolated() {
        let c = color(&CsrGraph::empty(0));
        assert_eq!(c.num_colors, 0);
        let c = color(&CsrGraph::empty(5));
        assert_eq!(c.num_colors, 1);
        assert!(c.colors.iter().all(|&x| x == 0));
    }
}
