//! Exact maximum clique (paper §V-D, Table VIII).
//!
//! Branch-and-bound over the degeneracy (peel) ordering with a greedy-
//! coloring upper bound (Tomita-style). The outer loop processes each vertex
//! `v` with candidate set "later neighbors in the peel order", which has at
//! most `c(v) ≤ kmax` members — so the exponential search runs inside
//! subproblems of at most `kmax + 1` vertices, which is what makes exact
//! maximum clique tractable on sparse real-world graphs.
//!
//! The paper uses the maximum clique to check whether `MC ⊆ S*` (the best
//! average-degree core contains the maximum clique) — see
//! [`contains_clique`].

use bestk_core::CoreDecomposition;
use bestk_graph::cast;
use bestk_graph::{GraphView, VertexId};

/// Computes a maximum clique of `g`. Exact; returns vertices in ascending
/// order (empty for a vertex-free graph).
pub fn maximum_clique<G: GraphView>(g: &G, d: &CoreDecomposition) -> Vec<VertexId> {
    let (clique, exact) = maximum_clique_with_budget(g, d, None);
    debug_assert!(exact);
    clique
}

/// Like [`maximum_clique`] but with an optional wall-clock budget. Returns
/// the best clique found and whether the search completed (i.e. the result
/// is provably maximum). With `budget = None` the search always completes.
pub fn maximum_clique_with_budget<G: GraphView>(
    g: &G,
    d: &CoreDecomposition,
    budget: Option<std::time::Duration>,
) -> (Vec<VertexId>, bool) {
    let n = g.num_vertices();
    if n == 0 {
        return (Vec::new(), true);
    }
    let deadline = budget.map(deadline_nanos);
    let mut position = vec![0u32; n];
    for (i, &v) in d.peel_ordering().iter().enumerate() {
        position[v as usize] = cast::u32_of(i);
    }
    let mut best: Vec<VertexId> = vec![d.peel_ordering()[0]];
    let mut exact = true;
    for &v in d.peel_ordering() {
        // Coreness bound: a clique containing v has at most c(v) + 1
        // vertices.
        if (d.coreness(v) as usize + 1) <= best.len() {
            continue;
        }
        if let Some(dl) = deadline {
            if bestk_obs::now_nanos() >= dl {
                exact = false;
                break;
            }
        }
        // Candidates: later neighbors in the peel order (≤ c(v) of them).
        let cands: Vec<VertexId> = g
            .neighbors(v)
            .filter(|&u| position[u as usize] > position[v as usize])
            .collect();
        if cands.len() < best.len() {
            continue;
        }
        let mut local = LocalSearch::new(g, &cands, deadline);
        let mut current = vec![v];
        local.expand(
            &mut current,
            (0..cast::u32_of(cands.len())).collect(),
            &mut best,
        );
        if local.timed_out {
            exact = false;
            break;
        }
    }
    best.sort_unstable();
    (best, exact)
}

/// Converts a wall-clock budget into an absolute deadline on the
/// `bestk_obs` clock (the workspace's single time source — the
/// `no-raw-instant` lint keeps `Instant::now` out of here).
fn deadline_nanos(budget: std::time::Duration) -> u64 {
    let nanos = u64::try_from(budget.as_nanos()).unwrap_or(u64::MAX);
    bestk_obs::now_nanos().saturating_add(nanos)
}

/// Dense-bitset branch and bound inside one vertex's candidate neighborhood.
struct LocalSearch<'a> {
    /// Candidate vertices (original ids), indexed by local id.
    cands: &'a [VertexId],
    /// `adj[i]` = bitset of local ids adjacent to local vertex `i`.
    adj: Vec<Vec<u64>>,
    /// Optional wall-clock deadline (absolute `bestk_obs` clock nanos),
    /// checked periodically while branching.
    deadline: Option<u64>,
    /// Branch counter between deadline checks.
    ticks: u32,
    /// Set once the deadline fires; the caller must treat `best` as a lower
    /// bound only.
    timed_out: bool,
}

impl<'a> LocalSearch<'a> {
    fn new<G: GraphView>(g: &G, cands: &'a [VertexId], deadline: Option<u64>) -> Self {
        let k = cands.len();
        let words = k.div_ceil(64);
        let mut local_of = std::collections::HashMap::with_capacity(k);
        for (i, &u) in cands.iter().enumerate() {
            local_of.insert(u, i);
        }
        let mut adj = vec![vec![0u64; words]; k];
        for (i, &u) in cands.iter().enumerate() {
            for w in g.neighbors(u) {
                if let Some(&j) = local_of.get(&w) {
                    adj[i][j / 64] |= 1u64 << (j % 64);
                }
            }
        }
        LocalSearch {
            cands,
            adj,
            deadline,
            ticks: 0,
            timed_out: false,
        }
    }

    /// Tomita-style expansion: greedily color `pool`, then branch on
    /// vertices in reverse color order, pruning with
    /// `|current| + color(v) <= |best|`.
    fn expand(&mut self, current: &mut Vec<VertexId>, pool: Vec<u32>, best: &mut Vec<VertexId>) {
        if self.timed_out {
            return;
        }
        if let Some(dl) = self.deadline {
            self.ticks += 1;
            if self.ticks.is_multiple_of(256) && bestk_obs::now_nanos() >= dl {
                self.timed_out = true;
                return;
            }
        }
        if pool.is_empty() {
            if current.len() > best.len() {
                *best = current.clone();
            }
            return;
        }
        // Greedy coloring of the pool; vertices emitted in ascending color.
        let (order, colors) = self.greedy_coloring(&pool);
        for idx in (0..order.len()).rev() {
            let v = order[idx];
            if current.len() + colors[idx] as usize <= best.len() {
                // Everything earlier has an even smaller bound.
                return;
            }
            current.push(self.cands[v as usize]);
            let next_pool: Vec<u32> = order[..idx]
                .iter()
                .copied()
                .filter(|&u| self.adjacent(v, u))
                .collect();
            self.expand(current, next_pool, best);
            current.pop();
        }
    }

    #[inline]
    fn adjacent(&self, a: u32, b: u32) -> bool {
        self.adj[a as usize][b as usize / 64] >> (b % 64) & 1 == 1
    }

    /// Colors `pool` greedily; returns vertices sorted by color (ascending)
    /// with their colors (1-based). `color(v)` bounds the largest clique in
    /// the pool containing `v` within its prefix.
    fn greedy_coloring(&self, pool: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let mut classes: Vec<Vec<u32>> = Vec::new();
        for &v in pool {
            let mut placed = false;
            'class: for class in classes.iter_mut() {
                for &u in class.iter() {
                    if self.adjacent(v, u) {
                        continue 'class;
                    }
                }
                class.push(v);
                placed = true;
                break;
            }
            if !placed {
                classes.push(vec![v]);
            }
        }
        let mut order = Vec::with_capacity(pool.len());
        let mut colors = Vec::with_capacity(pool.len());
        for (ci, class) in classes.iter().enumerate() {
            for &v in class {
                order.push(v);
                colors.push(cast::u32_of(ci) + 1);
            }
        }
        (order, colors)
    }
}

/// Whether `clique` is fully contained in `set` (both arbitrary order).
/// Used for the paper's `MC ⊆ S*` column in Table VIII.
pub fn contains_clique(set: &[VertexId], clique: &[VertexId]) -> bool {
    let lookup: std::collections::HashSet<VertexId> = set.iter().copied().collect();
    clique.iter().all(|v| lookup.contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_core::core_decomposition;
    use bestk_graph::generators::{self, regular};
    use bestk_graph::{CsrGraph, GraphBuilder};

    fn mc(g: &CsrGraph) -> Vec<VertexId> {
        let d = core_decomposition(g);
        let clique = maximum_clique(g, &d);
        // Verify it is actually a clique.
        for i in 0..clique.len() {
            for j in (i + 1)..clique.len() {
                assert!(g.has_edge(clique[i], clique[j]), "not a clique: {clique:?}");
            }
        }
        clique
    }

    #[test]
    fn complete_graph() {
        assert_eq!(mc(&regular::complete(7)).len(), 7);
    }

    #[test]
    fn triangle_free_graphs() {
        assert_eq!(mc(&regular::cycle(8)).len(), 2);
        assert_eq!(mc(&regular::star(5)).len(), 2);
        assert_eq!(mc(&regular::grid(4, 4)).len(), 2);
    }

    #[test]
    fn figure2_max_clique_is_k4() {
        let g = generators::paper_figure2();
        let clique = mc(&g);
        assert_eq!(clique.len(), 4);
    }

    #[test]
    fn planted_clique_found() {
        // Random sparse graph plus a planted K8 on high ids.
        let base = generators::erdos_renyi_gnm(200, 600, 3);
        let mut b = GraphBuilder::new();
        b.extend_edges(base.edges());
        for u in 200..208u32 {
            for v in (u + 1)..208 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let clique = mc(&g);
        assert_eq!(clique.len(), 8);
        assert_eq!(clique, (200..208).collect::<Vec<_>>());
    }

    /// Brute-force maximum clique by subset enumeration (tiny graphs only).
    fn brute_force_mc_size(g: &CsrGraph) -> usize {
        let n = g.num_vertices();
        assert!(n <= 20);
        let mut best = 0usize;
        for mask in 0u32..(1 << n) {
            let verts: Vec<VertexId> = (0..n as VertexId).filter(|&v| mask >> v & 1 == 1).collect();
            if verts.len() <= best {
                continue;
            }
            let ok = verts
                .iter()
                .enumerate()
                .all(|(i, &u)| verts[i + 1..].iter().all(|&w| g.has_edge(u, w)));
            if ok {
                best = verts.len();
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_small_random_graphs() {
        for seed in 0..6 {
            let g = generators::erdos_renyi_gnm(14, 40, seed);
            assert_eq!(mc(&g).len(), brute_force_mc_size(&g), "seed {seed}");
        }
    }

    #[test]
    fn dense_overlapping_cliques() {
        let g = generators::overlapping_cliques(100, 12, (5, 9), 7);
        let clique = mc(&g);
        assert!(clique.len() >= 5, "at least the smallest generated clique");
    }

    #[test]
    fn empty_and_single() {
        assert!(mc(&CsrGraph::empty(0)).is_empty());
        assert_eq!(mc(&CsrGraph::empty(3)).len(), 1);
    }

    #[test]
    fn containment_check() {
        assert!(contains_clique(&[1, 2, 3, 4], &[2, 4]));
        assert!(!contains_clique(&[1, 2, 3], &[2, 5]));
        assert!(contains_clique(&[1], &[]));
    }
}
