//! Maximum flow (Dinic's algorithm).
//!
//! Substrate for the exact densest-subgraph oracle (Goldberg's flow-based
//! method) that validates the approximation quality claims of §V-D on small
//! graphs. Capacities are `f64` because Goldberg's construction binary
//! searches a fractional density guess.

use bestk_graph::cast;

/// A flow network under construction / after a max-flow run.
///
/// Standard adjacency-list Dinic with paired reverse edges; `O(V²E)` in
/// general, far faster on the shallow networks Goldberg's reduction builds.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// `edges[i]`: (to, capacity-remaining); edge `i ^ 1` is its reverse.
    to: Vec<u32>,
    cap: Vec<f64>,
    head: Vec<Vec<u32>>, // per-vertex incident edge indices
}

const EPS: f64 = 1e-9;

impl FlowNetwork {
    /// A network with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.head.len()
    }

    /// Adds a directed edge `u → v` with capacity `cap` (and its zero-
    /// capacity reverse). Returns the edge index.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64) -> usize {
        assert!(cap >= 0.0, "capacity must be non-negative");
        let id = self.to.len();
        self.to.push(cast::u32_of(v));
        self.cap.push(cap);
        self.head[u].push(cast::u32_of(id));
        self.to.push(cast::u32_of(u));
        self.cap.push(0.0);
        self.head[v].push(cast::u32_of(id) + 1);
        id
    }

    /// Runs Dinic from `s` to `t`; returns the max-flow value. Residual
    /// capacities are left in place (see [`min_cut_source_side`]).
    ///
    /// [`min_cut_source_side`]: FlowNetwork::min_cut_source_side
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert_ne!(s, t, "source and sink must differ");
        let n = self.head.len();
        let mut total = 0.0;
        let mut level = vec![u32::MAX; n];
        let mut iter = vec![0usize; n];
        loop {
            // BFS level graph.
            level.iter_mut().for_each(|l| *l = u32::MAX);
            level[s] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                for &e in &self.head[v] {
                    let e = e as usize;
                    let w = self.to[e] as usize;
                    if self.cap[e] > EPS && level[w] == u32::MAX {
                        level[w] = level[v] + 1;
                        queue.push_back(w);
                    }
                }
            }
            if level[t] == u32::MAX {
                return total;
            }
            iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs(s, t, f64::INFINITY, &level, &mut iter);
                if pushed <= EPS {
                    break;
                }
                total += pushed;
            }
        }
    }

    /// Iterative blocking-flow DFS (explicit stack keeps deep networks safe).
    fn dfs(&mut self, s: usize, t: usize, limit: f64, level: &[u32], iter: &mut [usize]) -> f64 {
        // Path of (vertex, edge chosen from that vertex).
        let mut path: Vec<(usize, usize)> = Vec::new();
        let mut v = s;
        loop {
            if v == t {
                // Push the bottleneck along the path.
                let bottleneck = path.iter().map(|&(_, e)| self.cap[e]).fold(limit, f64::min);
                for &(_, e) in &path {
                    self.cap[e] -= bottleneck;
                    self.cap[e ^ 1] += bottleneck;
                }
                return bottleneck;
            }
            let mut advanced = false;
            while iter[v] < self.head[v].len() {
                let e = self.head[v][iter[v]] as usize;
                let w = self.to[e] as usize;
                if self.cap[e] > EPS && level[w] == level[v] + 1 {
                    path.push((v, e));
                    v = w;
                    advanced = true;
                    break;
                }
                iter[v] += 1;
            }
            if !advanced {
                // Dead end: retreat (or give up at the source).
                match path.pop() {
                    None => return 0.0,
                    Some((pv, _)) => {
                        iter[pv] += 1;
                        v = pv;
                    }
                }
            }
        }
    }

    /// After [`max_flow`](FlowNetwork::max_flow), the set of vertices
    /// reachable from `s` in the residual network — the source side of a
    /// minimum cut.
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let n = self.head.len();
        let mut seen = vec![false; n];
        seen[s] = true;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            for &e in &self.head[v] {
                let e = e as usize;
                let w = self.to[e] as usize;
                if self.cap[e] > EPS && !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 5.0);
        assert!((net.max_flow(0, 1) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn series_takes_minimum() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5.0);
        net.add_edge(1, 2, 3.0);
        assert!((net.max_flow(0, 2) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 3, 2.0);
        net.add_edge(0, 2, 3.0);
        net.add_edge(2, 3, 3.0);
        assert!((net.max_flow(0, 3) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS-style example with a known max flow of 23.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16.0);
        net.add_edge(0, 2, 13.0);
        net.add_edge(1, 2, 10.0);
        net.add_edge(2, 1, 4.0);
        net.add_edge(1, 3, 12.0);
        net.add_edge(3, 2, 9.0);
        net.add_edge(2, 4, 14.0);
        net.add_edge(4, 3, 7.0);
        net.add_edge(3, 5, 20.0);
        net.add_edge(4, 5, 4.0);
        assert!((net.max_flow(0, 5) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn augmenting_through_reverse_edges() {
        // Flow must reroute through the middle edge's reverse.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 2, 1.0);
        net.add_edge(1, 2, 1.0);
        net.add_edge(1, 3, 1.0);
        net.add_edge(2, 3, 1.0);
        assert!((net.max_flow(0, 3) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn min_cut_matches_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3.0);
        net.add_edge(1, 2, 1.0); // bottleneck
        net.add_edge(2, 3, 3.0);
        let f = net.max_flow(0, 3);
        assert!((f - 1.0).abs() < 1e-9);
        let side = net.min_cut_source_side(0);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn disconnected_sink_yields_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 10.0);
        assert_eq!(net.max_flow(0, 2), 0.0);
        let side = net.min_cut_source_side(0);
        assert!(side[0] && side[1] && !side[2]);
    }

    #[test]
    fn fractional_capacities() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 0.5);
        net.add_edge(0, 2, 0.25);
        net.add_edge(1, 2, 1.0);
        assert!((net.max_flow(0, 2) - 0.75).abs() < 1e-9);
    }
}
