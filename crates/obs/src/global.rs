//! The process-global registry and clock.
//!
//! Instrumented code across the workspace records into one shared
//! [`MetricsRegistry`] read through [`registry`] (lazily created with a
//! [`SystemClock`] on first touch). Tests swap in a fresh registry and a
//! clock of their choosing with [`with_fresh`], which restores the
//! previous state even on panic and serializes callers on a global gate —
//! the same discipline `bestk_faults::with_plan` uses for its plan.
//!
//! Instrumented call sites should resolve handles from [`registry`] (or
//! the [`counter`]/[`gauge`]/[`histogram`] shorthands) per operation or
//! per scope rather than caching them in statics: a cached handle would go
//! stale across a [`with_fresh`] swap.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::clock::{Clock, SystemClock};
use crate::registry::{Counter, Gauge, Histogram, MetricsRegistry, Snapshot};

struct GlobalState {
    registry: Arc<MetricsRegistry>,
    clock: Arc<dyn Clock>,
}

static STATE: Mutex<Option<GlobalState>> = Mutex::new(None);
static TEST_GATE: Mutex<()> = Mutex::new(());

/// Recovers the guard even if a holder panicked; the state stays
/// consistent because it only holds `Arc`s that are swapped atomically
/// under the lock.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn with_state<R>(f: impl FnOnce(&GlobalState) -> R) -> R {
    let mut guard = lock(&STATE);
    let state = guard.get_or_insert_with(|| GlobalState {
        registry: Arc::new(MetricsRegistry::new()),
        clock: Arc::new(SystemClock::new()),
    });
    f(state)
}

/// The process-global metrics registry.
pub fn registry() -> Arc<MetricsRegistry> {
    with_state(|s| s.registry.clone())
}

/// A reading of the process-global clock, in nanoseconds since its origin.
pub fn now_nanos() -> u64 {
    let clock = with_state(|s| s.clock.clone());
    clock.now_nanos()
}

/// Shorthand: the global registry's counter named `name`.
pub fn counter(name: &str) -> Counter {
    registry().counter(name)
}

/// Shorthand: the global registry's gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    registry().gauge(name)
}

/// Shorthand: the global registry's histogram named `name`.
pub fn histogram(name: &str, bounds: &[u64]) -> Histogram {
    registry().histogram(name, bounds)
}

/// A point-in-time copy of the global registry.
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

/// Runs `f` against a fresh empty registry and the given clock, returning
/// `f`'s result together with the snapshot of everything it recorded. The
/// previous global state is restored afterwards — always, even if `f`
/// panics — and a process-global gate serializes callers so concurrently
/// running tests cannot observe each other's registries.
pub fn with_fresh<R>(clock: Arc<dyn Clock>, f: impl FnOnce() -> R) -> (R, Snapshot) {
    let _gate = lock(&TEST_GATE);
    let fresh = Arc::new(MetricsRegistry::new());
    // bestk-analyze: allow(lock-nested) — documented order TEST_GATE -> STATE, the only nesting
    let previous = lock(&STATE).replace(GlobalState {
        registry: fresh.clone(),
        clock,
    });
    struct Restore(Option<GlobalState>);
    impl Drop for Restore {
        fn drop(&mut self) {
            // bestk-analyze: allow(lock-nested) — same TEST_GATE -> STATE order as the acquire above
            *lock(&STATE) = self.0.take();
        }
    }
    let _restore = Restore(previous);
    let result = f();
    (result, fresh.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn with_fresh_captures_and_restores() {
        let before = registry();
        let ((), snap) = with_fresh(Arc::new(ManualClock::with_step(1)), || {
            counter("t.hits").inc();
            counter("t.hits").inc();
        });
        assert_eq!(snap.counter("t.hits"), Some(2));
        assert!(
            Arc::ptr_eq(&before, &registry()),
            "the previous registry must come back"
        );
        assert_ne!(snapshot().counter("t.hits"), Some(2));
    }

    #[test]
    fn with_fresh_restores_on_panic() {
        let before = registry();
        let caught = std::panic::catch_unwind(|| {
            with_fresh(Arc::new(ManualClock::with_step(1)), || {
                counter("t.boom").inc();
                panic!("boom");
            })
        });
        assert!(caught.is_err());
        assert!(Arc::ptr_eq(&before, &registry()));
    }

    #[test]
    fn manual_clock_drives_now_nanos() {
        let (readings, _snap) = with_fresh(Arc::new(ManualClock::with_step(100)), || {
            [now_nanos(), now_nanos(), now_nanos()]
        });
        assert_eq!(readings, [0, 100, 200]);
    }
}
