//! Deterministic observability for the bestk workspace.
//!
//! Three pieces, all dependency-free:
//!
//! - [`MetricsRegistry`] — named counters, gauges, and fixed-bucket
//!   histograms. Registration takes a mutex once; after that every
//!   increment or observation is a single atomic RMW (lock-free hot
//!   path). [`MetricsRegistry::snapshot`] copies a consistent,
//!   name-sorted view that renders to a Prometheus-flavoured text
//!   exposition via [`Snapshot::render`].
//! - [`span!`] — RAII phase-timing guards. `let _s = span!("phase.peel")`
//!   records `phase.peel.calls` (+1) and `phase.peel.nanos` (+elapsed)
//!   into the global registry when the guard drops.
//! - [`Clock`] — the injectable time source behind spans and
//!   [`now_nanos`]. Production uses [`SystemClock`] (the single place in
//!   workspace library code allowed to call `Instant::now`; the
//!   `no-raw-instant` lint confines it here). Tests swap in a
//!   [`ManualClock`] via [`with_fresh`] and get exact, reproducible
//!   timings.
//!
//! # Metric name schema
//!
//! Names are dot-separated `<subsystem>.<metric>` strings; labels are
//! embedded in the name itself, Prometheus-style:
//! `serve.requests{verb="query"}`, `faults.injected{site="snapshot.read"}`.
//! The registry treats the whole string as the key, so label variants are
//! independent metrics and render in deterministic sorted order. See
//! DESIGN.md §12 for the full catalogue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod global;
pub mod registry;
mod render;
pub mod span;

pub use clock::{Clock, ManualClock, ScriptedClock, SystemClock};
pub use global::{counter, gauge, histogram, now_nanos, registry, snapshot, with_fresh};
pub use registry::{
    Counter, Gauge, Histogram, HistogramValue, MetricValue, MetricsRegistry, Snapshot,
};
pub use span::SpanGuard;
