//! Injectable time sources.
//!
//! Everything in the workspace that needs a timestamp reads it through a
//! [`Clock`], normally via [`crate::now_nanos`]. Production code gets the
//! monotonic [`SystemClock`]; tests install a [`ManualClock`] with
//! [`crate::with_fresh`] so instrumented paths produce exact, host-speed-
//! independent timings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock. Readings are nanoseconds since an
/// arbitrary per-clock origin; only differences are meaningful.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since this clock's origin.
    fn now_nanos(&self) -> u64;
}

/// The production clock: a process-relative monotonic [`Instant`]. This is
/// the one place in workspace library code allowed to call `Instant::now`
/// — the `no-raw-instant` lint in bestk-analyze confines it to
/// `crates/obs`.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is the moment of construction.
    pub fn new() -> SystemClock {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_nanos(&self) -> u64 {
        // Saturates after ~584 years of process uptime; fine.
        self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

/// A deterministic test clock: every reading returns the current value and
/// advances it by a fixed step. Instrumented code therefore observes an
/// exact timeline — `0, step, 2·step, …` — that depends only on how many
/// readings happen, not on host speed. The timeline is shared across
/// threads (the counter is atomic), so it is reproducible whenever all
/// readings happen on one coordinating thread; see DESIGN.md §12.
#[derive(Debug)]
pub struct ManualClock {
    next: AtomicU64,
    step: u64,
}

impl ManualClock {
    /// A clock starting at zero that advances `step` nanoseconds per
    /// reading.
    pub fn with_step(step: u64) -> ManualClock {
        ManualClock {
            next: AtomicU64::new(0),
            step,
        }
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.next.fetch_add(self.step, Ordering::Relaxed)
    }
}

/// A clock that replays a recorded sequence of readings: reading `i`
/// returns `readings[i]`, and once the script is exhausted every further
/// reading sticks at the last value (an empty script sticks at zero).
/// Serve replay installs one so the re-driven session observes the exact
/// timestamps the original recorded, making latency histograms — not just
/// replies — bit-identical.
#[derive(Debug)]
pub struct ScriptedClock {
    readings: Vec<u64>,
    next: AtomicU64,
}

impl ScriptedClock {
    /// A clock replaying `readings` in order.
    pub fn new(readings: Vec<u64>) -> ScriptedClock {
        ScriptedClock {
            readings,
            next: AtomicU64::new(0),
        }
    }
}

impl Clock for ScriptedClock {
    fn now_nanos(&self) -> u64 {
        let i = self.next.fetch_add(1, Ordering::Relaxed) as usize;
        match self.readings.get(i) {
            Some(&t) => t,
            None => self.readings.last().copied().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_clock_replays_then_sticks() {
        let c = ScriptedClock::new(vec![5, 9, 100]);
        assert_eq!(c.now_nanos(), 5);
        assert_eq!(c.now_nanos(), 9);
        assert_eq!(c.now_nanos(), 100);
        assert_eq!(c.now_nanos(), 100, "exhausted script sticks at the end");
        assert_eq!(ScriptedClock::new(Vec::new()).now_nanos(), 0);
    }

    #[test]
    fn manual_clock_advances_a_fixed_step_per_reading() {
        let c = ManualClock::with_step(7);
        assert_eq!(c.now_nanos(), 0);
        assert_eq!(c.now_nanos(), 7);
        assert_eq!(c.now_nanos(), 14);
    }

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }
}
