//! Phase-timing spans.
//!
//! `let _span = span!("phase.peel");` reads the global clock on entry and,
//! when the guard drops (including during unwinding), records two
//! counters into the global registry:
//!
//! - `<name>.calls` — incremented by one,
//! - `<name>.nanos` — incremented by the elapsed clock nanoseconds.
//!
//! On a [`crate::ManualClock`] the elapsed time is exactly
//! `step × readings-in-between`, so tests assert exact values. Phase names
//! follow the paper's cost model (`phase.peel`, `phase.sweep`,
//! `phase.select`); see DESIGN.md §12 for the catalogue.

/// An RAII guard recording one timed span; see the module docs.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: u64,
}

/// Starts a span named `name`. Prefer the [`crate::span!`] macro.
pub fn enter(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: crate::global::now_nanos(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = crate::global::now_nanos().saturating_sub(self.start);
        let registry = crate::global::registry();
        registry.counter(&format!("{}.calls", self.name)).inc();
        registry
            .counter(&format!("{}.nanos", self.name))
            .add(elapsed);
    }
}

/// Opens a [`SpanGuard`] for the named phase; bind it to keep it alive:
/// `let _span = bestk_obs::span!("phase.peel");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use crate::clock::ManualClock;
    use crate::global::with_fresh;

    #[test]
    fn spans_record_exact_manual_clock_timings() {
        let ((), snap) = with_fresh(Arc::new(ManualClock::with_step(10)), || {
            let _outer = crate::span!("phase.outer");
            {
                let _inner = crate::span!("phase.inner");
            }
        });
        // Readings: outer start (0), inner start (10), inner end (20),
        // outer end (30).
        assert_eq!(snap.counter("phase.inner.calls"), Some(1));
        assert_eq!(snap.counter("phase.inner.nanos"), Some(10));
        assert_eq!(snap.counter("phase.outer.calls"), Some(1));
        assert_eq!(snap.counter("phase.outer.nanos"), Some(30));
    }

    #[test]
    fn spans_accumulate_across_calls() {
        let ((), snap) = with_fresh(Arc::new(ManualClock::with_step(5)), || {
            for _ in 0..3 {
                let _span = crate::span!("phase.loop");
            }
        });
        assert_eq!(snap.counter("phase.loop.calls"), Some(3));
        assert_eq!(snap.counter("phase.loop.nanos"), Some(15));
    }

    #[test]
    fn spans_record_even_when_unwinding() {
        let (_, snap) = with_fresh(Arc::new(ManualClock::with_step(1)), || {
            let caught = std::panic::catch_unwind(|| {
                let _span = crate::span!("phase.doomed");
                panic!("boom");
            });
            assert!(caught.is_err());
        });
        assert_eq!(snap.counter("phase.doomed.calls"), Some(1));
    }
}
