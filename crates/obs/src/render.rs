//! The Prometheus-flavoured text exposition renderer.
//!
//! One sample per line, `name value`, separated by a single space.
//! Counters and gauges render as-is (labels, if any, are already embedded
//! in the name). A histogram `h` expands to cumulative bucket lines
//! `h_bucket{le="<bound>"} <cumulative>`, a final
//! `h_bucket{le="+Inf"} <count>`, then `h_count <count>` and
//! `h_sum <sum>`. The output is in ascending metric-name order (the
//! snapshot is pre-sorted) and ends with a trailing newline when
//! non-empty, so it is byte-stable for golden tests.

use std::fmt::Write as _;

use crate::registry::{MetricValue, Snapshot};

pub(crate) fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in snap.entries() {
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram(h) => {
                for (bound, cum) in h.bounds.iter().zip(h.cumulative()) {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{name}_count {}", h.count);
                let _ = writeln!(out, "{name}_sum {}", h.sum);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::registry::MetricsRegistry;

    #[test]
    fn renders_sorted_lines_with_trailing_newline() {
        let r = MetricsRegistry::new();
        r.counter("serve.requests").add(4);
        r.counter("serve.requests{verb=\"query\"}").add(3);
        r.gauge("engine.datasets").set(2);
        let h = r.histogram("serve.latency_nanos", &[1_000, 1_000_000]);
        h.observe(500);
        h.observe(2_000);
        h.observe(2_000_000);
        let text = r.snapshot().render();
        assert_eq!(
            text,
            "engine.datasets 2\n\
             serve.latency_nanos_bucket{le=\"1000\"} 1\n\
             serve.latency_nanos_bucket{le=\"1000000\"} 2\n\
             serve.latency_nanos_bucket{le=\"+Inf\"} 3\n\
             serve.latency_nanos_count 3\n\
             serve.latency_nanos_sum 2002500\n\
             serve.requests 4\n\
             serve.requests{verb=\"query\"} 3\n"
        );
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(MetricsRegistry::new().snapshot().render(), "");
    }
}
