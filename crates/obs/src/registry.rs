//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms with a lock-free atomic hot path.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s onto shared
//! atomics: registration takes the registry mutex exactly once, after
//! which every increment or observation is a single relaxed atomic RMW.
//! [`MetricsRegistry::snapshot`] copies a name-sorted point-in-time view
//! ([`Snapshot`]) that supports lookups, merging, and rendering to the
//! text exposition format.
//!
//! Metric names are plain strings; labels are embedded in the name
//! (`serve.requests{verb="query"}`), so each label variant is its own
//! independent metric and everything renders in deterministic name order.
//! Names must be unique across kinds — registering the same name as both
//! a counter and a gauge yields two snapshot entries and lookup by kind
//! finds the matching one.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::render;

/// Recovers the guard even if a holder panicked. The maps stay consistent
/// because all mutation of metric values happens handle-side via atomics;
/// the mutex only protects registration.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A monotonically increasing counter handle (lock-free once registered).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed point-in-time gauge handle (lock-free once registered).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Ascending, deduplicated inclusive upper bounds.
    bounds: Vec<u64>,
    /// Per-bucket counts: one per bound plus a trailing overflow bucket.
    buckets: Vec<AtomicU64>,
    /// Sum of observed values; wraps on overflow (wrapping keeps merge
    /// associative, which the property tests rely on).
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram handle (lock-free once registered). Bucket
/// bounds are inclusive upper bounds; values above the last bound land in
/// an implicit `+Inf` overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self.0.bounds.partition_point(|&b| b < value);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy. Under concurrent observation the fields may
    /// be mutually slightly stale; single-threaded reads are exact.
    fn value(&self) -> HistogramValue {
        HistogramValue {
            bounds: self.0.bounds.clone(),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.0.sum.load(Ordering::Relaxed),
            count: self.0.count.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time value of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramValue {
    /// Ascending inclusive bucket upper bounds; an implicit `+Inf`
    /// overflow bucket follows the last bound.
    pub bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) counts: `bounds.len() + 1` entries,
    /// the last being the overflow bucket.
    pub buckets: Vec<u64>,
    /// Sum of observed values (wrapping on overflow).
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramValue {
    /// Cumulative bucket counts (monotone non-decreasing; the last entry
    /// equals [`HistogramValue::count`] when reads were quiescent).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut total = 0u64;
        self.buckets
            .iter()
            .map(|&b| {
                total = total.wrapping_add(b);
                total
            })
            .collect()
    }
}

/// One named metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter value.
    Counter(u64),
    /// A gauge value.
    Gauge(i64),
    /// A histogram value.
    Histogram(HistogramValue),
}

/// A consistent, name-sorted copy of a registry's metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// All `(name, value)` entries in ascending name order.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    /// The counter named `name`, if registered as a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// The gauge named `name`, if registered as a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }

    /// The histogram named `name`, if registered as a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramValue> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Histogram(h) if n == name => Some(h),
            _ => None,
        })
    }

    /// Renders the Prometheus-flavoured text exposition: one
    /// `name value` line per counter/gauge sample, histograms as
    /// cumulative `name_bucket{le="…"}` lines plus `name_count` and
    /// `name_sum`, everything in ascending name order with a trailing
    /// newline when non-empty.
    pub fn render(&self) -> String {
        render::render(self)
    }

    /// Merges two snapshots: counters and gauges add, histograms add
    /// bucket-wise. Fails (no panics) if a name is registered with
    /// different kinds or a histogram with different bounds.
    pub fn merge(&self, other: &Snapshot) -> Result<Snapshot, String> {
        let mut merged: BTreeMap<String, MetricValue> = self.entries.iter().cloned().collect();
        for (name, value) in &other.entries {
            let combined = match merged.remove(name) {
                None => value.clone(),
                Some(existing) => merge_values(name, existing, value)?,
            };
            merged.insert(name.clone(), combined);
        }
        Ok(Snapshot {
            entries: merged.into_iter().collect(),
        })
    }
}

fn merge_values(name: &str, a: MetricValue, b: &MetricValue) -> Result<MetricValue, String> {
    match (a, b) {
        (MetricValue::Counter(x), MetricValue::Counter(y)) => {
            Ok(MetricValue::Counter(x.wrapping_add(*y)))
        }
        (MetricValue::Gauge(x), MetricValue::Gauge(y)) => {
            Ok(MetricValue::Gauge(x.wrapping_add(*y)))
        }
        (MetricValue::Histogram(x), MetricValue::Histogram(y)) => {
            if x.bounds != y.bounds {
                return Err(format!("histogram {name:?}: mismatched bucket bounds"));
            }
            Ok(MetricValue::Histogram(HistogramValue {
                bounds: x.bounds,
                buckets: x
                    .buckets
                    .iter()
                    .zip(&y.buckets)
                    .map(|(p, q)| p.wrapping_add(*q))
                    .collect(),
                sum: x.sum.wrapping_add(y.sum),
                count: x.count.wrapping_add(y.count),
            }))
        }
        _ => Err(format!("metric {name:?}: mismatched kinds")),
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A set of named metrics. See the module docs for the locking model.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, registered on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = lock(&self.inner);
        inner
            .counters
            .entry(name.to_owned())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The gauge named `name`, registered on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = lock(&self.inner);
        inner
            .gauges
            .entry(name.to_owned())
            .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    /// The histogram named `name`, registered on first use with the given
    /// inclusive upper bounds (sorted and deduplicated). First
    /// registration wins: later calls return the existing histogram and
    /// ignore `bounds`.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut inner = lock(&self.inner);
        inner
            .histograms
            .entry(name.to_owned())
            .or_insert_with(|| {
                let mut bounds = bounds.to_vec();
                bounds.sort_unstable();
                bounds.dedup();
                let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
                Histogram(Arc::new(HistogramCore {
                    bounds,
                    buckets,
                    sum: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                }))
            })
            .clone()
    }

    /// A name-sorted point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = lock(&self.inner);
        let mut entries: Vec<(String, MetricValue)> = Vec::new();
        for (name, c) in &inner.counters {
            entries.push((name.clone(), MetricValue::Counter(c.get())));
        }
        for (name, g) in &inner.gauges {
            entries.push((name.clone(), MetricValue::Gauge(g.get())));
        }
        for (name, h) in &inner.histograms {
            entries.push((name.clone(), MetricValue::Histogram(h.value())));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_snapshot_reads_them() {
        let r = MetricsRegistry::new();
        let c = r.counter("a.count");
        c.inc();
        r.counter("a.count").add(2);
        let g = r.gauge("a.level");
        g.set(5);
        g.sub(2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.count"), Some(3));
        assert_eq!(snap.gauge("a.level"), Some(3));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn histogram_buckets_values_inclusively() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat", &[10, 100]);
        for v in [0, 10, 11, 100, 101, 5000] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let hv = snap.histogram("lat").unwrap();
        assert_eq!(hv.bounds, vec![10, 100]);
        assert_eq!(hv.buckets, vec![2, 2, 2]);
        assert_eq!(hv.count, 6);
        assert_eq!(hv.sum, 5222);
        assert_eq!(hv.cumulative(), vec![2, 4, 6]);
    }

    #[test]
    fn histogram_bounds_are_normalized_and_first_registration_wins() {
        let r = MetricsRegistry::new();
        let h = r.histogram("h", &[100, 10, 10]);
        h.observe(50);
        let again = r.histogram("h", &[1, 2, 3]);
        again.observe(50);
        let hv = r.snapshot();
        let hv = hv.histogram("h").unwrap();
        assert_eq!(hv.bounds, vec![10, 100]);
        assert_eq!(hv.buckets, vec![0, 2, 0]);
    }

    #[test]
    fn snapshots_are_name_sorted() {
        let r = MetricsRegistry::new();
        r.counter("b");
        r.gauge("a");
        r.histogram("c", &[1]);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn merge_adds_and_rejects_mismatches() {
        let r1 = MetricsRegistry::new();
        r1.counter("c").add(2);
        r1.histogram("h", &[10]).observe(4);
        let r2 = MetricsRegistry::new();
        r2.counter("c").add(3);
        r2.gauge("g").set(-1);
        r2.histogram("h", &[10]).observe(40);
        let merged = r1.snapshot().merge(&r2.snapshot()).unwrap();
        assert_eq!(merged.counter("c"), Some(5));
        assert_eq!(merged.gauge("g"), Some(-1));
        let hv = merged.histogram("h").unwrap();
        assert_eq!(hv.buckets, vec![1, 1]);
        assert_eq!(hv.sum, 44);
        assert_eq!(hv.count, 2);

        let bad_kind = MetricsRegistry::new();
        bad_kind.gauge("c").set(1);
        assert!(r1.snapshot().merge(&bad_kind.snapshot()).is_err());
        let bad_bounds = MetricsRegistry::new();
        bad_bounds.histogram("h", &[99]).observe(1);
        assert!(r1.snapshot().merge(&bad_bounds.snapshot()).is_err());
    }
}
