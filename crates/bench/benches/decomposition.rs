//! Micro-bench: core decomposition (the shared `O(m)` preprocessing of
//! every algorithm in the paper; the "core decomposition" slice of the
//! Figure 7/8 stacked bars).

use bestk_bench::Bench;
use bestk_core::core_decomposition;
use bestk_core::hindex::{hindex_core_decomposition, hindex_core_decomposition_async};
use bestk_graph::generators;

fn bench_decomposition(b: &Bench) {
    for (name, g) in [
        (
            "chung_lu_100k",
            generators::chung_lu_power_law(100_000, 10.0, 2.4, 1),
        ),
        ("rmat_s16", generators::rmat(16, 12, 0.57, 0.19, 0.19, 2)),
        (
            "cliques_20k",
            generators::overlapping_cliques(20_000, 3_000, (5, 25), 3),
        ),
    ] {
        let m = g.num_edges() as u64;
        b.run_elements(&format!("core_decomposition/{name}"), m, || {
            core_decomposition(&g)
        });
    }
}

/// Peeling versus h-index iteration (the distributed-style alternative):
/// peeling wins sequentially; the gap is the price a distributed/streaming
/// deployment pays per round.
fn bench_decomposition_strategies(b: &Bench) {
    let g = generators::chung_lu_power_law(100_000, 10.0, 2.4, 1);
    let m = g.num_edges() as u64;
    b.run_elements("decomposition_strategy/bz_peeling", m, || {
        core_decomposition(&g)
    });
    b.run_elements("decomposition_strategy/hindex_sync", m, || {
        hindex_core_decomposition(&g)
    });
    b.run_elements("decomposition_strategy/hindex_async", m, || {
        hindex_core_decomposition_async(&g)
    });
}

fn main() {
    let b = Bench::from_env_or_exit();
    bench_decomposition(&b);
    bench_decomposition_strategies(&b);
    b.finish_or_exit();
}
