//! Criterion bench: core decomposition (the shared `O(m)` preprocessing of
//! every algorithm in the paper; the "core decomposition" slice of the
//! Figure 7/8 stacked bars).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bestk_core::core_decomposition;
use bestk_core::hindex::{hindex_core_decomposition, hindex_core_decomposition_async};
use bestk_graph::generators;

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_decomposition");
    group.sample_size(10);
    for (name, g) in [
        ("chung_lu_100k", generators::chung_lu_power_law(100_000, 10.0, 2.4, 1)),
        ("rmat_s16", generators::rmat(16, 12, 0.57, 0.19, 0.19, 2)),
        ("cliques_20k", generators::overlapping_cliques(20_000, 3_000, (5, 25), 3)),
    ] {
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| black_box(core_decomposition(g)))
        });
    }
    group.finish();
}

/// Peeling versus h-index iteration (the distributed-style alternative):
/// peeling wins sequentially; the gap is the price a distributed/streaming
/// deployment pays per round.
fn bench_decomposition_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition_strategy");
    group.sample_size(10);
    let g = generators::chung_lu_power_law(100_000, 10.0, 2.4, 1);
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    group.bench_function("bz_peeling", |b| b.iter(|| black_box(core_decomposition(&g))));
    group.bench_function("hindex_sync", |b| {
        b.iter(|| black_box(hindex_core_decomposition(&g)))
    });
    group.bench_function("hindex_async", |b| {
        b.iter(|| black_box(hindex_core_decomposition_async(&g)))
    });
    group.finish();
}

criterion_group!(benches, bench_decomposition, bench_decomposition_strategies);
criterion_main!(benches);
