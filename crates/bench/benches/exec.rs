//! Micro-bench: the shared execution runtime (`bestk-exec`) — every
//! refactored kernel at 1, 2, and 4 worker threads, printing the observed
//! speedup over the single-thread run. With `BESTK_BENCH_JSON` set, the
//! per-thread-count records (name, threads, min/mean ns) land in the JSON
//! report, which is how EXPERIMENTS.md reproduces the 1-vs-N speedup table.

use std::time::Duration;

use bestk_bench::Bench;
use bestk_core::hindex::hindex_core_decomposition_with;
use bestk_core::triangles::count_triangles_with;
use bestk_exec::ExecPolicy;
use bestk_graph::{generators, GraphBuilder};
use bestk_truss::decomposition::edge_supports_with;
use bestk_truss::EdgeIndex;

const THREADS: [usize; 3] = [1, 2, 4];

/// Runs `f` under each thread count, printing the speedup of every parallel
/// run relative to the single-thread minimum.
fn sweep(b: &Bench, name: &str, mut f: impl FnMut(&ExecPolicy)) {
    let mut base: Option<Duration> = None;
    for threads in THREADS {
        let policy = match ExecPolicy::with_threads(threads) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("skipping {name} at {threads} threads: {e}");
                continue;
            }
        };
        let timings = b.run_threads(&format!("{name}/t{threads}"), threads, || f(&policy));
        let min = timings.iter().min().copied();
        match (threads, base, min) {
            (1, _, m) => base = m,
            (_, Some(b1), Some(m)) if m > Duration::ZERO => {
                println!(
                    "{:<48} speedup {:.2}x vs 1 thread",
                    format!("{name}/t{threads}"),
                    b1.as_secs_f64() / m.as_secs_f64()
                );
            }
            _ => {}
        }
    }
}

fn bench_exec_kernels(b: &Bench) {
    let g = generators::chung_lu_power_law(50_000, 10.0, 2.4, 1);
    let m = g.num_edges();
    println!("# graph: chung_lu_50k (n = {}, m = {m})", g.num_vertices());

    let edges: Vec<(u32, u32)> = g.edges().collect();
    sweep(b, "exec/csr_build", |policy| {
        let mut builder = GraphBuilder::new();
        builder.extend_edges(edges.iter().copied());
        builder.build_with(policy);
    });

    sweep(b, "exec/triangles", |policy| {
        count_triangles_with(&g, policy);
    });

    sweep(b, "exec/hindex", |policy| {
        hindex_core_decomposition_with(&g, policy);
    });

    let idx = EdgeIndex::build(&g);
    sweep(b, "exec/truss_supports", |policy| {
        edge_supports_with(&g, &idx, policy);
    });
}

fn main() {
    let b = Bench::from_env_or_exit();
    bench_exec_kernels(&b);
    b.finish_or_exit();
}
