//! Micro-bench: the static analysis engine over the real workspace.
//!
//! The lint pass runs in every CI job and in pre-commit loops, so its
//! latency is a developer-facing budget: the whole-workspace `check` must
//! stay comfortably inside a second. Two measurements:
//!
//! * `analyze/check_workspace` — the full pipeline (walk, lex, lints,
//!   passes, facts, cross-file aggregation, fingerprints) over this
//!   repository, exactly what `bestk-analyze check` pays;
//! * `analyze/lex_workspace`   — the lexer alone over every source file,
//!   isolating tokenization from the passes so a regression report
//!   points at the right layer.
//!
//! With `BESTK_BENCH_JSON` set, the records land in the JSON report.

use bestk_bench::Bench;

fn main() {
    let b = Bench::from_env_or_exit();
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");

    let files = bestk_analyze::walk::discover(&root).expect("walk succeeds");
    let sources: Vec<String> = files
        .iter()
        .map(|f| std::fs::read_to_string(&f.abs_path).expect("read source"))
        .collect();
    let bytes: u64 = sources.iter().map(|s| s.len() as u64).sum();
    println!("# corpus: {} files, {} bytes", files.len(), bytes);

    b.run_elements("analyze/lex_workspace", bytes, || {
        sources
            .iter()
            .map(|s| bestk_analyze::lex::lex(s).len())
            .sum::<usize>()
    });

    b.run_elements("analyze/check_workspace", bytes, || {
        let report = bestk_analyze::run_report(&root).expect("run succeeds");
        (report.files_checked, report.diagnostics.len())
    });

    b.finish_or_exit();
}
