//! Micro-bench: the snapshot engine's cold-vs-warm query latencies.
//!
//! Three measurements on an Erdős–Rényi stand-in (see EXPERIMENTS.md
//! "Cold vs. warm queries"):
//!
//! * `engine/build`      — in-memory artifact build from a bare CSR graph
//!   (what a cold engine pays on first touch, and what an eviction re-pays);
//! * `engine/cold_query` — `.bestk` load from disk (checksum verification +
//!   `from_parts` re-validation) plus one `bestkset` answer;
//! * `engine/warm_query` — one answer against resident artifacts (the
//!   steady-state serving cost);
//! * `engine/failpoints_off_1k` — 1000 disabled failpoint probes, the
//!   guard that fault injection stays free when no plan is installed.
//!
//! Every query path above crosses the `bestk_faults` failpoints (snapshot
//! reads, budget enforcement, batch workers) with injection disabled, so
//! `cold_query`/`warm_query` regressing would itself flag failpoint
//! overhead.
//!
//! With `BESTK_BENCH_JSON` set, the records land in the JSON report.

use bestk_bench::Bench;
use bestk_core::Metric;
use bestk_engine::{snapshot, Dataset, Engine, Query};
use bestk_exec::ExecPolicy;
use bestk_graph::generators;

fn main() {
    let b = Bench::from_env_or_exit();
    assert!(
        !bestk_faults::is_enabled(),
        "fault injection must be disabled for benchmarks"
    );
    let policy = ExecPolicy::Sequential;
    let g = generators::erdos_renyi_gnm(20_000, 100_000, 11);
    println!(
        "# graph: er_gnm_20k (n = {}, m = {})",
        g.num_vertices(),
        g.num_edges()
    );

    b.run("engine/build", || {
        let mut ds = Dataset::from_graph(g.clone());
        ds.ensure_built(&policy);
        ds
    });

    let dir = std::env::temp_dir().join(format!("bestk-bench-engine-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench tmp dir");
    let path = dir.join("er.bestk");
    let mut built = Dataset::from_graph(g.clone());
    built.ensure_built(&policy);
    snapshot::save_path(&built, &path).expect("save snapshot");
    let path_str = path.to_str().expect("utf8 path").to_string();
    let query = Query::BestKSet {
        metric: Metric::AverageDegree,
    };

    b.run("engine/cold_query", || {
        let mut engine = Engine::new(None);
        engine
            .load_snapshot("er", &path_str)
            .expect("load snapshot");
        engine.query("er", &query, &policy).expect("cold answer")
    });

    let mut warm = Engine::new(None);
    warm.load_snapshot("er", &path_str).expect("load snapshot");
    warm.query("er", &query, &policy).expect("prime cache");
    b.run("engine/warm_query", || {
        warm.query("er", &query, &policy).expect("warm answer")
    });
    let c = warm.counters();
    println!(
        "# warm engine counters: builds={} cache_hits={} evictions={}",
        c.builds, c.cache_hits, c.evictions
    );

    // Guard record: the disabled-failpoint fast path (one relaxed atomic
    // load per probe) must stay in the noise — this is what every serving
    // request pays with chaos off.
    b.run("engine/failpoints_off_1k", || {
        let mut armed = 0u32;
        for _ in 0..1000 {
            if bestk_faults::pressure(bestk_faults::sites::ENGINE_PRESSURE) {
                armed += 1;
            }
        }
        assert_eq!(armed, 0, "no plan is installed");
        armed
    });

    let _ = std::fs::remove_dir_all(&dir);
    b.finish_or_exit();
}
