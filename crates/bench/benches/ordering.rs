//! Micro-bench: vertex ordering (Algorithm 1) — the "index building" slice
//! of Figure 7 — plus the DESIGN.md §6.1 ablation: `O(1)` position-tag
//! neighbor counts versus binary-searching the rank-sorted adjacency on
//! every query.

use bestk_bench::Bench;
use bestk_core::{core_decomposition, CoreDecomposition, OrderedGraph};
use bestk_graph::{generators, CsrGraph, VertexId};

fn bench_build(b: &Bench) {
    for (name, g) in [
        (
            "chung_lu_100k",
            generators::chung_lu_power_law(100_000, 10.0, 2.4, 1),
        ),
        (
            "cliques_20k",
            generators::overlapping_cliques(20_000, 3_000, (5, 25), 3),
        ),
    ] {
        let d = core_decomposition(&g);
        let m = g.num_edges() as u64;
        b.run_elements(&format!("ordering_build/{name}"), m, || {
            OrderedGraph::build(&g, &d)
        });
    }
}

/// Ablation comparator: answer |N(v, >)| by binary-searching the rank-sorted
/// list instead of reading the `plus` tag.
fn count_gt_binary_search(
    g: &CsrGraph,
    d: &CoreDecomposition,
    o: &OrderedGraph<'_>,
    v: VertexId,
) -> usize {
    let list = o.neighbors(v);
    let cv = d.coreness(v);
    let pos = list.partition_point(|&u| d.coreness(u) <= cv);
    g.degree(v) - pos
}

fn bench_queries(b: &Bench) {
    let g = generators::chung_lu_power_law(50_000, 12.0, 2.4, 5);
    let d = core_decomposition(&g);
    let o = OrderedGraph::build(&g, &d);
    let n = g.num_vertices() as u64;
    b.run_elements("neighbor_count_query/position_tags", n, || {
        let mut acc = 0usize;
        for v in g.vertices() {
            acc += o.count_gt(v) + o.count_eq(v);
        }
        acc
    });
    b.run_elements("neighbor_count_query/binary_search", n, || {
        let mut acc = 0usize;
        for v in g.vertices() {
            acc += count_gt_binary_search(&g, &d, &o, v);
            // |N(v,=)| via a second search over the lower boundary.
            let list = o.neighbors(v);
            let cv = d.coreness(v);
            let lo = list.partition_point(|&u| d.coreness(u) < cv);
            let hi = list.partition_point(|&u| d.coreness(u) <= cv);
            acc += hi - lo;
        }
        acc
    });
}

/// Ablation (DESIGN.md §6.3): Algorithm 1's flattened bin sort of the edge
/// set versus comparison-sorting every adjacency list by rank.
fn comparison_sorted_adjacency(g: &CsrGraph, d: &CoreDecomposition) -> Vec<VertexId> {
    let mut adj = g.raw_neighbors().to_vec();
    let offsets = g.offsets();
    for v in 0..g.num_vertices() {
        adj[offsets[v]..offsets[v + 1]].sort_unstable_by_key(|&u| (d.coreness(u), u));
    }
    adj
}

fn bench_sort_strategy(b: &Bench) {
    let g = generators::chung_lu_power_law(100_000, 10.0, 2.4, 1);
    let d = core_decomposition(&g);
    let m = g.num_edges() as u64;
    b.run_elements("edge_sort_ablation/flattened_bin_sort", m, || {
        OrderedGraph::build(&g, &d)
    });
    b.run_elements("edge_sort_ablation/comparison_sort", m, || {
        comparison_sorted_adjacency(&g, &d)
    });
}

fn main() {
    let b = Bench::from_env_or_exit();
    bench_build(&b);
    bench_queries(&b);
    bench_sort_strategy(&b);
    b.finish_or_exit();
}
