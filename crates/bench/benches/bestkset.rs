//! Micro-bench: Figure 7 in micro form — optimal (Algorithms 2/3) versus
//! baseline (§III-A) score computation for the best k-core set, for a
//! basic metric (average degree) and a triangle metric (clustering
//! coefficient).

use bestk_bench::Bench;
use bestk_core::baseline::baseline_core_set_primaries;
use bestk_core::bestkset::{
    core_set_primaries, core_set_primaries_bottom_up, core_set_primaries_with_triangles,
};
use bestk_core::{core_decomposition, OrderedGraph};
use bestk_graph::generators;

fn inputs() -> Vec<(&'static str, bestk_graph::CsrGraph)> {
    vec![
        (
            "chung_lu_50k",
            generators::chung_lu_power_law(50_000, 10.0, 2.4, 1),
        ),
        (
            "cliques_10k",
            generators::overlapping_cliques(10_000, 1_500, (5, 25), 3),
        ),
    ]
}

fn bench_basic_metrics(b: &Bench) {
    for (name, g) in inputs() {
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        b.run(&format!("bestkset_avg_degree/optimal/{name}"), || {
            core_set_primaries(&o)
        });
        b.run(&format!("bestkset_avg_degree/baseline/{name}"), || {
            baseline_core_set_primaries(&g, &d, false)
        });
    }
}

fn bench_triangle_metrics(b: &Bench) {
    for (name, g) in inputs() {
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        b.run(&format!("bestkset_clustering/optimal/{name}"), || {
            core_set_primaries_with_triangles(&o)
        });
        b.run(&format!("bestkset_clustering/baseline/{name}"), || {
            baseline_core_set_primaries(&g, &d, true)
        });
    }
}

/// Ablation (DESIGN.md §6.2): sweep direction for the basic primaries.
/// Both directions are O(n); the point is that neither needs re-counting —
/// unlike a bottom-up *triangle* sweep, which would degenerate to the
/// baseline (benchmarked above as `baseline`).
fn bench_sweep_direction(b: &Bench) {
    let g = generators::chung_lu_power_law(50_000, 10.0, 2.4, 1);
    let d = core_decomposition(&g);
    let o = OrderedGraph::build(&g, &d);
    b.run("sweep_direction_ablation/top_down", || {
        core_set_primaries(&o)
    });
    b.run("sweep_direction_ablation/bottom_up", || {
        core_set_primaries_bottom_up(&o)
    });
}

fn main() {
    let b = Bench::from_env_or_exit();
    bench_basic_metrics(&b);
    bench_triangle_metrics(&b);
    bench_sweep_direction(&b);
    b.finish_or_exit();
}
