//! Criterion bench: Figure 7 in micro form — optimal (Algorithms 2/3)
//! versus baseline (§III-A) score computation for the best k-core set, for
//! a basic metric (average degree) and a triangle metric (clustering
//! coefficient).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bestk_core::baseline::baseline_core_set_primaries;
use bestk_core::bestkset::{
    core_set_primaries, core_set_primaries_bottom_up, core_set_primaries_with_triangles,
};
use bestk_core::{core_decomposition, OrderedGraph};
use bestk_graph::generators;

fn inputs() -> Vec<(&'static str, bestk_graph::CsrGraph)> {
    vec![
        ("chung_lu_50k", generators::chung_lu_power_law(50_000, 10.0, 2.4, 1)),
        ("cliques_10k", generators::overlapping_cliques(10_000, 1_500, (5, 25), 3)),
    ]
}

fn bench_basic_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("bestkset_avg_degree");
    group.sample_size(10);
    for (name, g) in inputs() {
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        group.bench_with_input(BenchmarkId::new("optimal", name), &o, |b, o| {
            b.iter(|| black_box(core_set_primaries(o)))
        });
        group.bench_with_input(BenchmarkId::new("baseline", name), &(&g, &d), |b, (g, d)| {
            b.iter(|| black_box(baseline_core_set_primaries(g, d, false)))
        });
    }
    group.finish();
}

fn bench_triangle_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("bestkset_clustering_coefficient");
    group.sample_size(10);
    for (name, g) in inputs() {
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        group.bench_with_input(BenchmarkId::new("optimal", name), &o, |b, o| {
            b.iter(|| black_box(core_set_primaries_with_triangles(o)))
        });
        group.bench_with_input(BenchmarkId::new("baseline", name), &(&g, &d), |b, (g, d)| {
            b.iter(|| black_box(baseline_core_set_primaries(g, d, true)))
        });
    }
    group.finish();
}

/// Ablation (DESIGN.md §6.2): sweep direction for the basic primaries.
/// Both directions are O(n); the point is that neither needs re-counting —
/// unlike a bottom-up *triangle* sweep, which would degenerate to the
/// baseline (benchmarked above as `baseline`).
fn bench_sweep_direction(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_direction_ablation");
    group.sample_size(10);
    let g = generators::chung_lu_power_law(50_000, 10.0, 2.4, 1);
    let d = core_decomposition(&g);
    let o = OrderedGraph::build(&g, &d);
    group.bench_function("top_down", |b| b.iter(|| black_box(core_set_primaries(&o))));
    group.bench_function("bottom_up", |b| {
        b.iter(|| black_box(core_set_primaries_bottom_up(&o)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_basic_metrics,
    bench_triangle_metrics,
    bench_sweep_direction
);
criterion_main!(benches);
