//! Micro-bench: incremental best-k maintenance vs full rebuild.
//!
//! Measurements on the workload the delta subsystem exists for — a large
//! graph absorbing single-edge commits (see DESIGN.md §15 "Edge streams"):
//!
//! * `delta/rebuild_and_select`         — `DeltaIndex::build` from scratch
//!   plus one best-k selection, the cost a non-incremental engine pays on
//!   every commit;
//! * `delta/edge_commit_pair_and_select` — toggle one edge in and back out
//!   through the maintained index, selecting best-k after each op: two
//!   single-edge commits' worth of affected-region repair;
//! * `delta/stream_mixed_2k`            — sustained throughput over a
//!   mixed insert/delete stream applied forward and then undone in
//!   reverse (so every iteration starts from the same state);
//! * `delta/wal_append_commit_durable`  — one write-ahead-logged op plus
//!   the commit marker and fsync, the durability floor of a commit.
//!
//! Gauges recorded into the JSON report alongside the timings:
//!
//! * `delta/commit_speedup_permille` — rebuild min time over per-commit
//!   min time, ×1000 (10000 = a single-edge commit is 10× cheaper than
//!   rebuilding).
//!
//! With `BESTK_BENCH_JSON` set, all records land in the JSON report.

use bestk_bench::Bench;
use bestk_core::Metric;
use bestk_delta::{DeltaIndex, DeltaLog};
use bestk_graph::generators::{self, EdgeOp};

fn main() {
    let b = Bench::from_env_or_exit();
    assert!(
        !bestk_faults::is_enabled(),
        "fault injection must be disabled for benchmarks"
    );
    let g = generators::erdos_renyi_gnm(20_000, 100_000, 11);
    println!(
        "# graph: er_gnm_20k (n = {}, m = {})",
        g.num_vertices(),
        g.num_edges()
    );

    // A non-edge touching vertex 0, toggled in and back out each
    // iteration so the maintained index always returns to its base state.
    let nbrs = g.neighbors(0);
    let v = (1..bestk_graph::cast::u32_of(g.num_vertices()))
        .find(|v| !nbrs.contains(v))
        .expect("a non-edge from vertex 0");

    let rebuild = b.run("delta/rebuild_and_select", || {
        let index = DeltaIndex::build(&g);
        index.best(Metric::AverageDegree).expect("metric")
    });

    let mut index = DeltaIndex::build(&g);
    let pair = b.run("delta/edge_commit_pair_and_select", || {
        index.apply(&EdgeOp::Insert(0, v)).expect("insert");
        let first = index.best(Metric::AverageDegree).expect("metric");
        index.apply(&EdgeOp::Delete(0, v)).expect("delete");
        let second = index.best(Metric::AverageDegree).expect("metric");
        (first, second)
    });
    if let (Some(slow), Some(fast)) = (rebuild.iter().min(), pair.iter().min()) {
        // Two commits per iteration, so per-commit time is half the pair.
        if let Some(permille) = slow
            .as_nanos()
            .saturating_mul(1000)
            .checked_div(fast.as_nanos() / 2)
        {
            b.gauge("delta/commit_speedup_permille", permille);
        }
    }

    // Sustained stream throughput: a mixed stream applied forward, then
    // undone in reverse order (the inverse of a valid sequence is valid),
    // so the index state round-trips every iteration.
    let ops = generators::edge_stream_mixed(&g, 1000, 7);
    let undo: Vec<EdgeOp> = ops
        .iter()
        .rev()
        .map(|op| {
            let (u, w) = op.endpoints();
            if op.is_insert() {
                EdgeOp::Delete(u, w)
            } else {
                EdgeOp::Insert(u, w)
            }
        })
        .collect();
    let elements = 2 * ops.len() as u64;
    b.run_elements("delta/stream_mixed_2k", elements, || {
        for op in ops.iter().chain(&undo) {
            index.apply(op).expect("stream op");
        }
    });

    // The durability floor: one logged op plus marker + fsync.
    let dir = std::env::temp_dir().join(format!("bestk-bench-delta-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench tmp dir");
    let (mut log, _) = DeltaLog::open(dir.join("bench.wal")).expect("open wal");
    b.run("delta/wal_append_commit_durable", || {
        log.append(&EdgeOp::Insert(0, v)).expect("append");
        log.commit().expect("commit");
    });
    drop(log);
    let _ = std::fs::remove_dir_all(&dir);
    b.finish_or_exit();
}
