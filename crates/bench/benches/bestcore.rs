//! Micro-bench: Figure 8 in micro form — optimal (Algorithm 5) versus
//! baseline (§IV-B) for the best single k-core, plus the LCPS forest
//! construction itself (part of the optimal side's index building).

use bestk_bench::Bench;
use bestk_core::baseline::baseline_single_core_primaries;
use bestk_core::bestcore::single_core_primaries;
use bestk_core::{core_decomposition, CoreForest, OrderedGraph};
use bestk_graph::generators;

fn inputs() -> Vec<(&'static str, bestk_graph::CsrGraph)> {
    vec![
        (
            "chung_lu_50k",
            generators::chung_lu_power_law(50_000, 10.0, 2.4, 1),
        ),
        (
            "cliques_10k",
            generators::overlapping_cliques(10_000, 1_500, (5, 25), 3),
        ),
    ]
}

fn bench_forest_build(b: &Bench) {
    for (name, g) in inputs() {
        let d = core_decomposition(&g);
        b.run(&format!("lcps_forest_build/{name}"), || {
            CoreForest::build(&g, &d)
        });
    }
}

fn bench_single_core(b: &Bench) {
    for (name, g) in inputs() {
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        let f = CoreForest::build(&g, &d);
        b.run(&format!("bestcore_avg_degree/optimal/{name}"), || {
            single_core_primaries(&o, &f, false)
        });
        b.run(&format!("bestcore_avg_degree/baseline/{name}"), || {
            baseline_single_core_primaries(&g, &d, false)
        });
    }
}

fn bench_single_core_triangles(b: &Bench) {
    for (name, g) in inputs() {
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        let f = CoreForest::build(&g, &d);
        b.run(&format!("bestcore_clustering/optimal/{name}"), || {
            single_core_primaries(&o, &f, true)
        });
        b.run(&format!("bestcore_clustering/baseline/{name}"), || {
            baseline_single_core_primaries(&g, &d, true)
        });
    }
}

fn main() {
    let b = Bench::from_env_or_exit();
    bench_forest_build(&b);
    bench_single_core(&b);
    bench_single_core_triangles(&b);
    b.finish_or_exit();
}
