//! Criterion bench: Figure 8 in micro form — optimal (Algorithm 5) versus
//! baseline (§IV-B) for the best single k-core, plus the LCPS forest
//! construction itself (part of the optimal side's index building).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bestk_core::baseline::baseline_single_core_primaries;
use bestk_core::bestcore::single_core_primaries;
use bestk_core::{core_decomposition, CoreForest, OrderedGraph};
use bestk_graph::generators;

fn inputs() -> Vec<(&'static str, bestk_graph::CsrGraph)> {
    vec![
        ("chung_lu_50k", generators::chung_lu_power_law(50_000, 10.0, 2.4, 1)),
        ("cliques_10k", generators::overlapping_cliques(10_000, 1_500, (5, 25), 3)),
    ]
}

fn bench_forest_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("lcps_forest_build");
    group.sample_size(10);
    for (name, g) in inputs() {
        let d = core_decomposition(&g);
        group.bench_with_input(BenchmarkId::from_parameter(name), &(&g, &d), |b, (g, d)| {
            b.iter(|| black_box(CoreForest::build(g, d)))
        });
    }
    group.finish();
}

fn bench_single_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("bestcore_avg_degree");
    group.sample_size(10);
    for (name, g) in inputs() {
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        let f = CoreForest::build(&g, &d);
        group.bench_with_input(BenchmarkId::new("optimal", name), &(&o, &f), |b, (o, f)| {
            b.iter(|| black_box(single_core_primaries(o, f, false)))
        });
        group.bench_with_input(BenchmarkId::new("baseline", name), &(&g, &d), |b, (g, d)| {
            b.iter(|| black_box(baseline_single_core_primaries(g, d, false)))
        });
    }
    group.finish();
}

fn bench_single_core_triangles(c: &mut Criterion) {
    let mut group = c.benchmark_group("bestcore_clustering_coefficient");
    group.sample_size(10);
    for (name, g) in inputs() {
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        let f = CoreForest::build(&g, &d);
        group.bench_with_input(BenchmarkId::new("optimal", name), &(&o, &f), |b, (o, f)| {
            b.iter(|| black_box(single_core_primaries(o, f, true)))
        });
        group.bench_with_input(BenchmarkId::new("baseline", name), &(&g, &d), |b, (g, d)| {
            b.iter(|| black_box(baseline_single_core_primaries(g, d, true)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forest_build,
    bench_single_core,
    bench_single_core_triangles
);
criterion_main!(benches);
