//! Micro-bench: graph storage backends and snapshot cold starts.
//!
//! Measurements on an Erdős–Rényi stand-in (see DESIGN.md §14 "Storage
//! backends"):
//!
//! * `storage/cold_open_v1`   — full v1 `.bestk` deserialize (checksum +
//!   `from_parts` re-validation of every section) plus one answer;
//! * `storage/cold_open_v2`   — zero-copy v2 mmap open (header + profile
//!   checksums only) plus one answer, the near-instant cold-start path;
//! * `storage/scan_<backend>` — full neighbor-scan throughput per backend
//!   (csr / succinct / mapped), the price of each representation's reads.
//!
//! Gauges recorded into the JSON report alongside the timings:
//!
//! * `storage/compression_permille_succinct` — canonical CSR bytes over
//!   succinct bytes, ×1000 (2340 = 2.34× smaller);
//! * `storage/compression_permille_mapped`   — CSR bytes over the mapped
//!   graph section, ×1000;
//! * `storage/coldstart_speedup_permille`    — v1 min time over v2 min
//!   time, ×1000 (the mmap cold-start win).
//!
//! With `BESTK_BENCH_JSON` set, all records land in the JSON report.

use bestk_bench::Bench;
use bestk_core::Metric;
use bestk_engine::{snapshot, snapv2, Dataset, GraphStore, Query};
use bestk_exec::ExecPolicy;
use bestk_graph::{generators, GraphView, SuccinctCsr};

/// Sums every adjacency entry through the `GraphView` seam — the
/// representative read pattern (the peel and the metric sweeps are all
/// sequential neighbor scans).
fn scan<G: GraphView>(g: &G) -> u64 {
    let mut acc = 0u64;
    for v in g.vertices() {
        for u in g.neighbors(v) {
            acc = acc.wrapping_add(u64::from(u));
        }
    }
    acc
}

fn main() {
    let b = Bench::from_env_or_exit();
    assert!(
        !bestk_faults::is_enabled(),
        "fault injection must be disabled for benchmarks"
    );
    let policy = ExecPolicy::Sequential;
    let g = generators::erdos_renyi_gnm(20_000, 100_000, 11);
    let entries = 2 * g.num_edges() as u64;
    println!(
        "# graph: er_gnm_20k (n = {}, m = {})",
        g.num_vertices(),
        g.num_edges()
    );

    let dir = std::env::temp_dir().join(format!("bestk-bench-storage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench tmp dir");
    let v1_path = dir.join("er-v1.bestk");
    let v2_path = dir.join("er-v2.bestk");
    let mut built = Dataset::from_graph(g.clone());
    built.ensure_built(&policy);
    snapshot::save_path(&built, &v1_path).expect("save v1");
    snapv2::save_path(&built, &v2_path).expect("save v2");
    let query = Query::BestKSet {
        metric: Metric::AverageDegree,
    };

    let v1 = b.run("storage/cold_open_v1", || {
        let ds = snapshot::load_path(&v1_path).expect("v1 load");
        ds.answer(&query).expect("v1 answer")
    });
    let v2 = b.run("storage/cold_open_v2", || {
        let ds = snapv2::open(&v2_path).expect("v2 open");
        ds.answer(&query).expect("v2 answer")
    });
    if let (Some(a), Some(b_min)) = (v1.iter().min(), v2.iter().min()) {
        if !b_min.is_zero() {
            let speedup = a.as_nanos().saturating_mul(1000) / b_min.as_nanos();
            b.gauge("storage/coldstart_speedup_permille", speedup);
        }
    }

    // Neighbor-scan throughput per backend, all through GraphView.
    let csr = GraphStore::from(g.clone());
    let succinct = GraphStore::from(SuccinctCsr::from_csr(&g));
    let mapped_ds = snapv2::open(&v2_path).expect("v2 open");
    let mapped = mapped_ds.graph();
    let want = scan(&csr);
    assert_eq!(scan(&succinct), want, "succinct scan diverged");
    assert_eq!(scan(mapped), want, "mapped scan diverged");
    b.run_elements("storage/scan_csr", entries, || scan(&csr));
    b.run_elements("storage/scan_succinct", entries, || scan(&succinct));
    b.run_elements("storage/scan_mapped", entries, || scan(mapped));

    let ratio = |s: &GraphStore| (s.compression_ratio() * 1000.0).round() as u128;
    b.gauge("storage/compression_permille_succinct", ratio(&succinct));
    b.gauge("storage/compression_permille_mapped", ratio(mapped));
    println!(
        "# resident heap bytes: csr={} succinct={} mapped={}",
        csr.resident_heap_bytes(),
        succinct.resident_heap_bytes(),
        mapped.resident_heap_bytes()
    );
    drop(mapped_ds);

    let _ = std::fs::remove_dir_all(&dir);
    b.finish_or_exit();
}
