//! Criterion bench: the §VI-B truss extension — decomposition cost, and the
//! optimal truss-set profile versus the per-k baseline rescoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bestk_graph::generators;
use bestk_truss::baseline::baseline_truss_set_primaries;
use bestk_truss::{truss_set_profile, EdgeIndex};

fn inputs() -> Vec<(&'static str, bestk_graph::CsrGraph)> {
    vec![
        ("chung_lu_20k", generators::chung_lu_power_law(20_000, 10.0, 2.4, 1)),
        ("cliques_5k", generators::overlapping_cliques(5_000, 800, (4, 16), 3)),
    ]
}

fn bench_truss_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("truss_decomposition");
    group.sample_size(10);
    for (name, g) in inputs() {
        let idx = EdgeIndex::build(&g);
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &(&g, &idx), |b, (g, idx)| {
            b.iter(|| black_box(bestk_truss::decomposition::truss_decomposition_with_index(g, idx)))
        });
    }
    group.finish();
}

fn bench_truss_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("best_k_truss_set");
    group.sample_size(10);
    for (name, g) in inputs() {
        let idx = EdgeIndex::build(&g);
        let t = bestk_truss::decomposition::truss_decomposition_with_index(&g, &idx);
        group.bench_with_input(
            BenchmarkId::new("optimal", name),
            &(&g, &idx, &t),
            |b, (g, idx, t)| b.iter(|| black_box(truss_set_profile(g, idx, t))),
        );
        group.bench_with_input(
            BenchmarkId::new("baseline", name),
            &(&g, &idx, &t),
            |b, (g, idx, t)| b.iter(|| black_box(baseline_truss_set_primaries(g, idx, t))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_truss_decomposition, bench_truss_profile);
criterion_main!(benches);
