//! Micro-bench: the §VI-B truss extension — decomposition cost, and the
//! optimal truss-set profile versus the per-k baseline rescoring.

use bestk_bench::Bench;
use bestk_graph::generators;
use bestk_truss::baseline::baseline_truss_set_primaries;
use bestk_truss::{truss_set_profile, EdgeIndex};

fn inputs() -> Vec<(&'static str, bestk_graph::CsrGraph)> {
    vec![
        (
            "chung_lu_20k",
            generators::chung_lu_power_law(20_000, 10.0, 2.4, 1),
        ),
        (
            "cliques_5k",
            generators::overlapping_cliques(5_000, 800, (4, 16), 3),
        ),
    ]
}

fn bench_truss_decomposition(b: &Bench) {
    for (name, g) in inputs() {
        let idx = EdgeIndex::build(&g);
        let m = g.num_edges() as u64;
        b.run_elements(&format!("truss_decomposition/{name}"), m, || {
            bestk_truss::decomposition::truss_decomposition_with_index(&g, &idx)
        });
    }
}

fn bench_truss_profile(b: &Bench) {
    for (name, g) in inputs() {
        let idx = EdgeIndex::build(&g);
        let t = bestk_truss::decomposition::truss_decomposition_with_index(&g, &idx);
        b.run(&format!("best_k_truss_set/optimal/{name}"), || {
            truss_set_profile(&g, &idx, &t)
        });
        b.run(&format!("best_k_truss_set/baseline/{name}"), || {
            baseline_truss_set_primaries(&g, &idx, &t)
        });
    }
}

fn main() {
    let b = Bench::from_env_or_exit();
    bench_truss_decomposition(&b);
    bench_truss_profile(&b);
    b.finish_or_exit();
}
