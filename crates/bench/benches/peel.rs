//! Micro-bench: the two peel strategies on the 20k-vertex deep-shell
//! stand-in (`k_chain(197)`: n = 19,700, `kmax` = 197 — the regime the
//! paper's Table III datasets occupy once their shell structure matters).
//!
//! `core_decomposition_with` at 1 thread is the sequential oracle — a
//! per-level rescan transcription of the canonical peel spec,
//! `O(n·kmax + m)`. At N > 1 threads it dispatches to the parallel
//! bucket-frontier primary: an `O(n + m)` lazy bucket queue whose
//! decrement events fan out over the shared runtime. The benchmark pins
//! the 1-vs-N gap:
//!
//! * `peel/decompose/tN` — full decomposition under the dispatched
//!   strategy at N threads;
//! * `peel/speedup_tN_permille` — oracle min time over tN min time,
//!   ×1000 (2000 = the primary is 2× faster than the oracle);
//! * `peel/speedup_permille` — the best of those ratios; the committed
//!   `BENCH_peel.json` must carry this gauge above 1000, and CI's bench
//!   smoke re-checks it on every run.
//!
//! On a single-core host the ratio is the algorithmic gap alone (the
//! level rescans the lazy buckets avoid); extra cores widen it further.
//! With `BESTK_BENCH_JSON` set, all records land in the JSON report.

use std::time::Duration;

use bestk_bench::Bench;
use bestk_core::core_decomposition_with;
use bestk_exec::ExecPolicy;
use bestk_graph::generators;

const THREADS: [usize; 3] = [1, 2, 4];

fn main() {
    let b = Bench::from_env_or_exit();
    assert!(
        !bestk_faults::is_enabled(),
        "fault injection must be disabled for benchmarks"
    );
    let g = generators::k_chain(197);
    println!(
        "# graph: k_chain_197 (n = {}, m = {})",
        g.num_vertices(),
        g.num_edges()
    );

    let mut base: Option<Duration> = None;
    let mut best_permille: u128 = 0;
    for threads in THREADS {
        let policy = ExecPolicy::with_threads(threads).expect("thread count");
        let timings = b.run_threads(&format!("peel/decompose/t{threads}"), threads, || {
            core_decomposition_with(&g, &policy)
        });
        let min = timings.iter().min().copied();
        match (threads, base, min) {
            (1, _, m) => base = m,
            (_, Some(oracle), Some(m)) if m > Duration::ZERO => {
                let permille = oracle.as_nanos().saturating_mul(1000) / m.as_nanos();
                b.gauge(&format!("peel/speedup_t{threads}_permille"), permille);
                best_permille = best_permille.max(permille);
                println!(
                    "{:<48} speedup {:.2}x vs sequential oracle",
                    format!("peel/decompose/t{threads}"),
                    oracle.as_secs_f64() / m.as_secs_f64()
                );
            }
            _ => {}
        }
    }
    if base.is_some() {
        b.gauge("peel/speedup_permille", best_permille);
    }
    b.finish_or_exit();
}
