//! Micro-bench: triangle counting strategies (DESIGN.md §6.4 ablation) —
//! degree-ordered forward counting, rank-ordered marking (what Algorithm 3
//! uses), and the paper's literal merge-intersection variant.

use bestk_bench::Bench;
use bestk_core::triangles::{
    count_triangles, count_triangles_merge, count_triangles_ordered, count_triangles_parallel,
};
use bestk_core::{core_decomposition, OrderedGraph};
use bestk_graph::generators;

fn bench_triangle_counting(b: &Bench) {
    for (name, g) in [
        (
            "chung_lu_50k",
            generators::chung_lu_power_law(50_000, 10.0, 2.4, 1),
        ),
        (
            "cliques_10k",
            generators::overlapping_cliques(10_000, 1_500, (5, 25), 3),
        ),
        ("rmat_s15", generators::rmat(15, 12, 0.57, 0.19, 0.19, 2)),
    ] {
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        let m = g.num_edges() as u64;
        b.run_elements(&format!("triangles/forward_degree/{name}"), m, || {
            count_triangles(&g)
        });
        b.run_elements(&format!("triangles/rank_marking/{name}"), m, || {
            count_triangles_ordered(&o)
        });
        b.run_elements(&format!("triangles/rank_merge/{name}"), m, || {
            count_triangles_merge(&o)
        });
        b.run_elements(&format!("triangles/forward_parallel4/{name}"), m, || {
            count_triangles_parallel(&g, 4)
        });
    }
}

fn main() {
    let b = Bench::from_env_or_exit();
    bench_triangle_counting(&b);
    b.finish_or_exit();
}
