//! Criterion bench: triangle counting strategies (DESIGN.md §6.4 ablation) —
//! degree-ordered forward counting, rank-ordered marking (what Algorithm 3
//! uses), and the paper's literal merge-intersection variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bestk_core::triangles::{
    count_triangles, count_triangles_merge, count_triangles_ordered, count_triangles_parallel,
};
use bestk_core::{core_decomposition, OrderedGraph};
use bestk_graph::generators;

fn bench_triangle_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangle_counting");
    group.sample_size(10);
    for (name, g) in [
        ("chung_lu_50k", generators::chung_lu_power_law(50_000, 10.0, 2.4, 1)),
        ("cliques_10k", generators::overlapping_cliques(10_000, 1_500, (5, 25), 3)),
        ("rmat_s15", generators::rmat(15, 12, 0.57, 0.19, 0.19, 2)),
    ] {
        let d = core_decomposition(&g);
        let o = OrderedGraph::build(&g, &d);
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        group.bench_with_input(BenchmarkId::new("forward_degree", name), &g, |b, g| {
            b.iter(|| black_box(count_triangles(g)))
        });
        group.bench_with_input(BenchmarkId::new("rank_marking", name), &o, |b, o| {
            b.iter(|| black_box(count_triangles_ordered(o)))
        });
        group.bench_with_input(BenchmarkId::new("rank_merge", name), &o, |b, o| {
            b.iter(|| black_box(count_triangles_merge(o)))
        });
        group.bench_with_input(BenchmarkId::new("forward_parallel4", name), &g, |b, g| {
            b.iter(|| black_box(count_triangles_parallel(g, 4)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_triangle_counting);
criterion_main!(benches);
