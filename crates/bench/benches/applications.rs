//! Micro-bench: the §V-D applications (Tables VIII and IX in micro form) —
//! densest-subgraph solvers and size-constrained k-core queries.

use bestk_apps::{charikar_peeling, core_app, opt_d, opt_sc};
use bestk_bench::Bench;
use bestk_core::analyze_basic;
use bestk_graph::generators;

fn bench_densest(b: &Bench) {
    for (name, g) in [
        (
            "chung_lu_50k",
            generators::chung_lu_power_law(50_000, 10.0, 2.4, 1),
        ),
        (
            "cliques_10k",
            generators::overlapping_cliques(10_000, 1_500, (5, 25), 3),
        ),
    ] {
        // End-to-end timings (analysis included), matching Table VIII.
        b.run(&format!("densest/opt_d_end_to_end/{name}"), || {
            let a = analyze_basic(&g);
            opt_d(&g, &a)
        });
        b.run(&format!("densest/core_app_end_to_end/{name}"), || {
            let a = analyze_basic(&g);
            core_app(&g, &a)
        });
        b.run(&format!("densest/charikar_peeling/{name}"), || {
            charikar_peeling(&g)
        });
    }
}

fn bench_size_constrained(b: &Bench) {
    let g = generators::chung_lu_power_law(50_000, 12.0, 2.3, 9);
    let a = analyze_basic(&g);
    let d = a.decomposition();
    // A batch of feasible queries.
    let queries: Vec<u32> = g
        .vertices()
        .filter(|&v| d.coreness(v) >= 8)
        .take(64)
        .collect();
    assert!(!queries.is_empty());
    b.run("size_constrained_core/opt_sc_batch64", || {
        let mut hits = 0usize;
        for &q in &queries {
            if let Some(res) = opt_sc(&g, &a, 6, 50, q) {
                hits += res.hits(50, 0.05) as usize;
            }
        }
        hits
    });
}

fn main() {
    let b = Bench::from_env_or_exit();
    bench_densest(&b);
    bench_size_constrained(&b);
    b.finish_or_exit();
}
