//! Criterion bench: the §V-D applications (Tables VIII and IX in micro
//! form) — densest-subgraph solvers and size-constrained k-core queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bestk_apps::{charikar_peeling, core_app, opt_d, opt_sc};
use bestk_core::analyze_basic;
use bestk_graph::generators;

fn bench_densest(c: &mut Criterion) {
    let mut group = c.benchmark_group("densest_subgraph");
    group.sample_size(10);
    for (name, g) in [
        ("chung_lu_50k", generators::chung_lu_power_law(50_000, 10.0, 2.4, 1)),
        ("cliques_10k", generators::overlapping_cliques(10_000, 1_500, (5, 25), 3)),
    ] {
        // End-to-end timings (analysis included), matching Table VIII.
        group.bench_with_input(BenchmarkId::new("opt_d_end_to_end", name), &g, |b, g| {
            b.iter(|| {
                let a = analyze_basic(g);
                black_box(opt_d(g, &a))
            })
        });
        group.bench_with_input(BenchmarkId::new("core_app_end_to_end", name), &g, |b, g| {
            b.iter(|| {
                let a = analyze_basic(g);
                black_box(core_app(g, &a))
            })
        });
        group.bench_with_input(BenchmarkId::new("charikar_peeling", name), &g, |b, g| {
            b.iter(|| black_box(charikar_peeling(g)))
        });
    }
    group.finish();
}

fn bench_size_constrained(c: &mut Criterion) {
    let g = generators::chung_lu_power_law(50_000, 12.0, 2.3, 9);
    let a = analyze_basic(&g);
    let d = a.decomposition();
    // A batch of feasible queries.
    let queries: Vec<u32> = g.vertices().filter(|&v| d.coreness(v) >= 8).take(64).collect();
    assert!(!queries.is_empty());
    let mut group = c.benchmark_group("size_constrained_core");
    group.sample_size(10);
    group.bench_function("opt_sc_batch64", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &q in &queries {
                if let Some(res) = opt_sc(&g, &a, 6, 50, q) {
                    hits += res.hits(50, 0.05) as usize;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_densest, bench_size_constrained);
criterion_main!(benches);
