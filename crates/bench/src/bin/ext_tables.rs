//! Beyond-paper extension tables: best k-truss set (§VI-B) and weighted
//! best-s (§VII) on the dataset stand-ins.
//!
//! Defaults to the four smaller datasets (truss decomposition is
//! `O(m^1.5)` and the dense stand-ins are deliberately hard); pass
//! `--datasets=...` to override.

use bestk_bench::{dataset_filter_from_args, spec_by_key, time, TableWriter};
use bestk_core::weighted::{weighted_core_decomposition, weighted_core_set_profile};
use bestk_core::Metric;
use bestk_graph::cast;
use bestk_graph::rng::Xoshiro256;
use bestk_graph::weighted::WeightedGraphBuilder;
use bestk_truss::{truss_set_profile, EdgeIndex};

fn main() {
    let specs = dataset_filter_from_args()
        .map(|keys| {
            keys.iter()
                .map(|k| {
                    spec_by_key(k).unwrap_or_else(|| {
                        eprintln!("unknown dataset key {k:?}");
                        std::process::exit(2)
                    })
                })
                .collect::<Vec<_>>()
        })
        .unwrap_or_else(|| {
            ["ap", "g", "d", "y"]
                .iter()
                .filter_map(|k| spec_by_key(k))
                .collect()
        });

    // --- Best k-truss set per metric.
    let mut header: Vec<String> = vec!["Algo".into()];
    header.extend(specs.iter().map(|s| s.key.to_uppercase()));
    let mut truss_rows: Vec<Vec<String>> = Metric::ALL
        .iter()
        .map(|m| vec![format!("TS-{}", m.abbrev())])
        .collect();
    let mut tmax_row: Vec<String> = vec!["tmax".into()];
    let mut time_row: Vec<String> = vec!["decomp (s)".into()];
    for spec in &specs {
        eprintln!("truss-decomposing {} ...", spec.key);
        let g = bestk_bench::load(spec);
        let idx = EdgeIndex::build(&g);
        let (t, took) =
            time(|| bestk_truss::decomposition::truss_decomposition_with_index(&g, &idx));
        let profile = truss_set_profile(&g, &idx, &t);
        tmax_row.push(t.tmax().to_string());
        time_row.push(format!("{:.2}", took.as_secs_f64()));
        for (i, m) in Metric::ALL.iter().enumerate() {
            truss_rows[i].push(
                profile
                    .best(m)
                    .map(|b| b.k.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
    println!("Extension table (§VI-B): best k for the k-truss set\n");
    let mut table = TableWriter::new(header.clone());
    for row in truss_rows {
        table.row(row);
    }
    table.row(tmax_row);
    table.row(time_row);
    table.print();

    // --- Weighted best-s: random integer weights over the same topology.
    println!("\nExtension table (§VII): best s for the weighted s-core set (weights 1..9)\n");
    let weighted_metrics = [
        Metric::AverageDegree,
        Metric::Conductance,
        Metric::Modularity,
    ];
    let mut wrows: Vec<Vec<String>> = weighted_metrics
        .iter()
        .map(|m| vec![format!("WS-{}", m.abbrev())])
        .collect();
    let mut smax_row: Vec<String> = vec!["smax".into()];
    for spec in &specs {
        eprintln!("weighted-decomposing {} ...", spec.key);
        let g = bestk_bench::load(spec);
        let mut rng = Xoshiro256::seed_from_u64(spec.seed ^ 0x77);
        let mut b = WeightedGraphBuilder::new();
        b.reserve_vertices(g.num_vertices());
        for (u, v) in g.edges() {
            b.add_edge(u, v, 1 + cast::u32_from_u64(rng.next_below(9)));
        }
        let wg = b.build();
        let wd = weighted_core_decomposition(&wg);
        let profile = weighted_core_set_profile(&wg, &wd);
        smax_row.push(wd.smax().to_string());
        for (i, m) in weighted_metrics.iter().enumerate() {
            wrows[i].push(
                profile
                    .best(m)
                    .map(|(s, _)| s.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
    let mut wtable = TableWriter::new(header);
    for row in wrows {
        wtable.row(row);
    }
    wtable.row(smax_row);
    wtable.print();
}
