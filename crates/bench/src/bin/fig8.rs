//! Figure 8 reproduction: runtime of finding the best single k-core —
//! `Baseline` (per-core rescoring, §IV-B) versus `Optimal` (Algorithm 5).
//!
//! The optimal side's index-building now includes the LCPS forest
//! construction on top of the vertex ordering, matching the paper's
//! description of Figure 8.

use std::time::Duration;

use bestk_bench::{selected_specs, time, timer::fmt_duration, TableWriter};
use bestk_core::baseline::baseline_single_core_primaries;
use bestk_core::bestcore::single_core_primaries;
use bestk_core::{core_decomposition, CommunityMetric, CoreForest, Metric, OrderedGraph};

/// Same DNF rule as `fig7`.
const BASELINE_CC_EDGE_CAP: usize = 3_000_000;

fn main() {
    let metrics = [
        Metric::AverageDegree,
        Metric::Conductance,
        Metric::Modularity,
        Metric::ClusteringCoefficient,
    ];
    let mut table = TableWriter::new([
        "dataset",
        "metric",
        "core-decomp",
        "index-build",
        "opt-score",
        "base-score",
        "Optimal total",
        "Baseline total",
        "speedup",
    ]);
    for spec in selected_specs() {
        eprintln!("running {} ...", spec.key);
        let g = bestk_bench::load(&spec);
        let (d, t_decomp) = time(|| core_decomposition(&g));
        let ((o, forest), t_index) =
            time(|| (OrderedGraph::build(&g, &d), CoreForest::build(&g, &d)));
        for metric in metrics {
            let needs_tri = metric.needs_triangles();
            let (_, t_opt) = time(|| single_core_primaries(&o, &forest, needs_tri));
            let skip_baseline = needs_tri && g.num_edges() > BASELINE_CC_EDGE_CAP;
            let t_base = if skip_baseline {
                None
            } else {
                Some(time(|| baseline_single_core_primaries(&g, &d, needs_tri)).1)
            };
            let optimal_total = t_decomp + t_index + t_opt;
            let (base_cell, base_total_cell, speedup_cell) = match t_base {
                Some(tb) => {
                    let baseline_total = t_decomp + tb;
                    (
                        fmt_duration(tb),
                        fmt_duration(baseline_total),
                        format!(
                            "{:.0}x (score-only {:.0}x)",
                            baseline_total.as_secs_f64() / optimal_total.as_secs_f64(),
                            tb.as_secs_f64() / t_opt.max(Duration::from_micros(1)).as_secs_f64()
                        ),
                    )
                }
                None => ("DNF".into(), "DNF".into(), "-".into()),
            };
            table.row([
                spec.key.to_string(),
                metric.abbrev().to_string(),
                fmt_duration(t_decomp),
                fmt_duration(t_index),
                fmt_duration(t_opt),
                base_cell,
                fmt_duration(optimal_total),
                base_total_cell,
                speedup_cell,
            ]);
        }
    }
    println!("Figure 8 (stand-ins): runtime of finding the best single k-core\n");
    table.print();
}
