//! Figure 6 reproduction: the score of every individual k-core.
//!
//! The paper ranks all k-cores by ascending k (ties by ascending score) and
//! plots the score against the sequence id `c`, smoothing with a moving
//! average over consecutive cores. We emit the same smoothed series as CSV
//! for the LiveJournal / Orkut / FriendSter stand-ins.

use bestk_core::{analyze_basic, Metric};

const FIG6_METRICS: [Metric; 4] = [
    Metric::AverageDegree,
    Metric::CutRatio,
    Metric::Conductance,
    Metric::Modularity,
];

fn main() {
    let specs = bestk_bench::dataset_filter_from_args()
        .map(|keys| {
            keys.iter()
                .map(|k| {
                    bestk_bench::spec_by_key(k).unwrap_or_else(|| {
                        eprintln!("unknown dataset key {k:?}");
                        std::process::exit(2)
                    })
                })
                .collect::<Vec<_>>()
        })
        .unwrap_or_else(|| {
            ["lj", "o", "fs"]
                .iter()
                .filter_map(|k| bestk_bench::spec_by_key(k))
                .collect()
        });

    for metric in FIG6_METRICS {
        println!("# Figure 6 ({}): score of every k-core", metric.abbrev());
        println!("dataset,c,k,score_smoothed");
        for spec in &specs {
            let g = bestk_bench::load(spec);
            let a = analyze_basic(&g);
            let seq = a.single_core_scores(&metric);
            // The paper smooths LiveJournal with window 20, the others 5.
            let window = if seq.len() > 1000 { 20 } else { 5 };
            for (c, chunk) in seq.chunks(window).enumerate() {
                // bestk-analyze: allow(float-reduce) — in-order sum over one small chunk
                let avg = chunk.iter().map(|(_, s)| s).sum::<f64>() / chunk.len() as f64;
                let k = chunk[0].0;
                println!("{},{},{},{}", spec.key, c * window, k, avg);
            }
            eprintln!("{}: {} distinct k-cores", spec.key, seq.len());
        }
        println!();
    }
}
