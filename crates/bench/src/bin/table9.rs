//! Table IX reproduction: `Opt-SC` hit rate on size-constrained k-core
//! queries.
//!
//! On the DBLP stand-in, for each query-vertex coreness class `c(v)` and
//! each `k ∈ {10, 15, 20, 30, 40}`, the harness issues random queries with a
//! size target `h` and reports the fraction answered with ≤ 5% size
//! deviation — the paper's hit criterion.

use bestk_apps::opt_sc;
use bestk_bench::{spec_by_key, TableWriter};
use bestk_core::analyze_basic;
use bestk_graph::rng::Xoshiro256;

const KS: [u32; 5] = [10, 15, 20, 30, 40];
const QUERIES_PER_CELL: usize = 50;
const SIZE_TARGET: usize = 64;
const TOLERANCE: f64 = 0.05;

fn main() {
    let key = bestk_bench::dataset_filter_from_args()
        .and_then(|keys| keys.first().cloned())
        .unwrap_or_else(|| "d".to_string());
    let Some(spec) = spec_by_key(&key) else {
        eprintln!("unknown dataset key {key:?}");
        std::process::exit(2);
    };
    eprintln!("running Opt-SC queries on {} ...", spec.key);
    let g = bestk_bench::load(&spec);
    let analysis = analyze_basic(&g);
    let d = analysis.decomposition();

    // Coreness classes: five representative coreness values that actually
    // occur, spread over the k-range (like the paper's 30/43/51/64/113 rows).
    let kmax = d.kmax();
    let mut classes: Vec<u32> = [kmax / 4, kmax / 3, kmax / 2, (2 * kmax) / 3, kmax]
        .into_iter()
        .filter_map(|target| {
            // Snap to the nearest coreness with at least one vertex.
            (0..=kmax)
                .filter(|&c| !d.shell(c).is_empty())
                .min_by_key(|&c| c.abs_diff(target))
        })
        .collect();
    classes.sort_unstable();
    classes.dedup();

    let mut header = vec!["c(v)".to_string()];
    header.extend(KS.iter().map(|k| format!("k = {k}")));
    let mut table = TableWriter::new(header);
    let mut rng = Xoshiro256::seed_from_u64(0x5C9);
    for &class in &classes {
        let shell = d.shell(class);
        let mut row = vec![class.to_string()];
        for &k in &KS {
            if class < k {
                row.push("/".to_string());
                continue;
            }
            let (mut hits, mut total) = (0usize, 0usize);
            for _ in 0..QUERIES_PER_CELL {
                let q = shell[rng.next_index(shell.len())];
                total += 1;
                if let Some(res) = opt_sc(&g, &analysis, k, SIZE_TARGET, q) {
                    if res.hits(SIZE_TARGET, TOLERANCE) {
                        hits += 1;
                    }
                }
            }
            row.push(format!("{:.1}%", 100.0 * hits as f64 / total as f64));
        }
        table.row(row);
    }
    println!(
        "Table IX (stand-in {}): Opt-SC hit rate (h = {SIZE_TARGET}, ±{:.0}%)\n",
        spec.key,
        TOLERANCE * 100.0
    );
    table.print();
    println!("\n'/' marks infeasible cells (query coreness below k), as in the paper.");
}
