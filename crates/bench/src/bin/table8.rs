//! Table VIII reproduction: `Opt-D` on densest subgraph and maximum clique.
//!
//! Per dataset: the average degree and runtime of a `CoreApp`-style
//! approximation versus `Opt-D`, whether the maximum clique is contained in
//! `Opt-D`'s output `S*`, and `|S*| / n`.
//!
//! The maximum-clique check runs the exact branch-and-bound solver; on the
//! densest stand-ins this can take a while, so it is skipped when the
//! degeneracy exceeds a cap (pass `--mc-cap=<kmax>` to change it).

use bestk_apps::clique::maximum_clique_with_budget;
use bestk_apps::{contains_clique, core_app, opt_d};
use bestk_bench::{selected_specs, time, TableWriter};
use bestk_core::analyze_basic;

fn mc_cap() -> u32 {
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--mc-cap=") {
            return v.parse().unwrap_or_else(|e| {
                eprintln!("bad --mc-cap value {v:?}: {e}");
                std::process::exit(2)
            });
        }
    }
    600
}

fn main() {
    let cap = mc_cap();
    let mut table = TableWriter::new([
        "dataset",
        "CoreApp d_avg",
        "CoreApp time (s)",
        "Opt-D d_avg",
        "Opt-D time (s)",
        "MC ⊆ S*",
        "|S*|/n",
    ]);
    for spec in selected_specs() {
        eprintln!("running {} ...", spec.key);
        let g = bestk_bench::load(&spec);
        // Both methods share the analysis; time it into both columns the way
        // the paper's end-to-end numbers do.
        let (analysis, t_analysis) = time(|| analyze_basic(&g));
        let (ca, t_ca) = time(|| core_app(&g, &analysis));
        let (od, t_od) = time(|| opt_d(&g, &analysis));
        let mc_cell = if analysis.kmax() <= cap {
            let (clique, exact) = maximum_clique_with_budget(
                &g,
                analysis.decomposition(),
                Some(std::time::Duration::from_secs(60)),
            );
            let qual = if exact { "MC" } else { "MC>=" };
            if contains_clique(&od.vertices, &clique) {
                format!("yes (|{qual}|={})", clique.len())
            } else {
                format!("no (|{qual}|={})", clique.len())
            }
        } else {
            "skipped (kmax>cap)".to_string()
        };
        table.row([
            spec.key.to_string(),
            format!("{:.2}", ca.average_degree),
            format!("{:.3}", (t_analysis + t_ca).as_secs_f64()),
            format!("{:.2}", od.average_degree),
            format!("{:.3}", (t_analysis + t_od).as_secs_f64()),
            mc_cell,
            format!(
                "{:.3}%",
                100.0 * od.vertices.len() as f64 / g.num_vertices() as f64
            ),
        ]);
    }
    println!("Table VIII (stand-ins): Opt-D on densest subgraph & maximum clique\n");
    table.print();
}
