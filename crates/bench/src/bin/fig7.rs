//! Figure 7 reproduction: runtime of finding the best k-core set —
//! `Baseline` (per-k rescoring, §III-A) versus `Optimal` (Algorithms 2/3)
//! — for four metrics across all datasets, with the paper's cost breakdown:
//!
//! * baseline  = core decomposition + baseline score computation
//! * optimal   = core decomposition + index building (vertex ordering) +
//!   optimal score computation
//!
//! Following the paper, the baseline's clustering-coefficient runs are
//! skipped on the largest datasets (they "cannot finish within 10⁵ s"
//! there; here we cap per-dataset baseline work instead of burning hours).

use std::time::Duration;

use bestk_bench::{selected_specs, time, timer::fmt_duration, TableWriter};
use bestk_core::baseline::baseline_core_set_primaries;
use bestk_core::bestkset::{core_set_primaries, core_set_primaries_with_triangles};
use bestk_core::{core_decomposition, CommunityMetric, Metric, OrderedGraph};

/// Baseline triangle recounting is skipped above this edge count (mirrors
/// the paper's DNF entries on Hollywood / Human-Jung / FriendSter).
const BASELINE_CC_EDGE_CAP: usize = 3_000_000;

fn main() {
    let metrics = [
        Metric::AverageDegree,
        Metric::Conductance,
        Metric::Modularity,
        Metric::ClusteringCoefficient,
    ];
    let mut table = TableWriter::new([
        "dataset",
        "metric",
        "core-decomp",
        "index-build",
        "opt-score",
        "base-score",
        "Optimal total",
        "Baseline total",
        "speedup",
    ]);
    for spec in selected_specs() {
        eprintln!("running {} ...", spec.key);
        let g = bestk_bench::load(&spec);
        let (d, t_decomp) = time(|| core_decomposition(&g));
        let (o, t_index) = time(|| OrderedGraph::build(&g, &d));
        for metric in metrics {
            let needs_tri = metric.needs_triangles();
            let (_, t_opt) = if needs_tri {
                time(|| core_set_primaries_with_triangles(&o))
            } else {
                time(|| core_set_primaries(&o))
            };
            let skip_baseline = needs_tri && g.num_edges() > BASELINE_CC_EDGE_CAP;
            let t_base = if skip_baseline {
                None
            } else {
                Some(time(|| baseline_core_set_primaries(&g, &d, needs_tri)).1)
            };
            let optimal_total = t_decomp + t_index + t_opt;
            let (base_cell, base_total_cell, speedup_cell) = match t_base {
                Some(tb) => {
                    let baseline_total = t_decomp + tb;
                    (
                        fmt_duration(tb),
                        fmt_duration(baseline_total),
                        format!(
                            "{:.0}x (score-only {:.0}x)",
                            baseline_total.as_secs_f64() / optimal_total.as_secs_f64(),
                            tb.as_secs_f64() / t_opt.max(Duration::from_micros(1)).as_secs_f64()
                        ),
                    )
                }
                None => ("DNF".into(), "DNF".into(), "-".into()),
            };
            table.row([
                spec.key.to_string(),
                metric.abbrev().to_string(),
                fmt_duration(t_decomp),
                fmt_duration(t_index),
                fmt_duration(t_opt),
                base_cell,
                fmt_duration(optimal_total),
                base_total_cell,
                speedup_cell,
            ]);
        }
    }
    println!("Figure 7 (stand-ins): runtime of finding the best k-core set\n");
    table.print();
}
