//! Figure 5 reproduction: the score of every k-core set as a function of k.
//!
//! The paper plots four metrics (average degree, cut ratio, conductance,
//! modularity) on LiveJournal, Orkut, and FriendSter; we emit the same
//! series as CSV (one file-like block per metric on stdout) for the
//! corresponding stand-ins, plus a coarse ASCII sparkline so the shape is
//! visible without plotting.

use bestk_core::{analyze_basic, Metric};

const FIG5_METRICS: [Metric; 4] = [
    Metric::AverageDegree,
    Metric::CutRatio,
    Metric::Conductance,
    Metric::Modularity,
];

fn main() {
    let specs = bestk_bench::dataset_filter_from_args()
        .map(|keys| {
            keys.iter()
                .map(|k| {
                    bestk_bench::spec_by_key(k).unwrap_or_else(|| {
                        eprintln!("unknown dataset key {k:?}");
                        std::process::exit(2)
                    })
                })
                .collect::<Vec<_>>()
        })
        .unwrap_or_else(|| {
            ["lj", "o", "fs"]
                .iter()
                .filter_map(|k| bestk_bench::spec_by_key(k))
                .collect()
        });

    for metric in FIG5_METRICS {
        println!(
            "# Figure 5 ({}): score of every k-core set",
            metric.abbrev()
        );
        println!("dataset,k,score");
        for spec in &specs {
            let g = bestk_bench::load(spec);
            let a = analyze_basic(&g);
            let scores = a.core_set_scores(&metric);
            for (k, s) in scores.iter().enumerate() {
                if s.is_finite() {
                    println!("{},{},{}", spec.key, k, s);
                }
            }
            sparkline(spec.key, &scores);
        }
        println!();
    }
}

/// Prints a 60-char ASCII sparkline of the finite score series (comment
/// lines, so the CSV stays machine-readable).
fn sparkline(name: &str, scores: &[f64]) {
    let finite: Vec<f64> = scores.iter().copied().filter(|s| s.is_finite()).collect();
    if finite.is_empty() {
        return;
    }
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &s| {
            (lo.min(s), hi.max(s))
        });
    let ramp: &[u8] = b" .:-=+*#%@";
    let width = 60.min(finite.len());
    let mut line = String::new();
    for i in 0..width {
        let idx = i * finite.len() / width;
        let s = finite[idx];
        let t = if hi > lo { (s - lo) / (hi - lo) } else { 0.5 };
        let c = ramp[((t * (ramp.len() - 1) as f64).round() as usize).min(ramp.len() - 1)];
        line.push(c as char);
    }
    println!("# {name:>4} |{line}| lo={lo:.4} hi={hi:.4}");
}
