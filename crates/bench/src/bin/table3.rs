//! Table III reproduction: statistics of the (synthetic stand-in) datasets.
//!
//! Prints `n`, `m`, average degree, and `kmax` per dataset, mirroring the
//! columns of the paper's Table III.

use bestk_bench::{selected_specs, time, TableWriter};
use bestk_core::core_decomposition;
use bestk_graph::stats::graph_stats;

fn main() {
    let mut table = TableWriter::new([
        "Dataset",
        "stand-in key",
        "n",
        "m",
        "d_avg",
        "kmax",
        "load (s)",
    ]);
    for spec in selected_specs() {
        let (g, load_time) = time(|| bestk_bench::load(&spec));
        let s = graph_stats(&g);
        let d = core_decomposition(&g);
        table.row([
            spec.paper_name.to_string(),
            spec.key.to_string(),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            format!("{:.1}", s.average_degree),
            d.kmax().to_string(),
            format!("{:.2}", load_time.as_secs_f64()),
        ]);
    }
    println!("Table III (stand-ins): dataset statistics\n");
    table.print();
}
