//! Table IV reproduction: the best k per community metric, for both the
//! best k-core set (`CS-*` rows) and the best single k-core (`C-*` rows),
//! across all datasets.

use bestk_bench::{selected_specs, TableWriter};
use bestk_core::{analyze, Metric};

fn main() {
    let specs = selected_specs();
    let mut header: Vec<String> = vec!["Algo".into()];
    header.extend(specs.iter().map(|s| s.key.to_uppercase()));
    let mut rows: Vec<Vec<String>> = Vec::new();
    for m in Metric::ALL {
        rows.push(vec![format!("CS-{}", m.abbrev())]);
        rows.push(vec![format!("C-{}", m.abbrev())]);
    }

    for spec in &specs {
        eprintln!("analyzing {} ...", spec.key);
        let g = bestk_bench::load(spec);
        let a = analyze(&g);
        for (i, m) in Metric::ALL.iter().enumerate() {
            let cs = a
                .best_core_set(m)
                .map(|b| b.k.to_string())
                .unwrap_or_else(|| "-".into());
            let c = a
                .best_single_core(m)
                .map(|b| b.k.to_string())
                .unwrap_or_else(|| "-".into());
            rows[2 * i].push(cs);
            rows[2 * i + 1].push(c);
        }
    }

    let mut table = TableWriter::new(header);
    for row in rows {
        table.row(row);
    }
    println!("Table IV (stand-ins): best k for the k-core (set)\n");
    table.print();
}
