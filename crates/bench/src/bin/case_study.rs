//! Tables V–VII reproduction: case study on high-score k-cores.
//!
//! The paper inspects two DBLP communities: community A (a 17-core of
//! tightly collaborating authors) selected by average degree / internal
//! density / clustering coefficient, and community B (a 9-core) selected by
//! cut ratio / conductance. Real author names are unavailable, so the case
//! study runs on a planted-partition collaboration graph whose ground-truth
//! blocks play the role of research groups: one very dense block (the
//! "community A" analogue) and one well-isolated block ("community B"),
//! embedded in a sparse background.
//!
//! The harness reports which planted block each metric's best single k-core
//! recovers, plus the Table VII-style score matrix of the two winners.

use bestk_core::{analyze, CommunityMetric, GraphContext, Metric, PrimaryValues};
use bestk_graph::cast;
use bestk_graph::generators;
use bestk_graph::subgraph::{boundary_edge_count, induced_edge_count, induced_subgraph};
use bestk_graph::VertexId;

use bestk_bench::TableWriter;

fn main() {
    // Block 0: dense 18-member group (community A analogue, internal p 0.95).
    // Block 1: 12-member group, almost isolated (community B analogue).
    // Blocks 2+: sparse background population.
    let sizes = [18usize, 12, 300, 300, 300];
    let graph = build_case_study_graph(&sizes);
    let a = analyze(&graph);
    println!(
        "Case study graph: n={}, m={}, kmax={}\n",
        graph.num_vertices(),
        graph.num_edges(),
        a.kmax()
    );

    let mut winners: Vec<(Metric, Vec<VertexId>, u32)> = Vec::new();
    let mut table =
        TableWriter::new(["metric", "best single k-core", "k", "size", "block overlap"]);
    for m in Metric::ALL {
        let Some(best) = a.best_single_core(&m) else {
            continue;
        };
        let verts = a.forest().core_vertices(best.node);
        let overlap = dominant_block(&sizes, &verts);
        table.row([
            m.name().to_string(),
            format!("score={:.4}", best.score),
            best.k.to_string(),
            verts.len().to_string(),
            overlap,
        ]);
        winners.push((m, verts, best.k));
    }
    println!("Best single k-core per metric (Tables V/VI analogue)\n");
    table.print();

    // Table VII analogue: full score matrix of the two headline communities.
    let (Some((_, community_a, _)), Some((_, community_b, _))) = (
        winners.iter().find(|(m, ..)| *m == Metric::InternalDensity),
        winners.iter().find(|(m, ..)| *m == Metric::CutRatio),
    ) else {
        eprintln!("headline metrics produced no winner; skipping score matrix");
        return;
    };
    println!("\nScores of detected communities (Table VII analogue)\n");
    let mut scores = TableWriter::new(["ID", "ad", "den", "cc", "cr", "con"]);
    for (id, verts) in [("A", community_a), ("B", community_b)] {
        let row = score_community(&graph, verts);
        scores.row([
            id.to_string(),
            format!("{:.2}", row[0]),
            format!("{:.4}", row[1]),
            format!("{:.3}", row[2]),
            format!("{:.6}", row[3]),
            format!("{:.4}", row[4]),
        ]);
    }
    scores.print();
}

fn build_case_study_graph(sizes: &[usize]) -> bestk_graph::CsrGraph {
    // Background: sparse planted partition over blocks 2+ (the "rest of
    // DBLP"), generated first so A and B can be spliced over blocks 0 and 1.
    let pp = generators::planted_partition(sizes, 0.02, 0.003, 0xCA5E);
    let b_start = cast::vertex_id(sizes[0]);
    let b_end = b_start + cast::vertex_id(sizes[1]);
    let in_a = |v: VertexId| v < b_start;
    let in_b = |v: VertexId| (b_start..b_end).contains(&v);

    let mut builder = bestk_graph::GraphBuilder::new();
    for (u, v) in pp.graph.edges() {
        // Drop every planted edge touching A or B; both communities are
        // rebuilt explicitly below.
        if !(in_a(u) || in_a(v) || in_b(u) || in_b(v)) {
            builder.add_edge(u, v);
        }
    }
    // Community A (paper Table V): a full 18-clique — average degree 17,
    // density 1, clustering coefficient 1 — with a handful of external
    // collaborations so it is NOT isolated (its cut ratio/conductance stay
    // below 1, exactly as in Table VII).
    for u in 0..b_start {
        for v in (u + 1)..b_start {
            builder.add_edge(u, v);
        }
    }
    let rng = &mut bestk_graph::rng::Xoshiro256::seed_from_u64(0xCA5E + 1);
    for u in 0..b_start {
        // ~2 external ties per member into the background blocks.
        for _ in 0..2 {
            let t = b_end
                + cast::u32_from_u64(
                    rng.next_below((pp.graph.num_vertices() as u64) - b_end as u64),
                );
            builder.add_edge(u, t);
        }
    }
    // Community B (paper Table VI): a 12-member near-clique (K12 minus two
    // adjacent edges) with NO external edges — its cut ratio and
    // conductance are exactly 1 (Table VII's community B).
    for u in b_start..b_end {
        for v in (u + 1)..b_end {
            let drop = u == b_start && (v == b_start + 1 || v == b_start + 2);
            if !drop {
                builder.add_edge(u, v);
            }
        }
    }
    builder.reserve_vertices(pp.graph.num_vertices());
    builder.build()
}

/// Names the planted block that the detected community overlaps most.
fn dominant_block(sizes: &[usize], verts: &[VertexId]) -> String {
    let mut bounds = Vec::with_capacity(sizes.len() + 1);
    let mut acc = 0usize;
    bounds.push(0);
    for &s in sizes {
        acc += s;
        bounds.push(acc);
    }
    let mut counts = vec![0usize; sizes.len()];
    for &v in verts {
        let b = bounds.partition_point(|&x| x <= v as usize) - 1;
        counts[b] += 1;
    }
    let Some((best, &cnt)) = counts.iter().enumerate().max_by_key(|(_, &c)| c) else {
        return "no members".to_string();
    };
    let label = match best {
        0 => "A (dense group)".to_string(),
        1 => "B (isolated group)".to_string(),
        i => format!("background #{i}"),
    };
    format!("{label}: {cnt}/{} members", verts.len())
}

/// Computes the Table VII metric row [ad, den, cc, cr, con] for a vertex set.
fn score_community(g: &bestk_graph::CsrGraph, verts: &[VertexId]) -> [f64; 5] {
    let sub = induced_subgraph(g, verts);
    let pv = PrimaryValues {
        num_vertices: verts.len() as u64,
        internal_edges: induced_edge_count(g, verts) as u64,
        boundary_edges: boundary_edge_count(g, verts) as u64,
        triangles: bestk_core::triangles::count_triangles(&sub.graph),
        triplets: bestk_core::triangles::count_triplets(&sub.graph),
    };
    let ctx = GraphContext {
        total_vertices: g.num_vertices() as u64,
        total_edges: g.num_edges() as u64,
    };
    [
        Metric::AverageDegree.score(&pv, &ctx),
        Metric::InternalDensity.score(&pv, &ctx),
        Metric::ClusteringCoefficient.score(&pv, &ctx),
        Metric::CutRatio.score(&pv, &ctx),
        Metric::Conductance.score(&pv, &ctx),
    ]
}
