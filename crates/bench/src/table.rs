//! Minimal fixed-width ASCII table writer for the harness binaries.

/// Collects rows of strings and prints them with aligned columns — the
/// harness's analogue of the paper's tables.
#[derive(Debug, Default)]
pub struct TableWriter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TableWriter {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.extend(std::iter::repeat_n(
                    ' ',
                    w.saturating_sub(cell.chars().count()),
                ));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TableWriter::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "23456"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("short"));
        // The value column starts at the same offset in both data rows.
        let col = lines[3].find("23456").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TableWriter::new(["a", "b", "c"]);
        t.row(["only-one"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let out = t.render();
        assert!(out.contains("only-one"));
    }

    #[test]
    fn empty_table() {
        let t = TableWriter::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
