//! The ten synthetic stand-ins for the paper's Table III datasets.
//!
//! Each spec pairs a paper dataset with a seeded generator chosen to match
//! its *structure class* (collaboration, social, web/topology, very dense
//! affiliation) at laptop scale; see `DESIGN.md` §4 for the substitution
//! rationale. Generated graphs are cached as binary CSR files under
//! `target/bestk-datasets/` so repeated harness runs pay generation once.

use bestk_graph::cast;
use bestk_graph::{generators, io, CsrGraph};

/// How to synthesize one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Chung–Lu power law: `(n, avg_degree ×100, gamma ×100)`.
    ChungLu(usize, u32, u32),
    /// R-MAT: `(scale, edge_factor)` with Graph500 probabilities.
    Rmat(u32, usize),
    /// Overlapping cliques: `(n, cliques, min_size, max_size)`.
    Cliques(usize, usize, usize, usize),
    /// Overlapping cliques plus planted cliques of the given sizes —
    /// reproduces the paper datasets whose deep cores come from a few huge
    /// cliques (DBLP's 114-author paper, Hollywood's large casts):
    /// `(n, cliques, min_size, max_size, planted_sizes)`.
    CliquesPlanted(usize, usize, usize, usize, &'static [usize]),
    /// Barabási–Albert: `(n, attach)`.
    PrefAttach(usize, usize),
}

/// One dataset stand-in.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Short key used on the command line and in table rows (the paper's
    /// dataset abbreviation, lowercased).
    pub key: &'static str,
    /// The paper dataset this stands in for.
    pub paper_name: &'static str,
    /// Generator family and parameters.
    pub family: Family,
    /// Generator seed (fixed: the dataset *is* `(family, seed)`).
    pub seed: u64,
}

/// All ten stand-ins, ordered like the paper's Table III (by edge count).
pub fn all_specs() -> Vec<DatasetSpec> {
    vec![
        // Astro-Ph: collaboration network; co-authorship cliques.
        DatasetSpec {
            key: "ap",
            paper_name: "Astro-Ph",
            family: Family::CliquesPlanted(18_000, 4_200, 3, 12, &[57]),
            seed: 0x000A_5701,
        },
        // Gowalla: location-based social network, heavy tail.
        DatasetSpec {
            key: "g",
            paper_name: "Gowalla",
            family: Family::ChungLu(60_000, 970, 260),
            seed: 0x0904_A11A,
        },
        // DBLP: co-authorship; larger clique affiliation graph.
        DatasetSpec {
            key: "d",
            paper_name: "DBLP",
            // The planted ladder fills the deep cores the way DBLP's large
            // co-author papers do (the paper's Table IX query classes draw
            // from coreness 30..113).
            family: Family::CliquesPlanted(100_000, 36_000, 3, 9, &[70, 80, 90, 100, 114]),
            seed: 0xDB1B,
        },
        // Youtube: sparse social network with weak tail.
        DatasetSpec {
            key: "y",
            paper_name: "Youtube",
            family: Family::ChungLu(300_000, 530, 220),
            seed: 0x0070_70BE,
        },
        // As-Skitter: internet topology; RMAT skew.
        DatasetSpec {
            key: "as",
            paper_name: "As-Skitter",
            family: Family::Rmat(18, 13),
            seed: 0x00A5_5C17,
        },
        // LiveJournal: large social network.
        DatasetSpec {
            key: "lj",
            paper_name: "LiveJournal",
            family: Family::ChungLu(500_000, 1740, 240),
            seed: 0x0011_FE70,
        },
        // Hollywood: actor affiliation; huge cliques, enormous kmax.
        DatasetSpec {
            key: "h",
            paper_name: "Hollywood",
            family: Family::CliquesPlanted(60_000, 7_000, 10, 70, &[1200]),
            seed: 0x8011,
        },
        // Orkut: dense social network.
        DatasetSpec {
            key: "o",
            paper_name: "Orkut",
            family: Family::Rmat(19, 16),
            seed: 0x0000_8C07,
        },
        // Human-Jung: brain network; extremely dense, kmax in the hundreds.
        DatasetSpec {
            key: "hj",
            paper_name: "Human-Jung",
            family: Family::CliquesPlanted(20_000, 2_200, 40, 110, &[1000]),
            seed: 0x1FBA,
        },
        // FriendSter: the largest graph in the suite.
        DatasetSpec {
            key: "fs",
            paper_name: "FriendSter",
            family: Family::ChungLu(1_000_000, 2000, 250),
            seed: 0xF5F5,
        },
    ]
}

/// Looks up a spec by its key.
pub fn spec_by_key(key: &str) -> Option<DatasetSpec> {
    all_specs().into_iter().find(|s| s.key == key)
}

/// Generates the dataset (no cache).
pub fn generate(spec: &DatasetSpec) -> CsrGraph {
    match spec.family {
        Family::ChungLu(n, avg100, gamma100) => generators::chung_lu_power_law(
            n,
            avg100 as f64 / 100.0,
            gamma100 as f64 / 100.0,
            spec.seed,
        ),
        Family::Rmat(scale, ef) => generators::rmat(scale, ef, 0.57, 0.19, 0.19, spec.seed),
        Family::Cliques(n, cliques, lo, hi) => {
            generators::overlapping_cliques(n, cliques, (lo, hi), spec.seed)
        }
        Family::CliquesPlanted(n, cliques, lo, hi, planted) => {
            let base = generators::overlapping_cliques(n, cliques, (lo, hi), spec.seed);
            let extra: usize = planted.iter().map(|s| s * s / 2).sum();
            let mut b = bestk_graph::GraphBuilder::with_capacity(base.num_edges() + extra);
            b.reserve_vertices(n);
            b.extend_edges(base.edges());
            let mut rng = bestk_graph::rng::Xoshiro256::seed_from_u64(spec.seed ^ 0x9E37);
            for &size in planted {
                let members = rng.sample_distinct(n, size);
                for i in 0..members.len() {
                    for j in (i + 1)..members.len() {
                        b.add_edge(cast::u32_of(members[i]), cast::u32_of(members[j]));
                    }
                }
            }
            b.build()
        }
        Family::PrefAttach(n, attach) => generators::barabasi_albert(n, attach, spec.seed),
    }
}

/// Loads the dataset through the on-disk cache (`target/bestk-datasets/`).
pub fn load(spec: &DatasetSpec) -> CsrGraph {
    let dir = cache_dir();
    // Cache key covers the full parameterization so spec changes invalidate.
    let mut hash = bestk_graph::rng::SplitMix64 {
        state: spec.seed ^ format!("{:?}", spec.family).len() as u64,
    };
    let fam = format!("{:?}", spec.family);
    let mut digest = hash.next_u64();
    for b in fam.bytes() {
        hash.state ^= u64::from(b).wrapping_mul(0x100000001B3);
        digest ^= hash.next_u64();
    }
    let path = dir.join(format!("{}-{digest:016x}.bin", spec.key));
    if path.exists() {
        match io::read_binary_path(&path) {
            Ok(g) => return g,
            Err(e) => eprintln!("cache read failed for {} ({e}); regenerating", spec.key),
        }
    }
    let g = generate(spec);
    if std::fs::create_dir_all(&dir).is_ok() {
        if let Err(e) = io::write_binary_path(&g, &path) {
            eprintln!("cache write failed for {} ({e})", spec.key);
        }
    }
    g
}

fn cache_dir() -> std::path::PathBuf {
    // Keep the cache inside the workspace target dir; fall back to temp.
    let base = std::env::var_os("CARGO_TARGET_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            // bench binaries run from the workspace root
            std::path::PathBuf::from("target")
        });
    base.join("bestk-datasets")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_datasets_with_unique_keys() {
        let specs = all_specs();
        assert_eq!(specs.len(), 10);
        let mut keys: Vec<_> = specs.iter().map(|s| s.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 10);
    }

    #[test]
    fn lookup_by_key() {
        assert_eq!(spec_by_key("lj").unwrap().paper_name, "LiveJournal");
        assert!(spec_by_key("nope").is_none());
    }

    #[test]
    fn generation_is_deterministic_for_small_spec() {
        let spec = DatasetSpec {
            key: "test",
            paper_name: "Test",
            family: Family::ChungLu(2_000, 600, 250),
            seed: 42,
        };
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
        assert!(a.num_edges() > 2_000);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn pref_attach_family_works() {
        let spec = DatasetSpec {
            key: "ba",
            paper_name: "BA",
            family: Family::PrefAttach(1_000, 4),
            seed: 7,
        };
        let g = generate(&spec);
        assert_eq!(g.num_vertices(), 1_000);
    }
}
