//! Wall-clock timing helpers for the harness binaries.

use std::time::Duration;

/// Runs `f` once and returns its result with the elapsed wall time, read
/// from the `bestk_obs` clock (the workspace's single time source — the
/// `no-raw-instant` lint keeps `Instant::now` out of here).
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = bestk_obs::now_nanos();
    let out = f();
    let elapsed = bestk_obs::now_nanos().saturating_sub(start);
    (out, Duration::from_nanos(elapsed))
}

/// Formats a duration the way the paper's runtime plots label their y-axis
/// (1ms … 10⁵ s): milliseconds below 10 s, seconds above.
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 10.0 {
        format!("{:.1}ms", secs * 1e3)
    } else {
        format!("{secs:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_value_and_duration() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_duration(Duration::from_millis(1)), "1.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(42)), "42.0s");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.5ms");
    }
}
