//! # bestk-bench
//!
//! The evaluation harness: everything needed to regenerate the tables and
//! figures of the paper's §V on the synthetic dataset stand-ins described in
//! `DESIGN.md` §4.
//!
//! Each table/figure has a binary under `src/bin/`:
//!
//! | target | reproduces |
//! |--------|------------|
//! | `table3` | Table III — dataset statistics |
//! | `table4` | Table IV — best k per metric (set and single core) |
//! | `fig5` | Figure 5 — score of every k-core set |
//! | `fig6` | Figure 6 — score of every single k-core |
//! | `case_study` | Tables V–VII — communities found by different metrics |
//! | `fig7` | Figure 7 — runtime, best k-core set (baseline vs optimal) |
//! | `fig8` | Figure 8 — runtime, best single k-core |
//! | `table8` | Table VIII — densest subgraph & maximum clique |
//! | `table9` | Table IX — size-constrained k-core hit rates |
//! | `ext_tables` | beyond-paper: §VI-B best k-truss set + §VII weighted best-s |
//!
//! Run with `cargo run -p bestk-bench --release --bin <target>`. Every
//! binary accepts an optional comma-separated dataset filter, e.g.
//! `--datasets=ap,dblp`. Micro-benchmarks live in `benches/` on the
//! in-repo [`harness`] (`cargo bench -p bestk-bench`, filter with
//! `--filter=<substr>`, iteration count via `BESTK_BENCH_ITERS`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod datasets;
pub mod harness;
pub mod table;
pub mod timer;

pub use datasets::{all_specs, load, spec_by_key, DatasetSpec};
pub use harness::Bench;
pub use table::TableWriter;
pub use timer::time;

/// Parses a `--datasets=a,b,c` argument (any position) into a key filter;
/// `None` means "all datasets".
pub fn dataset_filter_from_args() -> Option<Vec<String>> {
    for arg in std::env::args().skip(1) {
        if let Some(list) = arg.strip_prefix("--datasets=") {
            return Some(list.split(',').map(|s| s.trim().to_string()).collect());
        }
    }
    None
}

/// The dataset specs selected by the command-line filter (all by default).
///
/// Unknown keys abort with a clear message listing the valid keys.
pub fn selected_specs() -> Vec<DatasetSpec> {
    match dataset_filter_from_args() {
        None => all_specs(),
        Some(keys) => keys
            .iter()
            .map(|k| {
                spec_by_key(k).unwrap_or_else(|| {
                    let valid: Vec<&str> = all_specs().iter().map(|s| s.key).collect();
                    eprintln!("unknown dataset key {k:?}; valid keys: {valid:?}");
                    std::process::exit(2);
                })
            })
            .collect(),
    }
}
