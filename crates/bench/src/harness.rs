//! Minimal micro-benchmark harness.
//!
//! The workspace builds fully offline, so the Criterion dev-dependency was
//! replaced with this self-contained runner: warm up once, run a fixed
//! number of measured iterations, report min / mean wall time (min is the
//! low-noise statistic; mean shows jitter). Interface conventions follow
//! the binaries in `src/bin/`: a `--filter=<substring>` argument selects
//! benchmarks by name and `BESTK_BENCH_ITERS` scales the iteration count.
//!
//! Besides the human-readable table on stdout, every run is recorded; if
//! `BESTK_BENCH_JSON` names a file, [`Bench::finish`] writes the records as
//! machine-readable JSON (`{"benchmarks": [{name, threads, iters, min_ns,
//! mean_ns}, ...]}`), the format downstream tooling diffs across commits.

use std::cell::RefCell;
use std::time::Duration;

use crate::timer::fmt_duration;

/// One recorded benchmark result, in nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Benchmark name as printed in the table.
    pub name: String,
    /// Worker-thread count the kernel ran with (1 for sequential runs).
    pub threads: usize,
    /// Number of measured iterations.
    pub iters: u32,
    /// Minimum iteration time in nanoseconds (the low-noise statistic).
    pub min_ns: u128,
    /// Mean iteration time in nanoseconds.
    pub mean_ns: u128,
}

/// A benchmark session: name filtering plus iteration control, shared by
/// every registered benchmark.
#[derive(Debug)]
pub struct Bench {
    filter: Option<String>,
    iters: u32,
    json_path: Option<String>,
    records: RefCell<Vec<Record>>,
}

impl Bench {
    /// Builds a session from the process arguments (`--filter=<substring>`)
    /// and environment (`BESTK_BENCH_ITERS`, default 5; `BESTK_BENCH_JSON`,
    /// a path for the machine-readable report).
    ///
    /// # Errors
    ///
    /// A set-but-malformed `BESTK_BENCH_ITERS` (non-numeric or zero) is an
    /// error, not a silent fallback: a typo'd `BESTK_BENCH_ITERS=1O0` must
    /// not quietly benchmark 5 iterations.
    pub fn from_env() -> Result<Bench, String> {
        let filter = std::env::args()
            .skip(1)
            .find_map(|a| a.strip_prefix("--filter=").map(str::to_string));
        let iters = match std::env::var("BESTK_BENCH_ITERS") {
            Err(std::env::VarError::NotPresent) => 5,
            Err(std::env::VarError::NotUnicode(raw)) => {
                return Err(format!(
                    "BESTK_BENCH_ITERS must be a positive integer, got non-unicode {raw:?}"
                ));
            }
            Ok(raw) => match raw.parse::<u32>() {
                Ok(n) if n > 0 => n,
                _ => {
                    return Err(format!(
                        "BESTK_BENCH_ITERS must be a positive integer, got {raw:?}"
                    ));
                }
            },
        };
        let json_path = std::env::var("BESTK_BENCH_JSON").ok();
        Ok(Bench {
            filter,
            iters,
            json_path,
            records: RefCell::new(Vec::new()),
        })
    }

    /// [`from_env`](Self::from_env), exiting with status 2 on a malformed
    /// environment — the right behavior for `benches/*` entry points.
    pub fn from_env_or_exit() -> Bench {
        Bench::from_env().unwrap_or_else(|msg| {
            eprintln!("{msg}");
            std::process::exit(2);
        })
    }

    /// A session with explicit settings (used by tests).
    pub fn with_settings(filter: Option<String>, iters: u32) -> Bench {
        Bench {
            filter,
            iters: iters.max(1),
            json_path: None,
            records: RefCell::new(Vec::new()),
        }
    }

    /// Whether `name` passes the `--filter` selection.
    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one benchmark: a warm-up call, then the measured iterations.
    /// Returns the per-iteration timings (empty if filtered out).
    pub fn run<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Vec<Duration> {
        self.run_inner(name, 1, None, &mut f)
    }

    /// Like [`run`](Self::run), additionally reporting `elements / second`
    /// computed from the minimum iteration time.
    pub fn run_elements<T>(
        &self,
        name: &str,
        elements: u64,
        mut f: impl FnMut() -> T,
    ) -> Vec<Duration> {
        self.run_inner(name, 1, Some(elements), &mut f)
    }

    /// Like [`run`](Self::run) for a kernel executing on `threads` worker
    /// threads; the count is carried into the recorded result so the JSON
    /// report can express 1-vs-N speedup tables.
    pub fn run_threads<T>(
        &self,
        name: &str,
        threads: usize,
        mut f: impl FnMut() -> T,
    ) -> Vec<Duration> {
        self.run_inner(name, threads, None, &mut f)
    }

    /// Records a dimensionless measurement (a compression permille, a
    /// speedup permille, a byte count) into the JSON report alongside the
    /// timing records: `iters` is 0 to mark the record as a gauge, and the
    /// value is carried in both `min_ns` and `mean_ns`.
    pub fn gauge(&self, name: &str, value: u128) {
        if !self.selected(name) {
            return;
        }
        println!("{name:<48} value {value}");
        self.records.borrow_mut().push(Record {
            name: name.to_string(),
            threads: 1,
            iters: 0,
            min_ns: value,
            mean_ns: value,
        });
    }

    fn run_inner<T>(
        &self,
        name: &str,
        threads: usize,
        elements: Option<u64>,
        f: &mut impl FnMut() -> T,
    ) -> Vec<Duration> {
        if !self.selected(name) {
            return Vec::new();
        }
        std::hint::black_box(f()); // warm-up: page in data, train branches
        let mut timings = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let ((), elapsed) = crate::timer::time(|| {
                std::hint::black_box(f());
            });
            timings.push(elapsed);
        }
        let min = timings.iter().min().copied().unwrap_or_default();
        let mean = timings.iter().sum::<Duration>() / self.iters;
        let rate = match elements {
            Some(e) if min > Duration::ZERO => {
                format!("  {:.1} Melem/s", e as f64 / min.as_secs_f64() / 1e6)
            }
            _ => String::new(),
        };
        println!(
            "{name:<48} min {:>10}  mean {:>10}  ({} iters){rate}",
            fmt_duration(min),
            fmt_duration(mean),
            self.iters
        );
        self.records.borrow_mut().push(Record {
            name: name.to_string(),
            threads,
            iters: self.iters,
            min_ns: min.as_nanos(),
            mean_ns: mean.as_nanos(),
        });
        timings
    }

    /// The results recorded so far (cloned; order of execution).
    pub fn records(&self) -> Vec<Record> {
        self.records.borrow().clone()
    }

    /// Serializes the recorded results as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmarks\": [");
        let records = self.records.borrow();
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"threads\": {}, \"iters\": {}, \
                 \"min_ns\": {}, \"mean_ns\": {}}}",
                json_string(&r.name),
                r.threads,
                r.iters,
                r.min_ns,
                r.mean_ns
            ));
        }
        if !records.is_empty() {
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to the `BESTK_BENCH_JSON` path, if one was
    /// set. Call at the end of every `benches/*` entry point.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error with the target path attached.
    pub fn finish(&self) -> Result<(), String> {
        let Some(path) = &self.json_path else {
            return Ok(());
        };
        std::fs::write(path, self.to_json())
            .map_err(|e| format!("failed to write bench JSON to {path}: {e}"))?;
        eprintln!(
            "wrote {} benchmark records to {path}",
            self.records.borrow().len()
        );
        Ok(())
    }

    /// [`finish`](Self::finish), exiting with status 2 on failure.
    pub fn finish_or_exit(&self) {
        self.finish().unwrap_or_else(|msg| {
            eprintln!("{msg}");
            std::process::exit(2);
        });
    }
}

/// Escapes `s` as a JSON string literal (quotes, backslashes, control
/// characters — benchmark names are ASCII, but stay correct regardless).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_skips_non_matching() {
        let b = Bench::with_settings(Some("match".into()), 2);
        assert!(b.run("no_hit", || 1).is_empty());
        assert_eq!(b.run("does_match", || 1).len(), 2);
        // Skipped runs leave no record.
        assert_eq!(b.records().len(), 1);
    }

    #[test]
    fn no_filter_runs_everything() {
        let b = Bench::with_settings(None, 3);
        let mut calls = 0;
        let timings = b.run("anything", || calls += 1);
        assert_eq!(timings.len(), 3);
        assert_eq!(calls, 4, "warm-up plus three measured iterations");
    }

    #[test]
    fn gauge_records_value_with_zero_iters() {
        let b = Bench::with_settings(Some("ratio".into()), 2);
        b.gauge("compression_ratio_permille", 2340);
        b.gauge("filtered_out", 1);
        let records = b.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].iters, 0);
        assert_eq!(records[0].min_ns, 2340);
        assert_eq!(records[0].mean_ns, 2340);
    }

    #[test]
    fn records_carry_threads_and_timings() {
        let b = Bench::with_settings(None, 2);
        b.run("seq", || 1);
        b.run_threads("par", 4, || 1);
        let records = b.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].threads, 1);
        assert_eq!(records[1].threads, 4);
        assert_eq!(records[1].name, "par");
        assert!(records.iter().all(|r| r.iters == 2));
        assert!(records.iter().all(|r| r.mean_ns >= r.min_ns));
    }

    #[test]
    fn json_report_shape() {
        let b = Bench::with_settings(None, 1);
        b.run_threads("kernel/x", 2, || 1);
        let json = b.to_json();
        assert!(json.contains("\"benchmarks\": ["), "{json}");
        assert!(json.contains("\"name\": \"kernel/x\""), "{json}");
        assert!(json.contains("\"threads\": 2"), "{json}");
        assert!(json.contains("\"min_ns\": "), "{json}");
        assert!(json.contains("\"mean_ns\": "), "{json}");
        // Empty sessions still produce a well-formed document.
        let empty = Bench::with_settings(None, 1);
        assert_eq!(empty.to_json(), "{\n  \"benchmarks\": [  ]\n}\n");
    }

    #[test]
    fn from_env_rejects_malformed_iters() {
        // One test owns this variable end to end (tests in this binary run
        // in parallel threads, and the environment is process-global).
        for bad in ["abc", "0", "-3", "1O0", ""] {
            std::env::set_var("BESTK_BENCH_ITERS", bad);
            let err = Bench::from_env().unwrap_err();
            assert!(err.contains("positive integer"), "{bad:?}: {err}");
            assert!(err.contains(bad), "{bad:?}: {err}");
        }
        std::env::set_var("BESTK_BENCH_ITERS", "7");
        assert_eq!(Bench::from_env().unwrap().iters, 7);
        std::env::remove_var("BESTK_BENCH_ITERS");
        assert_eq!(Bench::from_env().unwrap().iters, 5, "default");
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
    }
}
