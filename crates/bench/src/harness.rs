//! Minimal micro-benchmark harness.
//!
//! The workspace builds fully offline, so the Criterion dev-dependency was
//! replaced with this self-contained runner: warm up once, run a fixed
//! number of measured iterations, report min / mean wall time (min is the
//! low-noise statistic; mean shows jitter). Interface conventions follow
//! the binaries in `src/bin/`: a `--filter=<substring>` argument selects
//! benchmarks by name and `BESTK_BENCH_ITERS` scales the iteration count.

use std::time::{Duration, Instant};

use crate::timer::fmt_duration;

/// A benchmark session: name filtering plus iteration control, shared by
/// every registered benchmark.
#[derive(Debug)]
pub struct Bench {
    filter: Option<String>,
    iters: u32,
}

impl Bench {
    /// Builds a session from the process arguments (`--filter=<substring>`)
    /// and environment (`BESTK_BENCH_ITERS`, default 5).
    pub fn from_env() -> Bench {
        let filter = std::env::args()
            .skip(1)
            .find_map(|a| a.strip_prefix("--filter=").map(str::to_string));
        let iters = std::env::var("BESTK_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5);
        Bench {
            filter,
            iters: iters.max(1),
        }
    }

    /// A session with explicit settings (used by tests).
    pub fn with_settings(filter: Option<String>, iters: u32) -> Bench {
        Bench {
            filter,
            iters: iters.max(1),
        }
    }

    /// Whether `name` passes the `--filter` selection.
    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one benchmark: a warm-up call, then the measured iterations.
    /// Returns the per-iteration timings (empty if filtered out).
    pub fn run<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Vec<Duration> {
        self.run_with_throughput(name, None, &mut f)
    }

    /// Like [`run`](Self::run), additionally reporting `elements / second`
    /// computed from the minimum iteration time.
    pub fn run_elements<T>(
        &self,
        name: &str,
        elements: u64,
        mut f: impl FnMut() -> T,
    ) -> Vec<Duration> {
        self.run_with_throughput(name, Some(elements), &mut f)
    }

    fn run_with_throughput<T>(
        &self,
        name: &str,
        elements: Option<u64>,
        f: &mut impl FnMut() -> T,
    ) -> Vec<Duration> {
        if !self.selected(name) {
            return Vec::new();
        }
        std::hint::black_box(f()); // warm-up: page in data, train branches
        let mut timings = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let start = Instant::now();
            std::hint::black_box(f());
            timings.push(start.elapsed());
        }
        let min = timings.iter().min().copied().unwrap_or_default();
        let mean = timings.iter().sum::<Duration>() / self.iters;
        let rate = match elements {
            Some(e) if min > Duration::ZERO => {
                format!("  {:.1} Melem/s", e as f64 / min.as_secs_f64() / 1e6)
            }
            _ => String::new(),
        };
        println!(
            "{name:<48} min {:>10}  mean {:>10}  ({} iters){rate}",
            fmt_duration(min),
            fmt_duration(mean),
            self.iters
        );
        timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_skips_non_matching() {
        let b = Bench::with_settings(Some("match".into()), 2);
        assert!(b.run("no_hit", || 1).is_empty());
        assert_eq!(b.run("does_match", || 1).len(), 2);
    }

    #[test]
    fn no_filter_runs_everything() {
        let b = Bench::with_settings(None, 3);
        let mut calls = 0;
        let timings = b.run("anything", || calls += 1);
        assert_eq!(timings.len(), 3);
        assert_eq!(calls, 4, "warm-up plus three measured iterations");
    }
}
