//! The process-global active plan and the failpoint roll primitive.
//!
//! The hot path is a single relaxed [`AtomicBool`] load: with no plan
//! installed, [`roll`] (and every helper built on it) returns immediately
//! without touching a lock or an RNG — the `tests/overhead.rs` guard pins
//! this down. With a plan installed, each site owns an independent
//! xoshiro256++ stream seeded from `plan seed ⊕ fnv1a(site name)`, so the
//! injection sequence at one site is unaffected by how often other sites
//! are visited — adding a failpoint elsewhere never perturbs existing
//! chaos-test expectations.
//!
//! [`install_plan`] / [`clear_plan`] mutate process-global state; outside
//! this crate and test code the `no-raw-failpoint` lint restricts
//! activation to [`init_from_env`] (binaries) and [`with_plan`] (tests).
//!
//! bestk-analyze: allow-file(raw-atomic) — the whole point of the `ENABLED`
//! / `INJECTED` statics is a lock-free disabled fast path (one relaxed
//! load); routing them through the obs seam would reintroduce the lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use bestk_graph::rng::Xoshiro256;

use crate::plan::{Fault, FaultPlan};

/// The environment variable [`init_from_env`] reads.
pub const ENV_VAR: &str = "BESTK_FAULTS";

struct ActiveSite {
    faults: Vec<Fault>,
    probability: f64,
    budget: Option<u64>,
    injected: u64,
    rng: Xoshiro256,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static INJECTED: AtomicU64 = AtomicU64::new(0);
static PLAN: Mutex<Option<BTreeMap<String, ActiveSite>>> = Mutex::new(None);
static TEST_GATE: Mutex<()> = Mutex::new(());

/// Recovers a guard even if a holder panicked (an injected `Panic` fault
/// can unwind through plan-holding code; the plan data stays consistent
/// because rolls mutate it only under the lock).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// FNV-1a 64 over the site name, used to split the plan seed into
/// independent per-site streams.
fn site_stream(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Installs `plan` as the process-global active plan, replacing any
/// previous one and resetting every site's stream and injection count.
///
/// Prefer [`with_plan`] in tests and [`init_from_env`] in binaries; direct
/// calls outside `crates/faults` are flagged by the `no-raw-failpoint`
/// lint.
pub fn install_plan(plan: &FaultPlan) {
    let sites: BTreeMap<String, ActiveSite> = plan
        .sites()
        .map(|(name, spec)| {
            (
                name.to_owned(),
                ActiveSite {
                    faults: spec.faults.clone(),
                    probability: spec.probability,
                    budget: spec.budget,
                    injected: 0,
                    rng: Xoshiro256::seed_from_u64(plan.seed ^ site_stream(name)),
                },
            )
        })
        .collect();
    let mut guard = lock(&PLAN);
    *guard = Some(sites);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the active plan; every failpoint returns to its free
/// disabled-path behavior.
pub fn clear_plan() {
    ENABLED.store(false, Ordering::Release);
    *lock(&PLAN) = None;
}

/// Whether a plan is currently installed.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Total faults injected since process start (across all plans).
pub fn injection_count() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// One drawn fault plus a raw random parameter the injection helpers use
/// to place the damage (which bit to flip, where to cut).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Shot {
    pub(crate) fault: Fault,
    pub(crate) param: u64,
}

/// Rolls at `site`, drawing only from the fault kinds `accepts` — so a
/// helper that can only express I/O errors never consumes a roll that was
/// configured as, say, a bit flip destined for a different helper on the
/// same site.
pub(crate) fn roll_matching(site: &str, accepts: impl Fn(Fault) -> bool) -> Option<Shot> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    roll_slow(site, &accepts)
}

#[cold]
fn roll_slow(site: &str, accepts: &dyn Fn(Fault) -> bool) -> Option<Shot> {
    let mut guard = lock(&PLAN);
    let sites = guard.as_mut()?;
    let s = sites.get_mut(site)?;
    let candidates: Vec<Fault> = s.faults.iter().copied().filter(|&f| accepts(f)).collect();
    if candidates.is_empty() {
        return None;
    }
    if s.budget.is_some_and(|b| s.injected >= b) {
        return None;
    }
    if !s.rng.next_bool(s.probability) {
        return None;
    }
    let fault = candidates[s.rng.next_index(candidates.len())];
    let param = s.rng.next_u64();
    s.injected += 1;
    INJECTED.fetch_add(1, Ordering::Relaxed);
    // Already #[cold] and under the plan lock; the obs registry lock nests
    // inside it (obs never calls back into faults, so no inversion).
    bestk_obs::counter(&format!("faults.injected{{site=\"{site}\"}}")).inc();
    Some(Shot { fault, param })
}

/// Per-site injection counts of the currently installed plan, in site-name
/// order (empty when no plan is installed). Counts reset whenever a plan
/// is (re)installed — this is the plan's own budget accounting, which the
/// chaos suite cross-checks against the `faults.injected{site=…}` metrics.
pub fn site_injection_counts() -> Vec<(String, u64)> {
    lock(&PLAN)
        .as_ref()
        .map(|sites| {
            sites
                .iter()
                .map(|(name, s)| (name.clone(), s.injected))
                .collect()
        })
        .unwrap_or_default()
}

/// Rolls at `site` with no kind restriction, returning the drawn fault.
/// The typed helpers in [`crate::inject`] are usually what production code
/// wants; `roll` is the raw primitive (and what tests assert against).
pub fn roll(site: &str) -> Option<Fault> {
    roll_matching(site, |_| true).map(|s| s.fault)
}

/// Installs `plan`, runs `f`, and clears the plan again — always, even if
/// `f` panics. A process-global gate serializes callers so concurrently
/// running tests cannot interleave their plans.
pub fn with_plan<R>(plan: &FaultPlan, f: impl FnOnce() -> R) -> R {
    let _gate = lock(&TEST_GATE);
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            clear_plan();
        }
    }
    let _reset = Reset;
    install_plan(plan);
    f()
}

/// Reads the `BESTK_FAULTS` environment variable and, if set and
/// non-empty, parses and installs the plan it describes. Returns whether a
/// plan was installed; a malformed spec is an `Err` so binaries can refuse
/// to start half-configured.
pub fn init_from_env() -> Result<bool, String> {
    match std::env::var(ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => {
            let plan = FaultPlan::parse(&spec)?;
            install_plan(&plan);
            Ok(true)
        }
        _ => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SiteSpec;

    #[test]
    fn disabled_rolls_are_none() {
        // No plan installed (the gate keeps other tests' plans out).
        let _gate = lock(&TEST_GATE);
        clear_plan();
        assert!(!is_enabled());
        assert!(roll("snapshot.read").is_none());
    }

    #[test]
    fn rolls_are_deterministic_per_seed() {
        let plan = FaultPlan::new(42).site(
            "s",
            SiteSpec::mixed(vec![Fault::BitFlip, Fault::Panic, Fault::IoError], 0.5),
        );
        let sequence =
            |p: &FaultPlan| with_plan(p, || (0..64).map(|_| roll("s")).collect::<Vec<_>>());
        let a = sequence(&plan);
        let b = sequence(&plan);
        assert_eq!(a, b, "same plan must inject identically");
        assert!(a.iter().any(Option::is_some));
        assert!(a.iter().any(Option::is_none));
        let c = sequence(&FaultPlan::new(43).site(
            "s",
            SiteSpec::mixed(vec![Fault::BitFlip, Fault::Panic, Fault::IoError], 0.5),
        ));
        assert_ne!(a, c, "a different seed must draw a different stream");
    }

    #[test]
    fn unconfigured_sites_never_fire() {
        let plan = FaultPlan::new(1).site("only.this", SiteSpec::always(Fault::Panic));
        with_plan(&plan, || {
            assert!(roll("other.site").is_none());
            assert_eq!(roll("only.this"), Some(Fault::Panic));
        });
    }

    #[test]
    fn budget_caps_injections() {
        let plan = FaultPlan::new(9).site("s", SiteSpec::always(Fault::IoError).with_budget(3));
        with_plan(&plan, || {
            let fired = (0..10).filter(|_| roll("s").is_some()).count();
            assert_eq!(fired, 3);
        });
    }

    #[test]
    fn kind_filter_restricts_draws() {
        let plan = FaultPlan::new(5).site(
            "s",
            SiteSpec::mixed(vec![Fault::BitFlip, Fault::IoError], 1.0),
        );
        with_plan(&plan, || {
            for _ in 0..32 {
                let shot = roll_matching("s", |f| f == Fault::BitFlip).unwrap();
                assert_eq!(shot.fault, Fault::BitFlip);
            }
            assert!(roll_matching("s", |f| f == Fault::Panic).is_none());
        });
    }

    #[test]
    fn sites_draw_independent_streams() {
        let spec = || SiteSpec::mixed(vec![Fault::BitFlip], 0.5);
        let plan = FaultPlan::new(7).site("a", spec()).site("b", spec());
        // Visiting `a` must not perturb `b`'s stream: interleave visits to
        // `a` and compare `b`'s outcomes with and without them.
        let solo: Vec<_> = with_plan(&plan, || (0..32).map(|_| roll("b")).collect());
        let interleaved: Vec<_> = with_plan(&plan, || {
            (0..32)
                .map(|_| {
                    let _ = roll("a");
                    roll("b")
                })
                .collect()
        });
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn with_plan_clears_even_on_panic() {
        let plan = FaultPlan::new(3).site("s", SiteSpec::always(Fault::Panic));
        let caught = std::panic::catch_unwind(|| {
            with_plan(&plan, || {
                assert!(is_enabled());
                panic!("boom");
            })
        });
        assert!(caught.is_err());
        assert!(!is_enabled(), "the drop guard must clear the plan");
    }

    #[test]
    fn injections_surface_per_site_counts_and_metrics() {
        let plan = FaultPlan::new(9)
            .site("hit", SiteSpec::always(Fault::IoError).with_budget(2))
            .site("quiet", SiteSpec::always(Fault::IoError));
        let metric = "faults.injected{site=\"hit\"}";
        let before = bestk_obs::snapshot().counter(metric).unwrap_or(0);
        let counts = with_plan(&plan, || {
            for _ in 0..5 {
                let _ = roll("hit");
            }
            site_injection_counts()
        });
        assert_eq!(counts, vec![("hit".to_owned(), 2), ("quiet".to_owned(), 0)]);
        let after = bestk_obs::snapshot().counter(metric).unwrap_or(0);
        assert_eq!(after - before, 2, "metric must match the plan accounting");
        assert!(site_injection_counts().is_empty(), "no plan, no counts");
    }

    #[test]
    fn init_from_env_rejects_malformed_and_accepts_empty() {
        // The env var itself cannot be safely mutated in a threaded test
        // binary; exercise the parse path directly instead.
        assert!(FaultPlan::parse("seed=oops").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }
}
