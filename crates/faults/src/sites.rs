//! The named failpoint sites threaded through the workspace.
//!
//! Sites are plain strings, but production code should reference these
//! constants so the full site inventory stays greppable in one place (and
//! chaos tests can sweep [`all`] without chasing call sites). See
//! `DESIGN.md` §11 for what each site guards and how the hardened layers
//! respond.

/// Snapshot file reads (`bestk_engine::snapshot::load_path`): transient
/// errors retry with backoff; corruption degrades to quarantine + rebuild.
pub const SNAPSHOT_READ: &str = "snapshot.read";

/// Snapshot file writes (`bestk_engine::snapshot::save_path`): `truncate`
/// simulates a mid-write crash leaving a partial file on disk.
pub const SNAPSHOT_WRITE: &str = "snapshot.write";

/// Serving-loop request reads: torn/corrupted lines, short reads, and
/// transient socket errors.
pub const SERVE_READ: &str = "serve.read";

/// Per-connection read-timeout installation (`set_read_timeout`): failure
/// must surface as a typed error on the connection, not silent fallthrough.
pub const SERVE_TIMEOUT: &str = "serve.timeout";

/// Admission control in the serving loop: `overload` forces the in-flight
/// limit to report full, shedding the request with `err overloaded`.
pub const SERVE_OVERLOAD: &str = "serve.overload";

/// Engine memory budget (`Engine::enforce_budget`): `pressure` collapses
/// the budget to zero for one enforcement pass, evicting everything except
/// the protected dataset.
pub const ENGINE_PRESSURE: &str = "engine.pressure";

/// Worker-thread bodies of engine batch fan-out (runs on `bestk_exec`
/// worker threads): `panic` simulates a worker crash that the runtime must
/// contain and the engine must convert into a typed error.
pub const EXEC_WORKER: &str = "exec.worker";

/// Write-ahead delta-log appends (`bestk_delta::wal::DeltaLog::append` /
/// `commit`): `io-error` surfaces as a typed staging failure, `bitflip` /
/// `truncate` leave a torn or corrupt record on disk that replay must stop
/// at cleanly.
pub const DELTA_WAL_APPEND: &str = "delta.wal.append";

/// Write-ahead delta-log replay on snapshot load
/// (`bestk_delta::wal::replay_path`): transient read errors must surface
/// as typed load failures, never partial state silently applied.
pub const DELTA_WAL_REPLAY: &str = "delta.wal.replay";

/// Every site constant above, for chaos-suite sweeps.
pub fn all() -> &'static [&'static str] {
    &[
        SNAPSHOT_READ,
        SNAPSHOT_WRITE,
        SERVE_READ,
        SERVE_TIMEOUT,
        SERVE_OVERLOAD,
        ENGINE_PRESSURE,
        EXEC_WORKER,
        DELTA_WAL_APPEND,
        DELTA_WAL_REPLAY,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_are_unique_and_dotted() {
        let names = all();
        for (i, a) in names.iter().enumerate() {
            assert!(a.contains('.'), "{a} should be namespaced");
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
