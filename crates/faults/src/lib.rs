//! # bestk-faults
//!
//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] names *failpoint sites* (string keys like
//! `"snapshot.read"`) and attaches faults to them — transient and hard I/O
//! errors, short reads, bit flips, truncations, panics, memory pressure,
//! overload — each firing with a configured probability. The plan is driven
//! by the workspace's own xoshiro256++ generator: every site gets an
//! independent stream seeded from `plan seed ⊕ fnv1a(site name)`, so a
//! given `(plan, workload)` pair injects the exact same faults on every
//! run, on every machine. That determinism is what turns "chaos testing"
//! into a reproducible regression suite.
//!
//! ## Wiring
//!
//! Production code threads *sites* through its real paths with the helpers
//! in [`inject`]: [`io_error`], [`corrupt_buffer`], [`mangle_line`],
//! [`truncation`], [`maybe_panic`], [`pressure`], [`overloaded`], and the
//! [`FaultyRead`] reader wrapper. When no plan is installed every helper is
//! a single relaxed atomic load — failpoints are free when off, which the
//! `tests/overhead.rs` guard enforces.
//!
//! ## Activation
//!
//! Plans are process-global. Tests use [`with_plan`], which serializes
//! plan-holding tests behind a gate and always clears the plan on exit
//! (even across panics). Binaries call [`init_from_env`] once at startup,
//! which parses the `BESTK_FAULTS` environment variable:
//!
//! ```text
//! BESTK_FAULTS="seed=7;snapshot.read=bitflip|interrupted@0.5;exec.worker=panic@0.1#3"
//! ```
//!
//! i.e. `;`-separated entries, each `seed=<n>` or
//! `<site>=<fault>[|<fault>...][@<probability>][#<budget>]`.
//!
//! The raw globals [`install_plan`] / [`clear_plan`] are restricted by the
//! `bestk-analyze` `no-raw-failpoint` lint to this crate and to tests, so
//! production code can only enable faults through the blessed
//! [`init_from_env`] path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod inject;
pub mod plan;
pub mod sites;
pub mod state;

pub use inject::{
    corrupt_buffer, io_error, mangle_line, maybe_panic, overloaded, pressure, truncation,
    FaultyRead,
};
pub use plan::{Fault, FaultPlan, SiteSpec};
pub use state::{
    clear_plan, init_from_env, injection_count, install_plan, is_enabled, roll,
    site_injection_counts, with_plan, ENV_VAR,
};
