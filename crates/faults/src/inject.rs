//! Injection helpers: how a drawn fault expresses itself at a real code
//! path.
//!
//! Each helper consults the active plan for its site and only draws from
//! the fault kinds it can express ([`io_error`] never consumes a `bitflip`
//! roll, so one site can feed several helpers along the same path). All
//! helpers are no-ops costing one relaxed atomic load when no plan is
//! installed.

use std::io::{self, Read};

use crate::plan::Fault;
use crate::state::{roll_matching, Shot};

/// I/O-error faults at `site`: a transient `Interrupted` / `WouldBlock`,
/// or a hard error. Call where a syscall could fail and return the error
/// in its place.
pub fn io_error(site: &str) -> Option<io::Error> {
    let shot = roll_matching(site, |f| {
        matches!(f, Fault::Interrupted | Fault::WouldBlock | Fault::IoError)
    })?;
    Some(match shot.fault {
        Fault::Interrupted => io::Error::new(
            io::ErrorKind::Interrupted,
            format!("injected transient interrupt at {site}"),
        ),
        Fault::WouldBlock => io::Error::new(
            io::ErrorKind::WouldBlock,
            format!("injected would-block at {site}"),
        ),
        _ => io::Error::other(format!("injected hard i/o error at {site}")),
    })
}

/// Buffer-corruption faults at `site`: flips one bit, truncates, or
/// simulates a short read over `buf`, in place. Returns what was done.
pub fn corrupt_buffer(site: &str, buf: &mut Vec<u8>) -> Option<&'static str> {
    if buf.is_empty() {
        return None;
    }
    let shot = roll_matching(site, |f| {
        matches!(f, Fault::BitFlip | Fault::Truncate | Fault::ShortRead)
    })?;
    let len = buf.len() as u64;
    match shot.fault {
        Fault::BitFlip => {
            let bit = shot.param % (8 * len);
            let at = usize::try_from(bit / 8).unwrap_or(0);
            buf[at] ^= 1u8 << (bit % 8);
            Some("bit-flip")
        }
        Fault::Truncate => {
            // Anywhere from empty to one byte short.
            buf.truncate(usize::try_from(shot.param % len).unwrap_or(0));
            Some("truncate")
        }
        _ => {
            // A short read keeps at least half the bytes — damage a
            // retry-less reader would plausibly see from one partial read.
            let keep = len / 2 + shot.param % (len - len / 2);
            buf.truncate(usize::try_from(keep).unwrap_or(0));
            Some("short-read")
        }
    }
}

/// Mid-write crash simulation: when a `truncate` fault fires at `site`,
/// returns how many of `len` bytes "made it to disk" before the crash.
pub fn truncation(site: &str, len: usize) -> Option<usize> {
    let shot = roll_matching(site, |f| matches!(f, Fault::Truncate))?;
    Some(usize::try_from(shot.param % (len as u64 + 1)).unwrap_or(0))
}

/// Panic faults: panics at `site` when the plan says so (worker-crash
/// simulation — the hardened layers must contain it).
pub fn maybe_panic(site: &str) {
    if roll_matching(site, |f| matches!(f, Fault::Panic)).is_some() {
        // bestk-analyze: allow(no-panic) — a controlled panic is this failpoint's entire purpose
        panic!("injected panic at failpoint {site}");
    }
}

/// Memory-pressure faults: `true` when `site` should behave as if its
/// budget collapsed to zero.
pub fn pressure(site: &str) -> bool {
    roll_matching(site, |f| matches!(f, Fault::Pressure)).is_some()
}

/// Overload faults: `true` when `site` should shed the current request.
pub fn overloaded(site: &str) -> bool {
    roll_matching(site, |f| matches!(f, Fault::Overload)).is_some()
}

/// Torn-line faults for line protocols: corrupts `line` in place (bit
/// flip or truncation; invalid UTF-8 is replaced lossily). Returns what
/// was done.
pub fn mangle_line(site: &str, line: &mut String) -> Option<&'static str> {
    let mut bytes = line.clone().into_bytes();
    let what = corrupt_buffer(site, &mut bytes)?;
    *line = String::from_utf8_lossy(&bytes).into_owned();
    Some(what)
}

/// Wraps a reader so every `read` consults `site`: injected transient and
/// hard I/O errors surface in place of the real read, and short-read
/// faults cap how many bytes one call may deliver.
#[derive(Debug)]
pub struct FaultyRead<R> {
    site: &'static str,
    inner: R,
}

impl<R> FaultyRead<R> {
    /// Wraps `inner`, consulting `site` on every read.
    pub fn new(site: &'static str, inner: R) -> FaultyRead<R> {
        FaultyRead { site, inner }
    }

    /// Unwraps the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(e) = io_error(self.site) {
            return Err(e);
        }
        let cap = match roll_matching(self.site, |f| matches!(f, Fault::ShortRead)) {
            Some(Shot { param, .. }) if buf.len() > 1 => {
                1 + usize::try_from(param).unwrap_or(0) % (buf.len() / 2).max(1)
            }
            _ => buf.len(),
        };
        self.inner.read(&mut buf[..cap])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultPlan, SiteSpec};
    use crate::state::with_plan;

    #[test]
    fn io_error_kinds_match_their_faults() {
        for (fault, kind) in [
            (Fault::Interrupted, io::ErrorKind::Interrupted),
            (Fault::WouldBlock, io::ErrorKind::WouldBlock),
            (Fault::IoError, io::ErrorKind::Other),
        ] {
            let plan = FaultPlan::new(1).site("s", SiteSpec::always(fault));
            with_plan(&plan, || {
                let e = io_error("s").unwrap();
                assert_eq!(e.kind(), kind, "{fault:?}");
                assert!(e.to_string().contains("injected"), "{e}");
            });
        }
    }

    #[test]
    fn io_error_ignores_non_io_faults() {
        let plan = FaultPlan::new(1).site("s", SiteSpec::always(Fault::BitFlip));
        with_plan(&plan, || assert!(io_error("s").is_none()));
    }

    #[test]
    fn corrupt_buffer_flips_exactly_one_bit() {
        let plan = FaultPlan::new(3).site("s", SiteSpec::always(Fault::BitFlip));
        with_plan(&plan, || {
            let original = vec![0u8; 64];
            let mut buf = original.clone();
            assert_eq!(corrupt_buffer("s", &mut buf), Some("bit-flip"));
            assert_eq!(buf.len(), original.len());
            let flipped: u32 = buf
                .iter()
                .zip(&original)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(flipped, 1);
        });
    }

    #[test]
    fn corrupt_buffer_truncate_and_short_read_shrink() {
        for (fault, min_keep) in [(Fault::Truncate, 0), (Fault::ShortRead, 32)] {
            let plan = FaultPlan::new(4).site("s", SiteSpec::always(fault));
            with_plan(&plan, || {
                let mut buf = vec![7u8; 64];
                assert!(corrupt_buffer("s", &mut buf).is_some());
                assert!(buf.len() < 64, "{fault:?} must shrink the buffer");
                assert!(buf.len() >= min_keep, "{fault:?} kept {}", buf.len());
            });
        }
    }

    #[test]
    fn corrupt_buffer_leaves_empty_buffers_alone() {
        let plan = FaultPlan::new(4).site("s", SiteSpec::always(Fault::BitFlip));
        with_plan(&plan, || {
            let mut buf = Vec::new();
            assert!(corrupt_buffer("s", &mut buf).is_none());
        });
    }

    #[test]
    fn truncation_is_within_bounds() {
        let plan = FaultPlan::new(5).site("s", SiteSpec::always(Fault::Truncate));
        with_plan(&plan, || {
            for _ in 0..32 {
                let cut = truncation("s", 100).unwrap();
                assert!(cut <= 100);
            }
        });
    }

    #[test]
    fn maybe_panic_panics_exactly_when_drawn() {
        let plan = FaultPlan::new(6).site("s", SiteSpec::always(Fault::Panic));
        with_plan(&plan, || {
            let caught = std::panic::catch_unwind(|| maybe_panic("s"));
            let msg = *caught.unwrap_err().downcast::<String>().unwrap();
            assert!(msg.contains("injected panic at failpoint s"), "{msg}");
            maybe_panic("unconfigured.site"); // must not panic
        });
    }

    #[test]
    fn pressure_and_overload_report() {
        let plan = FaultPlan::new(7)
            .site("p", SiteSpec::always(Fault::Pressure))
            .site("o", SiteSpec::always(Fault::Overload));
        with_plan(&plan, || {
            assert!(pressure("p"));
            assert!(!pressure("o"));
            assert!(overloaded("o"));
            assert!(!overloaded("p"));
        });
        assert!(!pressure("p"), "disabled plan must report no pressure");
    }

    #[test]
    fn mangle_line_tears_or_corrupts() {
        let plan = FaultPlan::new(8).site(
            "s",
            SiteSpec::mixed(vec![Fault::Truncate, Fault::BitFlip], 1.0),
        );
        with_plan(&plan, || {
            let mut changed = 0;
            for i in 0..16 {
                let mut line = format!("query fig2 bestkset ad {i}");
                let before = line.clone();
                if mangle_line("s", &mut line).is_some() && line != before {
                    changed += 1;
                }
            }
            assert!(changed > 0, "mangling must change some lines");
        });
    }

    #[test]
    fn faulty_read_injects_errors_and_short_reads() {
        let data = vec![42u8; 4096];
        let plan = FaultPlan::new(9).site(
            "s",
            SiteSpec::mixed(vec![Fault::Interrupted, Fault::ShortRead], 0.5),
        );
        with_plan(&plan, || {
            let mut r = FaultyRead::new("s", &data[..]);
            let mut out = Vec::new();
            let mut interrupts = 0;
            loop {
                let mut chunk = [0u8; 256];
                match r.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => out.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => interrupts += 1,
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
            assert_eq!(out, data, "retry-on-interrupt must still see every byte");
            assert!(interrupts > 0, "some interrupts must have fired");
        });
    }

    #[test]
    fn faulty_read_is_transparent_when_disabled() {
        let data = b"hello".to_vec();
        let mut r = FaultyRead::new("s", &data[..]);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(r.into_inner().len(), 0);
    }
}
