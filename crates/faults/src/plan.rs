//! Fault plans: which faults fire at which sites, with what probability.
//!
//! A [`FaultPlan`] is pure data — a seed plus a map from site name to
//! [`SiteSpec`]. Nothing here touches global state; installation lives in
//! [`crate::state`]. Plans can be built programmatically (the chaos suite)
//! or parsed from the `BESTK_FAULTS` spec grammar (the CLI path):
//!
//! ```text
//! seed=7;snapshot.read=bitflip|interrupted@0.5;exec.worker=panic@0.1#3
//! ```

use std::collections::BTreeMap;

/// One kind of injected fault. A site may carry several kinds; each
/// injection helper only draws from the kinds it knows how to express, so
/// e.g. `bitflip` configured on a site that also passes through
/// [`crate::io_error`] never surfaces as an I/O error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A transient `ErrorKind::Interrupted` I/O error (retryable).
    Interrupted,
    /// A transient `ErrorKind::WouldBlock` I/O error (a stalled peer).
    WouldBlock,
    /// A hard, non-retryable I/O error.
    IoError,
    /// Deliver fewer bytes than were asked for.
    ShortRead,
    /// Flip one bit of the affected buffer.
    BitFlip,
    /// Cut the affected buffer short (a torn line / mid-write crash).
    Truncate,
    /// Panic at the site (worker-thread crash simulation).
    Panic,
    /// Report artificial memory pressure at the site.
    Pressure,
    /// Report the site as overloaded (load shedding).
    Overload,
}

impl Fault {
    /// The spec-grammar name of this fault.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::Interrupted => "interrupted",
            Fault::WouldBlock => "wouldblock",
            Fault::IoError => "ioerror",
            Fault::ShortRead => "short",
            Fault::BitFlip => "bitflip",
            Fault::Truncate => "truncate",
            Fault::Panic => "panic",
            Fault::Pressure => "pressure",
            Fault::Overload => "overload",
        }
    }

    /// Every fault kind (spec-grammar order).
    pub const ALL: [Fault; 9] = [
        Fault::Interrupted,
        Fault::WouldBlock,
        Fault::IoError,
        Fault::ShortRead,
        Fault::BitFlip,
        Fault::Truncate,
        Fault::Panic,
        Fault::Pressure,
        Fault::Overload,
    ];

    /// Parses a spec-grammar fault name.
    pub fn parse(name: &str) -> Result<Fault, String> {
        Fault::ALL
            .into_iter()
            .find(|f| f.name() == name)
            .ok_or_else(|| {
                let known: Vec<&str> = Fault::ALL.iter().map(Fault::name).collect();
                format!("unknown fault {name:?} (known: {})", known.join(", "))
            })
    }
}

/// The faults configured for one site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSpec {
    /// The fault kinds this site may inject (drawn uniformly when firing).
    pub faults: Vec<Fault>,
    /// Per-visit firing probability in `[0, 1]`.
    pub probability: f64,
    /// Maximum number of injections; `None` is unlimited.
    pub budget: Option<u64>,
}

impl SiteSpec {
    /// A spec that always injects `fault` on every visit.
    pub fn always(fault: Fault) -> SiteSpec {
        SiteSpec {
            faults: vec![fault],
            probability: 1.0,
            budget: None,
        }
    }

    /// A spec injecting one of `faults` with probability `p` per visit.
    pub fn mixed(faults: Vec<Fault>, p: f64) -> SiteSpec {
        SiteSpec {
            faults,
            probability: p,
            budget: None,
        }
    }

    /// Caps the total number of injections.
    pub fn with_budget(mut self, budget: u64) -> SiteSpec {
        self.budget = Some(budget);
        self
    }
}

/// A deterministic fault plan: a seed plus per-site specs. The seed, not
/// wall-clock or OS entropy, decides everything the plan ever injects.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The base seed; each site derives its own xoshiro stream from it.
    pub seed: u64,
    sites: BTreeMap<String, SiteSpec>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            sites: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a site spec; builder-style.
    pub fn site(mut self, name: &str, spec: SiteSpec) -> FaultPlan {
        self.sites.insert(name.to_owned(), spec);
        self
    }

    /// Convenience: `fault` at `site` with probability `p`.
    pub fn with_fault(self, name: &str, fault: Fault, p: f64) -> FaultPlan {
        self.site(name, SiteSpec::mixed(vec![fault], p))
    }

    /// The spec for `name`, if configured.
    pub fn get(&self, name: &str) -> Option<&SiteSpec> {
        self.sites.get(name)
    }

    /// A copy of this plan with one site removed. Because every site draws
    /// from its own seed-derived stream, dropping a site leaves the other
    /// sites' injection sequences bit-identical — serve replay uses this to
    /// strip `serve.read` (recorded lines are already post-mangle) without
    /// disturbing the rest of the recorded plan.
    pub fn without_site(&self, name: &str) -> FaultPlan {
        let mut plan = self.clone();
        plan.sites.remove(name);
        plan
    }

    /// Iterates `(site name, spec)` in name order.
    pub fn sites(&self) -> impl Iterator<Item = (&str, &SiteSpec)> {
        self.sites.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Number of configured sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no site is configured.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Parses the `BESTK_FAULTS` spec grammar: `;`-separated entries, each
    /// `seed=<n>` or `<site>=<fault>[|<fault>...][@<prob>][#<budget>]`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("entry {entry:?} is not <key>=<value>"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("seed {value:?} is not a u64"))?;
                continue;
            }
            if key.is_empty() {
                return Err(format!("entry {entry:?} has an empty site name"));
            }
            let (value, budget) = match value.split_once('#') {
                Some((v, b)) => {
                    let budget = b
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("site {key}: budget {b:?} is not a u64"))?;
                    (v.trim(), Some(budget))
                }
                None => (value, None),
            };
            let (value, probability) = match value.split_once('@') {
                Some((v, p)) => {
                    let p = p
                        .trim()
                        .parse::<f64>()
                        .map_err(|_| format!("site {key}: probability {p:?} is not a number"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("site {key}: probability {p} is outside [0, 1]"));
                    }
                    (v.trim(), p)
                }
                None => (value, 1.0),
            };
            let mut faults = Vec::new();
            for name in value.split('|') {
                let name = name.trim();
                if name.is_empty() {
                    return Err(format!("site {key}: empty fault name"));
                }
                faults.push(Fault::parse(name).map_err(|e| format!("site {key}: {e}"))?);
            }
            if faults.is_empty() {
                return Err(format!("site {key}: no faults listed"));
            }
            plan.sites.insert(
                key.to_owned(),
                SiteSpec {
                    faults,
                    probability,
                    budget,
                },
            );
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_names_round_trip() {
        for f in Fault::ALL {
            assert_eq!(Fault::parse(f.name()).unwrap(), f);
        }
        assert!(Fault::parse("nope").unwrap_err().contains("unknown fault"));
    }

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse(
            "seed=7; snapshot.read = bitflip|interrupted@0.5 ; exec.worker=panic@0.1#3",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.len(), 2);
        let read = plan.get("snapshot.read").unwrap();
        assert_eq!(read.faults, vec![Fault::BitFlip, Fault::Interrupted]);
        assert_eq!(read.probability, 0.5);
        assert_eq!(read.budget, None);
        let worker = plan.get("exec.worker").unwrap();
        assert_eq!(worker.faults, vec![Fault::Panic]);
        assert_eq!(worker.probability, 0.1);
        assert_eq!(worker.budget, Some(3));
    }

    #[test]
    fn parse_defaults_probability_to_one() {
        let plan = FaultPlan::parse("serve.overload=overload").unwrap();
        let spec = plan.get("serve.overload").unwrap();
        assert_eq!(spec.probability, 1.0);
        assert_eq!(spec.budget, None);
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "snapshot.read",    // no '='
            "=bitflip",         // empty site
            "seed=abc",         // bad seed
            "s=unknownfault",   // unknown fault
            "s=bitflip@1.5",    // probability out of range
            "s=bitflip@x",      // non-numeric probability
            "s=bitflip#x",      // non-numeric budget
            "s=",               // no faults
            "s=bitflip||short", // empty fault name
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parse_empty_spec_is_an_empty_plan() {
        let plan = FaultPlan::parse("  ; ;").unwrap();
        assert!(plan.is_empty());
    }
}
