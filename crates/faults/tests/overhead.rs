//! The bench guard: failpoints must be free when off.
//!
//! The serving path now carries failpoint calls on its hot paths (snapshot
//! I/O, request reads, budget enforcement, worker bodies). This suite pins
//! down the contract that makes that acceptable: with no plan installed, a
//! failpoint is one relaxed atomic load — it injects nothing, touches no
//! lock, and adds no measurable overhead to real work. Thresholds are
//! generous (and looser in debug builds) so the guard is robust to CI
//! noise while still catching a regression that put a lock or an RNG draw
//! on the disabled path.

use std::time::Instant;

use bestk_faults::{injection_count, io_error, maybe_panic, overloaded, pressure, roll, sites};
use bestk_graph::rng::Xoshiro256;

#[test]
fn disabled_failpoints_inject_nothing() {
    // No plan installed in this process: every helper must be inert.
    let before = injection_count();
    for _ in 0..10_000 {
        for site in sites::all() {
            assert!(roll(site).is_none());
            assert!(io_error(site).is_none());
            assert!(!pressure(site));
            assert!(!overloaded(site));
            maybe_panic(site);
        }
    }
    assert_eq!(injection_count(), before);
    assert!(!bestk_faults::is_enabled());
}

/// Median-free min-of-trials timing: the minimum over several runs is the
/// least noisy estimator of the true cost on a busy CI box.
fn best_of<F: FnMut() -> u64>(trials: usize, mut f: F) -> (std::time::Duration, u64) {
    let mut best = std::time::Duration::MAX;
    let mut sink = 0u64;
    for _ in 0..trials {
        let t = Instant::now();
        sink = sink.wrapping_add(f());
        let dt = t.elapsed();
        if dt < best {
            best = dt;
        }
    }
    (best, sink)
}

#[test]
fn disabled_failpoint_costs_nanoseconds_per_call() {
    const CALLS: u64 = 2_000_000;
    let (best, hits) = best_of(5, || {
        let mut hits = 0u64;
        for _ in 0..CALLS {
            if roll(sites::SNAPSHOT_READ).is_some() {
                hits += 1;
            }
        }
        hits
    });
    assert_eq!(hits, 0);
    let ns_per_call = best.as_nanos() as f64 / CALLS as f64;
    let limit = if cfg!(debug_assertions) { 400.0 } else { 40.0 };
    assert!(
        ns_per_call < limit,
        "disabled failpoint costs {ns_per_call:.1} ns/call (limit {limit})"
    );
}

#[test]
fn disabled_failpoints_are_within_noise_of_real_work() {
    // A compute loop standing in for a warm query, with and without a
    // failpoint consulted per item. The two must be within noise of each
    // other — the PR 3 serving path ran the plain loop; the hardened path
    // runs the guarded one.
    const ITEMS: u64 = 50_000;
    let work = |with_failpoints: bool| {
        let mut rng = Xoshiro256::seed_from_u64(0xBE57);
        let mut acc = 0u64;
        for _ in 0..ITEMS {
            for _ in 0..64 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            if with_failpoints && roll(sites::EXEC_WORKER).is_some() {
                acc = acc.wrapping_add(1);
            }
        }
        acc
    };
    let (plain, a) = best_of(5, || work(false));
    let (guarded, b) = best_of(5, || work(true));
    assert_eq!(a, b, "the guarded loop must compute the same result");
    let ratio = guarded.as_secs_f64() / plain.as_secs_f64();
    let limit = if cfg!(debug_assertions) { 2.5 } else { 1.5 };
    assert!(
        ratio < limit,
        "disabled failpoints slowed the loop {ratio:.2}x (limit {limit}x; \
         plain {plain:?}, guarded {guarded:?})"
    );
}
