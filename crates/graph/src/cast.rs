//! Blessed narrowing-cast helpers — the only module where raw truncating
//! `as` casts are allowed (enforced by `bestk-analyze`'s `no-raw-cast`
//! lint; see `DESIGN.md` §"Lint policy").
//!
//! The workspace stores vertex and edge ids as `u32` but indexes slices
//! with `usize`, so `usize → u32` narrowing is pervasive. A bare `as`
//! silently wraps on overflow; every helper here instead `debug_assert!`s
//! that the value fits, so property tests and debug builds catch an
//! overflow at its source while release builds keep the cast free.
//!
//! Graphs with ≥ 2³² vertices or edges are out of scope by construction
//! (`GraphBuilder` works in `u32` ids from the start), which is what makes
//! the debug-only check sufficient.

use crate::VertexId;

/// Converts a `usize` vertex index (e.g. a loop counter over
/// `0..g.num_vertices()`) into a [`VertexId`].
#[inline]
pub fn vertex_id(i: usize) -> VertexId {
    debug_assert!(u32::try_from(i).is_ok(), "vertex index {i} overflows u32");
    i as VertexId
}

/// Converts a `usize` count, position, level, or dense id (edge ids,
/// forest-node ids, bucket levels, …) into a `u32`.
#[inline]
pub fn u32_of(i: usize) -> u32 {
    debug_assert!(u32::try_from(i).is_ok(), "count {i} overflows u32");
    i as u32
}

/// Narrows a `u64` already known to be below `2³²` (typically an RNG draw
/// bounded by `next_below`) into a `u32`.
#[inline]
pub fn u32_from_u64(x: u64) -> u32 {
    debug_assert!(u32::try_from(x).is_ok(), "value {x} overflows u32");
    x as u32
}

/// Extracts the low byte of a `u64` — an *intentional* truncation (bit
/// masking), kept here so the call site documents itself.
#[inline]
pub fn low_byte(x: u64) -> u8 {
    (x & 0xFF) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_round_trip() {
        assert_eq!(vertex_id(0), 0);
        assert_eq!(vertex_id(u32::MAX as usize), u32::MAX);
        assert_eq!(u32_of(123_456), 123_456);
        assert_eq!(u32_from_u64(7), 7);
        assert_eq!(low_byte(0x1FF), 0xFF);
    }

    #[test]
    #[should_panic(expected = "overflows u32")]
    #[cfg(debug_assertions)]
    fn overflow_is_caught_in_debug() {
        vertex_id(u32::MAX as usize + 1);
    }
}
