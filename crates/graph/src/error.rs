//! Error type shared by the graph substrate.

use std::fmt;

/// Errors produced while constructing, reading, or writing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex id that does not fit the requested vertex
    /// universe (e.g. larger than the declared vertex count).
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices the graph was declared with.
        num_vertices: usize,
    },
    /// The input described a graph larger than the `u32` id space supports.
    TooManyVertices(u64),
    /// A parse error while reading a text edge list.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// The binary format header was malformed or had the wrong magic/version.
    BadBinaryFormat(String),
    /// The binary input ended before the payload its header declared was
    /// complete (a short read is corruption, not a plain I/O failure).
    TruncatedBinary {
        /// Which part of the layout was being read when the stream ran dry.
        section: &'static str,
    },
    /// The binary input continued past the payload its header declared —
    /// trailing garbage means the header and the content disagree.
    TrailingBytes,
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex id {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::TooManyVertices(n) => {
                write!(f, "{n} vertices exceed the u32 vertex id space")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::BadBinaryFormat(msg) => write!(f, "bad binary graph: {msg}"),
            GraphError::TruncatedBinary { section } => {
                write!(f, "truncated binary graph: input ended inside {section}")
            }
            GraphError::TrailingBytes => {
                write!(
                    f,
                    "bad binary graph: trailing bytes after the declared payload"
                )
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        };
        assert!(e.to_string().contains("vertex id 9"));
        assert!(e.to_string().contains("4 vertices"));

        let e = GraphError::TooManyVertices(1 << 40);
        assert!(e.to_string().contains("u32"));

        let e = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));

        let e = GraphError::BadBinaryFormat("wrong magic".into());
        assert!(e.to_string().contains("wrong magic"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = GraphError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
