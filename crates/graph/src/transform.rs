//! Whole-graph transformations: component extraction, filtering, merging.
//!
//! The preprocessing steps a real pipeline runs before decomposition —
//! SNAP graphs are usually reduced to their largest connected component,
//! degree-filtered, or composed from several sources.

use crate::builder::GraphBuilder;
use crate::cast;
use crate::connectivity::connected_components;
use crate::csr::{CsrGraph, VertexId};
use crate::subgraph::{induced_subgraph, InducedSubgraph};

/// Extracts the largest connected component (densely relabeled). Returns
/// the subgraph with its original-id mapping; an empty graph maps to an
/// empty subgraph.
pub fn largest_connected_component(g: &CsrGraph) -> InducedSubgraph {
    let cc = connected_components(g);
    match cc.largest() {
        None => induced_subgraph(g, &[]),
        Some(target) => {
            let members: Vec<VertexId> = g
                .vertices()
                .filter(|&v| cc.component[v as usize] == cast::u32_of(target))
                .collect();
            induced_subgraph(g, &members)
        }
    }
}

/// Keeps only vertices with degree in `[min_degree, max_degree]` (degrees
/// measured in the input graph, applied once — not iterated like a core
/// decomposition). Returns the relabeled subgraph.
pub fn filter_by_degree(g: &CsrGraph, min_degree: usize, max_degree: usize) -> InducedSubgraph {
    let members: Vec<VertexId> = g
        .vertices()
        .filter(|&v| {
            let d = g.degree(v);
            d >= min_degree && d <= max_degree
        })
        .collect();
    induced_subgraph(g, &members)
}

/// Disjoint union: the vertices of `b` are shifted by `a.num_vertices()`.
pub fn disjoint_union(a: &CsrGraph, b: &CsrGraph) -> CsrGraph {
    let shift = cast::vertex_id(a.num_vertices());
    let mut builder = GraphBuilder::with_capacity(a.num_edges() + b.num_edges());
    builder.reserve_vertices(a.num_vertices() + b.num_vertices());
    builder.extend_edges(a.edges());
    builder.extend_edges(b.edges().map(|(u, v)| (u + shift, v + shift)));
    builder.build()
}

/// Edge-union of two graphs over the same vertex universe (the larger
/// vertex count wins; duplicate edges collapse).
pub fn overlay(a: &CsrGraph, b: &CsrGraph) -> CsrGraph {
    let mut builder = GraphBuilder::with_capacity(a.num_edges() + b.num_edges());
    builder.reserve_vertices(a.num_vertices().max(b.num_vertices()));
    builder.extend_edges(a.edges());
    builder.extend_edges(b.edges());
    builder.build()
}

/// Drops isolated vertices and relabels densely.
pub fn drop_isolated(g: &CsrGraph) -> InducedSubgraph {
    let members: Vec<VertexId> = g.vertices().filter(|&v| g.degree(v) > 0).collect();
    induced_subgraph(g, &members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, regular};

    #[test]
    fn lcc_extraction() {
        let g = disjoint_union(&regular::complete(5), &regular::path(3));
        let lcc = largest_connected_component(&g);
        assert_eq!(lcc.graph.num_vertices(), 5);
        assert_eq!(lcc.graph.num_edges(), 10);
        assert_eq!(lcc.vertices, vec![0, 1, 2, 3, 4]);
        // Empty graph.
        let empty = largest_connected_component(&CsrGraph::empty(0));
        assert_eq!(empty.graph.num_vertices(), 0);
    }

    #[test]
    fn degree_filter() {
        let g = regular::star(5); // center degree 5, leaves degree 1
        let hubs = filter_by_degree(&g, 2, usize::MAX);
        assert_eq!(hubs.graph.num_vertices(), 1);
        assert_eq!(hubs.vertices, vec![0]);
        let leaves = filter_by_degree(&g, 0, 1);
        assert_eq!(leaves.graph.num_vertices(), 5);
        assert_eq!(leaves.graph.num_edges(), 0, "leaves lose the center");
    }

    #[test]
    fn union_and_overlay() {
        let a = regular::cycle(4);
        let b = regular::cycle(3);
        let u = disjoint_union(&a, &b);
        assert_eq!(u.num_vertices(), 7);
        assert_eq!(u.num_edges(), 7);
        assert!(u.validate().is_ok());

        let o = overlay(&regular::cycle(5), &regular::star(4));
        assert_eq!(o.num_vertices(), 5);
        // Cycle 0-1-2-3-4-0 plus star edges 0-1, 0-2, 0-3, 0-4; 0-1 and
        // 0-4 already exist.
        assert_eq!(o.num_edges(), 5 + 2);
    }

    #[test]
    fn drop_isolated_vertices() {
        let mut b = GraphBuilder::new();
        b.add_edge(2, 5);
        b.reserve_vertices(8);
        let g = b.build();
        let trimmed = drop_isolated(&g);
        assert_eq!(trimmed.graph.num_vertices(), 2);
        assert_eq!(trimmed.vertices, vec![2, 5]);
    }

    #[test]
    fn lcc_on_generated_graph_is_connected() {
        let g = generators::erdos_renyi_gnp(300, 0.004, 5);
        let lcc = largest_connected_component(&g);
        assert!(crate::connectivity::is_connected(&lcc.graph));
        assert!(lcc.graph.num_vertices() <= g.num_vertices());
    }
}
