//! Degree statistics, as reported in the paper's Table III.

use crate::view::GraphView;

/// Summary statistics for a graph (the columns of the paper's Table III,
/// minus `kmax`, which needs a core decomposition from `bestk-core`).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices `n`.
    pub num_vertices: usize,
    /// Number of undirected edges `m`.
    pub num_edges: usize,
    /// Average degree `2 m / n`.
    pub average_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Minimum degree (0 if there are isolated vertices).
    pub min_degree: usize,
    /// Number of isolated (degree-0) vertices.
    pub isolated_vertices: usize,
}

/// Computes [`GraphStats`] in `O(n)` over any storage backend.
pub fn graph_stats(g: &impl GraphView) -> GraphStats {
    let n = g.num_vertices();
    let mut max_degree = 0usize;
    let mut min_degree = usize::MAX;
    let mut isolated = 0usize;
    for v in g.vertices() {
        let d = g.degree(v);
        max_degree = max_degree.max(d);
        min_degree = min_degree.min(d);
        if d == 0 {
            isolated += 1;
        }
    }
    if n == 0 {
        min_degree = 0;
    }
    GraphStats {
        num_vertices: n,
        num_edges: g.num_edges(),
        average_degree: g.average_degree(),
        max_degree,
        min_degree,
        isolated_vertices: isolated,
    }
}

/// Histogram of vertex degrees: `hist[d]` = number of vertices of degree `d`.
///
/// Length is `max_degree + 1` (a single empty bucket for the empty graph).
pub fn degree_histogram(g: &impl GraphView) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Fits the exponent of a power-law degree distribution by the standard
/// maximum-likelihood estimator `1 + n / Σ ln(d_i / (d_min - 1/2))` over
/// vertices with degree ≥ `d_min`.
///
/// Returns `None` when fewer than two vertices qualify. Used by the bench
/// harness to check that synthetic stand-ins are heavy-tailed like the
/// paper's datasets.
pub fn power_law_exponent_mle(g: &impl GraphView, d_min: usize) -> Option<f64> {
    assert!(d_min >= 1, "d_min must be at least 1");
    let mut count = 0usize;
    let mut log_sum = 0.0f64;
    let shift = d_min as f64 - 0.5;
    for v in g.vertices() {
        let d = g.degree(v);
        if d >= d_min {
            count += 1;
            log_sum += (d as f64 / shift).ln();
        }
    }
    if count < 2 || log_sum <= 0.0 {
        None
    } else {
        Some(1.0 + count as f64 / log_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn stats_on_star() {
        let mut b = GraphBuilder::new();
        for v in 1..=4 {
            b.add_edge(0, v);
        }
        b.reserve_vertices(6);
        let g = b.build();
        let s = graph_stats(&g);
        assert_eq!(s.num_vertices, 6);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.isolated_vertices, 1);
        assert!((s.average_degree - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn stats_on_empty() {
        let g = crate::CsrGraph::empty(0);
        let s = graph_stats(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.max_degree, 0);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = generators::erdos_renyi_gnm(100, 300, 7);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 100);
        // Sum of d * hist[d] = 2m.
        let total: usize = hist.iter().enumerate().map(|(d, &c)| d * c).sum();
        assert_eq!(total, 600);
    }

    #[test]
    fn power_law_fit_detects_heavy_tail() {
        let g = generators::chung_lu_power_law(20_000, 8.0, 2.5, 42);
        let gamma = power_law_exponent_mle(&g, 5).unwrap();
        // MLE on a finite Chung-Lu sample is noisy; just check the ballpark.
        assert!(gamma > 1.8 && gamma < 3.5, "gamma = {gamma}");
    }

    #[test]
    fn stats_agree_across_backends() {
        let g = generators::erdos_renyi_gnm(200, 600, 9);
        let s = crate::SuccinctCsr::from_csr(&g);
        assert_eq!(graph_stats(&s), graph_stats(&g));
        assert_eq!(degree_histogram(&s), degree_histogram(&g));
        assert_eq!(power_law_exponent_mle(&s, 2), power_law_exponent_mle(&g, 2));
    }

    #[test]
    fn power_law_fit_degenerate_cases() {
        let g = crate::CsrGraph::empty(10);
        assert!(power_law_exponent_mle(&g, 1).is_none());
    }
}
