//! Induced-subgraph extraction.
//!
//! The paper's baseline algorithms (§III-A, §IV-B) re-materialize the k-core
//! set for every k and score it from scratch; this module provides that
//! materialization. The optimal algorithms never call it — that is the point
//! of the comparison.

use crate::cast;
use crate::csr::{CsrGraph, VertexId};
use crate::view::GraphView;

/// A subgraph induced by a vertex subset, with vertices renumbered densely.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The extracted graph over dense ids `0..vertices.len()`.
    pub graph: CsrGraph,
    /// `vertices[i]` is the original id of dense vertex `i`, ascending.
    pub vertices: Vec<VertexId>,
}

impl InducedSubgraph {
    /// Maps a dense subgraph id back to the original graph id.
    #[inline]
    pub fn original_id(&self, dense: VertexId) -> VertexId {
        self.vertices[dense as usize]
    }
}

/// Extracts the subgraph induced by `vertices` (duplicates allowed, order
/// irrelevant) in `O(|vertices| + Σ deg)` time.
pub fn induced_subgraph(g: &impl GraphView, vertices: &[VertexId]) -> InducedSubgraph {
    let mut keep: Vec<VertexId> = vertices.to_vec();
    keep.sort_unstable();
    keep.dedup();
    // Dense remap: u32::MAX marks "not in subgraph".
    let mut remap = vec![u32::MAX; g.num_vertices()];
    for (i, &v) in keep.iter().enumerate() {
        remap[v as usize] = cast::u32_of(i);
    }
    let mut offsets = Vec::with_capacity(keep.len() + 1);
    offsets.push(0usize);
    let mut neighbors = Vec::new();
    for &v in &keep {
        for u in g.neighbors(v) {
            let d = remap[u as usize];
            if d != u32::MAX {
                neighbors.push(d);
            }
        }
        offsets.push(neighbors.len());
    }
    InducedSubgraph {
        graph: CsrGraph::from_parts(offsets, neighbors),
        vertices: keep,
    }
}

/// Number of edges in the subgraph induced by `vertices`, without
/// materializing it. `O(Σ deg)` with an `O(n)` scratch bitmap.
pub fn induced_edge_count(g: &impl GraphView, vertices: &[VertexId]) -> usize {
    let mut inside = vec![false; g.num_vertices()];
    for &v in vertices {
        inside[v as usize] = true;
    }
    let mut uniq = Vec::with_capacity(vertices.len());
    let mut seen = vec![false; g.num_vertices()];
    for &v in vertices {
        if !seen[v as usize] {
            seen[v as usize] = true;
            uniq.push(v);
        }
    }
    // Each internal edge is seen from both endpoints; halve at the end.
    let mut twice = 0usize;
    for &v in &uniq {
        for u in g.neighbors(v) {
            if inside[u as usize] {
                twice += 1;
            }
        }
    }
    twice / 2
}

/// Number of boundary edges of the vertex set (edges with exactly one
/// endpoint inside). `O(Σ deg)`.
pub fn boundary_edge_count(g: &impl GraphView, vertices: &[VertexId]) -> usize {
    let mut inside = vec![false; g.num_vertices()];
    let mut uniq = Vec::with_capacity(vertices.len());
    for &v in vertices {
        if !inside[v as usize] {
            inside[v as usize] = true;
            uniq.push(v);
        }
    }
    let mut boundary = 0usize;
    for &v in &uniq {
        for u in g.neighbors(v) {
            if !inside[u as usize] {
                boundary += 1;
            }
        }
    }
    boundary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// 5-vertex graph: square 0-1-2-3 with diagonal 0-2, pendant 4 on 0.
    fn fixture() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (0, 4)]);
        b.build()
    }

    #[test]
    fn induced_triangle() {
        let g = fixture();
        let sub = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.graph.num_edges(), 3);
        assert_eq!(sub.vertices, vec![0, 1, 2]);
        assert!(sub.graph.validate().is_ok());
    }

    #[test]
    fn induced_preserves_original_ids() {
        let g = fixture();
        let sub = induced_subgraph(&g, &[4, 2, 0]);
        assert_eq!(sub.vertices, vec![0, 2, 4]);
        assert_eq!(sub.original_id(1), 2);
        // Edges 0-2 and 0-4 survive; 2-4 does not exist.
        assert_eq!(sub.graph.num_edges(), 2);
    }

    #[test]
    fn induced_with_duplicates_in_input() {
        let g = fixture();
        let sub = induced_subgraph(&g, &[1, 1, 2, 2]);
        assert_eq!(sub.graph.num_vertices(), 2);
        assert_eq!(sub.graph.num_edges(), 1);
    }

    #[test]
    fn induced_empty_set() {
        let g = fixture();
        let sub = induced_subgraph(&g, &[]);
        assert_eq!(sub.graph.num_vertices(), 0);
        assert_eq!(sub.graph.num_edges(), 0);
    }

    #[test]
    fn edge_count_without_materializing() {
        let g = fixture();
        assert_eq!(induced_edge_count(&g, &[0, 1, 2, 3]), 5);
        assert_eq!(induced_edge_count(&g, &[0, 4]), 1);
        assert_eq!(induced_edge_count(&g, &[1, 3]), 0);
        assert_eq!(induced_edge_count(&g, &[]), 0);
    }

    #[test]
    fn boundary_count() {
        let g = fixture();
        // {0}: edges to 1, 2, 3, 4.
        assert_eq!(boundary_edge_count(&g, &[0]), 4);
        // {0,1,2,3}: only the pendant edge 0-4 crosses.
        assert_eq!(boundary_edge_count(&g, &[0, 1, 2, 3]), 1);
        // Whole graph: nothing crosses.
        assert_eq!(boundary_edge_count(&g, &[0, 1, 2, 3, 4]), 0);
        // Duplicates in the input must not double-count.
        assert_eq!(boundary_edge_count(&g, &[0, 0]), 4);
    }

    #[test]
    fn edge_count_matches_materialized_subgraph() {
        let g = fixture();
        for set in [&[0u32, 1, 2][..], &[0, 2, 4], &[1, 2, 3, 4]] {
            assert_eq!(
                induced_edge_count(&g, set),
                induced_subgraph(&g, set).graph.num_edges()
            );
        }
    }
}
