//! Succinct CSR backend: Elias-Fano offsets + varint gap adjacency.
//!
//! [`SuccinctCsr`] stores the same graph as [`CsrGraph`] in a fraction of
//! the space. The two monotone offset arrays (element starts and byte
//! starts) are Elias-Fano encoded — `n lg(u/n) + 2n` bits plus a sparse
//! select-sample table for `O(1)` access — and the concatenated adjacency
//! lists are delta-compressed: each list stores its first neighbor as a
//! raw varint and every following neighbor as a varint gap from its
//! predecessor. Sorted adjacency (the builder invariant) makes gaps
//! small, so real graphs compress 2-5×, in line with the WebGraph family
//! of formats this layout is modeled on.
//!
//! Neighbor *order* is preserved exactly, which is what keeps best-k
//! answers bit-identical to the materialized backend (see
//! `tests/backend_equivalence.rs`).

use crate::cast;
use crate::view::{push_varint, GraphView, Neighbors};
use crate::{CsrGraph, VertexId};

/// Select samples every `SAMPLE` set bits; access scans at most a few
/// words from the nearest sample.
const SAMPLE: usize = 64;

/// Elias-Fano encoding of a non-decreasing `u64` sequence with `O(1)`
/// random access via sampled select.
#[derive(Clone, Debug)]
pub struct EliasFano {
    len: usize,
    /// Low-bit width `l = max(0, floor(lg(u / n)))`.
    low_width: u32,
    /// Packed `l`-bit low parts, `len` of them.
    lows: Vec<u64>,
    /// Unary-coded high parts: bit `high(x_i) + i` is set for each `i`.
    highs: Vec<u64>,
    /// Bit position of every `SAMPLE`-th set bit in `highs`.
    samples: Vec<usize>,
}

impl EliasFano {
    /// Encodes `values`, which must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `values` decreases anywhere; this is a trusted in-memory
    /// encoder, not a deserializer.
    pub fn new(values: &[u64]) -> Self {
        assert!(
            values.windows(2).all(|w| w[0] <= w[1]),
            "EliasFano input must be non-decreasing"
        );
        let len = values.len();
        let universe = values.last().copied().unwrap_or(0).saturating_add(1);
        let low_width = if len == 0 {
            0
        } else {
            let per = universe / len as u64;
            if per <= 1 {
                0
            } else {
                63 - per.leading_zeros()
            }
        };
        let low_mask = if low_width == 0 {
            0
        } else {
            (1u64 << low_width) - 1
        };

        let low_bits_total = len.saturating_mul(low_width as usize);
        let mut lows = vec![0u64; low_bits_total.div_ceil(64)];
        let high_bits_total = len + ((universe >> low_width) as usize) + 1;
        let mut highs = vec![0u64; high_bits_total.div_ceil(64).max(1)];
        let mut samples = Vec::with_capacity(len / SAMPLE + 1);

        for (i, &x) in values.iter().enumerate() {
            if low_width > 0 {
                let low = x & low_mask;
                let bit = i * low_width as usize;
                let (word, off) = (bit / 64, cast::u32_of(bit % 64));
                lows[word] |= low << off;
                if off + low_width > 64 {
                    lows[word + 1] |= low >> (64 - off);
                }
            }
            let pos = (x >> low_width) as usize + i;
            highs[pos / 64] |= 1u64 << (pos % 64);
            if i % SAMPLE == 0 {
                samples.push(pos);
            }
        }

        EliasFano {
            len,
            low_width,
            lows,
            highs,
            samples,
        }
    }

    /// Number of encoded values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th value. `O(1)` plus a short word scan from the nearest
    /// select sample.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(
            i < self.len,
            "EliasFano index {i} out of range {}",
            self.len
        );
        let pos = self.select1(i);
        // pos >= i by construction: the i-th set bit sits at high(x_i) + i.
        let high = (pos - i) as u64;
        (high << self.low_width) | self.low(i)
    }

    /// Heap bytes held by the encoding (excluding `size_of::<Self>()`).
    pub fn heap_bytes(&self) -> usize {
        8 * (self.lows.len() + self.highs.len() + self.samples.len())
    }

    #[inline]
    fn low(&self, i: usize) -> u64 {
        if self.low_width == 0 {
            return 0;
        }
        let mask = (1u64 << self.low_width) - 1;
        let bit = i * self.low_width as usize;
        let (word, off) = (bit / 64, cast::u32_of(bit % 64));
        let mut out = self.lows[word] >> off;
        if off + self.low_width > 64 {
            out |= self.lows[word + 1] << (64 - off);
        }
        out & mask
    }

    /// Bit position of the `i`-th (0-based) set bit in `highs`.
    fn select1(&self, i: usize) -> usize {
        let sample_pos = self.samples[i / SAMPLE];
        let mut need = i % SAMPLE + 1;
        let mut word_idx = sample_pos / 64;
        let mut word = self.highs[word_idx] & (!0u64 << (sample_pos % 64));
        loop {
            let ones = word.count_ones() as usize;
            if ones >= need {
                return word_idx * 64 + nth_set_bit(word, need);
            }
            need -= ones;
            word_idx += 1;
            word = self.highs[word_idx];
        }
    }
}

/// Bit position of the `k`-th (1-based, `1 <= k <= popcount`) set bit in
/// `word`.
#[inline]
fn nth_set_bit(mut word: u64, k: usize) -> usize {
    for _ in 1..k {
        word &= word - 1;
    }
    word.trailing_zeros() as usize
}

/// Compressed, immutable graph backend: Elias-Fano offsets over a varint
/// gap-encoded adjacency stream. Built from any [`GraphView`]; neighbor
/// order is preserved bit-for-bit.
#[derive(Clone)]
pub struct SuccinctCsr {
    n: usize,
    /// Total adjacency entries, `2 m`.
    adjacency_len: usize,
    /// Element offsets: `starts.get(v)..starts.get(v + 1)` are the global
    /// adjacency slots of `v`. `n + 1` values.
    starts: EliasFano,
    /// Byte offsets of each vertex's gap stream inside `adj`. `n + 1`
    /// values.
    byte_starts: EliasFano,
    /// Concatenated varint gap streams.
    adj: Vec<u8>,
}

impl SuccinctCsr {
    /// Compresses any backend into succinct form.
    ///
    /// # Panics
    ///
    /// Panics if some adjacency list is not sorted ascending — the
    /// builder invariant every trusted backend upholds.
    pub fn from_view<G: GraphView>(g: &G) -> Self {
        let n = g.num_vertices();
        let mut starts = Vec::with_capacity(n + 1);
        let mut byte_starts = Vec::with_capacity(n + 1);
        let mut adj = Vec::new();
        let mut total = 0u64;
        for v in g.vertices() {
            starts.push(total);
            byte_starts.push(adj.len() as u64);
            let mut prev = 0u64;
            let mut count = 0u64;
            for w in g.neighbors(v) {
                let w = u64::from(w);
                assert!(
                    w >= prev,
                    "adjacency of {v} is not sorted; succinct encoding requires sorted lists"
                );
                push_varint(&mut adj, w - prev);
                prev = w;
                count += 1;
            }
            total += count;
        }
        starts.push(total);
        byte_starts.push(adj.len() as u64);
        adj.shrink_to_fit();
        SuccinctCsr {
            n,
            adjacency_len: total as usize,
            starts: EliasFano::new(&starts),
            byte_starts: EliasFano::new(&byte_starts),
            adj,
        }
    }

    /// Compresses a materialized CSR graph (the canonical entry point).
    pub fn from_csr(g: &CsrGraph) -> Self {
        Self::from_view(g)
    }

    /// Heap bytes held by the compressed representation.
    pub fn heap_bytes(&self) -> usize {
        self.adj.len() + self.starts.heap_bytes() + self.byte_starts.heap_bytes()
    }

    /// Bytes the same graph occupies as a materialized [`CsrGraph`]
    /// (`8 (n + 1)` offset bytes + `4 · 2m` neighbor bytes).
    pub fn uncompressed_bytes(&self) -> usize {
        8 * (self.n + 1) + 4 * self.adjacency_len
    }

    /// Compression ratio `uncompressed / compressed` (≥ 1.0 on real
    /// graphs; 1.0 when either side is empty).
    pub fn compression_ratio(&self) -> f64 {
        let c = self.heap_bytes();
        if c == 0 {
            1.0
        } else {
            self.uncompressed_bytes() as f64 / c as f64
        }
    }

    /// Decompresses back into a materialized CSR graph.
    pub fn to_csr(&self) -> CsrGraph {
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut neighbors = Vec::with_capacity(self.adjacency_len);
        offsets.push(0);
        for v in self.vertices() {
            neighbors.extend(self.neighbors(v));
            offsets.push(neighbors.len());
        }
        CsrGraph::from_parts(offsets, neighbors)
    }
}

impl GraphView for SuccinctCsr {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.adjacency_len / 2
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        // bestk-analyze: allow(unchecked-arith) — starts is a monotone offset sequence by construction
        (self.starts.get(v + 1) - self.starts.get(v)) as usize
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> Neighbors<'_> {
        let v = v as usize;
        let lo = self.byte_starts.get(v) as usize;
        let hi = self.byte_starts.get(v + 1) as usize;
        Neighbors::from_gaps(&self.adj[lo..hi], self.degree(cast::vertex_id(v)))
    }

    #[inline]
    fn adjacency_start(&self, v: VertexId) -> usize {
        self.starts.get(v as usize) as usize
    }
}

impl std::fmt::Debug for SuccinctCsr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SuccinctCsr {{ n: {}, m: {}, bytes: {} }}",
            self.n,
            self.num_edges(),
            self.heap_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use crate::GraphBuilder;

    #[test]
    fn elias_fano_round_trips_known_sequences() {
        let cases: &[&[u64]] = &[
            &[0],
            &[0, 0, 0],
            &[5],
            &[0, 1, 2, 3, 4, 5],
            &[0, 3, 3, 9, 27, 81, 81, 1000],
            &[1 << 40, (1 << 40) + 7, 1 << 41],
        ];
        for &values in cases {
            let ef = EliasFano::new(values);
            assert_eq!(ef.len(), values.len());
            for (i, &x) in values.iter().enumerate() {
                assert_eq!(ef.get(i), x, "values {values:?} index {i}");
            }
        }
    }

    #[test]
    fn elias_fano_handles_long_runs_past_sample_boundaries() {
        let values: Vec<u64> = (0..1000u64).map(|i| i * i / 3).collect();
        let ef = EliasFano::new(&values);
        for (i, &x) in values.iter().enumerate() {
            assert_eq!(ef.get(i), x);
        }
        assert!(ef.heap_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn elias_fano_rejects_decreasing_input() {
        EliasFano::new(&[3, 2]);
    }

    #[test]
    fn succinct_matches_csr_on_a_small_graph() {
        let mut b = GraphBuilder::new();
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        let s = SuccinctCsr::from_csr(&g);
        assert_eq!(s.num_vertices(), g.num_vertices());
        assert_eq!(s.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(GraphView::degree(&s, v), g.degree(v));
            assert_eq!(GraphView::adjacency_start(&s, v), g.offsets()[v as usize]);
            let got: Vec<_> = GraphView::neighbors(&s, v).collect();
            assert_eq!(got, g.neighbors(v).to_vec());
        }
        assert_eq!(s.to_csr(), g);
    }

    #[test]
    fn succinct_empty_graphs() {
        for n in [0usize, 1, 17] {
            let g = CsrGraph::empty(n);
            let s = SuccinctCsr::from_csr(&g);
            assert_eq!(s.num_vertices(), n);
            assert_eq!(s.num_edges(), 0);
            assert_eq!(s.to_csr(), g);
        }
    }

    #[test]
    fn succinct_round_trips_random_graphs() {
        testkit::check("succinct_round_trip", 40, |gen| {
            let g = gen.graph(200, 600);
            let s = SuccinctCsr::from_csr(&g);
            assert_eq!(s.to_csr(), g);
            for v in g.vertices() {
                assert_eq!(GraphView::degree(&s, v), g.degree(v));
            }
        });
    }

    #[test]
    fn succinct_compresses_a_power_law_graph() {
        let g = crate::generators::chung_lu_power_law(5000, 8.0, 2.5, 42);
        let s = SuccinctCsr::from_csr(&g);
        assert!(
            s.heap_bytes() < s.uncompressed_bytes(),
            "expected compression: {} vs {}",
            s.heap_bytes(),
            s.uncompressed_bytes()
        );
        assert!(s.compression_ratio() > 1.0);
    }
}
