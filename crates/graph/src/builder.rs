//! Linear-time construction of [`CsrGraph`] from edge streams.
//!
//! bestk-analyze: allow-file(raw-atomic) — parallel degree counting uses
//! relaxed `fetch_add` on disjoint-by-value counters; addition commutes, so
//! the totals are schedule-invariant and identical to the sequential path.

use crate::cast;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use bestk_exec::ExecPolicy;

use crate::csr::{CsrGraph, VertexId};
use crate::error::GraphError;

/// Deduplicating builder that turns an arbitrary stream of undirected edges
/// into a [`CsrGraph`].
///
/// The builder accepts edges in any order, silently drops self loops, and
/// collapses parallel edges. Vertex ids are dense `u32`s; the vertex count of
/// the result is `max id + 1` unless raised with [`reserve_vertices`].
///
/// Construction is `O(n + m)` using two counting-sort passes (no comparison
/// sort), which is what keeps graph loading off the critical path for the
/// paper's `O(m)` algorithms.
///
/// [`reserve_vertices`]: GraphBuilder::reserve_vertices
///
/// # Example
///
/// ```
/// use bestk_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 2);
/// b.add_edge(2, 0); // duplicate, collapsed
/// b.add_edge(1, 1); // self loop, dropped
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    min_vertices: usize,
}

impl GraphBuilder {
    /// A builder with no edges.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder expecting roughly `m` edges (pre-sizes the edge buffer).
    pub fn with_capacity(m: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(m),
            min_vertices: 0,
        }
    }

    /// Ensures the built graph has at least `n` vertices even if some of them
    /// end up isolated.
    pub fn reserve_vertices(&mut self, n: usize) -> &mut Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Adds the undirected edge `{u, v}`. Self loops are ignored.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        if u != v {
            self.edges.push(if u < v { (u, v) } else { (v, u) });
        }
        self
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(
        &mut self,
        iter: I,
    ) -> &mut Self {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
        self
    }

    /// Number of (not yet deduplicated) edges added so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Builds the graph, consuming the builder.
    pub fn build(self) -> CsrGraph {
        self.build_with(&ExecPolicy::Sequential)
    }

    /// Builds the graph under an execution policy: the degree-count and
    /// per-adjacency sort passes route through `policy`, while the stable
    /// counting sorts stay sequential (their scatter order is the
    /// algorithm). The resulting graph is bit-identical at every thread
    /// count.
    pub fn build_with(self, policy: &ExecPolicy) -> CsrGraph {
        let n = self
            .edges
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0)
            .max(self.min_vertices);
        build_csr(n, self.edges, policy)
    }
}

/// Counting-sort construction of a deduplicated CSR from canonicalized edges
/// (`u < v`, no self loops). Two passes: scatter by `u`, then per-adjacency
/// dedup after a stable scatter by the opposite endpoint.
fn build_csr(n: usize, mut edges: Vec<(VertexId, VertexId)>, policy: &ExecPolicy) -> CsrGraph {
    // Sort canonical edges lexicographically via two stable counting passes
    // (radix over the two endpoints), then dedup.
    if !edges.is_empty() {
        edges = counting_sort_by(edges, n, |&(_, v)| v as usize);
        edges = counting_sort_by(edges, n, |&(u, _)| u as usize);
        edges.dedup();
    }

    let deg = count_degrees(n, &edges, policy);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for d in &deg {
        acc += d;
        offsets.push(acc);
    }
    let mut cursor = offsets.clone();
    let mut neighbors: Vec<VertexId> = vec![0; acc];
    for &(u, v) in &edges {
        neighbors[cursor[u as usize]] = v;
        cursor[u as usize] += 1;
        neighbors[cursor[v as usize]] = u;
        cursor[v as usize] += 1;
    }
    // Each adjacency list is the interleaving of two already-sorted runs
    // (neighbors below w from edges (u, w), neighbors above w from edges
    // (w, v)); `sort_unstable` on the short slice hits its adaptive merge
    // fast path, keeping construction effectively linear. The lists are
    // disjoint output regions, so the pass runs edge-balanced in parallel.
    let plan = policy.plan_weighted(&offsets);
    let cuts: Vec<usize> = plan.bounds().iter().map(|&b| offsets[b]).collect();
    let offsets_ref = &offsets;
    policy.for_each_disjoint(
        &plan,
        &mut neighbors,
        &cuts,
        || (),
        |(), _, vertices, region| {
            let base = offsets_ref[vertices.start];
            for w in vertices {
                // bestk-analyze: allow(unchecked-arith) — prefix-sum offsets are monotone, base <= offsets[w]
                region[offsets_ref[w] - base..offsets_ref[w + 1] - base].sort_unstable();
            }
        },
    );
    CsrGraph::from_parts(offsets, neighbors)
}

/// Degree count over both endpoints of the canonical edge list. Sequential
/// policies use plain counters; parallel ones accumulate into shared atomic
/// counters (addition commutes, so the totals are identical either way).
fn count_degrees(n: usize, edges: &[(VertexId, VertexId)], policy: &ExecPolicy) -> Vec<usize> {
    if !policy.is_parallel() || edges.len() < 2 {
        let mut deg = vec![0usize; n];
        for &(u, v) in edges {
            // bestk-analyze: allow(unchecked-arith) — counts bounded by the in-memory edge count
            deg[u as usize] += 1;
            deg[v as usize] += 1; // bestk-analyze: allow(unchecked-arith) — same bound as above
        }
        return deg;
    }
    let deg: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    let plan = policy.plan_even(edges.len());
    policy.parallel_for(
        &plan,
        || (),
        |(), _, range| {
            for &(u, v) in &edges[range] {
                deg[u as usize].fetch_add(1, Ordering::Relaxed);
                deg[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        },
    );
    deg.into_iter().map(AtomicUsize::into_inner).collect()
}

fn counting_sort_by<T: Copy>(items: Vec<T>, buckets: usize, key: impl Fn(&T) -> usize) -> Vec<T> {
    if items.is_empty() {
        return items;
    }
    let mut count = vec![0usize; buckets + 1];
    for it in &items {
        count[key(it) + 1] += 1;
    }
    for i in 0..buckets {
        count[i + 1] += count[i];
    }
    let mut out = Vec::with_capacity(items.len());
    // Safety-free scatter: fill with first element then overwrite.
    out.resize(items.len(), items[0]);
    for it in &items {
        let k = key(it);
        out[count[k]] = *it;
        count[k] += 1;
    }
    out
}

/// Builds a [`CsrGraph`] from edges over an arbitrary sparse id universe
/// (e.g. raw SNAP vertex ids), remapping ids densely in first-seen order.
///
/// Returns the graph together with the mapping `dense id -> original id`.
pub fn build_relabeled(
    edges: impl IntoIterator<Item = (u64, u64)>,
) -> Result<(CsrGraph, Vec<u64>), GraphError> {
    let mut map: HashMap<u64, VertexId> = HashMap::new();
    let mut original: Vec<u64> = Vec::new();
    let mut b = GraphBuilder::new();
    for (u, v) in edges {
        let mut id_of = |x: u64| -> Result<VertexId, GraphError> {
            if let Some(&id) = map.get(&x) {
                return Ok(id);
            }
            let next = original.len();
            if next > u32::MAX as usize {
                return Err(GraphError::TooManyVertices(next as u64 + 1));
            }
            let id = cast::vertex_id(next);
            map.insert(x, id);
            original.push(x);
            Ok(id)
        };
        let du = id_of(u)?;
        let dv = id_of(v)?;
        b.add_edge(du, dv);
    }
    Ok((b.build(), original))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_empty() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn reserve_vertices_creates_isolated() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.reserve_vertices(10);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn dedup_and_self_loops() {
        let mut b = GraphBuilder::new();
        b.add_edge(3, 1);
        b.add_edge(1, 3);
        b.add_edge(3, 1);
        b.add_edge(2, 2);
        let g = b.build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(1), &[3]);
        assert_eq!(g.neighbors(3), &[1]);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn adjacency_is_sorted_regardless_of_insertion_order() {
        let mut b = GraphBuilder::new();
        for &v in &[7, 2, 9, 1, 5] {
            b.add_edge(4, v);
        }
        let g = b.build();
        assert_eq!(g.neighbors(4), &[1, 2, 5, 7, 9]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn extend_edges_matches_add_edge() {
        let edges = vec![(0, 1), (1, 2), (2, 3), (3, 0)];
        let mut b1 = GraphBuilder::new();
        b1.extend_edges(edges.iter().copied());
        let mut b2 = GraphBuilder::new();
        for &(u, v) in &edges {
            b2.add_edge(u, v);
        }
        assert_eq!(b1.build(), b2.build());
    }

    #[test]
    fn with_capacity_and_pending() {
        let mut b = GraphBuilder::with_capacity(8);
        assert_eq!(b.pending_edges(), 0);
        b.add_edge(0, 1);
        b.add_edge(1, 1); // dropped
        assert_eq!(b.pending_edges(), 1);
    }

    #[test]
    fn relabeled_build_maps_sparse_ids() {
        let (g, orig) = build_relabeled(vec![(100, 7), (7, 55), (55, 100)]).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(orig, vec![100, 7, 55]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn build_with_matches_sequential_build() {
        use crate::testkit::check;
        check("builder_parallel_equals_sequential", 24, |gen| {
            let n = gen.u32_in(2, 60);
            let edges = gen.edges(n, 300);
            let mut seq = GraphBuilder::new();
            seq.reserve_vertices(n as usize);
            seq.extend_edges(edges.iter().copied());
            let reference = seq.build();
            for threads in [1, 2, 4, 7] {
                let mut b = GraphBuilder::new();
                b.reserve_vertices(n as usize);
                b.extend_edges(edges.iter().copied());
                let g = b.build_with(&ExecPolicy::with_threads(threads).unwrap());
                assert_eq!(g, reference, "{threads} threads");
            }
        });
    }

    #[test]
    fn large_star_builds_linearly() {
        let mut b = GraphBuilder::with_capacity(10_000);
        for v in 1..=10_000u32 {
            b.add_edge(0, v);
        }
        let g = b.build();
        assert_eq!(g.degree(0), 10_000);
        assert_eq!(g.num_edges(), 10_000);
    }
}
