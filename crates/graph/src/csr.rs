//! Compressed-sparse-row storage for undirected simple graphs.

use crate::cast;

/// Vertex identifier.
///
/// The whole workspace uses dense `u32` ids: the paper's algorithms index
/// per-vertex arrays directly, and 32-bit ids halve the memory traffic of the
/// adjacency scans that dominate runtime.
pub type VertexId = u32;

/// An immutable undirected simple graph in compressed-sparse-row form.
///
/// Each undirected edge `{u, v}` is stored twice (once in each endpoint's
/// adjacency slice). The structure is intentionally minimal: two flat arrays
/// plus the vertex/edge counts, exactly the `O(m)` space budget the paper's
/// optimality argument assumes.
///
/// Invariants (enforced by [`GraphBuilder`](crate::GraphBuilder)):
/// * no self loops, no parallel edges;
/// * every adjacency slice is sorted by vertex id (builders produce this;
///   re-ordered graphs from `bestk-core` relax it deliberately).
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` is the adjacency range of `v`. Length `n + 1`.
    offsets: Vec<usize>,
    /// Concatenated adjacency lists. Length `2 m`.
    neighbors: Vec<VertexId>,
}

impl CsrGraph {
    /// Assembles a graph directly from CSR arrays.
    ///
    /// `offsets` must be monotone with `offsets[0] == 0` and
    /// `offsets[n] == neighbors.len()`, and every neighbor id must be `< n`.
    ///
    /// # Panics
    ///
    /// Panics (in debug and release builds) if the arrays are inconsistent;
    /// this constructor is the trusted entry point for the whole workspace.
    pub fn from_parts(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have length n + 1 >= 1");
        assert_eq!(offsets[0], 0, "offsets[0] must be 0");
        assert_eq!(
            offsets.last().copied().unwrap_or(0),
            neighbors.len(),
            "offsets must end at neighbors.len()"
        );
        let n = offsets.len() - 1;
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        assert!(
            neighbors.iter().all(|&u| (u as usize) < n),
            "neighbor id out of range"
        );
        CsrGraph { offsets, neighbors }
    }

    /// Non-panicking twin of [`from_parts`](Self::from_parts) for
    /// deserializers handling untrusted bytes: the same invariants are
    /// checked, but a violation comes back as a descriptive error instead
    /// of aborting the process.
    pub fn try_from_parts(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
    ) -> Result<Self, crate::GraphError> {
        let bad = |msg: String| crate::GraphError::BadBinaryFormat(msg);
        if offsets.is_empty() {
            return Err(bad("offsets must have length n + 1 >= 1".into()));
        }
        if offsets[0] != 0 {
            return Err(bad("offsets[0] must be 0".into()));
        }
        if offsets.last().copied().unwrap_or(0) != neighbors.len() {
            return Err(bad(format!(
                "offsets end at {} but there are {} neighbors",
                offsets.last().copied().unwrap_or(0),
                neighbors.len()
            )));
        }
        if !offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(bad("offsets must be non-decreasing".into()));
        }
        let n = offsets.len() - 1;
        if let Some(&u) = neighbors.iter().find(|&&u| (u as usize) >= n) {
            return Err(bad(format!("neighbor id {u} out of range (n = {n})")));
        }
        Ok(CsrGraph { offsets, neighbors })
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of `v` in the graph.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        // bestk-analyze: allow(unchecked-arith) — offsets are validated monotone at construction
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted adjacency slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists.
    ///
    /// Binary search on the sorted adjacency of the lower-degree endpoint:
    /// `O(log min(d(u), d(v)))`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertices `0..n`.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..cast::vertex_id(self.num_vertices())
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            vertex: 0,
            pos: 0,
        }
    }

    /// The raw offset array (length `n + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated adjacency array (length `2 m`).
    #[inline]
    pub fn raw_neighbors(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Heap bytes held by the offset and adjacency arrays — the resident
    /// cost accounting seam, so consumers never reach for the raw arrays
    /// just to size them.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of_val(self.offsets.as_slice())
            .saturating_add(std::mem::size_of_val(self.neighbors.as_slice()))
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            // bestk-analyze: allow(unchecked-arith) — offsets are validated monotone at construction
            .map(|v| self.offsets[v + 1] - self.offsets[v])
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2 m / n` (0.0 for a vertex-free graph).
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.num_vertices() as f64
        }
    }

    /// Checks the simple-graph invariants: sorted adjacency, no self loops,
    /// no duplicates, and symmetric edges. Intended for tests and debugging;
    /// costs `O(m log m)`.
    pub fn validate(&self) -> Result<(), String> {
        for v in self.vertices() {
            let adj = self.neighbors(v);
            for w in adj.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("adjacency of {v} is not strictly sorted"));
                }
            }
            for &u in adj {
                if u == v {
                    return Err(format!("self loop at {v}"));
                }
                if self.neighbors(u).binary_search(&v).is_err() {
                    return Err(format!("edge ({v},{u}) is not symmetric"));
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CsrGraph {{ n: {}, m: {} }}",
            self.num_vertices(),
            self.num_edges()
        )
    }
}

/// Iterator over undirected edges produced by [`CsrGraph::edges`].
pub struct EdgeIter<'a> {
    graph: &'a CsrGraph,
    vertex: usize,
    pos: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (VertexId, VertexId);

    fn next(&mut self) -> Option<(VertexId, VertexId)> {
        let g = self.graph;
        let n = g.num_vertices();
        while self.vertex < n {
            let end = g.offsets[self.vertex + 1];
            while self.pos < end {
                let u = cast::vertex_id(self.vertex);
                let v = g.neighbors[self.pos];
                self.pos += 1;
                if u < v {
                    return Some((u, v));
                }
            }
            self.vertex += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.build()
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbors(0).is_empty());
        assert_eq!(g.max_degree(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn zero_vertex_graph() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.average_degree(), 2.0);
        assert_eq!(g.max_degree(), 2);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn edge_iterator_yields_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn from_parts_roundtrip() {
        let g = triangle();
        let g2 = CsrGraph::from_parts(g.offsets().to_vec(), g.raw_neighbors().to_vec());
        assert_eq!(g, g2);
    }

    #[test]
    #[should_panic(expected = "offsets must end")]
    fn from_parts_rejects_bad_offsets() {
        CsrGraph::from_parts(vec![0, 3], vec![1]);
    }

    #[test]
    #[should_panic(expected = "neighbor id out of range")]
    fn from_parts_rejects_out_of_range_neighbor() {
        CsrGraph::from_parts(vec![0, 1], vec![5]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_parts_rejects_decreasing_offsets() {
        CsrGraph::from_parts(vec![0, 2, 1, 3], vec![1, 2, 0]);
    }

    #[test]
    fn validate_detects_asymmetry() {
        // Hand-built broken CSR: 0 -> 1 but not 1 -> 0.
        let g = CsrGraph {
            offsets: vec![0, 1, 1],
            neighbors: vec![1],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn debug_format_is_compact() {
        let g = triangle();
        assert_eq!(format!("{g:?}"), "CsrGraph { n: 3, m: 3 }");
    }
}
