//! Zero-copy CSR view over raw little-endian bytes.
//!
//! [`ByteCsr`] interprets a flat byte buffer — typically a slice borrowed
//! from a memory-mapped snapshot — as a CSR graph without deserializing
//! it. Construction is `O(1)`: only the 16-byte header is read and the
//! total length cross-checked. Every accessor afterwards is
//! bounds-clamped, so even *corrupt* bytes can never panic the process;
//! they can only yield wrong answers, which the snapshot layer's
//! checksums and [`ByteCsr::validate_structure`] exist to catch.
//!
//! ## Layout (all little-endian)
//!
//! ```text
//! offset   size        field
//! 0        8           n    — vertex count
//! 8        8           nnz  — adjacency entries (2 m)
//! 16       8 (n + 1)   offsets, monotone, offsets[n] == nnz
//! 16+8(n+1) 4 nnz      neighbors, u32 ids
//! ```
//!
//! The same layout is produced by [`encode_view`] and embedded verbatim
//! as the graph section of version-2 `.bestk` snapshots.

use crate::view::{GraphView, Neighbors};
use crate::{CsrGraph, GraphError, VertexId};

/// Header bytes before the offsets array: `n` and `nnz`.
const HEADER: usize = 16;

/// A read-only CSR graph borrowed from (or owning) raw bytes.
///
/// Generic over the byte holder so the same view works over a `Vec<u8>`,
/// a borrowed slice, or a memory-mapped region.
#[derive(Clone)]
pub struct ByteCsr<B: AsRef<[u8]>> {
    bytes: B,
    n: usize,
    nnz: usize,
}

impl<B: AsRef<[u8]>> ByteCsr<B> {
    /// Wraps `bytes` as a CSR view after `O(1)` framing checks: the
    /// header must parse and the buffer length must match it exactly.
    /// No per-element validation happens here — see
    /// [`validate_structure`](Self::validate_structure).
    pub fn new(bytes: B) -> Result<Self, GraphError> {
        let bad = |msg: String| GraphError::BadBinaryFormat(msg);
        let buf = bytes.as_ref();
        if buf.len() < HEADER {
            return Err(bad(format!("byte-csr: {} bytes, need >= 16", buf.len())));
        }
        let n64 = read_u64(buf, 0);
        let nnz64 = read_u64(buf, 8);
        if n64 > u64::from(u32::MAX) {
            return Err(bad(format!("byte-csr: vertex count {n64} overflows u32")));
        }
        let n = n64 as usize;
        let nnz = usize::try_from(nnz64).map_err(|_| bad("byte-csr: nnz overflows".into()))?;
        let need = (n + 1)
            .checked_mul(8)
            .and_then(|o| nnz.checked_mul(4).map(|a| (o, a)))
            .and_then(|(o, a)| o.checked_add(a))
            .and_then(|body| body.checked_add(HEADER))
            .ok_or_else(|| bad("byte-csr: header sizes overflow".into()))?;
        if buf.len() != need {
            return Err(bad(format!(
                "byte-csr: {} bytes but header implies {need} (n = {n}, nnz = {nnz})",
                buf.len()
            )));
        }
        Ok(ByteCsr { bytes, n, nnz })
    }

    /// The backing bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        self.bytes.as_ref()
    }

    /// Clamped offset of vertex slot `i` (`0..=n`): corrupt offset bytes
    /// degrade to an empty range instead of an out-of-bounds panic.
    #[inline]
    fn offset(&self, i: usize) -> usize {
        let raw = read_u64(self.bytes.as_ref(), HEADER + 8 * i);
        usize::try_from(raw).unwrap_or(usize::MAX).min(self.nnz)
    }

    /// Full structural validation of the underlying bytes: monotone
    /// offsets ending at `nnz` and every neighbor id `< n`. `O(n + m)` —
    /// the price deferred by the zero-copy open path.
    pub fn validate_structure(&self) -> Result<(), GraphError> {
        let bad = |msg: String| GraphError::BadBinaryFormat(msg);
        let buf = self.bytes.as_ref();
        let mut prev = 0u64;
        for i in 0..=self.n {
            let cur = read_u64(buf, HEADER + 8 * i);
            if cur < prev {
                return Err(bad(format!("byte-csr: offsets decrease at slot {i}")));
            }
            prev = cur;
        }
        if prev != self.nnz as u64 {
            return Err(bad(format!(
                "byte-csr: offsets end at {prev}, expected {}",
                self.nnz
            )));
        }
        let base = HEADER + 8 * (self.n + 1);
        for j in 0..self.nnz {
            let w = read_u32(buf, base + 4 * j);
            if w as usize >= self.n {
                return Err(bad(format!(
                    "byte-csr: neighbor id {w} out of range (n = {})",
                    self.n
                )));
            }
        }
        Ok(())
    }

    /// Materializes a [`CsrGraph`], re-checking every invariant on the
    /// way in.
    pub fn to_csr(&self) -> Result<CsrGraph, GraphError> {
        let buf = self.bytes.as_ref();
        let mut offsets = Vec::with_capacity(self.n + 1);
        for i in 0..=self.n {
            let raw = read_u64(buf, HEADER + 8 * i);
            offsets.push(
                usize::try_from(raw).map_err(|_| {
                    GraphError::BadBinaryFormat("byte-csr: offset overflows".into())
                })?,
            );
        }
        let base = HEADER + 8 * (self.n + 1);
        let neighbors = (0..self.nnz).map(|j| read_u32(buf, base + 4 * j)).collect();
        CsrGraph::try_from_parts(offsets, neighbors)
    }
}

impl<B: AsRef<[u8]>> GraphView for ByteCsr<B> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.nnz / 2
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offset(v + 1).saturating_sub(self.offset(v))
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> Neighbors<'_> {
        let v = v as usize;
        let lo = self.offset(v);
        let hi = self.offset(v + 1).max(lo);
        let base = HEADER + 8 * (self.n + 1);
        Neighbors::from_le_bytes(&self.bytes.as_ref()[base + 4 * lo..base + 4 * hi])
    }

    #[inline]
    fn adjacency_start(&self, v: VertexId) -> usize {
        self.offset(v as usize)
    }
}

impl<B: AsRef<[u8]>> std::fmt::Debug for ByteCsr<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ByteCsr {{ n: {}, nnz: {} }}", self.n, self.nnz)
    }
}

/// Serializes any backend into the [`ByteCsr`] layout.
pub fn encode_view<G: GraphView>(g: &G) -> Vec<u8> {
    let n = g.num_vertices();
    let mut nnz = 0usize;
    for v in g.vertices() {
        nnz = nnz.saturating_add(g.degree(v));
    }
    let mut out = Vec::with_capacity(HEADER + 8 * (n + 1) + 4 * nnz);
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(nnz as u64).to_le_bytes());
    let mut acc = 0u64;
    out.extend_from_slice(&acc.to_le_bytes());
    for v in g.vertices() {
        acc = acc.saturating_add(g.degree(v) as u64);
        out.extend_from_slice(&acc.to_le_bytes());
    }
    for v in g.vertices() {
        for w in g.neighbors(v) {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    out
}

/// Little-endian `u64` at `pos`; callers guarantee `pos + 8 <= buf.len()`
/// via the constructor's exact-length check.
#[inline]
fn read_u64(buf: &[u8], pos: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[pos..pos + 8]);
    u64::from_le_bytes(b)
}

/// Little-endian `u32` at `pos`.
#[inline]
fn read_u32(buf: &[u8], pos: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[pos..pos + 4]);
    u32::from_le_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use crate::GraphBuilder;

    fn sample() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn encode_then_view_matches_source() {
        let g = sample();
        let bytes = encode_view(&g);
        let view = ByteCsr::new(bytes.as_slice()).expect("fresh encoding must parse");
        assert_eq!(view.num_vertices(), g.num_vertices());
        assert_eq!(view.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(GraphView::degree(&view, v), g.degree(v));
            assert_eq!(
                GraphView::adjacency_start(&view, v),
                g.offsets()[v as usize]
            );
            let got: Vec<_> = GraphView::neighbors(&view, v).collect();
            assert_eq!(got, g.neighbors(v).to_vec());
        }
        assert!(view.validate_structure().is_ok());
        assert_eq!(view.to_csr().expect("validated bytes materialize"), g);
    }

    #[test]
    fn truncated_bytes_are_rejected_at_open() {
        let g = sample();
        let bytes = encode_view(&g);
        for cut in [0, 7, 15, bytes.len() - 1] {
            assert!(ByteCsr::new(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        assert!(ByteCsr::new([bytes.clone(), vec![0u8; 3]].concat().as_slice()).is_err());
    }

    #[test]
    fn corrupt_offsets_degrade_without_panicking() {
        let g = sample();
        let mut bytes = encode_view(&g);
        // Smash the offset of vertex 1 to a huge value: degree clamps to
        // zero-range instead of slicing out of bounds.
        bytes[HEADER + 8..HEADER + 16].copy_from_slice(&u64::MAX.to_le_bytes());
        let view = ByteCsr::new(bytes.as_slice()).expect("framing is still intact");
        for v in view.vertices() {
            let d = GraphView::degree(&view, v);
            assert_eq!(GraphView::neighbors(&view, v).count(), d);
        }
        assert!(view.validate_structure().is_err());
        assert!(view.to_csr().is_err());
    }

    #[test]
    fn corrupt_neighbor_ids_fail_structural_validation() {
        let g = sample();
        let mut bytes = encode_view(&g);
        let base = HEADER + 8 * (g.num_vertices() + 1);
        bytes[base..base + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let view = ByteCsr::new(bytes.as_slice()).expect("framing is still intact");
        assert!(view.validate_structure().is_err());
    }

    #[test]
    fn random_graphs_round_trip_through_bytes() {
        testkit::check("bytecsr_round_trip", 40, |gen| {
            let g = gen.graph(150, 500);
            let bytes = encode_view(&g);
            let view = ByteCsr::new(bytes.as_slice()).expect("fresh encoding must parse");
            assert_eq!(
                view.to_csr().expect("fresh encoding is structurally valid"),
                g
            );
        });
    }
}
