//! Deterministic property-testing harness.
//!
//! A self-contained replacement for an external property-testing crate: the
//! build environment is fully offline, so the workspace cannot depend on
//! `proptest`. The harness keeps the two properties that matter for an
//! executable specification:
//!
//! * **Determinism** — every case is driven by a seed derived from the
//!   property name and case index, so a failure report names the exact seed
//!   that reproduces it (`BESTK_PROP_SEED=<seed> cargo test <name>`).
//! * **Volume** — [`check`] runs a configurable number of generated cases
//!   (`BESTK_PROP_CASES` overrides the per-property default).
//!
//! Test code asserts with the ordinary `assert!` family; the runner catches
//! the panic, prints the reproduction seed, and re-raises. Generation is
//! imperative rather than combinator-based: a [`Gen`] hands out primitives,
//! edge lists, and whole [`CsrGraph`]s.
//!
//! bestk-analyze: allow-file(no-panic) — a test harness's job is to panic
//! with a reproduction seed; these panics are the product, not a defect.

use crate::cast;
use crate::rng::{SplitMix64, Xoshiro256};
use crate::{CsrGraph, GraphBuilder, VertexId};

/// A per-case value generator: a seeded RNG plus convenience constructors
/// for the shapes the workspace's properties consume.
#[derive(Debug)]
pub struct Gen {
    rng: Xoshiro256,
    /// The seed this case was built from — printed on failure so the case
    /// can be replayed in isolation.
    pub seed: u64,
}

impl Gen {
    /// Creates a generator for one case.
    pub fn new(seed: u64) -> Gen {
        Gen {
            rng: Xoshiro256::seed_from_u64(seed),
            seed,
        }
    }

    /// Uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.rng.next_index(hi - lo)
    }

    /// Uniform `u32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + cast::u32_from_u64(self.rng.next_below(u64::from(hi - lo)))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// Bernoulli trial with success probability `p`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.rng.next_bool(p)
    }

    /// A byte vector with length uniform in `[0, max_len]`.
    pub fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.usize_in(0, max_len + 1);
        (0..len)
            .map(|_| cast::low_byte(self.rng.next_u64()))
            .collect()
    }

    /// Printable-ASCII-plus-whitespace text with length uniform in
    /// `[0, max_len]` — the alphabet the text readers must survive.
    pub fn ascii_text(&mut self, max_len: usize) -> String {
        const ALPHABET: &[u8] = b" !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~\n\t";
        let len = self.usize_in(0, max_len + 1);
        (0..len)
            .map(|_| ALPHABET[self.rng.next_index(ALPHABET.len())] as char)
            .collect()
    }

    /// A raw candidate edge list over `n` vertices: up to `max_m` pairs,
    /// duplicates and self-loops included (builders must clean them).
    pub fn edges(&mut self, n: u32, max_m: usize) -> Vec<(VertexId, VertexId)> {
        let m = self.usize_in(0, max_m + 1);
        (0..m)
            .map(|_| (self.u32_in(0, n), self.u32_in(0, n)))
            .collect()
    }

    /// A random simple graph with `2 ..= max_n` vertices and up to `max_m`
    /// candidate edges, built through [`GraphBuilder`] (which deduplicates
    /// and strips self-loops) — the workhorse input of every property in
    /// the workspace.
    pub fn graph(&mut self, max_n: u32, max_m: usize) -> CsrGraph {
        let n = self.u32_in(2, max_n.max(3));
        let edges = self.edges(n, max_m);
        let mut b = GraphBuilder::new();
        b.reserve_vertices(n as usize);
        b.extend_edges(edges);
        b.build()
    }
}

/// Number of cases to run: the `BESTK_PROP_CASES` environment variable, or
/// the property's own default.
fn case_count(default_cases: u32) -> u32 {
    match std::env::var("BESTK_PROP_CASES") {
        Ok(v) => v.parse().unwrap_or(default_cases),
        Err(_) => default_cases,
    }
}

/// Derives the base seed for a property from its name, so distinct
/// properties explore distinct streams even with identical case counts.
fn base_seed(name: &str) -> u64 {
    // FNV-1a over the property name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `body` against `cases` generated cases (each with a fresh seeded
/// [`Gen`]), reporting the reproduction seed of the first failing case.
///
/// Set `BESTK_PROP_SEED=<seed>` to replay exactly one failing case;
/// `BESTK_PROP_CASES=<n>` scales the volume up or down.
///
/// # Panics
///
/// Re-raises the panic of the first failing case after printing its seed.
pub fn check(name: &str, cases: u32, body: impl Fn(&mut Gen)) {
    if let Ok(fixed) = std::env::var("BESTK_PROP_SEED") {
        let seed: u64 = fixed
            .parse()
            .unwrap_or_else(|_| panic!("BESTK_PROP_SEED must be a u64, got {fixed:?}"));
        let mut g = Gen::new(seed);
        body(&mut g);
        return;
    }
    let base = base_seed(name);
    for case in 0..case_count(cases) {
        let mut sm = SplitMix64 {
            state: base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        let seed = sm.next_u64();
        let mut g = Gen::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut g)));
        if let Err(panic) = outcome {
            eprintln!(
                "property {name:?} failed at case {case}/{cases}; \
                 replay with BESTK_PROP_SEED={seed}"
            );
            std::panic::resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_is_deterministic_per_seed() {
        let mut a = Gen::new(9);
        let mut b = Gen::new(9);
        assert_eq!(a.u64(), b.u64());
        assert_eq!(a.graph(20, 60), b.graph(20, 60));
        assert_eq!(a.ascii_text(50), b.ascii_text(50));
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = Gen::new(3);
        for _ in 0..200 {
            let x = g.usize_in(5, 9);
            assert!((5..9).contains(&x));
            let y = g.u32_in(1, 2);
            assert_eq!(y, 1);
            assert!(g.bytes(16).len() <= 16);
        }
    }

    #[test]
    fn generated_graphs_validate() {
        check("testkit_graphs_validate", 32, |g| {
            let graph = g.graph(40, 160);
            assert!(graph.validate().is_ok());
            assert!(graph.num_vertices() >= 2);
        });
    }

    #[test]
    fn check_reports_failing_seed() {
        let hit = std::panic::catch_unwind(|| {
            check("always_fails", 3, |_| panic!("boom"));
        });
        assert!(hit.is_err());
    }
}
