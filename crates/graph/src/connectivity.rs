//! Connected components and traversal helpers.
//!
//! The k-core definition (paper Def. 1) requires connectivity, so both the
//! baselines and the LCPS forest construction in `bestk-core` lean on these
//! routines. Everything is iterative (no recursion) and allocation-bounded by
//! `O(n)`.

use crate::cast;
use crate::csr::VertexId;
use crate::view::GraphView;

/// The decomposition of a graph into connected components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectedComponents {
    /// `component[v]` is the component index of vertex `v` (dense, 0-based).
    pub component: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl ConnectedComponents {
    /// Vertices of each component, grouped; `O(n)`.
    pub fn groups(&self) -> Vec<Vec<VertexId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (v, &c) in self.component.iter().enumerate() {
            groups[c as usize].push(cast::vertex_id(v));
        }
        groups
    }

    /// Size of each component.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.component {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Index of the largest component (`None` when the graph has no vertices).
    pub fn largest(&self) -> Option<usize> {
        let sizes = self.sizes();
        (0..self.count).max_by_key(|&c| sizes[c])
    }
}

/// Computes connected components with an iterative BFS; `O(n + m)`.
pub fn connected_components(g: &impl GraphView) -> ConnectedComponents {
    let n = g.num_vertices();
    let mut component = vec![u32::MAX; n];
    let mut queue: Vec<VertexId> = Vec::new();
    let mut count = 0u32;
    for s in 0..n {
        if component[s] != u32::MAX {
            continue;
        }
        component[s] = count;
        queue.push(cast::vertex_id(s));
        while let Some(v) = queue.pop() {
            for u in g.neighbors(v) {
                if component[u as usize] == u32::MAX {
                    component[u as usize] = count;
                    queue.push(u);
                }
            }
        }
        count += 1;
    }
    ConnectedComponents {
        component,
        count: count as usize,
    }
}

/// BFS from `source` restricted to vertices for which `allowed` returns true.
///
/// Returns every reached allowed vertex, including `source` (if allowed).
/// Used by the size-constrained k-core application to carve the component of
/// a query vertex out of a k-core set.
pub fn bfs_restricted<G: GraphView>(
    g: &G,
    source: VertexId,
    mut allowed: impl FnMut(VertexId) -> bool,
) -> Vec<VertexId> {
    if !allowed(source) {
        return Vec::new();
    }
    let mut visited = vec![false; g.num_vertices()];
    visited[source as usize] = true;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(source);
    let mut out = Vec::new();
    while let Some(v) = queue.pop_front() {
        out.push(v);
        for u in g.neighbors(v) {
            if !visited[u as usize] && allowed(u) {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    out
}

/// Whether the whole graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &impl GraphView) -> bool {
    g.num_vertices() == 0 || connected_components(g).count == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CsrGraph, GraphBuilder};

    fn two_triangles() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        b.build()
    }

    #[test]
    fn single_component() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2)]);
        let g = b.build();
        let cc = connected_components(&g);
        assert_eq!(cc.count, 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn two_components_with_isolated_vertex() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (3, 4), (4, 5), (5, 3)]);
        b.reserve_vertices(7);
        let g = b.build();
        let cc = connected_components(&g);
        assert_eq!(cc.count, 3); // path, triangle, isolated vertex 6
        assert_eq!(cc.sizes().iter().sum::<usize>(), 7);
        assert!(!is_connected(&g));
    }

    #[test]
    fn groups_partition_the_vertex_set() {
        let g = two_triangles();
        let cc = connected_components(&g);
        let groups = cc.groups();
        assert_eq!(groups.len(), 2);
        let mut all: Vec<_> = groups.concat();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
        // Vertices within a group share a component id.
        for group in &groups {
            let c = cc.component[group[0] as usize];
            assert!(group.iter().all(|&v| cc.component[v as usize] == c));
        }
    }

    #[test]
    fn largest_component() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (2, 3), (3, 4), (4, 2), (4, 5)]);
        let g = b.build();
        let cc = connected_components(&g);
        let largest = cc.largest().unwrap();
        assert_eq!(cc.sizes()[largest], 4);
    }

    #[test]
    fn largest_on_empty_graph_is_none() {
        let g = CsrGraph::empty(0);
        assert!(connected_components(&g).largest().is_none());
        assert!(is_connected(&g));
    }

    #[test]
    fn restricted_bfs_respects_filter() {
        let g = two_triangles();
        // Only even vertices allowed: from 0 we can reach 0 and 2.
        let reached = bfs_restricted(&g, 0, |v| v % 2 == 0);
        let mut reached = reached;
        reached.sort_unstable();
        assert_eq!(reached, vec![0, 2]);
    }

    #[test]
    fn restricted_bfs_with_disallowed_source() {
        let g = two_triangles();
        assert!(bfs_restricted(&g, 0, |_| false).is_empty());
    }

    #[test]
    fn restricted_bfs_reaches_whole_component() {
        let g = two_triangles();
        let mut reached = bfs_restricted(&g, 3, |_| true);
        reached.sort_unstable();
        assert_eq!(reached, vec![3, 4, 5]);
    }
}
