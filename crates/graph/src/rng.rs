//! Deterministic pseudo-random number generation.
//!
//! A self-contained xoshiro256++ implementation (Blackman & Vigna) seeded via
//! SplitMix64. Synthetic datasets must be bit-reproducible across runs and
//! library versions — the evaluation harness identifies datasets by
//! `(generator, parameters, seed)` — so we do not depend on an external RNG
//! crate whose stream might change between releases.

/// A seeded xoshiro256++ generator.
///
/// Not cryptographically secure; statistically solid and fast, which is all
/// workload generation needs.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64
    /// as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64 { state: seed };
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256 { s }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` by Lemire's multiply-shift rejection
    /// method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `count` distinct indices from `[0, bound)` (Floyd's algorithm);
    /// order is unspecified.
    ///
    /// # Panics
    ///
    /// Panics if `count > bound`.
    pub fn sample_distinct(&mut self, bound: usize, count: usize) -> Vec<usize> {
        assert!(
            count <= bound,
            "cannot sample {count} distinct values from {bound}"
        );
        let mut chosen = std::collections::HashSet::with_capacity(count);
        let mut out = Vec::with_capacity(count);
        for j in bound - count..bound {
            let t = self.next_index(j + 1);
            let pick = if chosen.contains(&t) { j } else { t };
            chosen.insert(pick);
            out.push(pick);
        }
        out
    }
}

/// SplitMix64: seed expander for [`Xoshiro256`], also usable on its own for
/// cheap hashing of parameters into seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    /// Current state; advances by the golden-ratio increment each draw.
    pub state: u64,
}

impl SplitMix64 {
    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.next_below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear in 1000 draws"
        );
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn bernoulli_rate_tracks_p() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.next_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate = {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move something"
        );
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let s = rng.sample_distinct(50, 20);
        assert_eq!(s.len(), 20);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20, "samples must be distinct");
        assert!(s.iter().all(|&x| x < 50));
        // Full sample is the whole range.
        let mut all = rng.sample_distinct(10, 10);
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0, cross-checked against the reference
        // SplitMix64 implementation.
        let mut sm = SplitMix64 { state: 0 };
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }
}
