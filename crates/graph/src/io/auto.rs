//! Format auto-detection over the text/binary/METIS readers.
//!
//! One loader for "a graph file the user pointed at": `.metis` / `.graph`
//! extensions dispatch to the METIS reader (their content is ambiguous
//! with plain edge lists), anything else is sniffed — files starting with
//! the binary magic `BESTKGR1` read as binary CSR, the rest as a
//! SNAP-style text edge list (sparse ids relabeled densely).

use std::io::Read;
use std::path::Path;

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::Result;

use super::{read_binary, read_edge_list, read_metis_path};

/// Loads a graph from `path`, auto-detecting the format.
pub fn read_auto_path<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    let p = path.as_ref();
    let is_metis = p.extension().is_some_and(|e| e == "metis" || e == "graph");
    if is_metis {
        return read_metis_path(p);
    }
    let mut file = std::fs::File::open(p).map_err(GraphError::Io)?;
    let mut magic = [0u8; 8];
    let read = read_up_to(&mut file, &mut magic)?;
    // Reopen so the chosen reader sees the stream from the start.
    let file = std::fs::File::open(p).map_err(GraphError::Io)?;
    if read == 8 && &magic == b"BESTKGR1" {
        read_binary(file)
    } else {
        let (g, _) = read_edge_list(file)?;
        Ok(g)
    }
}

fn read_up_to(r: &mut impl Read, buf: &mut [u8]) -> Result<usize> {
    let mut total = 0;
    while total < buf.len() {
        let n = r.read(&mut buf[total..]).map_err(GraphError::Io)?;
        if n == 0 {
            break;
        }
        total += n;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::io::{write_binary_path, write_edge_list_path, write_metis_path};

    fn triangle() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (2, 0)]);
        b.build()
    }

    #[test]
    fn detects_text_binary_and_metis() {
        let g = triangle();
        let dir = std::env::temp_dir().join(format!("bestk-io-auto-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let text = dir.join("g.txt");
        let bin = dir.join("g.bin");
        let metis = dir.join("g.metis");
        write_edge_list_path(&g, &text).unwrap();
        write_binary_path(&g, &bin).unwrap();
        write_metis_path(&g, &metis).unwrap();
        assert_eq!(read_auto_path(&text).unwrap().num_edges(), 3);
        assert_eq!(read_auto_path(&bin).unwrap(), g);
        assert_eq!(read_auto_path(&metis).unwrap().num_edges(), 3);
        for f in [text, bin, metis] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_auto_path("/nonexistent/definitely-not-here.txt"),
            Err(GraphError::Io(_))
        ));
    }
}
