//! Graph readers and writers.
//!
//! Four formats are supported:
//!
//! * [`edgelist`] — the whitespace-separated text format used by SNAP
//!   (`# comment` lines, one `u v` pair per line). The paper's datasets ship
//!   in this format, so the harness reads/writes it for interoperability.
//! * [`binary`] — a compact little-endian CSR dump for fast reloads of large
//!   synthetic datasets between benchmark runs.
//! * [`metis`] — the METIS / KaHIP partitioning format (unweighted).
//! * [`dot`] — Graphviz DOT export with per-vertex attributes (e.g.
//!   coreness coloring).

pub mod auto;
pub mod binary;
pub mod dot;
pub mod edgelist;
pub mod metis;

pub use auto::read_auto_path;
pub use binary::{read_binary, read_binary_path, write_binary, write_binary_path};
pub use dot::{write_dot, write_dot_path};
pub use edgelist::{read_edge_list, read_edge_list_path, write_edge_list, write_edge_list_path};
pub use metis::{read_metis, read_metis_path, write_metis, write_metis_path};
