//! METIS graph format.
//!
//! The interchange format of the METIS / KaHIP partitioning ecosystems:
//! a header line `n m [fmt]` followed by `n` adjacency lines, one per
//! vertex, listing 1-indexed neighbors. Only the unweighted variant
//! (`fmt` absent or `0`/`00`/`000`) is supported; weighted headers are
//! rejected with a clear error rather than silently misread.

use crate::cast;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::Result;

/// Reads a METIS graph.
pub fn read_metis<R: Read>(reader: R) -> Result<CsrGraph> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();
    // Header: first non-comment line.
    let (header_lineno, header) = loop {
        match lines.next() {
            None => {
                return Err(GraphError::Parse {
                    line: 1,
                    message: "missing header".into(),
                })
            }
            Some((i, line)) => {
                let line = line?;
                let trimmed = line.trim().to_string();
                if !trimmed.is_empty() && !trimmed.starts_with('%') {
                    break (i, trimmed);
                }
            }
        }
    };
    let mut header_it = header.split_whitespace();
    let parse_num = |tok: Option<&str>, what: &str| -> Result<u64> {
        let tok = tok.ok_or_else(|| GraphError::Parse {
            line: header_lineno + 1,
            message: format!("header missing {what}"),
        })?;
        tok.parse().map_err(|e| GraphError::Parse {
            line: header_lineno + 1,
            message: format!("bad {what} {tok:?}: {e}"),
        })
    };
    let n = parse_num(header_it.next(), "vertex count")? as usize;
    let m = parse_num(header_it.next(), "edge count")? as usize;
    if let Some(fmt) = header_it.next() {
        if fmt.chars().any(|c| c != '0') {
            return Err(GraphError::Parse {
                line: header_lineno + 1,
                message: format!("weighted METIS format {fmt:?} is not supported"),
            });
        }
    }
    if n > u32::MAX as usize {
        return Err(GraphError::TooManyVertices(n as u64));
    }

    // Trust the header's edge count only up to a fixed pre-allocation cap:
    // a hostile header ("4 999999999999") must not reserve terabytes before
    // the adjacency lines prove the edges exist. The buffer grows on demand
    // past the cap, and `reserve_vertices` is lazy (build-time allocation is
    // gated on the file really containing `n` adjacency lines).
    const PREALLOC_EDGE_CAP: usize = 1 << 22;
    let mut b = GraphBuilder::with_capacity(m.min(PREALLOC_EDGE_CAP));
    b.reserve_vertices(n);
    let mut vertex = 0u32;
    for (i, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.starts_with('%') {
            continue;
        }
        if vertex as usize >= n {
            if trimmed.is_empty() {
                continue;
            }
            return Err(GraphError::Parse {
                line: i + 1,
                message: format!("more than {n} adjacency lines"),
            });
        }
        for tok in trimmed.split_whitespace() {
            let nbr: u64 = tok.parse().map_err(|e| GraphError::Parse {
                line: i + 1,
                message: format!("bad neighbor {tok:?}: {e}"),
            })?;
            if nbr == 0 || nbr > n as u64 {
                return Err(GraphError::Parse {
                    line: i + 1,
                    message: format!("neighbor {nbr} out of range 1..={n}"),
                });
            }
            b.add_edge(vertex, cast::u32_from_u64(nbr - 1));
        }
        vertex += 1;
    }
    if (vertex as usize) < n {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("expected {n} adjacency lines, got {vertex}"),
        });
    }
    let g = b.build();
    if g.num_edges() != m {
        // METIS counts each undirected edge once; tolerate mismatches that
        // come from duplicate listings but report blatant inconsistencies.
        if g.num_edges() > m {
            return Err(GraphError::Parse {
                line: 0,
                message: format!("header claims {m} edges, file contains {}", g.num_edges()),
            });
        }
    }
    Ok(g)
}

/// Reads a METIS graph from a file path.
pub fn read_metis_path<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    read_metis(std::fs::File::open(path)?)
}

/// Writes the graph in METIS format.
pub fn write_metis<W: Write>(g: &CsrGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{} {}", g.num_vertices(), g.num_edges())?;
    for v in g.vertices() {
        let mut first = true;
        for &u in g.neighbors(v) {
            if first {
                write!(w, "{}", u + 1)?;
                first = false;
            } else {
                write!(w, " {}", u + 1)?;
            }
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the graph in METIS format to a file path.
pub fn write_metis_path<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<()> {
    write_metis(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn parse_classic_example() {
        // The triangle plus a pendant, in METIS's 1-indexed format.
        let text = "% a comment\n4 4\n2 3\n1 3 4\n1 2\n2\n";
        let g = read_metis(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(0, 3));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn roundtrip() {
        let g = generators::erdos_renyi_gnm(80, 300, 4);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let g2 = read_metis(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_with_isolated_vertices() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 2);
        b.reserve_vertices(5);
        let g = b.build();
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        assert_eq!(read_metis(&buf[..]).unwrap(), g);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(matches!(
            read_metis(&b""[..]),
            Err(GraphError::Parse { .. })
        ));
        // Out-of-range neighbor.
        assert!(read_metis(&b"2 1\n3\n\n"[..]).is_err());
        // Zero neighbor (METIS is 1-indexed).
        assert!(read_metis(&b"2 1\n0\n\n"[..]).is_err());
        // Too few adjacency lines.
        assert!(read_metis(&b"3 1\n2\n"[..]).is_err());
        // Too many edges vs header.
        assert!(read_metis(&b"3 1\n2 3\n1 3\n1 2\n"[..]).is_err());
        // Weighted format flag.
        assert!(read_metis(&b"2 1 011\n2\n1\n"[..]).is_err());
        // Unweighted flag "000" accepted.
        assert!(read_metis(&b"2 1 000\n2\n1\n"[..]).is_ok());
    }

    #[test]
    fn hostile_header_counts_do_not_allocate() {
        // A header claiming ~1e12 edges (or the u32::MAX vertex ceiling)
        // must come back as a cheap typed error, not an allocation of the
        // claimed size — the body never substantiates the counts.
        assert!(matches!(
            read_metis(&b"4000000000 999999999999\n1 2\n"[..]),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(
            read_metis(&b"4294967295 18446744073709551615\n"[..]),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(
            read_metis(&b"18446744073709551615 1\n"[..]),
            Err(GraphError::TooManyVertices(_))
        ));
    }

    #[test]
    fn header_edge_count_checked() {
        // Header says 2 edges but only 1 present: tolerated (some writers
        // count loosely); the reverse (more than declared) errors.
        let ok = read_metis(&b"3 2\n2\n1\n\n"[..]);
        assert!(ok.is_ok());
        assert_eq!(ok.unwrap().num_edges(), 1);
    }
}
