//! SNAP-style text edge lists.
//!
//! Format: one edge per line as two whitespace-separated integers; lines
//! starting with `#` or `%` and blank lines are ignored. Vertex ids may be
//! sparse `u64`s — they are densely relabeled on read.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::build_relabeled;
use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::Result;

/// Reads a text edge list from any reader, relabeling sparse ids densely.
///
/// Returns the graph and the `dense -> original id` mapping.
pub fn read_edge_list<R: Read>(reader: R) -> Result<(CsrGraph, Vec<u64>)> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(u64, u64)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, idx: usize| -> Result<u64> {
            let tok = tok.ok_or_else(|| GraphError::Parse {
                line: idx + 1,
                message: "expected two vertex ids".into(),
            })?;
            tok.parse::<u64>().map_err(|e| GraphError::Parse {
                line: idx + 1,
                message: format!("invalid vertex id {tok:?}: {e}"),
            })
        };
        let u = parse(it.next(), idx)?;
        let v = parse(it.next(), idx)?;
        // Trailing columns (weights, timestamps) are tolerated and ignored.
        edges.push((u, v));
    }
    build_relabeled(edges)
}

/// Reads a text edge list from a file path.
pub fn read_edge_list_path<P: AsRef<Path>>(path: P) -> Result<(CsrGraph, Vec<u64>)> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes the graph as a text edge list (each undirected edge once, `u < v`).
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# bestk edge list: n={} m={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the graph as a text edge list to a file path.
pub fn write_edge_list_path<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn parse_simple_list() {
        let text = "# comment\n0 1\n1 2\n\n% another comment\n2 0\n";
        let (g, orig) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(orig, vec![0, 1, 2]);
    }

    #[test]
    fn parse_sparse_ids_and_tabs() {
        let text = "1000\t42\n42\t7\n";
        let (g, orig) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(orig, vec![1000, 42, 7]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn parse_tolerates_extra_columns() {
        let text = "0 1 3.5 extra\n1 2 0.1\n";
        let (g, _) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn parse_error_reports_line_number() {
        let text = "0 1\nnot-a-number 2\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn parse_error_on_missing_column() {
        let text = "0\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn roundtrip_through_text() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]);
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (g2, orig) = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.num_vertices(), g.num_vertices());
        // Ids are relabeled in first-seen order; map the reread edges back
        // and compare as sets.
        let mut original_edges: Vec<_> = g.edges().collect();
        let mut mapped: Vec<_> = g2
            .edges()
            .map(|(u, v)| {
                let (a, b) = (orig[u as usize] as u32, orig[v as usize] as u32);
                if a < b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        original_edges.sort_unstable();
        mapped.sort_unstable();
        assert_eq!(original_edges, mapped);
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("bestk-graph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let mut b = GraphBuilder::new();
        b.extend_edges([(5, 6), (6, 7)]);
        let g = b.build();
        write_edge_list_path(&g, &path).unwrap();
        let (g2, orig) = read_edge_list_path(&path).unwrap();
        assert_eq!(g2.num_edges(), 2);
        assert_eq!(orig, vec![5, 6, 7]);
        std::fs::remove_file(path).ok();
    }
}
