//! Graphviz DOT export.
//!
//! The paper cites k-core decomposition as a graph *visualization* device
//! (references 3, 20, 67: coreness-colored "fingerprints"); this writer
//! emits DOT with optional per-vertex attributes so coreness / best-core
//! membership can be rendered directly.

use std::io::{BufWriter, Write};

use crate::csr::{CsrGraph, VertexId};
use crate::Result;

/// Writes `g` in Graphviz DOT format. `label` (optional) supplies a
/// per-vertex attribute string, e.g. coloring by coreness.
pub fn write_dot<W: Write>(
    g: &CsrGraph,
    writer: W,
    label: Option<&mut dyn FnMut(VertexId) -> String>,
) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "graph bestk {{")?;
    writeln!(w, "  node [shape=circle];")?;
    if let Some(f) = label {
        for v in g.vertices() {
            let attrs = f(v);
            if attrs.is_empty() {
                writeln!(w, "  {v};")?;
            } else {
                writeln!(w, "  {v} [{attrs}];")?;
            }
        }
    } else {
        for v in g.vertices() {
            if g.degree(v) == 0 {
                writeln!(w, "  {v};")?;
            }
        }
    }
    for (u, v) in g.edges() {
        writeln!(w, "  {u} -- {v};")?;
    }
    writeln!(w, "}}")?;
    w.flush()?;
    Ok(())
}

/// Writes DOT to a file path.
pub fn write_dot_path<P: AsRef<std::path::Path>>(
    g: &CsrGraph,
    path: P,
    label: Option<&mut dyn FnMut(VertexId) -> String>,
) -> Result<()> {
    write_dot(g, std::fs::File::create(path)?, label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn plain_dot_output() {
        let g = generators::paper_figure2();
        let mut buf = Vec::new();
        write_dot(&g, &mut buf, None).unwrap();
        let out = String::from_utf8(buf).unwrap();
        assert!(out.starts_with("graph bestk {"));
        assert!(out.trim_end().ends_with('}'));
        assert_eq!(out.matches(" -- ").count(), 19);
    }

    #[test]
    fn labeled_dot_output() {
        let g = generators::regular::complete(3);
        let mut buf = Vec::new();
        let mut labeler = |v: VertexId| format!("label=\"v{v}\", color=red");
        write_dot(&g, &mut buf, Some(&mut labeler)).unwrap();
        let out = String::from_utf8(buf).unwrap();
        assert!(out.contains("0 [label=\"v0\", color=red];"));
        assert_eq!(out.matches(" -- ").count(), 3);
    }

    #[test]
    fn isolated_vertices_still_appear() {
        let g = CsrGraph::empty(2);
        let mut buf = Vec::new();
        write_dot(&g, &mut buf, None).unwrap();
        let out = String::from_utf8(buf).unwrap();
        assert!(out.contains("  0;"));
        assert!(out.contains("  1;"));
    }
}
