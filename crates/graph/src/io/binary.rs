//! Compact binary CSR format.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   : 8 bytes  = b"BESTKGR1"
//! n       : u64
//! nnz     : u64      (= 2 m, length of the neighbor array)
//! offsets : (n + 1) × u64
//! nbrs    : nnz × u32
//! ```
//!
//! Used by the bench harness to cache large synthetic datasets between runs;
//! reloading is a pair of bulk reads instead of re-running a generator.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::{CsrGraph, VertexId};
use crate::error::GraphError;
use crate::Result;

const MAGIC: &[u8; 8] = b"BESTKGR1";

/// Writes a graph in the binary CSR format.
pub fn write_binary<W: Write>(g: &CsrGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.raw_neighbors().len() as u64).to_le_bytes())?;
    for &off in g.offsets() {
        w.write_all(&(off as u64).to_le_bytes())?;
    }
    for &nbr in g.raw_neighbors() {
        w.write_all(&nbr.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a graph in the binary CSR format to a file path.
pub fn write_binary_path<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<()> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Reads a graph in the binary CSR format.
pub fn read_binary<R: Read>(reader: R) -> Result<CsrGraph> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::BadBinaryFormat(format!(
            "wrong magic {:?}",
            String::from_utf8_lossy(&magic)
        )));
    }
    let n = read_u64(&mut r)? as usize;
    let nnz = read_u64(&mut r)? as usize;
    if n > u32::MAX as usize {
        return Err(GraphError::BadBinaryFormat(format!(
            "vertex count {n} exceeds the u32 id space"
        )));
    }
    // Never trust header sizes for allocation: grow buffers only as actual
    // bytes arrive, so truncated or hostile headers fail with a clean read
    // error instead of aborting on an enormous allocation.
    let mut offsets = Vec::with_capacity((n + 1).min(1 << 20));
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as usize);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&nnz) {
        return Err(GraphError::BadBinaryFormat("inconsistent offsets".into()));
    }
    let mut neighbors: Vec<VertexId> = Vec::with_capacity(nnz.min(1 << 22));
    let mut buf = [0u8; 4];
    for _ in 0..nnz {
        r.read_exact(&mut buf)?;
        let v = u32::from_le_bytes(buf);
        if v as usize >= n {
            return Err(GraphError::BadBinaryFormat(format!(
                "neighbor id {v} out of range (n = {n})"
            )));
        }
        neighbors.push(v);
    }
    if !offsets.windows(2).all(|w| w[0] <= w[1]) {
        return Err(GraphError::BadBinaryFormat("offsets not monotone".into()));
    }
    Ok(CsrGraph::from_parts(offsets, neighbors))
}

/// Reads a graph in the binary CSR format from a file path.
pub fn read_binary_path<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    read_binary(std::fs::File::open(path)?)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn roundtrip_small() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let g = b.build();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_empty() {
        let g = CsrGraph::empty(0);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
    }

    #[test]
    fn roundtrip_random_graph() {
        let g = generators::erdos_renyi_gnm(500, 2000, 3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
    }

    #[test]
    fn rejects_wrong_magic() {
        let buf = b"NOTAGRPH\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0".to_vec();
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphError::BadBinaryFormat(_))
        ));
    }

    #[test]
    fn rejects_truncated_input() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        let g = b.build();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn rejects_out_of_range_neighbor() {
        // Handcraft: n = 1, nnz = 1, offsets [0, 1], neighbor 5.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&5u32.to_le_bytes());
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphError::BadBinaryFormat(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("bestk-graph-bin-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = generators::erdos_renyi_gnm(64, 128, 9);
        write_binary_path(&g, &path).unwrap();
        assert_eq!(read_binary_path(&path).unwrap(), g);
        std::fs::remove_file(path).ok();
    }
}
