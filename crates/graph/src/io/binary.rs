//! Compact binary CSR format.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   : 8 bytes  = b"BESTKGR1"
//! n       : u64
//! nnz     : u64      (= 2 m, length of the neighbor array)
//! offsets : (n + 1) × u64
//! nbrs    : nnz × u32
//! ```
//!
//! Used by the bench harness to cache large synthetic datasets between runs;
//! reloading is a pair of bulk reads instead of re-running a generator.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::{CsrGraph, VertexId};
use crate::error::GraphError;
use crate::Result;

const MAGIC: &[u8; 8] = b"BESTKGR1";

/// Writes a graph in the binary CSR format.
pub fn write_binary<W: Write>(g: &CsrGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.raw_neighbors().len() as u64).to_le_bytes())?;
    for &off in g.offsets() {
        w.write_all(&(off as u64).to_le_bytes())?;
    }
    for &nbr in g.raw_neighbors() {
        w.write_all(&nbr.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a graph in the binary CSR format to a file path.
pub fn write_binary_path<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<()> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Reads a graph in the binary CSR format.
///
/// Corrupt inputs are rejected with dedicated variants: a stream that ends
/// inside a declared section is [`GraphError::TruncatedBinary`], bytes
/// beyond the declared payload are [`GraphError::TrailingBytes`], and any
/// header/content disagreement is [`GraphError::BadBinaryFormat`]. Plain
/// [`GraphError::Io`] is reserved for genuine device-level read failures.
pub fn read_binary<R: Read>(reader: R) -> Result<CsrGraph> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    read_exact_or(&mut r, &mut magic, "magic")?;
    if &magic != MAGIC {
        return Err(GraphError::BadBinaryFormat(format!(
            "wrong magic {:?}",
            String::from_utf8_lossy(&magic)
        )));
    }
    let n = read_u64(&mut r, "header")? as usize;
    let nnz = read_u64(&mut r, "header")? as usize;
    if n > u32::MAX as usize {
        return Err(GraphError::BadBinaryFormat(format!(
            "vertex count {n} exceeds the u32 id space"
        )));
    }
    // Never trust header sizes for allocation: grow buffers only as actual
    // bytes arrive, so truncated or hostile headers fail with a clean
    // truncation error instead of aborting on an enormous allocation.
    let mut offsets = Vec::with_capacity((n + 1).min(1 << 20));
    for _ in 0..=n {
        offsets.push(read_u64(&mut r, "offset array")? as usize);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&nnz) {
        return Err(GraphError::BadBinaryFormat(format!(
            "offset array inconsistent with edge count: offsets run {}..{} but nnz = {nnz}",
            offsets.first().copied().unwrap_or(0),
            offsets.last().copied().unwrap_or(0),
        )));
    }
    let mut neighbors: Vec<VertexId> = Vec::with_capacity(nnz.min(1 << 22));
    let mut buf = [0u8; 4];
    for _ in 0..nnz {
        read_exact_or(&mut r, &mut buf, "neighbor array")?;
        let v = u32::from_le_bytes(buf);
        if v as usize >= n {
            return Err(GraphError::BadBinaryFormat(format!(
                "neighbor id {v} out of range (n = {n})"
            )));
        }
        neighbors.push(v);
    }
    if !offsets.windows(2).all(|w| w[0] <= w[1]) {
        return Err(GraphError::BadBinaryFormat("offsets not monotone".into()));
    }
    // The declared payload is complete; anything left over means the header
    // lied about the sizes (or the file was concatenated/corrupted).
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => {}
        _ => return Err(GraphError::TrailingBytes),
    }
    Ok(CsrGraph::from_parts(offsets, neighbors))
}

/// Reads a graph in the binary CSR format from a file path.
pub fn read_binary_path<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    read_binary(std::fs::File::open(path)?)
}

/// `read_exact` with short reads reported as [`GraphError::TruncatedBinary`]
/// naming the section, not as a bare I/O error.
fn read_exact_or<R: Read>(r: &mut R, buf: &mut [u8], section: &'static str) -> Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            GraphError::TruncatedBinary { section }
        } else {
            GraphError::Io(e)
        }
    })
}

fn read_u64<R: Read>(r: &mut R, section: &'static str) -> Result<u64> {
    let mut buf = [0u8; 8];
    read_exact_or(r, &mut buf, section)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn roundtrip_small() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let g = b.build();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_empty() {
        let g = CsrGraph::empty(0);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
    }

    #[test]
    fn roundtrip_random_graph() {
        let g = generators::erdos_renyi_gnm(500, 2000, 3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
    }

    #[test]
    fn rejects_wrong_magic() {
        let buf = b"NOTAGRPH\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0".to_vec();
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphError::BadBinaryFormat(_))
        ));
    }

    #[test]
    fn rejects_truncated_input_with_dedicated_variant() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        let g = b.build();
        let mut full = Vec::new();
        write_binary(&g, &mut full).unwrap();
        // Cutting anywhere inside the payload must surface as truncation
        // (naming a section), never as a generic I/O error.
        for cut in [full.len() - 2, full.len() - 5, 30, 17] {
            let buf = &full[..cut];
            assert!(
                matches!(read_binary(buf), Err(GraphError::TruncatedBinary { .. })),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn rejects_short_prologue() {
        // A file that dies inside the magic, and one inside the n/nnz header.
        for cut in [0usize, 3, 8, 12, 15] {
            let mut full = Vec::new();
            write_binary(&CsrGraph::empty(2), &mut full).unwrap();
            let buf = &full[..cut];
            let err = read_binary(buf).unwrap_err();
            assert!(
                matches!(err, GraphError::TruncatedBinary { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2)]);
        let mut buf = Vec::new();
        write_binary(&b.build(), &mut buf).unwrap();
        buf.push(0xAB);
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphError::TrailingBytes)
        ));
    }

    #[test]
    fn rejects_offsets_inconsistent_with_edge_count() {
        // Handcraft: n = 2, header claims nnz = 4, but offsets end at 2.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&4u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(matches!(err, GraphError::BadBinaryFormat(_)), "{err}");
        assert!(err.to_string().contains("inconsistent"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_neighbor() {
        // Handcraft: n = 1, nnz = 1, offsets [0, 1], neighbor 5.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&5u32.to_le_bytes());
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphError::BadBinaryFormat(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("bestk-graph-bin-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = generators::erdos_renyi_gnm(64, 128, 9);
        write_binary_path(&g, &path).unwrap();
        assert_eq!(read_binary_path(&path).unwrap(), g);
        std::fs::remove_file(path).ok();
    }
}
