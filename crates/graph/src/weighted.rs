//! Edge-weighted graphs.
//!
//! Substrate for the weighted-core extension sketched in the paper's §VII
//! (weighted k-core / s-core decomposition, references \[23\], \[27\], \[60\]):
//! a [`CsrGraph`] plus a parallel integer weight array, so every unweighted
//! algorithm keeps working on the underlying topology while weighted
//! algorithms read weights by adjacency slot.

use crate::csr::{CsrGraph, VertexId};

/// An undirected simple graph with positive integer edge weights.
///
/// Weights are `u32` (weighted degrees accumulate in `u64`): integer
/// weights keep the s-core peeling's bucket queue exact, and any rational
/// weighting can be scaled into integers beforehand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedCsrGraph {
    graph: CsrGraph,
    /// `weights[p]` = weight of the edge in adjacency slot `p` (aligned
    /// with `graph.raw_neighbors()`; both directions carry the same value).
    weights: Vec<u32>,
}

impl WeightedCsrGraph {
    /// The underlying unweighted topology.
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().map(|&w| w as u64).sum::<u64>() / 2
    }

    /// The neighbor/weight pairs of `v`.
    #[inline]
    pub fn neighbors_with_weights(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        let (s, e) = (
            self.graph.offsets()[v as usize],
            self.graph.offsets()[v as usize + 1],
        );
        self.graph.raw_neighbors()[s..e]
            .iter()
            .copied()
            .zip(self.weights[s..e].iter().copied())
    }

    /// Weighted degree of `v`: the sum of incident edge weights.
    pub fn weighted_degree(&self, v: VertexId) -> u64 {
        self.neighbors_with_weights(v).map(|(_, w)| w as u64).sum()
    }

    /// Raw weight array (aligned with the CSR adjacency).
    #[inline]
    pub fn slot_weights(&self) -> &[u32] {
        &self.weights
    }

    /// Checks weight symmetry on top of the simple-graph invariants.
    pub fn validate(&self) -> Result<(), String> {
        self.graph.validate()?;
        for v in self.graph.vertices() {
            for (u, w) in self.neighbors_with_weights(v) {
                let back = self
                    .neighbors_with_weights(u)
                    .find(|&(x, _)| x == v)
                    .map(|(_, w)| w);
                if back != Some(w) {
                    return Err(format!("asymmetric weight on edge ({v},{u})"));
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`WeightedCsrGraph`]; parallel edges have their weights
/// summed, self loops are dropped.
#[derive(Debug, Clone, Default)]
pub struct WeightedGraphBuilder {
    edges: Vec<(VertexId, VertexId, u32)>,
    min_vertices: usize,
}

impl WeightedGraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures at least `n` vertices in the result.
    pub fn reserve_vertices(&mut self, n: usize) -> &mut Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Adds the undirected edge `{u, v}` with weight `w` (self loops
    /// dropped; repeated pairs sum their weights at build time).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: u32) -> &mut Self {
        if u != v {
            self.edges.push(if u < v { (u, v, w) } else { (v, u, w) });
        }
        self
    }

    /// Adds every weighted edge from an iterator.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId, u32)>>(
        &mut self,
        iter: I,
    ) -> &mut Self {
        for (u, v, w) in iter {
            self.add_edge(u, v, w);
        }
        self
    }

    /// Builds the weighted graph.
    pub fn build(mut self) -> WeightedCsrGraph {
        // Merge duplicates: sort by endpoints, sum weights.
        self.edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let mut merged: Vec<(VertexId, VertexId, u64)> = Vec::with_capacity(self.edges.len());
        for (u, v, w) in self.edges {
            match merged.last_mut() {
                Some((lu, lv, lw)) if *lu == u && *lv == v => *lw += w as u64,
                _ => merged.push((u, v, w as u64)),
            }
        }
        let mut b = crate::builder::GraphBuilder::with_capacity(merged.len());
        b.reserve_vertices(self.min_vertices);
        for &(u, v, _) in &merged {
            b.add_edge(u, v);
        }
        let graph = b.build();
        // Scatter weights into adjacency slots via binary search on the
        // sorted adjacency.
        let mut weights = vec![0u32; graph.raw_neighbors().len()];
        for &(u, v, w) in &merged {
            // Overflow of summed parallel-edge weights is a caller bug;
            // wrapping silently would corrupt every downstream score.
            // bestk-analyze: allow(no-unwrap) — summed-weight overflow must be loud
            let w = u32::try_from(w).expect("summed edge weight exceeds u32");
            for (a, b_) in [(u, v), (v, u)] {
                let start = graph.offsets()[a as usize];
                let pos = graph
                    .neighbors(a)
                    .binary_search(&b_)
                    // bestk-analyze: allow(no-unwrap) — this edge was inserted above
                    .expect("edge present by construction");
                weights[start + pos] = w;
            }
        }
        WeightedCsrGraph { graph, weights }
    }
}

/// Derives a weighted graph from an unweighted one with unit weights —
/// weighted algorithms then reduce exactly to their unweighted versions
/// (the crate's cross-validation trick).
pub fn unit_weights(g: &CsrGraph) -> WeightedCsrGraph {
    WeightedCsrGraph {
        graph: g.clone(),
        weights: vec![1; g.raw_neighbors().len()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut b = WeightedGraphBuilder::new();
        b.add_edge(0, 1, 5);
        b.add_edge(1, 2, 3);
        b.add_edge(2, 0, 1);
        let g = b.build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.total_weight(), 9);
        assert_eq!(g.weighted_degree(0), 6);
        assert_eq!(g.weighted_degree(1), 8);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn duplicate_edges_sum_weights() {
        let mut b = WeightedGraphBuilder::new();
        b.add_edge(0, 1, 2);
        b.add_edge(1, 0, 3);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.total_weight(), 5);
    }

    #[test]
    fn self_loops_dropped_and_reserve() {
        let mut b = WeightedGraphBuilder::new();
        b.add_edge(1, 1, 9);
        b.add_edge(0, 1, 1);
        b.reserve_vertices(5);
        let g = b.build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weighted_degree(4), 0);
    }

    #[test]
    fn unit_weights_match_topology() {
        let base = crate::generators::erdos_renyi_gnm(50, 150, 3);
        let w = unit_weights(&base);
        assert_eq!(w.total_weight(), 150);
        for v in base.vertices() {
            assert_eq!(w.weighted_degree(v), base.degree(v) as u64);
        }
        assert!(w.validate().is_ok());
    }

    #[test]
    fn neighbors_with_weights_alignment() {
        let mut b = WeightedGraphBuilder::new();
        b.add_edge(0, 2, 7);
        b.add_edge(0, 1, 4);
        let g = b.build();
        let pairs: Vec<_> = g.neighbors_with_weights(0).collect();
        assert_eq!(pairs, vec![(1, 4), (2, 7)]);
    }
}
