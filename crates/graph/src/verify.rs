//! Structural invariant verification for graphs — the substrate of the
//! workspace's executable-specification layer.
//!
//! Every algorithm in the workspace assumes the [`CsrGraph`] contract:
//! monotone offsets, strictly sorted adjacency, symmetry, no self-loops.
//! [`verify_graph`] checks the contract exhaustively and reports the first
//! violated invariant with enough context to debug it. Downstream crates
//! (`bestk-core`, `bestk-truss`) build their own `verify` modules on the
//! shared [`VerifyError`] type, and the CLI's `--verify` flag runs them
//! after every computation.
//!
//! Verification is `O(m log d)` — cheap enough for tests and spot checks,
//! deliberately not part of any hot path.

use crate::CsrGraph;

/// A violated invariant: which specification clause failed, and the
/// concrete witness that failed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Short stable name of the violated invariant (e.g.
    /// `"csr.offsets-monotone"`), usable as a test anchor.
    pub invariant: &'static str,
    /// Human-readable witness: the vertex/edge/index that violates the
    /// invariant and the observed values.
    pub detail: String,
}

impl VerifyError {
    /// Builds an error for `invariant` with a formatted witness.
    pub fn new(invariant: &'static str, detail: impl Into<String>) -> VerifyError {
        VerifyError {
            invariant,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invariant {} violated: {}", self.invariant, self.detail)
    }
}

impl std::error::Error for VerifyError {}

/// Shorthand result for verification passes.
pub type VerifyResult = Result<(), VerifyError>;

/// Checks every structural invariant of a [`CsrGraph`]:
///
/// 1. offsets start at 0, increase monotonically, and end at the adjacency
///    array's length;
/// 2. every neighbor id is in range;
/// 3. every adjacency list is strictly sorted (sorted + duplicate-free);
/// 4. no self-loops;
/// 5. adjacency is symmetric (`u ∈ N(v)` ⟺ `v ∈ N(u)`);
/// 6. the edge count equals half the adjacency length.
pub fn verify_graph(g: &CsrGraph) -> VerifyResult {
    let n = g.num_vertices();
    let offsets = g.offsets();
    let adj = g.raw_neighbors();
    if offsets.len() != n + 1 {
        return Err(VerifyError::new(
            "csr.offsets-length",
            format!(
                "{} offsets for {n} vertices (want {})",
                offsets.len(),
                n + 1
            ),
        ));
    }
    if offsets.first() != Some(&0) {
        return Err(VerifyError::new(
            "csr.offsets-monotone",
            format!("offsets[0] = {:?}, want 0", offsets.first()),
        ));
    }
    for (v, w) in offsets.windows(2).enumerate() {
        if w[0] > w[1] {
            return Err(VerifyError::new(
                "csr.offsets-monotone",
                format!("offsets[{v}] = {} > offsets[{}] = {}", w[0], v + 1, w[1]),
            ));
        }
    }
    if offsets[n] != adj.len() {
        return Err(VerifyError::new(
            "csr.offsets-cover",
            format!(
                "offsets[{n}] = {} but adjacency holds {} entries",
                offsets[n],
                adj.len()
            ),
        ));
    }
    if adj.len() != 2 * g.num_edges() {
        return Err(VerifyError::new(
            "csr.edge-count",
            format!("{} directed slots for {} edges", adj.len(), g.num_edges()),
        ));
    }
    for v in g.vertices() {
        let list = g.neighbors(v);
        for w in list.windows(2) {
            if w[0] >= w[1] {
                return Err(VerifyError::new(
                    "csr.adjacency-sorted",
                    format!("N({v}) not strictly sorted: {} then {}", w[0], w[1]),
                ));
            }
        }
        for &u in list {
            if u as usize >= n {
                return Err(VerifyError::new(
                    "csr.neighbor-in-range",
                    format!("N({v}) contains {u}, but n = {n}"),
                ));
            }
            if u == v {
                return Err(VerifyError::new(
                    "csr.no-self-loop",
                    format!("self loop at {v}"),
                ));
            }
            if g.neighbors(u).binary_search(&v).is_err() {
                return Err(VerifyError::new(
                    "csr.symmetric",
                    format!("edge ({v},{u}) present but ({u},{v}) missing"),
                ));
            }
        }
    }
    Ok(())
}

/// Degree-sum sanity: Σ d(v) must equal 2m (implied by [`verify_graph`],
/// exposed separately as the cheapest smoke test for huge graphs).
pub fn verify_degree_sum(g: &CsrGraph) -> VerifyResult {
    let sum: usize = g.vertices().map(|v| g.degree(v)).sum();
    if sum != 2 * g.num_edges() {
        return Err(VerifyError::new(
            "csr.degree-sum",
            format!("Σ degree = {sum}, want 2m = {}", 2 * g.num_edges()),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, GraphBuilder};

    #[test]
    fn honest_graphs_pass() {
        for g in [
            CsrGraph::empty(0),
            CsrGraph::empty(5),
            generators::paper_figure2(),
            generators::erdos_renyi_gnm(200, 800, 7),
        ] {
            verify_graph(&g).unwrap();
            verify_degree_sum(&g).unwrap();
        }
    }

    #[test]
    fn asymmetric_adjacency_is_caught() {
        // Hand-build a CSR with a one-directional edge 0 -> 1.
        let g = CsrGraph::from_parts(vec![0, 1, 1], vec![1]);
        let err = verify_graph(&g).unwrap_err();
        assert_eq!(err.invariant, "csr.edge-count");
    }

    #[test]
    fn self_loop_is_caught() {
        let g = CsrGraph::from_parts(vec![0, 1, 2], vec![0, 1]);
        let err = verify_graph(&g).unwrap_err();
        assert!(
            err.invariant == "csr.no-self-loop" || err.invariant == "csr.adjacency-sorted",
            "{err}"
        );
    }

    #[test]
    fn builder_output_always_passes() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 1), (1, 0), (2, 5), (5, 2), (0, 1)]);
        verify_graph(&b.build()).unwrap();
    }
}
