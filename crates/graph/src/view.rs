//! Backend-neutral read-only graph access.
//!
//! [`GraphView`] is the observation contract every storage backend
//! implements: vertex/edge counts, degrees, and per-vertex neighbor
//! iteration in a *defined order* (the backend's stored adjacency order).
//! Algorithms written against `&impl GraphView` run unchanged — and
//! produce bit-identical answers — over the materialized [`CsrGraph`],
//! the compressed [`SuccinctCsr`](crate::SuccinctCsr), or a zero-copy
//! byte view borrowed from a mapped snapshot
//! ([`ByteCsr`](crate::ByteCsr)).
//!
//! [`Neighbors`] is a concrete enum iterator rather than an associated
//! type so backends living in other crates can construct one from their
//! own storage (vertex-id slices, little-endian byte ranges, or varint
//! gap streams) without the trait growing generics at every call site.

use crate::cast;
use crate::csr::CsrGraph;
use crate::VertexId;

/// Read-only access to an undirected simple graph, independent of the
/// storage backend.
///
/// The contract mirrors what the best-k algorithms consume: counts,
/// degrees, and neighbor streams in a *stable stored order*. Two backends
/// built from the same graph must yield identical neighbor sequences for
/// every vertex — that is what makes best-k answers bit-identical across
/// backends (property-tested in `tests/backend_equivalence.rs`).
pub trait GraphView {
    /// Number of vertices `n`.
    fn num_vertices(&self) -> usize;

    /// Number of undirected edges `m`.
    fn num_edges(&self) -> usize;

    /// Degree of `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// Iterator over the neighbors of `v` in the backend's stored
    /// adjacency order (sorted by id for builder-produced graphs).
    fn neighbors(&self, v: VertexId) -> Neighbors<'_>;

    /// Global position of the first adjacency slot of `v`: the exclusive
    /// prefix sum of degrees, so slot `adjacency_start(v) + i` addresses
    /// the `i`-th stored neighbor of `v`. Equals `offsets[v]` on CSR
    /// layouts.
    fn adjacency_start(&self, v: VertexId) -> usize;

    /// Iterator over all vertices `0..n`.
    fn vertices(&self) -> std::ops::Range<VertexId> {
        0..cast::vertex_id(self.num_vertices())
    }

    /// Whether the undirected edge `{u, v}` exists.
    ///
    /// Default is a linear scan of the lower-degree endpoint's adjacency;
    /// backends with sorted random-access slices override with binary
    /// search.
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).any(|w| w == b)
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2 m / n` (0.0 for a vertex-free graph).
    fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            (2 * self.num_edges()) as f64 / self.num_vertices() as f64
        }
    }

    /// Materialized degree prefix sums (length `n + 1`): the weight array
    /// handed to `ExecPolicy::plan_weighted` so chunk plans stay identical
    /// across backends.
    fn degree_offsets(&self) -> Vec<usize> {
        let n = self.num_vertices();
        let mut out = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        out.push(0);
        for v in 0..n {
            acc = acc.saturating_add(self.degree(cast::vertex_id(v)));
            out.push(acc);
        }
        out
    }
}

impl GraphView for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> Neighbors<'_> {
        Neighbors::from_slice(CsrGraph::neighbors(self, v))
    }

    #[inline]
    fn adjacency_start(&self, v: VertexId) -> usize {
        self.offsets()[v as usize]
    }

    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        CsrGraph::has_edge(self, u, v)
    }

    #[inline]
    fn max_degree(&self) -> usize {
        CsrGraph::max_degree(self)
    }

    #[inline]
    fn average_degree(&self) -> f64 {
        CsrGraph::average_degree(self)
    }

    fn degree_offsets(&self) -> Vec<usize> {
        self.offsets().to_vec()
    }
}

/// Full delegation (not just the required subset) so backend overrides
/// like CSR binary-search `has_edge` survive the indirection.
impl<T: GraphView + ?Sized> GraphView for &T {
    #[inline]
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        (**self).degree(v)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> Neighbors<'_> {
        (**self).neighbors(v)
    }

    #[inline]
    fn adjacency_start(&self, v: VertexId) -> usize {
        (**self).adjacency_start(v)
    }

    #[inline]
    fn vertices(&self) -> std::ops::Range<VertexId> {
        (**self).vertices()
    }

    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        (**self).has_edge(u, v)
    }

    #[inline]
    fn max_degree(&self) -> usize {
        (**self).max_degree()
    }

    #[inline]
    fn average_degree(&self) -> f64 {
        (**self).average_degree()
    }

    fn degree_offsets(&self) -> Vec<usize> {
        (**self).degree_offsets()
    }
}

/// Neighbor iterator shared by every backend.
///
/// A concrete enum rather than `impl Iterator` so [`GraphView`] stays a
/// plain trait; the variants cover the three physical layouts in the
/// workspace. Truncated or malformed byte payloads terminate the stream
/// early instead of panicking — corrupt mapped bytes must never abort the
/// process (structural validation is the snapshot layer's job).
#[derive(Clone)]
pub struct Neighbors<'a> {
    inner: Inner<'a>,
    remaining: usize,
}

#[derive(Clone)]
enum Inner<'a> {
    /// Borrowed `&[VertexId]` adjacency (CSR).
    Slice(std::slice::Iter<'a, VertexId>),
    /// Little-endian `u32` groups borrowed from raw bytes (mapped views).
    Bytes(&'a [u8]),
    /// Varint-encoded gap stream (succinct CSR): first value raw, each
    /// following value a delta from its predecessor.
    Gaps { bytes: &'a [u8], prev: u64 },
}

impl<'a> Neighbors<'a> {
    /// Neighbors from a vertex-id slice.
    #[inline]
    pub fn from_slice(adj: &'a [VertexId]) -> Self {
        Neighbors {
            remaining: adj.len(),
            inner: Inner::Slice(adj.iter()),
        }
    }

    /// Neighbors from little-endian `u32` bytes; a trailing partial group
    /// is ignored.
    #[inline]
    pub fn from_le_bytes(bytes: &'a [u8]) -> Self {
        Neighbors {
            remaining: bytes.len() / 4,
            inner: Inner::Bytes(bytes),
        }
    }

    /// `count` neighbors from a varint gap stream (first value raw, then
    /// deltas). A stream that runs dry before `count` values ends the
    /// iterator early.
    #[inline]
    pub fn from_gaps(bytes: &'a [u8], count: usize) -> Self {
        Neighbors {
            remaining: count,
            inner: Inner::Gaps { bytes, prev: 0 },
        }
    }

    /// The borrowed slice, when this iterator is slice-backed and
    /// unconsumed decode state allows it. Fast path for concrete CSR
    /// consumers; `None` for compressed or byte-backed streams.
    #[inline]
    pub fn as_slice(&self) -> Option<&'a [VertexId]> {
        match &self.inner {
            Inner::Slice(it) => Some(it.as_slice()),
            _ => None,
        }
    }
}

/// Reads one LEB128-style varint from the front of `bytes`, returning the
/// value and the rest. `None` on a truncated or over-long encoding.
#[inline]
fn take_varint(bytes: &[u8]) -> Option<(u64, &[u8])> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some((value, &bytes[i + 1..]));
        }
        shift += 7;
    }
    None
}

impl Iterator for Neighbors<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        if self.remaining == 0 {
            return None;
        }
        let out = match &mut self.inner {
            Inner::Slice(it) => it.next().copied(),
            Inner::Bytes(bytes) => {
                if bytes.len() < 4 {
                    None
                } else {
                    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
                    *bytes = &bytes[4..];
                    Some(v)
                }
            }
            Inner::Gaps { bytes, prev } => match take_varint(bytes) {
                Some((delta, rest)) => {
                    *bytes = rest;
                    let v = prev.saturating_add(delta);
                    *prev = v;
                    Some(cast::u32_from_u64(v.min(u64::from(VertexId::MAX))))
                }
                None => None,
            },
        };
        match out {
            Some(v) => {
                self.remaining -= 1;
                Some(v)
            }
            None => {
                self.remaining = 0;
                None
            }
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        // Upper bound is exact for well-formed streams; truncated byte
        // payloads may end early, so the lower bound from the byte budget.
        let lower = match &self.inner {
            Inner::Slice(_) => self.remaining,
            Inner::Bytes(bytes) => self.remaining.min(bytes.len() / 4),
            Inner::Gaps { bytes, .. } => self.remaining.min(bytes.len()),
        };
        (lower, Some(self.remaining))
    }
}

impl ExactSizeIterator for Neighbors<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.remaining
    }
}

impl std::fmt::Debug for Neighbors<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Neighbors {{ remaining: {} }}", self.remaining)
    }
}

/// Encodes `value` as a LEB128-style varint onto `out`.
#[inline]
pub(crate) fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = cast::low_byte(value) & 0x7f;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 0);
        b.add_edge(0, 2);
        b.build()
    }

    fn via_view<G: GraphView>(g: &G, v: VertexId) -> Vec<VertexId> {
        g.neighbors(v).collect()
    }

    #[test]
    fn csr_view_matches_inherent_api() {
        let g = diamond();
        assert_eq!(GraphView::num_vertices(&g), 4);
        assert_eq!(GraphView::num_edges(&g), 5);
        for v in 0..4u32 {
            assert_eq!(GraphView::degree(&g, v), g.degree(v));
            assert_eq!(via_view(&g, v), g.neighbors(v).to_vec());
            assert_eq!(GraphView::adjacency_start(&g, v), g.offsets()[v as usize]);
        }
        assert!(GraphView::has_edge(&g, 0, 2));
        assert!(!GraphView::has_edge(&g, 1, 3));
        assert_eq!(GraphView::max_degree(&g), 3);
        assert_eq!(g.degree_offsets(), g.offsets().to_vec());
    }

    #[test]
    fn reference_delegation_preserves_overrides() {
        let g = diamond();
        let r = &g;
        assert!(GraphView::has_edge(&r, 2, 0));
        assert_eq!(GraphView::degree_offsets(&r), g.offsets().to_vec());
    }

    #[test]
    fn slice_iterator_is_exact_size() {
        let g = diamond();
        let it = GraphView::neighbors(&g, 0);
        assert_eq!(it.len(), 3);
        assert_eq!(it.as_slice(), Some(g.neighbors(0)));
    }

    #[test]
    fn le_bytes_iterator_decodes_and_tolerates_truncation() {
        let bytes: Vec<u8> = [7u32, 9, 1 << 20]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let got: Vec<_> = Neighbors::from_le_bytes(&bytes).collect();
        assert_eq!(got, vec![7, 9, 1 << 20]);
        // A ragged tail is dropped, not panicked on.
        let got: Vec<_> = Neighbors::from_le_bytes(&bytes[..10]).collect();
        assert_eq!(got, vec![7, 9]);
    }

    #[test]
    fn gap_iterator_round_trips_varints() {
        let values = [3u64, 4, 1000, 1001, 4_000_000_000];
        let mut bytes = Vec::new();
        let mut prev = 0u64;
        for &v in &values {
            push_varint(&mut bytes, v - prev);
            prev = v;
        }
        let got: Vec<_> = Neighbors::from_gaps(&bytes, values.len()).collect();
        assert_eq!(got, vec![3, 4, 1000, 1001, 4_000_000_000]);
    }

    #[test]
    fn gap_iterator_ends_early_on_truncated_stream() {
        let mut bytes = Vec::new();
        push_varint(&mut bytes, 5);
        push_varint(&mut bytes, 300);
        let truncated = &bytes[..bytes.len() - 1];
        let got: Vec<_> = Neighbors::from_gaps(truncated, 2).collect();
        assert_eq!(got, vec![5]);
    }

    #[test]
    fn default_degree_offsets_prefix_sums() {
        struct Star;
        impl GraphView for Star {
            fn num_vertices(&self) -> usize {
                4
            }
            fn num_edges(&self) -> usize {
                3
            }
            fn degree(&self, v: VertexId) -> usize {
                if v == 0 {
                    3
                } else {
                    1
                }
            }
            fn neighbors(&self, _v: VertexId) -> Neighbors<'_> {
                Neighbors::from_slice(&[])
            }
            fn adjacency_start(&self, _v: VertexId) -> usize {
                0
            }
        }
        assert_eq!(Star.degree_offsets(), vec![0, 3, 4, 5, 6]);
        assert_eq!(Star.max_degree(), 3);
        assert!((Star.average_degree() - 1.5).abs() < 1e-12);
    }
}
