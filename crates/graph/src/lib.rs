//! # bestk-graph
//!
//! Compact undirected-graph substrate for the `bestk` workspace.
//!
//! The crate provides everything the best-k core-decomposition algorithms
//! (crate `bestk-core`) need from a graph library, built from scratch with
//! flat-array storage:
//!
//! * [`CsrGraph`] — an immutable, compressed-sparse-row simple graph with
//!   `u32` vertex ids and cache-friendly adjacency slices.
//! * [`GraphBuilder`] — deduplicating, self-loop-stripping builder that turns
//!   arbitrary edge streams into a [`CsrGraph`] in linear time.
//! * [`io`] — plain-text edge-list and compact binary readers/writers.
//! * [`generators`] — seeded synthetic workloads (Erdős–Rényi, Chung–Lu
//!   power-law, Barabási–Albert, R-MAT, planted partitions, and the paper's
//!   worked example), used as stand-ins for the SNAP datasets of the paper's
//!   evaluation.
//! * [`connectivity`] — connected components, BFS, and reachability helpers.
//! * [`subgraph`] — induced-subgraph extraction (used by the baselines).
//! * [`stats`] — degree statistics reported in the paper's Table III.
//!
//! ## Example
//!
//! ```
//! use bestk_graph::{CsrGraph, GraphBuilder};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 0);
//! let g: CsrGraph = b.build();
//! assert_eq!(g.num_vertices(), 3);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.degree(0), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
pub mod bytecsr;
pub mod cast;
pub mod connectivity;
mod csr;
mod error;
pub mod generators;
pub mod io;
pub mod rng;
pub mod stats;
pub mod subgraph;
mod succinct;
pub mod testkit;
pub mod transform;
pub mod verify;
mod view;
pub mod weighted;

pub use builder::{build_relabeled, GraphBuilder};
pub use bytecsr::ByteCsr;
pub use csr::{CsrGraph, EdgeIter, VertexId};
pub use error::GraphError;
pub use succinct::{EliasFano, SuccinctCsr};
pub use view::{GraphView, Neighbors};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
