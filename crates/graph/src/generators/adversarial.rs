//! Adversarial constructions that stress the paper's shell machinery.
//!
//! The best-k pipeline's hard cases are structural, not statistical:
//! Algorithm 1's `(coreness, id)` order and position tags, Algorithm 2's
//! top-down sweep, and the delta subsystem's shell-boundary repairs all
//! hinge on *where the shells sit*, not on how random the graph looks.
//! These generators build the shapes random models almost never produce:
//!
//! * [`k_chain`] — maximum shell count per vertex budget: a chain of
//!   cliques `K_2, K_3, …, K_{L+1}`, one nonempty shell per level
//!   `1..=L`, so every level of the Alg. 2 sweep carries weight and
//!   `kmax` is as deep as the vertex count allows (`n = Θ(L²)`).
//! * [`shell_ladder`] — a deep core with wide rungs: a clique of size
//!   `depth + 1` plus `width` pendant vertices per shell below it, so a
//!   single edge op near the core dirties a deep sweep range while every
//!   shell boundary move has many same-coreness candidates.
//! * [`tie_storm`] — tie-breaking stress: `groups` identical cliques with
//!   vertex ids interleaved by a seeded shuffle, so entire shells share
//!   one coreness, metric scores tie across components, and the
//!   `(coreness, id)` order is a dense run of ties whose repair order the
//!   delta index must get exactly right.
//!
//! All three are deterministic (the storm from its seed), so equivalence
//! failures reproduce from the call site alone.

use crate::builder::GraphBuilder;
use crate::cast;
use crate::csr::{CsrGraph, VertexId};
use crate::rng::Xoshiro256;

/// A chain of cliques `K_2, K_3, …, K_{levels+1}`, consecutive cliques
/// bridged by a single edge. Clique `K_{k+1}` is exactly the `k`-core
/// beyond its neighbors, so the decomposition has one nonempty shell per
/// level `1..=levels` and `kmax == levels` — the maximum shell depth a
/// `Θ(levels²)` vertex budget can buy. The single bridges do not lift
/// anyone's coreness (a bridged member's extra neighbor peels away at its
/// own, lower or equal, level first under the standard peel).
///
/// Returns the empty graph for `levels == 0`.
pub fn k_chain(levels: u32) -> CsrGraph {
    let mut b = GraphBuilder::new();
    let mut next: VertexId = 0;
    for k in 1..=levels {
        let size = k + 1;
        let first = next;
        for i in 0..size {
            for j in (i + 1)..size {
                b.add_edge(first + i, first + j);
            }
        }
        if first > 0 {
            // Bridge the last vertex of the previous clique to the first
            // vertex of this one.
            b.add_edge(first - 1, first);
        }
        next = first + size;
    }
    b.build()
}

/// A clique of size `depth + 1` (coreness `depth`) with `width` pendant
/// vertices per shell `k` in `1..depth`: each rung vertex attaches to
/// exactly `k` clique members, pinning its coreness at `k`. Shells
/// `1..depth` therefore hold `width` vertices each, all adjacent to the
/// deep core — one edge op against a clique member dirties every sweep
/// level, and every shell is wide enough to make boundary moves
/// non-trivial.
///
/// Returns just the clique when `width == 0` or `depth < 2`.
pub fn shell_ladder(depth: u32, width: usize) -> CsrGraph {
    let mut b = GraphBuilder::new();
    let core = depth + 1;
    for i in 0..core {
        for j in (i + 1)..core {
            b.add_edge(i, j);
        }
    }
    let mut next = core;
    for k in 1..depth {
        for _ in 0..width {
            for c in 0..k {
                b.add_edge(next, c);
            }
            next += 1;
        }
    }
    b.build()
}

/// `groups` identical cliques of `clique` vertices each, with all vertex
/// ids interleaved by a seeded shuffle. Every vertex shares one coreness
/// (`clique - 1`), every component scores identically under every
/// metric, and the global `(coreness, id)` order is one long run of ties
/// cutting across components — the worst case for tag repair and for
/// best-k tie-breaking.
///
/// Returns the empty graph when `groups == 0` or `clique < 2`.
pub fn tie_storm(groups: usize, clique: usize, seed: u64) -> CsrGraph {
    if groups == 0 || clique < 2 {
        return CsrGraph::empty(0);
    }
    let n = groups * clique;
    let mut ids: Vec<VertexId> = (0..cast::u32_of(n)).collect();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    rng.shuffle(&mut ids);
    let mut b = GraphBuilder::with_capacity(groups * clique * (clique - 1) / 2);
    for g in 0..groups {
        let members = &ids[g * clique..(g + 1) * clique];
        for i in 0..clique {
            for j in (i + 1)..clique {
                b.add_edge(members[i], members[j]);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_chain_has_one_clique_per_level() {
        let g = k_chain(5);
        // n = 2 + 3 + 4 + 5 + 6, m = sum C(k+1,2) + 4 bridges.
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 1 + 3 + 6 + 10 + 15 + 4);
        assert_eq!(k_chain(0).num_vertices(), 0);
        assert_eq!(g, k_chain(5));
        // Bridges connect the chain end to end.
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(4, 5));
    }

    #[test]
    fn shell_ladder_rungs_have_exact_degrees() {
        let (depth, width) = (4u32, 3usize);
        let g = shell_ladder(depth, width);
        assert_eq!(g.num_vertices(), 5 + 3 * 3);
        // Rung vertices for shell k have degree exactly k.
        let mut v = depth + 1;
        for k in 1..depth {
            for _ in 0..width {
                assert_eq!(g.degree(v), k as usize, "rung vertex {v}");
                v += 1;
            }
        }
        assert_eq!(shell_ladder(3, 0).num_vertices(), 4);
    }

    #[test]
    fn tie_storm_is_a_shuffled_union_of_cliques() {
        let g = tie_storm(4, 5, 9);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 4 * 10);
        // Every vertex has clique-internal degree exactly clique - 1.
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4, "vertex {v}");
        }
        assert_eq!(g, tie_storm(4, 5, 9));
        assert_ne!(g, tie_storm(4, 5, 10));
        assert_eq!(tie_storm(0, 5, 1).num_vertices(), 0);
        assert_eq!(tie_storm(3, 1, 1).num_vertices(), 0);
    }
}
