//! The worked example of the paper (Figure 2).

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;

/// The 12-vertex example graph of the paper's Figure 2.
///
/// Paper vertex `v_i` is vertex `i - 1` here. The graph is a single 2-core;
/// its 3-core set consists of two 4-cliques `{v1..v4}` and `{v9..v12}`, and
/// vertices `v5..v8` form the 2-shell. Every worked example of the paper
/// (Examples 2–6, Figure 3's ordering tags, Figure 4's core forest) runs on
/// this graph, and the `bestk-core` tests replay them against it.
pub fn paper_figure2() -> CsrGraph {
    let mut b = GraphBuilder::new();
    // 4-clique on v1, v2, v3, v4.
    b.extend_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
    // 4-clique on v9, v10, v11, v12.
    b.extend_edges([(8, 9), (8, 10), (8, 11), (9, 10), (9, 11), (10, 11)]);
    // The 2-shell: v5, v6, v7, v8 and their attachments.
    // v5 ~ v3, v6;  v6 ~ v3, v7, v8;  v7 ~ v8;  v8 ~ v9.
    b.extend_edges([(4, 2), (4, 5), (5, 2), (5, 6), (5, 7), (6, 7), (7, 8)]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_has_12_vertices_and_19_edges() {
        let g = paper_figure2();
        assert_eq!(g.num_vertices(), 12);
        // Example 4 computes in = 19 internal edges for the full graph.
        assert_eq!(g.num_edges(), 19);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn figure2_degrees_match_the_figure() {
        let g = paper_figure2();
        // v3 touches the clique (3 edges) plus v5 and v6.
        assert_eq!(g.degree(2), 5);
        // v5 ~ {v3, v6}.
        assert_eq!(g.neighbors(4), &[2, 5]);
        // v6 ~ {v3, v5, v7, v8}.
        assert_eq!(g.neighbors(5), &[2, 4, 6, 7]);
        // v7 ~ {v6, v8}.
        assert_eq!(g.neighbors(6), &[5, 7]);
        // v8 ~ {v6, v7, v9}.
        assert_eq!(g.neighbors(7), &[5, 6, 8]);
        // Minimum degree 2: the whole graph is a 2-core (Example 2).
        assert!(g.vertices().all(|v| g.degree(v) >= 2));
    }
}
