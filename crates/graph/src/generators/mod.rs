//! Seeded synthetic graph generators.
//!
//! The paper evaluates on ten SNAP / NetworkRepository datasets (Table III)
//! that cannot be redistributed here; the workloads in this module are their
//! structural stand-ins (see `DESIGN.md` §4). Every generator takes an
//! explicit `seed` and is bit-reproducible.
//!
//! * [`erdos_renyi_gnm`] / [`erdos_renyi_gnp`] — homogeneous random graphs
//!   (flat coreness spectrum; the "uninteresting" control case).
//! * [`chung_lu_power_law`] — expected-degree power-law graphs; matches the
//!   heavy-tailed degree/coreness spectra of the SNAP social networks.
//! * [`barabasi_albert`] — preferential attachment; collaboration-network
//!   stand-in.
//! * [`rmat`] — Graph500-style recursive-matrix graphs; web/social stand-in.
//! * [`watts_strogatz`] — small-world ring lattices with rewiring (the
//!   clustering-coefficient reference model).
//! * [`planted_partition`] — ground-truth communities for the case study.
//! * [`overlapping_cliques`] — very dense high-`kmax` graphs mimicking
//!   Hollywood / Human-Jung.
//! * [`regular`] module — deterministic fixtures (complete, cycle, star, …).
//! * [`paper_figure2`] — the 12-vertex worked example of the paper.
//! * [`stream`] module — deterministic edge-stream workloads (insert/delete
//!   sequences) for the incremental-maintenance subsystem.
//! * [`adversarial`] module — worst-case shell structures ([`k_chain`],
//!   [`shell_ladder`], [`tie_storm`]) for the equivalence and fuzz suites.

mod adversarial;
mod community;
mod paper;
mod random;
pub mod regular;
mod stream;

pub use adversarial::{k_chain, shell_ladder, tie_storm};
pub use community::{overlapping_cliques, planted_partition, PlantedPartition};
pub use paper::paper_figure2;
pub use random::{
    barabasi_albert, chung_lu_power_law, erdos_renyi_gnm, erdos_renyi_gnp, rmat, watts_strogatz,
};
pub use stream::{edge_stream_delete_heavy, edge_stream_focused, edge_stream_mixed, EdgeOp};
