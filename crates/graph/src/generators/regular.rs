//! Deterministic structured graphs used as fixtures and edge cases.

use crate::builder::GraphBuilder;
use crate::cast;
use crate::csr::CsrGraph;

/// Complete graph `K_n`.
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n * (n.saturating_sub(1)) / 2);
    b.reserve_vertices(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(cast::vertex_id(u), cast::vertex_id(v));
        }
    }
    b.build()
}

/// Cycle `C_n` (empty for `n < 3`).
pub fn cycle(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    if n >= 3 {
        for v in 0..n {
            b.add_edge(cast::vertex_id(v), cast::vertex_id((v + 1) % n));
        }
    }
    b.build()
}

/// Path `P_n` on `n` vertices.
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    for v in 1..n {
        b.add_edge(cast::vertex_id(v - 1), cast::vertex_id(v));
    }
    b.build()
}

/// Star with `leaves` leaves around center 0.
pub fn star(leaves: usize) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(leaves + 1);
    for v in 1..=leaves {
        b.add_edge(0, cast::vertex_id(v));
    }
    b.build()
}

/// `w × h` grid graph (4-neighborhood).
pub fn grid(w: usize, h: usize) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(w * h);
    let id = |x: usize, y: usize| cast::vertex_id(y * w + x);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < h {
                b.add_edge(id(x, y), id(x, y + 1));
            }
        }
    }
    b.build()
}

/// Chain of `count` cliques of size `size`, consecutive cliques joined by a
/// single bridge edge. A handy fixture: `kmax = size - 1` with thin
/// connections the k-core set sweep must peel through.
pub fn clique_chain(count: usize, size: usize) -> CsrGraph {
    assert!(size >= 1);
    let mut b = GraphBuilder::new();
    b.reserve_vertices(count * size);
    for c in 0..count {
        let base = c * size;
        for u in 0..size {
            for v in (u + 1)..size {
                b.add_edge(cast::vertex_id(base + u), cast::vertex_id(base + v));
            }
        }
        if c > 0 {
            // Bridge from the last vertex of the previous clique.
            b.add_edge(cast::vertex_id(base - 1), cast::vertex_id(base));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 5));
        assert_eq!(complete(0).num_vertices(), 0);
        assert_eq!(complete(1).num_edges(), 0);
    }

    #[test]
    fn cycle_is_2_regular() {
        let g = cycle(7);
        assert_eq!(g.num_edges(), 7);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
        assert!(is_connected(&g));
        // Degenerate sizes yield edgeless graphs rather than multi-edges.
        assert_eq!(cycle(2).num_edges(), 0);
    }

    #[test]
    fn path_and_star() {
        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);
        let s = star(6);
        assert_eq!(s.num_vertices(), 7);
        assert_eq!(s.degree(0), 6);
        assert!(s.vertices().skip(1).all(|v| s.degree(v) == 1));
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // Edges: 4 rows × 2 horizontal + 3 cols × 3 vertical = 8 + 9.
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert!(is_connected(&g));
    }

    #[test]
    fn clique_chain_shape() {
        let g = clique_chain(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // 3 × C(4,2) + 2 bridges.
        assert_eq!(g.num_edges(), 20);
        assert!(is_connected(&g));
        let single = clique_chain(1, 5);
        assert_eq!(single.num_edges(), 10);
    }
}
