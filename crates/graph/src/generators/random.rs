//! Random-graph families: Erdős–Rényi, Chung–Lu, Barabási–Albert, R-MAT.

use crate::builder::GraphBuilder;
use crate::cast;
use crate::csr::{CsrGraph, VertexId};
use crate::rng::Xoshiro256;

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges sampled uniformly from
/// all vertex pairs (best effort: fewer if `m` exceeds the number of pairs).
///
/// Expected `O(m)` time via rejection sampling; suitable while
/// `m ≪ n² / 2`, which holds for every sparse workload in the harness.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n <= u32::MAX as usize, "n exceeds u32 id space");
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(m);
    b.reserve_vertices(n);
    while seen.len() < m {
        let u = cast::vertex_id(rng.next_index(n));
        let v = cast::vertex_id(rng.next_index(n));
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: each pair independently present with probability
/// `p`, generated in expected `O(n + m)` time with geometric skipping
/// (Batagelj–Brandes), not `O(n²)`.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!(n <= u32::MAX as usize, "n exceeds u32 id space");
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    if p <= 0.0 || n < 2 {
        return b.build();
    }
    if p >= 1.0 {
        for u in 0..cast::vertex_id(n) {
            for v in (u + 1)..cast::vertex_id(n) {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let log_q = (1.0 - p).ln();
    // Batagelj–Brandes skip sampling over the strictly-lower triangle:
    // row v, column w < v; the gap between successive present pairs is
    // Geometric(p)-distributed.
    let mut v = 1usize;
    let mut w = -1i64;
    while v < n {
        let r = rng.next_f64();
        w += 1 + ((1.0 - r).ln() / log_q).floor() as i64;
        while w >= v as i64 && v < n {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            b.add_edge(cast::vertex_id(w as usize), cast::vertex_id(v));
        }
    }
    b.build()
}

/// Chung–Lu expected-degree model with a power-law weight sequence
/// `w_i ∝ (i + i0)^(-1/(γ-1))`, scaled so the expected average degree is
/// `avg_degree`. Edges are sampled with the efficient "miller-hagberg" style
/// procedure over the weight-sorted vertex sequence, expected `O(n + m)`.
///
/// This is the primary stand-in for the paper's heavy-tailed social networks:
/// it produces the wide coreness spectra (large `kmax`, many shells) that the
/// best-k algorithms sweep over.
pub fn chung_lu_power_law(n: usize, avg_degree: f64, gamma: f64, seed: u64) -> CsrGraph {
    assert!(n <= u32::MAX as usize, "n exceeds u32 id space");
    assert!(gamma > 1.0, "gamma must exceed 1");
    assert!(avg_degree >= 0.0);
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    if n < 2 || avg_degree == 0.0 {
        return b.build();
    }
    // Zipf-like weights, already descending in i.
    let alpha = 1.0 / (gamma - 1.0);
    let mut weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    // bestk-analyze: allow(float-reduce) — sequential in-order slice sum
    let wsum: f64 = weights.iter().sum();
    // bestk-analyze: allow(unchecked-arith) — f64 product; checked variants are integer-only
    let scale = avg_degree * n as f64 / wsum;
    for w in &mut weights {
        *w *= scale;
        // Cap at sqrt(total weight) to keep edge probabilities <= 1-ish; the
        // classic Chung-Lu validity condition w_i * w_j <= W.
        // bestk-analyze: allow(unchecked-arith) — f64 product; checked variants are integer-only
        *w = w.min((avg_degree * n as f64).sqrt());
    }
    // bestk-analyze: allow(float-reduce) — sequential in-order slice sum
    let total_w: f64 = weights.iter().sum();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    // For each u (in descending weight order), sample neighbors v > u with
    // probability p_uv = w_u * w_v / W using skip sampling with the upper
    // bound q = w_u * w_{u+1} / W and acceptance w_v / w_{u+1}.
    for u in 0..n - 1 {
        let mut v = u + 1;
        let q = (weights[u] * weights[v] / total_w).min(1.0);
        if q <= 0.0 {
            continue;
        }
        let log_q = (1.0 - q).ln();
        // First candidate via geometric skip when q < 1.
        loop {
            if q < 1.0 {
                let r = rng.next_f64();
                let skip = ((1.0 - r).ln() / log_q).floor() as usize;
                v += skip;
            }
            if v >= n {
                break;
            }
            let p = (weights[u] * weights[v] / total_w).min(1.0);
            if rng.next_bool(p / q) {
                b.add_edge(cast::vertex_id(u), cast::vertex_id(v));
            }
            v += 1;
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starts from a clique on
/// `attach + 1` vertices, then each new vertex attaches to `attach` existing
/// vertices chosen proportionally to degree (by sampling endpoints of the
/// running edge list). `O(n · attach)`.
pub fn barabasi_albert(n: usize, attach: usize, seed: u64) -> CsrGraph {
    assert!(n <= u32::MAX as usize, "n exceeds u32 id space");
    assert!(attach >= 1, "attach must be at least 1");
    assert!(n > attach, "need more vertices than the attachment count");
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n * attach);
    b.reserve_vertices(n);
    // `targets` holds every edge endpoint ever created; sampling a uniform
    // element of it is exactly degree-proportional sampling.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * attach);
    let seedsize = attach + 1;
    for u in 0..cast::vertex_id(seedsize) {
        for v in (u + 1)..cast::vertex_id(seedsize) {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut picked: Vec<VertexId> = Vec::with_capacity(attach);
    for u in seedsize..n {
        picked.clear();
        // Rejection-sample `attach` distinct targets.
        while picked.len() < attach {
            let t = endpoints[rng.next_index(endpoints.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            b.add_edge(cast::vertex_id(u), t);
            endpoints.push(cast::vertex_id(u));
            endpoints.push(t);
        }
    }
    b.build()
}

/// Watts–Strogatz small-world graph (the model behind the paper's
/// clustering-coefficient reference \[59\]): a ring lattice where every
/// vertex connects to its `k/2` nearest neighbors on each side, with each
/// edge rewired to a uniform random endpoint with probability `beta`.
///
/// `beta = 0` is the pure lattice (high clustering, long paths); `beta = 1`
/// approaches a random graph. Rewiring can occasionally produce duplicate
/// pairs, which the builder collapses, so `m ≤ n·k/2`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(n <= u32::MAX as usize, "n exceeds u32 id space");
    assert!(
        k.is_multiple_of(2),
        "k must be even (k/2 neighbors per side)"
    );
    assert!(k < n, "lattice degree must be below n");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n * k / 2);
    b.reserve_vertices(n);
    for v in 0..n {
        for offset in 1..=k / 2 {
            // bestk-analyze: allow(unchecked-arith) — v < n and offset <= k/2 <= n, sum fits usize
            let u = (v + offset) % n;
            if rng.next_bool(beta) {
                // Rewire: keep v, pick a random other endpoint.
                let mut t = rng.next_index(n);
                while t == v {
                    t = rng.next_index(n);
                }
                b.add_edge(cast::vertex_id(v), cast::vertex_id(t));
            } else {
                b.add_edge(cast::vertex_id(v), cast::vertex_id(u));
            }
        }
    }
    b.build()
}

/// R-MAT (recursive matrix) generator à la Graph500.
///
/// Generates `edge_factor * 2^scale` directed samples in the
/// `2^scale × 2^scale` adjacency matrix with quadrant probabilities
/// `(a, b, c, 1 - a - b - c)`, then symmetrizes and deduplicates. With the
/// Graph500 parameters `(0.57, 0.19, 0.19)` this yields skewed, community-
/// rich graphs resembling web/social crawls.
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b_: f64, c: f64, seed: u64) -> CsrGraph {
    assert!(scale < 31, "scale must keep ids within u32");
    let d = 1.0 - a - b_ - c;
    assert!(
        a >= 0.0 && b_ >= 0.0 && c >= 0.0 && d >= -1e-9,
        "probabilities must sum to <= 1"
    );
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(m);
    builder.reserve_vertices(n);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r = rng.next_f64();
            if r < a {
                // top-left: nothing to add
            } else if r < a + b_ {
                v |= 1;
            } else if r < a + b_ + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        builder.add_edge(cast::vertex_id(u), cast::vertex_id(v));
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::connected_components;
    use crate::stats::degree_histogram;

    #[test]
    fn gnm_exact_edge_count_and_determinism() {
        let g1 = erdos_renyi_gnm(200, 800, 5);
        let g2 = erdos_renyi_gnm(200, 800, 5);
        assert_eq!(g1.num_edges(), 800);
        assert_eq!(g1.num_vertices(), 200);
        assert_eq!(g1, g2);
        assert!(g1.validate().is_ok());
        let g3 = erdos_renyi_gnm(200, 800, 6);
        assert_ne!(g1, g3);
    }

    #[test]
    fn gnm_caps_at_complete_graph() {
        let g = erdos_renyi_gnm(5, 1000, 1);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn gnp_edge_density_tracks_p() {
        let n = 500;
        let p = 0.02;
        let g = erdos_renyi_gnp(n, p, 17);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < expected * 0.2,
            "got {got}, expected ~{expected}"
        );
        assert!(g.validate().is_ok());
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(erdos_renyi_gnp(50, 0.0, 1).num_edges(), 0);
        assert_eq!(erdos_renyi_gnp(6, 1.0, 1).num_edges(), 15);
        assert_eq!(erdos_renyi_gnp(0, 0.5, 1).num_vertices(), 0);
        assert_eq!(erdos_renyi_gnp(1, 0.5, 1).num_edges(), 0);
    }

    #[test]
    fn chung_lu_hits_target_average_degree() {
        let g = chung_lu_power_law(5000, 10.0, 2.5, 23);
        let avg = g.average_degree();
        assert!((avg - 10.0).abs() < 2.0, "avg degree {avg}");
        assert!(g.validate().is_ok());
        // Heavy tail: max degree far above the mean.
        assert!(g.max_degree() > 40, "max degree {}", g.max_degree());
    }

    #[test]
    fn chung_lu_deterministic() {
        assert_eq!(
            chung_lu_power_law(1000, 6.0, 2.3, 9),
            chung_lu_power_law(1000, 6.0, 2.3, 9)
        );
    }

    #[test]
    fn barabasi_albert_structure() {
        let g = barabasi_albert(2000, 3, 77);
        assert_eq!(g.num_vertices(), 2000);
        // Each of the n - 4 late vertices adds 3 edges; the seed clique has 6.
        assert_eq!(g.num_edges(), 6 + (2000 - 4) * 3);
        assert!(g.validate().is_ok());
        // Preferential attachment keeps the graph connected.
        assert_eq!(connected_components(&g).count, 1);
        // Hubs exist.
        assert!(g.max_degree() > 30);
    }

    #[test]
    fn rmat_skewed_degrees() {
        let g = rmat(10, 8, 0.57, 0.19, 0.19, 3);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 4000, "m = {}", g.num_edges());
        assert!(g.validate().is_ok());
        let hist = degree_histogram(&g);
        // Skew: some vertex has degree much larger than average.
        let avg = g.average_degree();
        assert!((hist.len() - 1) as f64 > 4.0 * avg);
    }

    #[test]
    fn rmat_deterministic() {
        assert_eq!(
            rmat(8, 4, 0.57, 0.19, 0.19, 1),
            rmat(8, 4, 0.57, 0.19, 0.19, 1)
        );
    }

    #[test]
    fn watts_strogatz_lattice_limit() {
        // beta = 0: the exact ring lattice, everyone degree k.
        let g = watts_strogatz(50, 4, 0.0, 1);
        assert_eq!(g.num_edges(), 100);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert!(crate::connectivity::is_connected(&g));
        // Neighbor structure: 0 ~ {1, 2, 48, 49}.
        assert_eq!(g.neighbors(0), &[1, 2, 48, 49]);
    }

    #[test]
    fn watts_strogatz_rewiring_reduces_clustering() {
        // Count triangles by hand: the beta=0 lattice with k=4 has n
        // triangles; heavy rewiring destroys most of them.
        fn triangles(g: &CsrGraph) -> usize {
            let mut t = 0;
            for (u, v) in g.edges() {
                for &w in g.neighbors(v) {
                    if w > v && g.has_edge(u, w) {
                        t += 1;
                    }
                }
            }
            t
        }
        let lattice = watts_strogatz(200, 4, 0.0, 2);
        let random = watts_strogatz(200, 4, 1.0, 2);
        assert_eq!(triangles(&lattice), 200);
        assert!(triangles(&random) < 50, "rewired: {}", triangles(&random));
        // Edge budget: rewiring may collapse duplicates but never adds.
        assert!(random.num_edges() <= 400);
        assert!(random.num_edges() > 300);
    }

    #[test]
    fn watts_strogatz_deterministic() {
        assert_eq!(
            watts_strogatz(100, 6, 0.2, 9),
            watts_strogatz(100, 6, 0.2, 9)
        );
        assert_ne!(
            watts_strogatz(100, 6, 0.2, 9),
            watts_strogatz(100, 6, 0.2, 10)
        );
    }
}
