//! Community-structured generators: planted partitions and overlapping
//! cliques.
//!
//! These produce the ground-truth communities used by the case-study
//! reproduction (paper Tables V–VII) and the very dense, high-`kmax` graphs
//! that stand in for Hollywood / Human-Jung in Table III.

use crate::builder::GraphBuilder;
use crate::cast;
use crate::csr::{CsrGraph, VertexId};
use crate::rng::Xoshiro256;

/// A planted-partition graph together with its ground truth.
#[derive(Debug, Clone)]
pub struct PlantedPartition {
    /// The generated graph.
    pub graph: CsrGraph,
    /// `membership[v]` = community index of vertex `v`.
    pub membership: Vec<u32>,
    /// Vertices of each community.
    pub communities: Vec<Vec<VertexId>>,
}

/// Planted-partition (stochastic block) model: `sizes[i]` vertices in block
/// `i`, intra-block edge probability `p_in`, inter-block probability `p_out`.
///
/// Expected `O(n + m)` via per-block / per-block-pair skip sampling.
pub fn planted_partition(sizes: &[usize], p_in: f64, p_out: f64, seed: u64) -> PlantedPartition {
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let n: usize = sizes.iter().sum();
    assert!(n <= u32::MAX as usize);
    let mut membership = Vec::with_capacity(n);
    let mut communities = Vec::with_capacity(sizes.len());
    let mut start = 0usize;
    for (c, &s) in sizes.iter().enumerate() {
        membership.extend(std::iter::repeat_n(cast::u32_of(c), s));
        communities.push((cast::vertex_id(start)..cast::vertex_id(start + s)).collect());
        start += s;
    }
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    // Sample every vertex pair with the probability dictated by membership,
    // using one geometric-skip walk per probability class. For the modest
    // block counts used in the harness this two-pass structure (diagonal
    // blocks at p_in, off-diagonal at p_out) is the fast path.
    let mut starts = Vec::with_capacity(sizes.len());
    let mut acc = 0usize;
    for &s in sizes {
        starts.push(acc);
        acc += s;
    }
    // Intra-block edges.
    for (bi, &s) in sizes.iter().enumerate() {
        let base = starts[bi];
        sample_pairs_within(&mut rng, s, p_in, |u, v| {
            b.add_edge(cast::vertex_id(base + u), cast::vertex_id(base + v));
        });
    }
    // Inter-block edges, per ordered block pair.
    for bi in 0..sizes.len() {
        for bj in (bi + 1)..sizes.len() {
            sample_bipartite(&mut rng, sizes[bi], sizes[bj], p_out, |u, v| {
                b.add_edge(
                    cast::vertex_id(starts[bi] + u),
                    cast::vertex_id(starts[bj] + v),
                );
            });
        }
    }
    PlantedPartition {
        graph: b.build(),
        membership,
        communities,
    }
}

/// Geometric-skip sampling of unordered pairs within `0..s`.
fn sample_pairs_within(rng: &mut Xoshiro256, s: usize, p: f64, mut emit: impl FnMut(usize, usize)) {
    if s < 2 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        for v in 1..s {
            for w in 0..v {
                emit(w, v);
            }
        }
        return;
    }
    let log_q = (1.0 - p).ln();
    let mut v = 1usize;
    let mut w = -1i64;
    while v < s {
        let r = rng.next_f64();
        w += 1 + ((1.0 - r).ln() / log_q).floor() as i64;
        while w >= v as i64 && v < s {
            w -= v as i64;
            v += 1;
        }
        if v < s {
            emit(w as usize, v);
        }
    }
}

/// Geometric-skip sampling over the `su × sv` bipartite pair grid.
fn sample_bipartite(
    rng: &mut Xoshiro256,
    su: usize,
    sv: usize,
    p: f64,
    mut emit: impl FnMut(usize, usize),
) {
    if su == 0 || sv == 0 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        for u in 0..su {
            for v in 0..sv {
                emit(u, v);
            }
        }
        return;
    }
    let total = su as u64 * sv as u64;
    let log_q = (1.0 - p).ln();
    let mut pos: i64 = -1;
    loop {
        let r = rng.next_f64();
        pos += 1 + ((1.0 - r).ln() / log_q).floor() as i64;
        if pos as u64 >= total {
            return;
        }
        let u = (pos as u64 / sv as u64) as usize;
        let v = (pos as u64 % sv as u64) as usize;
        emit(u, v);
    }
}

/// Union of `cliques` random cliques, each of a size drawn uniformly from
/// `size_range`, over a universe of `n` vertices; members are sampled with a
/// Zipf-like skew so that some vertices join many cliques.
///
/// This mimics affiliation graphs (actors × movies, Hollywood) whose k-core
/// degeneracy is enormous compared to their average degree — the regime where
/// the paper's `kmax`-long sweeps are most expensive.
pub fn overlapping_cliques(
    n: usize,
    cliques: usize,
    size_range: (usize, usize),
    seed: u64,
) -> CsrGraph {
    assert!(n <= u32::MAX as usize);
    let (lo, hi) = size_range;
    assert!(lo >= 2 && hi >= lo && hi <= n, "invalid clique size range");
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    let mut members: Vec<VertexId> = Vec::with_capacity(hi);
    for _ in 0..cliques {
        let size = lo + rng.next_index(hi - lo + 1);
        members.clear();
        // Skewed sampling: squaring a uniform variate biases toward low ids,
        // producing hub vertices shared by many cliques.
        while members.len() < size {
            let r = rng.next_f64();
            let v = ((r * r) * n as f64) as usize;
            let v = cast::vertex_id(v.min(n - 1));
            if !members.contains(&v) {
                members.push(v);
            }
        }
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                b.add_edge(members[i], members[j]);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subgraph::{boundary_edge_count, induced_edge_count};

    #[test]
    fn planted_partition_ground_truth_shape() {
        let pp = planted_partition(&[30, 20, 10], 0.5, 0.01, 4);
        assert_eq!(pp.graph.num_vertices(), 60);
        assert_eq!(pp.membership.len(), 60);
        assert_eq!(pp.communities.len(), 3);
        assert_eq!(pp.communities[0].len(), 30);
        assert_eq!(pp.communities[2].len(), 10);
        assert_eq!(pp.membership[0], 0);
        assert_eq!(pp.membership[59], 2);
        assert!(pp.graph.validate().is_ok());
    }

    #[test]
    fn planted_partition_is_assortative() {
        let pp = planted_partition(&[50, 50], 0.4, 0.02, 11);
        let c0 = &pp.communities[0];
        let internal = induced_edge_count(&pp.graph, c0);
        let boundary = boundary_edge_count(&pp.graph, c0);
        // Expected internal ~ 0.4 * C(50,2) = 490; boundary ~ 0.02 * 2500 = 50.
        assert!(
            internal > 5 * boundary,
            "internal {internal}, boundary {boundary}"
        );
    }

    #[test]
    fn planted_partition_extreme_probabilities() {
        let pp = planted_partition(&[4, 3], 1.0, 0.0, 1);
        // Two disjoint cliques: C(4,2) + C(3,2) = 6 + 3.
        assert_eq!(pp.graph.num_edges(), 9);
        let pp = planted_partition(&[3, 3], 0.0, 1.0, 1);
        // Complete bipartite only.
        assert_eq!(pp.graph.num_edges(), 9);
    }

    #[test]
    fn planted_partition_deterministic() {
        let a = planted_partition(&[20, 20], 0.3, 0.05, 8);
        let b = planted_partition(&[20, 20], 0.3, 0.05, 8);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn overlapping_cliques_dense_core() {
        let g = overlapping_cliques(500, 60, (8, 20), 21);
        assert!(g.validate().is_ok());
        // Dense: minimum clique size 8 forces max degree >= 7.
        assert!(g.max_degree() >= 7);
        // Hubs: skewed membership should give someone a big degree.
        assert!(g.max_degree() > 30, "max degree {}", g.max_degree());
    }

    #[test]
    fn overlapping_cliques_deterministic() {
        assert_eq!(
            overlapping_cliques(100, 10, (3, 6), 2),
            overlapping_cliques(100, 10, (3, 6), 2)
        );
    }
}
