//! Deterministic edge-stream workloads for the mutation subsystem.
//!
//! These generators turn a starting graph into a reproducible sequence of
//! [`EdgeOp`]s that is always *valid when applied in order*: every insert
//! names an absent pair, every delete names a present edge, and no op is a
//! self-loop or out of the vertex range. The three families cover the
//! maintenance regimes the delta subsystem cares about:
//!
//! * [`edge_stream_mixed`] — balanced insert/delete churn across the whole
//!   vertex set (steady-state workload).
//! * [`edge_stream_delete_heavy`] — deletions dominate, draining the graph
//!   and repeatedly shrinking `kmax` (the adversarial direction for
//!   coreness maintenance).
//! * [`edge_stream_focused`] — all churn confined to a caller-chosen vertex
//!   subset; pass the max-`k` shell to hammer the top of the core
//!   hierarchy, where every op dirties the deepest sweep levels.

use std::collections::HashSet;

use crate::csr::{CsrGraph, VertexId};
use crate::rng::Xoshiro256;

/// One edge mutation in a stream. Endpoints are unordered; generators emit
/// them with `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeOp {
    /// Add the (currently absent) edge `{0, 1}`.
    Insert(VertexId, VertexId),
    /// Remove the (currently present) edge `{0, 1}`.
    Delete(VertexId, VertexId),
}

impl EdgeOp {
    /// The endpoints, in the `u < v` order the generators emit.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        match *self {
            EdgeOp::Insert(u, v) | EdgeOp::Delete(u, v) => (u, v),
        }
    }

    /// Whether this op is an insert.
    pub fn is_insert(&self) -> bool {
        matches!(self, EdgeOp::Insert(..))
    }
}

/// Balanced churn: each step is a delete with probability ~1/2 (when edges
/// exist), otherwise an insert of a uniformly sampled absent pair.
pub fn edge_stream_mixed(g: &CsrGraph, ops: usize, seed: u64) -> Vec<EdgeOp> {
    stream_over(g, None, ops, 0.5, seed)
}

/// Delete-heavy churn (~85% deletes while edges remain): drains the graph,
/// repeatedly collapsing shells and shrinking `kmax`.
pub fn edge_stream_delete_heavy(g: &CsrGraph, ops: usize, seed: u64) -> Vec<EdgeOp> {
    stream_over(g, None, ops, 0.85, seed)
}

/// Focused churn: every op has both endpoints in `focus` (callers pass the
/// max-`k` shell for the churn-on-max-k adversarial pattern). Falls back to
/// an empty stream when `focus` has fewer than two vertices.
pub fn edge_stream_focused(g: &CsrGraph, focus: &[VertexId], ops: usize, seed: u64) -> Vec<EdgeOp> {
    stream_over(g, Some(focus), ops, 0.6, seed)
}

/// Shared driver: tracks the live edge set (restricted to `focus` when
/// given) and alternates inserts/deletes per `p_delete`, falling back to
/// the other kind when the preferred one is impossible.
fn stream_over(
    g: &CsrGraph,
    focus: Option<&[VertexId]>,
    ops: usize,
    p_delete: f64,
    seed: u64,
) -> Vec<EdgeOp> {
    let domain: Vec<VertexId> = match focus {
        Some(f) => {
            let mut d: Vec<VertexId> = f
                .iter()
                .copied()
                .filter(|&v| (v as usize) < g.num_vertices())
                .collect();
            d.sort_unstable();
            d.dedup();
            d
        }
        None => g.vertices().collect(),
    };
    if domain.len() < 2 {
        return Vec::new();
    }
    let in_domain: HashSet<VertexId> = domain.iter().copied().collect();
    // Live edges inside the domain: Vec for O(1) sampling via swap_remove,
    // HashSet for O(1) membership.
    let mut live: Vec<(VertexId, VertexId)> = g
        .edges()
        .filter(|&(u, v)| in_domain.contains(&u) && in_domain.contains(&v))
        .collect();
    let mut present: HashSet<(VertexId, VertexId)> = live.iter().copied().collect();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut out = Vec::with_capacity(ops);
    for _ in 0..ops {
        let want_delete = rng.next_bool(p_delete);
        if want_delete && !live.is_empty() {
            let i = rng.next_index(live.len());
            let e = live.swap_remove(i);
            present.remove(&e);
            out.push(EdgeOp::Delete(e.0, e.1));
            continue;
        }
        // Insert: rejection-sample an absent pair; a dense domain may
        // defeat sampling, in which case fall back to a delete (or stop if
        // the domain has no edges either — fully churned out).
        let mut inserted = false;
        for _ in 0..64 {
            let a = domain[rng.next_index(domain.len())];
            let b = domain[rng.next_index(domain.len())];
            if a == b {
                continue;
            }
            let e = if a < b { (a, b) } else { (b, a) };
            if present.insert(e) {
                live.push(e);
                out.push(EdgeOp::Insert(e.0, e.1));
                inserted = true;
                break;
            }
        }
        if !inserted {
            if live.is_empty() {
                break;
            }
            let i = rng.next_index(live.len());
            let e = live.swap_remove(i);
            present.remove(&e);
            out.push(EdgeOp::Delete(e.0, e.1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// Replays `ops` against the starting edge set, asserting validity of
    /// every step; returns the final edge set.
    fn replay(g: &CsrGraph, ops: &[EdgeOp]) -> HashSet<(VertexId, VertexId)> {
        let mut present: HashSet<(VertexId, VertexId)> = g.edges().collect();
        let n = g.num_vertices();
        for op in ops {
            let (u, v) = op.endpoints();
            assert!(u < v, "{op:?} not normalized");
            assert!((v as usize) < n, "{op:?} out of range");
            match op {
                EdgeOp::Insert(..) => assert!(present.insert((u, v)), "{op:?} already present"),
                EdgeOp::Delete(..) => assert!(present.remove(&(u, v)), "{op:?} absent"),
            }
        }
        present
    }

    #[test]
    fn mixed_stream_is_valid_and_deterministic() {
        let g = generators::erdos_renyi_gnm(50, 120, 7);
        let ops = edge_stream_mixed(&g, 500, 42);
        assert_eq!(ops.len(), 500);
        replay(&g, &ops);
        assert_eq!(ops, edge_stream_mixed(&g, 500, 42));
        assert_ne!(ops, edge_stream_mixed(&g, 500, 43));
        let inserts = ops.iter().filter(|o| o.is_insert()).count();
        assert!(inserts > 100 && inserts < 400, "{inserts} inserts of 500");
    }

    #[test]
    fn delete_heavy_stream_drains_the_graph() {
        let g = generators::erdos_renyi_gnm(40, 100, 3);
        let ops = edge_stream_delete_heavy(&g, 300, 5);
        let end = replay(&g, &ops);
        // Once drained the stream oscillates insert/delete, so over a long
        // run deletes dominate but tend toward parity; a strict majority is
        // the stable invariant.
        let deletes = ops.len() - ops.iter().filter(|o| o.is_insert()).count();
        assert!(
            deletes * 2 > ops.len(),
            "{deletes} deletes of {}",
            ops.len()
        );
        assert!(end.len() < g.num_edges());
        let low_tide = ops
            .iter()
            .scan(g.num_edges() as i64, |m, op| {
                *m += if op.is_insert() { 1 } else { -1 };
                Some(*m)
            })
            .min();
        assert!(
            low_tide.is_some_and(|t| t * 4 < g.num_edges() as i64),
            "never drained: {low_tide:?}"
        );
    }

    #[test]
    fn focused_stream_stays_in_the_focus_set() {
        let g = generators::erdos_renyi_gnm(60, 150, 9);
        let focus: Vec<VertexId> = (10..20).collect();
        let ops = edge_stream_focused(&g, &focus, 200, 11);
        assert!(!ops.is_empty());
        replay(&g, &ops);
        for op in &ops {
            let (u, v) = op.endpoints();
            assert!(
                focus.contains(&u) && focus.contains(&v),
                "{op:?} left focus"
            );
        }
    }

    #[test]
    fn degenerate_domains_yield_empty_streams() {
        let g = generators::erdos_renyi_gnm(30, 60, 1);
        assert!(edge_stream_focused(&g, &[], 50, 1).is_empty());
        assert!(edge_stream_focused(&g, &[4], 50, 1).is_empty());
        let tiny = CsrGraph::empty(1);
        assert!(edge_stream_mixed(&tiny, 50, 1).is_empty());
    }

    #[test]
    fn churned_out_focus_terminates_early() {
        // A 2-vertex focus can only toggle one edge; the stream must not
        // spin or emit invalid ops.
        let g = generators::regular::complete(5);
        let focus: Vec<VertexId> = vec![0, 1];
        let ops = edge_stream_focused(&g, &focus, 40, 2);
        replay(&g, &ops);
        assert!(!ops.is_empty());
    }
}
