//! Robustness property tests for the graph readers: arbitrary byte soup
//! must produce errors, never panics or bogus graphs, and round trips must
//! be lossless for every generator family.

use proptest::prelude::*;

use bestk_graph::{io, CsrGraph, GraphBuilder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random bytes into the binary reader: error or a valid graph, never a
    /// panic, and any accepted graph passes validation.
    #[test]
    fn binary_reader_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(g) = io::read_binary(&bytes[..]) {
            prop_assert!(g.validate().is_ok());
        }
    }

    /// Garbage prefixed with the real magic: still no panic.
    #[test]
    fn binary_reader_survives_magic_plus_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = b"BESTKGR1".to_vec();
        buf.extend_from_slice(&bytes);
        if let Ok(g) = io::read_binary(&buf[..]) {
            prop_assert!(g.validate().is_ok());
        }
    }

    /// Random text into the edge-list reader: error or valid graph.
    #[test]
    fn text_reader_survives_garbage(text in "[ -~\n\t]{0,300}") {
        if let Ok((g, orig)) = io::read_edge_list(text.as_bytes()) {
            prop_assert!(g.validate().is_ok());
            prop_assert_eq!(orig.len(), g.num_vertices());
        }
    }

    /// Truncating a valid binary at any point errors cleanly.
    #[test]
    fn truncated_binary_errors(cut in 0usize..200) {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let g = b.build();
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let cut = cut.min(buf.len());
        if cut < buf.len() {
            buf.truncate(cut);
            prop_assert!(io::read_binary(&buf[..]).is_err());
        }
    }

    /// Binary round trip is identity for arbitrary built graphs.
    #[test]
    fn binary_roundtrip_arbitrary(edges in proptest::collection::vec((0u32..60, 0u32..60), 0..200)) {
        let mut b = GraphBuilder::new();
        b.extend_edges(edges);
        let g = b.build();
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let g2 = io::read_binary(&buf[..]).unwrap();
        prop_assert_eq!(g, g2);
    }

    /// Text round trip preserves the edge multiset (module relabeling).
    #[test]
    fn text_roundtrip_arbitrary(edges in proptest::collection::vec((0u32..40, 0u32..40), 1..150)) {
        let mut b = GraphBuilder::new();
        b.extend_edges(edges);
        let g = b.build();
        prop_assume!(g.num_edges() > 0);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let (g2, orig) = io::read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        let mut original: Vec<(u32, u32)> = g.edges().collect();
        let mut mapped: Vec<(u32, u32)> = g2
            .edges()
            .map(|(u, v)| {
                let (a, b) = (orig[u as usize] as u32, orig[v as usize] as u32);
                (a.min(b), a.max(b))
            })
            .collect();
        original.sort_unstable();
        mapped.sort_unstable();
        prop_assert_eq!(original, mapped);
    }
}

#[test]
fn empty_input_behaviors() {
    assert!(io::read_binary(&b""[..]).is_err());
    let (g, orig) = io::read_edge_list(&b""[..]).unwrap();
    assert_eq!(g.num_vertices(), 0);
    assert!(orig.is_empty());
    let _ = CsrGraph::empty(0);
}
