//! Robustness property tests for the graph readers: arbitrary byte soup
//! must produce errors, never panics or bogus graphs, and round trips must
//! be lossless for every generator family.

use bestk_graph::testkit::check;
use bestk_graph::{io, verify, CsrGraph, GraphBuilder};

/// Random bytes into the binary reader: error or a valid graph, never a
/// panic, and any accepted graph passes full structural verification.
#[test]
fn binary_reader_survives_garbage() {
    check("binary_reader_survives_garbage", 128, |gen| {
        let bytes = gen.bytes(512);
        if let Ok(g) = io::read_binary(&bytes[..]) {
            verify::verify_graph(&g).expect("reader accepted an invalid graph");
        }
    });
}

/// Garbage prefixed with the real magic: still no panic.
#[test]
fn binary_reader_survives_magic_plus_garbage() {
    check("binary_reader_survives_magic_plus_garbage", 128, |gen| {
        let mut buf = b"BESTKGR1".to_vec();
        buf.extend_from_slice(&gen.bytes(256));
        if let Ok(g) = io::read_binary(&buf[..]) {
            verify::verify_graph(&g).expect("reader accepted an invalid graph");
        }
    });
}

/// Random text into the edge-list reader: error or valid graph.
#[test]
fn text_reader_survives_garbage() {
    check("text_reader_survives_garbage", 128, |gen| {
        let text = gen.ascii_text(300);
        if let Ok((g, orig)) = io::read_edge_list(text.as_bytes()) {
            verify::verify_graph(&g).expect("reader accepted an invalid graph");
            assert_eq!(orig.len(), g.num_vertices());
        }
    });
}

/// Truncating a valid binary at any point errors cleanly.
#[test]
fn truncated_binary_errors() {
    check("truncated_binary_errors", 128, |gen| {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let g = b.build();
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).expect("in-memory write cannot fail");
        let cut = gen.usize_in(0, 200).min(buf.len());
        if cut < buf.len() {
            buf.truncate(cut);
            assert!(io::read_binary(&buf[..]).is_err());
        }
    });
}

/// Binary round trip is identity for arbitrary built graphs.
#[test]
fn binary_roundtrip_arbitrary() {
    check("binary_roundtrip_arbitrary", 128, |gen| {
        let edges = gen.edges(60, 200);
        let mut b = GraphBuilder::new();
        b.extend_edges(edges);
        let g = b.build();
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).expect("in-memory write cannot fail");
        let g2 = io::read_binary(&buf[..]).expect("round trip must parse");
        assert_eq!(g, g2);
    });
}

/// Text round trip preserves the edge multiset (modulo relabeling).
#[test]
fn text_roundtrip_arbitrary() {
    check("text_roundtrip_arbitrary", 128, |gen| {
        let edges = gen.edges(40, 150);
        let mut b = GraphBuilder::new();
        b.extend_edges(edges);
        let g = b.build();
        if g.num_edges() == 0 {
            return;
        }
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).expect("in-memory write cannot fail");
        let (g2, orig) = io::read_edge_list(&buf[..]).expect("round trip must parse");
        assert_eq!(g2.num_edges(), g.num_edges());
        let mut original: Vec<(u32, u32)> = g.edges().collect();
        let mut mapped: Vec<(u32, u32)> = g2
            .edges()
            .map(|(u, v)| {
                let (a, b) = (orig[u as usize] as u32, orig[v as usize] as u32);
                (a.min(b), a.max(b))
            })
            .collect();
        original.sort_unstable();
        mapped.sort_unstable();
        assert_eq!(original, mapped);
    });
}

#[test]
fn empty_input_behaviors() {
    assert!(io::read_binary(&b""[..]).is_err());
    let (g, orig) = io::read_edge_list(&b""[..]).unwrap();
    assert_eq!(g.num_vertices(), 0);
    assert!(orig.is_empty());
    let _ = CsrGraph::empty(0);
}
