//! Pluggable graph storage backends behind one [`GraphStore`] enum.
//!
//! The engine serves queries against three physical layouts:
//!
//! * [`GraphStore::Csr`] — the canonical materialized
//!   [`CsrGraph`](bestk_graph::CsrGraph): fastest scans, largest resident
//!   footprint, the only mutable/buildable form.
//! * [`GraphStore::Succinct`] — the compressed
//!   [`SuccinctCsr`](bestk_graph::SuccinctCsr) (Elias–Fano offsets plus
//!   gap-varint adjacency): 2–4× smaller, ~2–3× slower neighbor scans,
//!   bit-identical neighbor order.
//! * [`GraphStore::Mapped`] — a zero-copy [`ByteCsr`] borrowing its bytes
//!   from a memory-mapped v2 snapshot: near-zero heap cost and
//!   near-instant open, backed by the page cache.
//!
//! All three implement [`GraphView`] with identical observations, so every
//! algorithm and every query answer is bit-identical across backends
//! (property-tested in `tests/backend_equivalence.rs`).

use std::sync::Arc;

use bestk_graph::{ByteCsr, CsrGraph, GraphView, Neighbors, SuccinctCsr, VertexId};

use crate::mmap::Mmap;

/// A window into a shared memory-mapped snapshot: the byte holder behind
/// [`GraphStore::Mapped`]. Cloning is `O(1)` — it bumps the `Arc` on the
/// mapping, never copies file bytes.
#[derive(Clone, Debug)]
pub struct SnapshotSlice {
    map: Arc<Mmap>,
    off: usize,
    len: usize,
}

impl SnapshotSlice {
    /// Slices `map[off .. off + len]`; `None` when the range falls outside
    /// the mapping (a corrupt section table, typically).
    pub fn new(map: Arc<Mmap>, off: usize, len: usize) -> Option<SnapshotSlice> {
        let end = off.checked_add(len)?;
        if end > map.len() {
            return None;
        }
        Some(SnapshotSlice { map, off, len })
    }

    /// The shared mapping this slice borrows from.
    pub fn mapping(&self) -> &Arc<Mmap> {
        &self.map
    }
}

impl AsRef<[u8]> for SnapshotSlice {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.map.as_slice()[self.off..self.off + self.len]
    }
}

/// A graph held in one of the engine's storage backends. See the module
/// docs for the trade-offs; [`GraphStore::as_csr`] is the escape hatch for
/// the few operations (snapshot *writes*, artifact builds that want raw
/// slices) that need the canonical form.
#[derive(Clone, Debug)]
pub enum GraphStore {
    /// Canonical materialized CSR.
    Csr(Arc<CsrGraph>),
    /// Compressed succinct CSR.
    Succinct(Arc<SuccinctCsr>),
    /// Zero-copy view into a mapped v2 snapshot.
    Mapped(ByteCsr<SnapshotSlice>),
}

impl GraphStore {
    /// Stable lowercase backend tag used by CLI flags, metric labels, and
    /// bench JSON: `csr`, `succinct`, or `mapped`.
    pub fn backend_name(&self) -> &'static str {
        match self {
            GraphStore::Csr(_) => "csr",
            GraphStore::Succinct(_) => "succinct",
            GraphStore::Mapped(_) => "mapped",
        }
    }

    /// Heap bytes resident for the graph itself. Mapped graphs report 0 —
    /// their bytes live in the page cache, not the process heap.
    pub fn resident_heap_bytes(&self) -> usize {
        match self {
            GraphStore::Csr(g) => g.heap_bytes(),
            GraphStore::Succinct(g) => g.heap_bytes(),
            GraphStore::Mapped(_) => 0,
        }
    }

    /// Compression ratio `canonical CSR bytes / this backend's bytes`
    /// (≥ 1.0 means smaller than the CSR; the CSR itself reports 1.0, and
    /// mapped snapshots compare against their on-disk graph section).
    pub fn compression_ratio(&self) -> f64 {
        match self {
            GraphStore::Csr(_) => 1.0,
            GraphStore::Succinct(g) => g.compression_ratio(),
            GraphStore::Mapped(b) => {
                let csr_bytes = 8 * (self.num_vertices() + 1) + 4 * 2 * self.num_edges();
                let section = b.bytes().len();
                if section == 0 {
                    1.0
                } else {
                    csr_bytes as f64 / section as f64
                }
            }
        }
    }

    /// The canonical CSR: borrowed when this *is* the CSR backend,
    /// materialized (with full validation) otherwise.
    pub fn as_csr(&self) -> Result<Arc<CsrGraph>, bestk_graph::GraphError> {
        match self {
            GraphStore::Csr(g) => Ok(Arc::clone(g)),
            GraphStore::Succinct(g) => Ok(Arc::new(g.to_csr())),
            GraphStore::Mapped(b) => b.to_csr().map(Arc::new),
        }
    }
}

/// Observation equality: two stores are equal when every [`GraphView`]
/// observation agrees, regardless of backend. This is the equality that
/// matters for round-trip tests — a mapped snapshot of a CSR *is* that
/// graph.
impl PartialEq for GraphStore {
    fn eq(&self, other: &GraphStore) -> bool {
        self.num_vertices() == other.num_vertices()
            && self.num_edges() == other.num_edges()
            && self
                .vertices()
                .all(|v| self.neighbors(v).eq(other.neighbors(v)))
    }
}

impl Eq for GraphStore {}

impl From<CsrGraph> for GraphStore {
    fn from(g: CsrGraph) -> GraphStore {
        GraphStore::Csr(Arc::new(g))
    }
}

impl From<Arc<CsrGraph>> for GraphStore {
    fn from(g: Arc<CsrGraph>) -> GraphStore {
        GraphStore::Csr(g)
    }
}

impl From<SuccinctCsr> for GraphStore {
    fn from(g: SuccinctCsr) -> GraphStore {
        GraphStore::Succinct(Arc::new(g))
    }
}

impl GraphView for GraphStore {
    #[inline]
    fn num_vertices(&self) -> usize {
        match self {
            GraphStore::Csr(g) => GraphView::num_vertices(&**g),
            GraphStore::Succinct(g) => g.num_vertices(),
            GraphStore::Mapped(g) => g.num_vertices(),
        }
    }

    #[inline]
    fn num_edges(&self) -> usize {
        match self {
            GraphStore::Csr(g) => GraphView::num_edges(&**g),
            GraphStore::Succinct(g) => g.num_edges(),
            GraphStore::Mapped(g) => g.num_edges(),
        }
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        match self {
            GraphStore::Csr(g) => GraphView::degree(&**g, v),
            GraphStore::Succinct(g) => GraphView::degree(&**g, v),
            GraphStore::Mapped(g) => g.degree(v),
        }
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> Neighbors<'_> {
        match self {
            GraphStore::Csr(g) => GraphView::neighbors(&**g, v),
            GraphStore::Succinct(g) => GraphView::neighbors(&**g, v),
            GraphStore::Mapped(g) => g.neighbors(v),
        }
    }

    #[inline]
    fn adjacency_start(&self, v: VertexId) -> usize {
        match self {
            GraphStore::Csr(g) => GraphView::adjacency_start(&**g, v),
            GraphStore::Succinct(g) => GraphView::adjacency_start(&**g, v),
            GraphStore::Mapped(g) => g.adjacency_start(v),
        }
    }

    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        match self {
            // Keep the CSR's binary-search override through the enum.
            GraphStore::Csr(g) => g.has_edge(u, v),
            GraphStore::Succinct(g) => GraphView::has_edge(&**g, u, v),
            GraphStore::Mapped(g) => GraphView::has_edge(g, u, v),
        }
    }

    fn degree_offsets(&self) -> Vec<usize> {
        match self {
            // bestk-analyze: allow(no-raw-graph) — CSR fast path for the trait's own accessor
            GraphStore::Csr(g) => g.offsets().to_vec(),
            GraphStore::Succinct(g) => GraphView::degree_offsets(&**g),
            GraphStore::Mapped(g) => GraphView::degree_offsets(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_graph::generators;

    fn observations<G: GraphView>(g: &G) -> (usize, usize, Vec<Vec<VertexId>>) {
        (
            g.num_vertices(),
            g.num_edges(),
            g.vertices().map(|v| g.neighbors(v).collect()).collect(),
        )
    }

    #[test]
    fn backends_observe_identically() {
        let g = generators::paper_figure2();
        let base = observations(&g);
        let csr = GraphStore::from(g.clone());
        let succinct = GraphStore::from(SuccinctCsr::from_csr(&g));
        let bytes = bestk_graph::bytecsr::encode_view(&g);
        let map = Arc::new(Mmap::from_vec(bytes));
        let len = map.len();
        let slice = SnapshotSlice::new(map, 0, len).unwrap();
        let mapped = GraphStore::Mapped(ByteCsr::new(slice).unwrap());
        for store in [&csr, &succinct, &mapped] {
            assert_eq!(observations(store), base, "{}", store.backend_name());
            assert_eq!(store.degree_offsets(), g.offsets().to_vec());
        }
        assert_eq!(csr.backend_name(), "csr");
        assert_eq!(succinct.backend_name(), "succinct");
        assert_eq!(mapped.backend_name(), "mapped");
        assert_eq!(mapped.resident_heap_bytes(), 0);
        assert!(csr.resident_heap_bytes() > 0);
        assert!(succinct.resident_heap_bytes() < csr.resident_heap_bytes());
        assert!(succinct.compression_ratio() > 1.0);
    }

    #[test]
    fn as_csr_round_trips_every_backend() {
        let g = generators::erdos_renyi_gnm(60, 180, 3);
        let csr = GraphStore::from(g.clone());
        let succinct = GraphStore::from(SuccinctCsr::from_csr(&g));
        let bytes = bestk_graph::bytecsr::encode_view(&g);
        let map = Arc::new(Mmap::from_vec(bytes));
        let len = map.len();
        let mapped =
            GraphStore::Mapped(ByteCsr::new(SnapshotSlice::new(map, 0, len).unwrap()).unwrap());
        for store in [&csr, &succinct, &mapped] {
            assert_eq!(*store.as_csr().unwrap(), g, "{}", store.backend_name());
        }
    }

    #[test]
    fn snapshot_slice_rejects_out_of_range() {
        let map = Arc::new(Mmap::from_vec(vec![0u8; 10]));
        assert!(SnapshotSlice::new(Arc::clone(&map), 4, 6).is_some());
        assert!(SnapshotSlice::new(Arc::clone(&map), 4, 7).is_none());
        assert!(SnapshotSlice::new(map, usize::MAX, 2).is_none());
    }
}
