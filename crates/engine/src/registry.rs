//! The shared, lock-disciplined registry: an [`Engine`] behind a mutex.
//!
//! `SharedEngine` is the concurrency seam the serving loop runs on. The
//! design rule — enforced by `bestk-analyze`'s `lock-held-io` and
//! `lock-held-dispatch` passes — is that the registry lock is only ever
//! held for bookkeeping:
//!
//! * **loads**: [`snapshot::load_or_rebuild`] does every byte of disk I/O
//!   (and any `O(m^1.5)` rebuild) *before* the lock is taken; the locked
//!   section just installs the finished dataset;
//! * **queries**: the dataset is checked out under the lock (an `Arc`
//!   clone), artifacts build and the batch is answered *outside* the
//!   lock, and a final locked section settles the counters and runs the
//!   eviction pass;
//! * **panics**: `catch_unwind` wraps the answering step while no guard
//!   is live, so a worker panic cannot poison the registry — and
//!   [`SharedEngine::guard`] shrugs off poisoning anyway, since every
//!   critical section leaves the registry structurally consistent.
//!
//! The naive alternative — holding the lock across `load` or the batch —
//! is exactly what the static analyzer flags; see the `lock_fixtures`
//! tests in `crates/analyze`.

use std::sync::{Arc, Mutex, MutexGuard};

use bestk_exec::ExecPolicy;

use crate::dataset::Artifacts;
use crate::engine::{panic_message, Counters, DatasetRow, Engine, LoadOutcome};
use crate::error::EngineError;
use crate::query::{Answer, Query};
use crate::snapshot::{self, RetryPolicy};

/// A thread-shareable registry of datasets: [`Engine`] behind a mutex,
/// with every I/O- or dispatch-heavy step kept outside the lock.
pub struct SharedEngine {
    inner: Mutex<Engine>,
}

impl SharedEngine {
    /// Wraps an engine for shared use.
    pub fn new(engine: Engine) -> SharedEngine {
        SharedEngine {
            inner: Mutex::new(engine),
        }
    }

    /// Creates a shared engine with an optional artifact memory budget.
    pub fn with_budget(budget_bytes: Option<usize>) -> SharedEngine {
        SharedEngine::new(Engine::new(budget_bytes))
    }

    /// Locks the registry. Poisoning is ignored: the critical sections in
    /// this module are bookkeeping-only and leave the engine structurally
    /// consistent, so a panic elsewhere must not wedge serving forever.
    ///
    /// Keep critical sections short — never perform I/O or dispatch work
    /// through `bestk_exec` while this guard is live (the `lock-held-io` /
    /// `lock-held-dispatch` lints police exactly that).
    pub fn guard(&self) -> MutexGuard<'_, Engine> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the wrapper, returning the inner engine.
    pub fn into_inner(self) -> Engine {
        match self.inner.into_inner() {
            Ok(e) => e,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers a bare graph under `name` (see [`Engine::insert_graph`]).
    pub fn insert_graph(&self, name: &str, graph: bestk_graph::CsrGraph) {
        self.guard().insert_graph(name, graph);
    }

    /// Removes a dataset; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.guard().remove(name)
    }

    /// Lifetime workload counters.
    pub fn counters(&self) -> Counters {
        self.guard().counters()
    }

    /// One summary row per dataset, in name order.
    pub fn dataset_rows(&self) -> Vec<DatasetRow> {
        self.guard().dataset_rows()
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.guard().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.guard().is_empty()
    }

    /// The resilient snapshot load (see
    /// [`Engine::load_snapshot_with_fallback`] for the ladder), with the
    /// lock discipline applied: the read, any quarantine, and any rebuild
    /// all complete before the registry lock is touched.
    ///
    /// The shared engine additionally adopts the snapshot's sibling
    /// write-ahead log (`<path>.wal`): committed mutations replay on top
    /// of the loaded dataset, and an unreadable or mismatched log is
    /// quarantined (see `crate::mutate`) — all of it, again, before the
    /// lock is taken.
    pub fn load_snapshot_with_fallback(
        &self,
        name: &str,
        path: &str,
        source: Option<&str>,
        retry: &RetryPolicy,
        policy: &ExecPolicy,
    ) -> Result<LoadOutcome, EngineError> {
        let (dataset, outcome) = snapshot::load_or_rebuild(path, source, retry, policy)?;
        let (dataset, delta) = crate::mutate::adopt_wal(dataset, &format!("{path}.wal"))?;
        self.guard()
            .install_loaded_with_delta(name, dataset, outcome, delta);
        Ok(outcome)
    }

    /// Answers one query against the named dataset.
    pub fn query(
        &self,
        name: &str,
        query: &Query,
        policy: &ExecPolicy,
    ) -> Result<Answer, EngineError> {
        let mut answers = self.query_batch(name, std::slice::from_ref(query), policy)?;
        match answers.pop() {
            Some(result) => result,
            None => Err(EngineError::BadQuery("empty query batch".into())),
        }
    }

    /// Answers a batch of queries (see [`Engine::query_batch`] for the
    /// semantics), holding the registry lock only for the checkout, the
    /// artifact publish, and the final settlement — the build and the
    /// batch itself run with no guard live.
    pub fn query_batch(
        &self,
        name: &str,
        queries: &[Query],
        policy: &ExecPolicy,
    ) -> Result<Vec<Result<Answer, EngineError>>, EngineError> {
        let checked = self.guard().checkout(name)?;
        let (dataset, built_now) = if checked.is_built() {
            (checked, false)
        } else {
            let artifacts = Artifacts::build(checked.graph(), policy);
            let built = Arc::new(checked.with_artifacts(artifacts));
            self.guard().install_artifacts(name, &built);
            (built, true)
        };
        // Panic isolation happens with no guard live: a worker panic is
        // converted to a typed error and the registry stays unlocked and
        // unpoisoned throughout.
        let answers = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dataset.answer_batch(queries, policy)
        }))
        .map_err(|payload| EngineError::Internal(panic_message(payload.as_ref())))?;
        self.guard().finish_batch(name, built_now, queries.len());
        Ok(answers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_core::Metric;
    use bestk_graph::generators;

    fn policy() -> ExecPolicy {
        ExecPolicy::Sequential
    }

    #[test]
    fn shared_engine_answers_like_the_engine() {
        let shared = SharedEngine::with_budget(None);
        shared.insert_graph("fig2", generators::paper_figure2());
        let q = Query::BestKSet {
            metric: Metric::AverageDegree,
        };
        let a = shared.query("fig2", &q, &policy()).unwrap();
        assert_eq!(a.to_line(), "bestkset\tad\tk=2\tscore=3.1666666666666665");
        let c = shared.counters();
        assert_eq!((c.loads, c.builds, c.cache_hits), (1, 1, 0));
        shared.query("fig2", &q, &policy()).unwrap();
        assert_eq!(shared.counters().cache_hits, 1);
        assert_eq!(shared.len(), 1);
        assert!(!shared.is_empty());
        assert!(shared.remove("fig2"));
        assert!(shared.is_empty());
    }

    #[test]
    fn out_of_lock_build_publishes_artifacts() {
        let shared = SharedEngine::with_budget(None);
        shared.insert_graph("g", generators::erdos_renyi_gnm(60, 200, 1));
        assert!(!shared.dataset_rows()[0].built);
        shared.query("g", &Query::Stats, &policy()).unwrap();
        // The artifacts built outside the lock were installed in the slot.
        assert!(shared.dataset_rows()[0].built);
        assert_eq!(shared.counters().builds, 1);
    }

    #[test]
    fn worker_panic_does_not_poison_the_registry() {
        use bestk_faults::{sites, Fault, FaultPlan, SiteSpec};
        let shared = SharedEngine::with_budget(None);
        shared.insert_graph("fig2", generators::paper_figure2());
        let plan = FaultPlan::new(9).site(
            sites::EXEC_WORKER,
            SiteSpec::always(Fault::Panic).with_budget(1),
        );
        bestk_faults::with_plan(&plan, || {
            let threads = ExecPolicy::with_threads(2).unwrap();
            let err = shared.query("fig2", &Query::Stats, &threads).unwrap_err();
            assert!(matches!(err, EngineError::Internal(_)), "{err}");
            let a = shared.query("fig2", &Query::Stats, &threads).unwrap();
            assert_eq!(a.to_line(), "stats\tn=12\tm=19\tkmax=3\tcores=3");
        });
    }

    #[test]
    fn eviction_between_checkout_and_answer_is_harmless() {
        // A checked-out dataset keeps its artifacts even if the slot is
        // evicted (copy-on-write): simulate by evicting via a tiny budget
        // while handles are out.
        let shared = SharedEngine::with_budget(Some(1));
        shared.insert_graph("a", generators::erdos_renyi_gnm(60, 200, 1));
        shared.insert_graph("b", generators::erdos_renyi_gnm(60, 200, 2));
        let q = Query::BestKSet {
            metric: Metric::AverageDegree,
        };
        let a1 = shared.query("a", &q, &policy()).unwrap().to_line();
        shared.query("b", &q, &policy()).unwrap();
        assert!(!shared.dataset_rows()[0].built, "a should be evicted");
        let a2 = shared.query("a", &q, &policy()).unwrap().to_line();
        assert_eq!(a1, a2);
    }

    #[test]
    fn into_inner_returns_the_engine() {
        let shared = SharedEngine::with_budget(None);
        shared.insert_graph("g", generators::paper_figure2());
        let eng = shared.into_inner();
        assert_eq!(eng.len(), 1);
    }
}
